//! Visualize operator orchestration (the paper's Fig 18, as ASCII): one
//! LLaMA7B decoder layer under 4-GPU tensor parallelism, executed
//! (a) sequentially with blocking communication (NeMo style), and
//! (b) with two tasks interleaved per Algorithm 1 and collectives
//! overlapped on the communication stream (MuxTune).
//!
//! Run with: `cargo run --release --example orchestration_trace`

use muxtune::core::schedule::schedule_subgraphs;
use muxtune::core::subgraph::segment;
use muxtune::gpu_sim::render::{render_summary, render_timeline};
use muxtune::gpu_sim::spec::CommCtaPolicy;
use muxtune::gpu_sim::timeline::Timeline;
use muxtune::model::ops::{Pass, TokenShape};
use muxtune::parallel::tp::{execute_stage_ordered, UniformShape};

use muxtune::prelude::*;

fn main() {
    let backbone = ModelConfig::llama2_7b().with_layers(1);
    let mut registry = TaskRegistry::new(backbone);
    registry
        .register_task(PeftTask::lora(1, 16, 8, 128))
        .expect("t1");
    registry
        .register_task(PeftTask::lora(2, 16, 8, 128))
        .expect("t2");
    let cluster = Cluster::single_node(GpuSpec::a40(), 4, LinkSpec::nvlink_a40());
    let shape = UniformShape(TokenShape::new(8, 128));
    let devices = [0usize, 1, 2, 3];

    // (a) Sequential launch, one task: communication blocks compute.
    let g1 = registry.build_multitask_stage_graph(0, 1, 4, &[1]);
    let mut tl_seq = Timeline::new(&cluster);
    let order: Vec<usize> = (0..g1.len()).collect();
    execute_stage_ordered(
        &mut tl_seq,
        &g1,
        &order,
        &shape,
        Pass::Forward,
        &devices,
        &[],
        true,
        CommCtaPolicy::sequential(),
    );
    let w = tl_seq.finish_time();
    println!(
        "(a) NeMo-style: 1 task, sequential launch — {:.2} ms",
        w * 1e3
    );
    println!("{}", render_timeline(&tl_seq, w, 72));
    println!("{}\n", render_summary(&tl_seq, w));

    // (b) Two tasks, Algorithm-1 interleaved order with overlapped comm:
    // while task 1's all-reduce flies, task 2's compute fills the SMs.
    let g2 = registry.build_multitask_stage_graph(0, 1, 4, &[2]);
    let dags = vec![segment(&g1), segment(&g2)];
    let launch = schedule_subgraphs(&dags, &|_, sg| sg.nodes.len() as f64);
    let mut tl_mux = Timeline::new(&cluster);
    // Issue node-by-node in Algorithm 1's launch order, so the two graphs
    // genuinely interleave: while one task's all-reduce is in flight on the
    // comm stream, the other task's subgraph computes.
    let graphs = [&g1, &g2];
    let policy = CommCtaPolicy::for_link(&LinkSpec::nvlink_a40(), true);
    use muxtune::gpu_sim::timeline::{CollectiveKind, OpHandle};
    use muxtune::parallel::tp::work_for;
    let mut done: Vec<Vec<Vec<OpHandle>>> =
        graphs.iter().map(|g| vec![Vec::new(); g.len()]).collect();
    for item in &launch {
        let g = graphs[item.dag];
        for &nid in &dags[item.dag][item.subgraph].nodes {
            let node = g.node(nid);
            let mut deps: Vec<OpHandle> = Vec::new();
            for &d in &node.deps {
                deps.extend(done[item.dag][d].iter().copied());
            }
            let handles = if node.template.kind.is_comm() {
                vec![tl_mux.collective(
                    &devices,
                    CollectiveKind::AllReduce,
                    node.template.cost.comm_bytes(shape.0),
                    &deps,
                    policy,
                    false,
                    format!("t{} {}", item.dag + 1, node.template.name),
                )]
            } else {
                let w = work_for(
                    &node.template.cost,
                    node.template.kind,
                    shape.0,
                    Pass::Forward,
                );
                devices
                    .iter()
                    .map(|&dev| {
                        tl_mux.compute(
                            dev,
                            w,
                            &deps,
                            format!("t{} {}", item.dag + 1, node.template.name),
                        )
                    })
                    .collect()
            };
            done[item.dag][nid] = handles;
        }
    }
    let w2 = tl_mux.finish_time();
    println!(
        "(b) MuxTune: 2 tasks, interleaved + overlapped — {:.2} ms total",
        w2 * 1e3
    );
    println!("{}", render_timeline(&tl_mux, w2, 72));
    println!("{}", render_summary(&tl_mux, w2));
    println!(
        "\nPer-task latency: (a) {:.2} ms/task vs (b) {:.2} ms/task — overlap hides the all-reduces.",
        w * 1e3,
        w2 * 1e3 / 2.0
    );
}
