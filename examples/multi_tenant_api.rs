//! Multi-tenant fine-tuning API simulation: tasks of different tenants —
//! different PEFT types, batch sizes and datasets — arrive and depart on
//! the fly; the instance re-plans around each event without ever touching
//! the shared backbone (the paper's Fig 1 / Fig 6 workflow).
//!
//! Run with: `cargo run --release --example multi_tenant_api`

use std::collections::BTreeMap;

use muxtune::peft::types::PeftType;
use muxtune::prelude::*;

fn plan(registry: &TaskRegistry, cluster: &Cluster, corpora: &BTreeMap<TaskId, Vec<usize>>) {
    if registry.is_empty() {
        println!("  (instance idle)");
        return;
    }
    let cfg = PlannerConfig::muxtune(HybridParallelism::pipeline(4), 4);
    match plan_and_run(registry, cluster, corpora, &cfg) {
        Ok(r) => println!(
            "  replanned in {:.1} ms: {} tasks -> {} hTask(s), {:.0} effective tokens/s, peak mem {:.1} GB",
            r.planning_seconds * 1e3,
            registry.len(),
            r.fusion.htasks.len(),
            r.metrics.effective_throughput,
            *r.metrics.peak_mem.iter().max().unwrap_or(&0) as f64 / 1e9,
        ),
        Err(e) => println!("  rejected by admission control: {e}"),
    }
}

fn main() {
    let backbone = ModelConfig::llama2_7b().with_layers(16);
    let mut registry = TaskRegistry::new(backbone);
    let cluster = Cluster::single_node(GpuSpec::a40(), 4, LinkSpec::nvlink_a40());
    let mut corpora: BTreeMap<TaskId, Vec<usize>> = BTreeMap::new();

    // Tenant A submits a LoRA sentiment task (SST2-like, short sequences).
    println!("event: tenant A registers task 1 (LoRA r=16, SST2)");
    registry
        .register_task(PeftTask::lora(1, 16, 4, 64))
        .expect("register");
    corpora.insert(1, Corpus::generate(DatasetKind::Sst2, 16, 1).lengths);
    plan(&registry, &cluster, &corpora);

    // Tenant B submits an Adapter-Tuning QA task.
    println!("event: tenant B registers task 2 (Adapter-Tuning b=64, QA)");
    registry
        .register_task(PeftTask {
            id: 2,
            peft: PeftType::AdapterTuning { bottleneck: 64 },
            micro_batch: 4,
            seq_len: 128,
            lr: 1e-3,
        })
        .expect("register");
    corpora.insert(2, Corpus::generate(DatasetKind::OpenBookQa, 16, 2).lengths);
    plan(&registry, &cluster, &corpora);

    // Tenant C submits a Diff-Pruning RTE task.
    println!("event: tenant C registers task 3 (Diff-Pruning 0.5%, RTE)");
    registry
        .register_task(PeftTask {
            id: 3,
            peft: PeftType::DiffPruning { sparsity: 0.005 },
            micro_batch: 2,
            seq_len: 256,
            lr: 1e-3,
        })
        .expect("register");
    corpora.insert(3, Corpus::generate(DatasetKind::Rte, 8, 3).lengths);
    plan(&registry, &cluster, &corpora);

    // Duplicate ids are rejected at the API boundary.
    println!("event: tenant D tries to reuse task id 2");
    match registry.register_task(PeftTask::lora(2, 8, 2, 64)) {
        Err(e) => println!("  rejected: {e}"),
        Ok(_) => unreachable!("duplicate must be rejected"),
    }

    // Tenant A's task completes; the instance re-plans around the rest.
    println!("event: task 1 completes and deregisters");
    registry.deregister_task(1).expect("deregister");
    corpora.remove(&1);
    plan(&registry, &cluster, &corpora);

    // A burst of LoRA tasks arrives; backbone memory is shared, so the
    // instance absorbs them all.
    println!("event: burst of 5 more LoRA tasks (ids 10..14)");
    for id in 10..15 {
        registry
            .register_task(PeftTask::lora(id, 16, 2, 64))
            .expect("register");
        corpora.insert(
            id,
            Corpus::generate(DatasetKind::Sst2, 8, id as u64).lengths,
        );
    }
    plan(&registry, &cluster, &corpora);
    println!(
        "instance generation counter: {} (each arrival/departure bumps it; the backbone was never rebuilt)",
        registry.generation()
    );
}
