//! Quickstart: co-schedule four LoRA fine-tuning tasks on one shared
//! LLaMA2-7B backbone across a 4-GPU pipeline, and compare against running
//! them one-by-one (the single-task-framework deployment model).
//!
//! Run with: `cargo run --release --example quickstart`

use std::collections::BTreeMap;

use muxtune::prelude::*;

fn main() {
    // 1. An in-flight instance: one frozen backbone, shared by all tasks.
    //    (Truncated to 16 layers so the example runs in a second or two;
    //    drop `.with_layers(16)` for the full model.)
    let backbone = ModelConfig::llama2_7b().with_layers(16);
    let mut registry = TaskRegistry::new(backbone);

    // 2. Tasks arrive on the fly via the register API — no model rebuild.
    //    Each task picks its own PEFT config, batch size and dataset cap.
    for (id, (rank, micro_batch, seq)) in [
        (16usize, 4usize, 64usize),
        (16, 4, 64),
        (32, 2, 128),
        (8, 8, 128),
    ]
    .iter()
    .enumerate()
    {
        registry
            .register_task(PeftTask::lora(id as TaskId + 1, *rank, *micro_batch, *seq))
            .expect("fresh task id");
    }

    // 3. The hardware: 4 A40s with NVLink, as one pipeline.
    let cluster = Cluster::single_node(GpuSpec::a40(), 4, LinkSpec::nvlink_a40());
    let corpora: BTreeMap<TaskId, Vec<usize>> = registry
        .tasks()
        .map(|t| {
            let kind = if t.seq_len <= 64 {
                DatasetKind::Sst2
            } else {
                DatasetKind::OpenBookQa
            };
            (t.id, Corpus::generate(kind, 64, t.id as u64).lengths)
        })
        .collect();

    // 4. Plan and run: DP task fusion -> hTask grouping -> structured
    //    pipeline template -> Algorithm-1 operator orchestration.
    let cfg = PlannerConfig::muxtune(HybridParallelism::pipeline(4), 4);
    let report = plan_and_run(&registry, &cluster, &corpora, &cfg).expect("runs within memory");

    println!("MuxTune plan:");
    println!(
        "  {} tasks fused into {} hTask(s)",
        registry.len(),
        report.fusion.htasks.len()
    );
    for (i, h) in report.fusion.htasks.iter().enumerate() {
        println!(
            "    hTask {i}: tasks {:?}, {} tokens/micro-batch, unit len {}",
            h.tasks,
            h.total_tokens(),
            h.unit_len
        );
    }
    println!(
        "  {} temporal bucket(s): {:?}",
        report.grouping.buckets.len(),
        report.grouping.buckets
    );
    println!(
        "  planning overhead: {:.1} ms",
        report.planning_seconds * 1e3
    );
    println!("Simulated run:");
    println!(
        "  makespan               {:.1} ms",
        report.metrics.makespan * 1e3
    );
    println!(
        "  throughput             {:.0} tokens/s",
        report.metrics.throughput
    );
    println!(
        "  effective throughput   {:.0} tokens/s",
        report.metrics.effective_throughput
    );
    println!(
        "  mean GPU utilization   {:.1}%",
        report.metrics.mean_utilization * 100.0
    );
    println!("  MFU                    {:.3}", report.metrics.mfu);

    // 5. Baseline: the same four tasks, each on its own instance, run
    //    back-to-back (what HF-PEFT/NeMo deployments do).
    let mut seq_time = 0.0;
    let mut seq_tokens = 0u64;
    for t in registry.tasks() {
        let mut solo = TaskRegistry::new(registry.backbone().clone());
        solo.register_task(t.clone()).expect("solo");
        let r = plan_and_run(&solo, &cluster, &corpora, &cfg).expect("solo run");
        seq_time += r.metrics.makespan;
        seq_tokens += r.metrics.total_tokens;
    }
    let seq_tp = seq_tokens as f64 / seq_time;
    println!("Single-task sequential baseline: {seq_tp:.0} tokens/s");
    println!(
        "MuxTune speedup: {:.2}x",
        report.metrics.throughput / seq_tp
    );
}
