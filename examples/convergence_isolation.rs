//! Convergence-isolation demo on *real* training: three tenants fine-tune
//! different PEFT adapters on one shared frozen backbone, spatially fused
//! (Eq. 1–2), and each follows exactly the trajectory it would follow
//! alone — including when one tenant's run explodes numerically.
//!
//! Run with: `cargo run --release --example convergence_isolation`

use muxtune::peft::backbone::TinyConfig;
use muxtune::peft::isolation::{compare_fused_vs_separate, nan_containment};
use muxtune::peft::trainer::{ExecTask, MultiTaskTrainer, TaskBatch};

fn main() {
    let cfg = TinyConfig::small();

    println!("1. Training three PEFT types fused on one backbone (20 steps)...");
    let mut tasks = vec![
        ExecTask::lora(&cfg, 1, 4, 11, 0.15),
        ExecTask::bottleneck(&cfg, 2, 8, 22, 0.15),
        ExecTask::diff_pruning(&cfg, 3, 0.2, 33, 0.15),
    ];
    let batches = vec![
        TaskBatch::synthetic(101, 4, 8, cfg.vocab),
        TaskBatch::synthetic(102, 4, 8, cfg.vocab),
        TaskBatch::synthetic(103, 4, 8, cfg.vocab),
    ];
    let mut trainer = MultiTaskTrainer::new(cfg, 7);
    let first = trainer.step_fused(&mut tasks, &batches);
    let mut last = first.clone();
    for step in 1..20 {
        last = trainer.step_fused(&mut tasks, &batches);
        if step % 5 == 0 {
            let losses: Vec<String> = last.iter().map(|r| format!("{:.3}", r.loss)).collect();
            println!("   step {step:>2}: losses {losses:?}");
        }
    }
    for (f, l) in first.iter().zip(&last) {
        println!(
            "   task {} ({}): {:.3} -> {:.3} ({})",
            f.task,
            match f.task {
                1 => "LoRA",
                2 => "Adapter-Tuning",
                _ => "Diff-Pruning",
            },
            f.loss,
            l.loss,
            if l.loss < f.loss {
                "converging"
            } else {
                "NOT converging"
            }
        );
    }

    println!("\n2. Fused vs separate trajectories (the Eq. 1-2 isolation claim)...");
    let per_step: Vec<Vec<TaskBatch>> = (0..8)
        .map(|s| {
            vec![
                TaskBatch::synthetic(200 + s, 2, 8, cfg.vocab),
                TaskBatch::synthetic(300 + s, 3, 8, cfg.vocab),
            ]
        })
        .collect();
    let report = compare_fused_vs_separate(
        cfg,
        99,
        || {
            vec![
                ExecTask::lora(&cfg, 1, 4, 1, 0.1),
                ExecTask::bottleneck(&cfg, 2, 8, 2, 0.1),
            ]
        },
        &per_step,
    );
    println!(
        "   worst parameter mean-square deviation after 8 steps: {:.3e}",
        report.worst_msd()
    );
    println!("   (paper reports ~0.07-scale consistency on nondeterministic GPU kernels;");
    println!("    our CPU kernels are deterministic, so fused == separate to float noise)");

    println!("\n3. Failure containment: tenant 1 uses an absurd learning rate...");
    let containment = nan_containment(cfg, 6);
    println!(
        "   sabotaged task diverged: {}",
        containment.bad_task_diverged
    );
    println!(
        "   healthy tasks contaminated: {}",
        containment.healthy_task_contaminated
    );
    println!("   healthy final losses: {:?}", containment.healthy_losses);
    assert!(containment.bad_task_diverged && !containment.healthy_task_contaminated);
    println!("   -> numerical failure stayed inside the failing tenant's adapters.");
}
