//! Cluster-scale demo: replay a Philly-like fine-tuning trace on a
//! simulated 128-GPU cluster under FCFS, comparing MuxTune's multiplexing
//! against single-task scheduling (§5.4, Fig 21b — scaled down so the
//! example finishes in seconds).
//!
//! Run with: `cargo run --release --example cluster_trace`

use muxtune::cluster::calibrate::{calibrate, reference_throughput, Mix};
use muxtune::cluster::sim::{replay_fcfs, ClusterShape};
use muxtune::cluster::trace::{generate, stats};
use muxtune::prelude::*;

fn main() {
    // 1. A synthetic trace matching the published Philly moments.
    let trace = generate(600, 2026, None);
    let (mean, std, rate) = stats(&trace);
    println!("trace: 600 tasks, duration {mean:.0}±{std:.0} min, arrivals {rate:.2}/min");
    println!("       (paper: 372.6±612.9 min at 2.59 tasks/min)");

    // 2. Calibrate per-instance throughput profiles with the real engine
    //    (LLaMA7B on 4-A40 instances; truncated backbone for demo speed).
    let backbone = ModelConfig::llama2_7b().with_layers(16);
    let instance = Cluster::single_node(GpuSpec::a40(), 4, LinkSpec::nvlink_a40());
    let reference = reference_throughput(&backbone, &instance, 4);
    println!("reference rate (NeMo, 1 task alone): {reference:.0} tokens/s");

    let shape = ClusterShape {
        total_gpus: 128,
        gpus_per_instance: 4,
    };
    println!(
        "cluster: {} instances of {} GPUs",
        shape.instances(),
        shape.gpus_per_instance
    );

    for sys in [SystemKind::MuxTune, SystemKind::Nemo] {
        let profile = calibrate(sys, &backbone, &instance, Mix::NonUniform, 4, 4, reference);
        let rep = replay_fcfs(&trace, shape, &profile).expect("valid shape");
        println!(
            "{:<8}: cluster throughput {:.1} (rel. units), mean JCT {:.0} min, mean queueing {:.0} min",
            sys.name(),
            rep.throughput,
            rep.mean_jct_min,
            rep.mean_queue_min
        );
        println!(
            "          instance profile (aggregate rate at 1..{} co-located tasks): {:?}",
            profile.max_colocated,
            profile
                .rate
                .iter()
                .map(|r| (r * 100.0).round() / 100.0)
                .collect::<Vec<_>>()
        );
    }
    println!("\nMuxTune co-locates tasks per instance, so the queue drains faster and");
    println!("cluster throughput rises — the Fig 21(b) effect.");
}
