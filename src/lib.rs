//! # MuxTune
//!
//! A Rust reproduction of *MuxTune: Efficient Multi-Task LLM Fine-Tuning in
//! Multi-Tenant Datacenters via Spatial-Temporal Backbone Multiplexing*
//! (NSDI 2026).
//!
//! MuxTune co-schedules many parameter-efficient fine-tuning (PEFT) tasks
//! that share one frozen LLM backbone, multiplexing the backbone
//! *spatially* (batching tasks inside hybrid tasks) and *temporally*
//! (interleaving hybrid tasks to hide pipeline and communication stalls).
//!
//! This umbrella crate re-exports the full workspace:
//!
//! * [`tensor`] — f32 CPU tensors + autograd (real-training substrate);
//! * [`model`] — transformer graphs, FLOPs/bytes/memory accounting;
//! * [`peft`] — PEFT modularization, LoRA / Adapter-Tuning / Diff-Pruning,
//!   dynamic task registry, isolation proofs by execution;
//! * [`gpu_sim`] — the discrete-event GPU/interconnect simulator;
//! * [`parallel`] — TP/PP/DP strategies and pipeline schedules;
//! * [`data`] — corpora, packing, chunk-based alignment;
//! * [`core`] — hTask fusion, cost model, orchestration, the engine;
//! * [`baselines`] — HF-PEFT, NeMo, SL-PEFT strategies;
//! * [`cluster`] — trace generation and cluster-level replay;
//! * [`api`] — the fine-tuning service front end (job lifecycle, dispatch,
//!   online monitoring, fault injection/recovery, replayable event journal);
//! * [`chaos`] — seeded fault plans and the deterministic-simulation-test
//!   harness (same seed ⇒ bitwise-identical journal);
//! * [`workload`] — seeded multi-tenant trace generation (diurnal Poisson
//!   arrivals, bounded-Pareto sizes, SLOs, churn) and policy-driven
//!   end-to-end trace replay with fairness/SLO reporting;
//! * [`obs`] — the observability registry (phases, counters, gauges,
//!   histograms, Prometheus exposition);
//! * [`obs_analysis`] — critical-path extraction, 4-class stall
//!   attribution, and perf-regression baselines.
//!
//! ## Quickstart
//!
//! ```
//! use muxtune::prelude::*;
//! use std::collections::BTreeMap;
//!
//! // An instance: LLaMA2-7B backbone (truncated for the doctest) on 4 A40s.
//! let mut registry = TaskRegistry::new(ModelConfig::llama2_7b().with_layers(8));
//! for id in 1..=4 {
//!     registry.register_task(PeftTask::lora(id, 16, 4, 128)).unwrap();
//! }
//! let cluster = Cluster::single_node(GpuSpec::a40(), 4, LinkSpec::nvlink_a40());
//! let cfg = PlannerConfig::muxtune(HybridParallelism::pipeline(4), 4);
//! let report = plan_and_run(&registry, &cluster, &BTreeMap::new(), &cfg).unwrap();
//! assert!(report.metrics.throughput > 0.0);
//! ```

pub use mux_api as api;
pub use mux_baselines as baselines;
pub use mux_chaos as chaos;
pub use mux_cluster as cluster;
pub use mux_data as data;
pub use mux_gpu_sim as gpu_sim;
pub use mux_model as model;
pub use mux_obs as obs;
pub use mux_obs_analysis as obs_analysis;
pub use mux_parallel as parallel;
pub use mux_peft as peft;
pub use mux_tensor as tensor;
pub use mux_workload as workload;
pub use muxtune_core as core;

/// The most common imports for driving MuxTune end to end.
pub mod prelude {
    pub use mux_api::{
        DispatchPolicy, FineTuneService, JobSpec, JobState, Journal, MonitorConfig, ReplanMode,
        RequestSpec, ServiceConfig, ServiceFault, ServingConfig, ServingPolicy, TelemetrySummary,
    };
    pub use mux_baselines::runner::{run_system, SystemKind};
    pub use mux_chaos::{run_chaos, DstConfig, DstRun, FaultPlan};
    pub use mux_data::align::AlignStrategy;
    pub use mux_data::corpus::{Corpus, DatasetKind};
    pub use mux_gpu_sim::spec::{GpuSpec, LinkSpec};
    pub use mux_gpu_sim::timeline::Cluster;
    pub use mux_gpu_sim::PhaseModel;
    pub use mux_model::config::ModelConfig;
    pub use mux_parallel::plan::HybridParallelism;
    pub use mux_peft::registry::TaskRegistry;
    pub use mux_peft::types::{PeftTask, PeftType, TaskId};
    pub use muxtune_core::planner::{plan_and_run, MuxTuneReport, PlannerConfig};
    pub use muxtune_core::{EngineOptions, FusionPolicy, HTask, RunMetrics};
}
