//! Offline stand-in for `serde_json`.
//!
//! The build environment has no registry access, so this workspace vendors a
//! small, std-only JSON implementation that is API-compatible with the
//! subset of `serde_json` the repo uses: the dynamic [`Value`] tree, the
//! [`json!`] literal macro, [`to_string`] / [`to_string_pretty`], and
//! [`from_str`]. There is no `Serialize`/`Deserialize` trait machinery —
//! structured output goes through `Value` explicitly.

use std::collections::BTreeMap;
use std::fmt;

/// Object representation. `serde_json::Map` preserves-or-sorts depending on
/// features; this shim always sorts (BTreeMap), which keeps artifact JSON
/// deterministic — a property the golden-trace tests rely on.
pub type Map = BTreeMap<String, Value>;

/// A JSON number: integers stay integers so traces and artifacts print
/// without a spurious `.0`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// Signed integer.
    Int(i64),
    /// Unsigned integer too large for `i64`.
    UInt(u64),
    /// Finite float.
    Float(f64),
}

impl Number {
    /// The value as an `f64` (lossy for huge integers).
    pub fn as_f64(&self) -> f64 {
        match *self {
            Number::Int(v) => v as f64,
            Number::UInt(v) => v as f64,
            Number::Float(v) => v,
        }
    }
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Number::Int(v) => write!(f, "{v}"),
            Number::UInt(v) => write!(f, "{v}"),
            Number::Float(v) => {
                if v.is_finite() {
                    if v == v.trunc() && v.abs() < 1e15 {
                        write!(f, "{v:.1}")
                    } else {
                        write!(f, "{v}")
                    }
                } else {
                    // JSON has no NaN/inf; serde_json errors here, we emit null.
                    write!(f, "null")
                }
            }
        }
    }
}

/// A JSON value tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number.
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object (sorted keys).
    Object(Map),
}

impl Value {
    /// Borrow as `f64` if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    /// Borrow as `u64` if an unsigned integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(Number::Int(v)) if *v >= 0 => Some(*v as u64),
            Value::Number(Number::UInt(v)) => Some(*v),
            _ => None,
        }
    }

    /// Borrow as `bool` if a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Borrow as `&str` if a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Borrow as an array if one.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Borrow as an object if one.
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Object field lookup (`None` for non-objects / missing keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|m| m.get(key))
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        static NULL: Value = Value::Null;
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, i: usize) -> &Value {
        static NULL: Value = Value::Null;
        self.as_array().and_then(|a| a.get(i)).unwrap_or(&NULL)
    }
}

macro_rules! from_int {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Self { Value::Number(Number::Int(v as i64)) }
        }
    )*};
}
from_int!(i8, i16, i32, i64, u8, u16, u32, isize);

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        if v <= i64::MAX as u64 {
            Value::Number(Number::Int(v as i64))
        } else {
            Value::Number(Number::UInt(v))
        }
    }
}
impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::from(v as u64)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Number(Number::Float(v))
    }
}
impl From<f32> for Value {
    fn from(v: f32) -> Self {
        Value::Number(Number::Float(v as f64))
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::String(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::String(v.to_string())
    }
}
impl From<&String> for Value {
    fn from(v: &String) -> Self {
        Value::String(v.clone())
    }
}
impl From<Map> for Value {
    fn from(v: Map) -> Self {
        Value::Object(v)
    }
}
impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Self {
        Value::Array(v.into_iter().map(Into::into).collect())
    }
}
impl<T: Into<Value> + Clone> From<&[T]> for Value {
    fn from(v: &[T]) -> Self {
        Value::Array(v.iter().cloned().map(Into::into).collect())
    }
}
impl From<()> for Value {
    fn from(_: ()) -> Self {
        Value::Null
    }
}
/// By-reference conversion used by the `json!` macro. Upstream `json!`
/// serializes expression operands from a reference (so a `String` field
/// mentioned in a loop isn't moved out); mirror that by cloning.
pub trait ToValue {
    /// Converts `self` to a [`Value`] without consuming it.
    fn to_value(&self) -> Value;
}

impl<T: Clone + Into<Value>> ToValue for T {
    fn to_value(&self) -> Value {
        self.clone().into()
    }
}

impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(v: Option<T>) -> Self {
        v.map(Into::into).unwrap_or(Value::Null)
    }
}

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_value(v: &Value, out: &mut String, indent: Option<usize>, level: usize) {
    let (nl, pad, pad_close, sep) = match indent {
        Some(w) => (
            "\n",
            " ".repeat(w * (level + 1)),
            " ".repeat(w * level),
            ": ",
        ),
        None => ("", String::new(), String::new(), ":"),
    };
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => out.push_str(&n.to_string()),
        Value::String(s) => escape_into(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(nl);
                out.push_str(&pad);
                write_value(item, out, indent, level + 1);
            }
            out.push_str(nl);
            out.push_str(&pad_close);
            out.push(']');
        }
        Value::Object(map) => {
            if map.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(nl);
                out.push_str(&pad);
                escape_into(k, out);
                out.push_str(sep);
                write_value(val, out, indent, level + 1);
            }
            out.push_str(nl);
            out.push_str(&pad_close);
            out.push('}');
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = String::new();
        write_value(self, &mut s, None, 0);
        f.write_str(&s)
    }
}

/// Serialization error (infallible for `Value`, kept for API parity).
#[derive(Debug)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Compact serialization of a [`Value`].
pub fn to_string(v: &Value) -> Result<String, Error> {
    Ok(v.to_string())
}

/// Pretty (2-space indented) serialization of a [`Value`].
pub fn to_string_pretty(v: &Value) -> Result<String, Error> {
    let mut s = String::new();
    write_value(v, &mut s, Some(2), 0);
    Ok(s)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8, what: &str) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(what))
        }
    }

    fn eat_lit(&mut self, lit: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.eat(b'"', "expected string")?;
        let mut s = String::new();
        loop {
            match self.peek().ok_or_else(|| self.err("unterminated string"))? {
                b'"' => {
                    self.pos += 1;
                    return Ok(s);
                }
                b'\\' => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| self.err("bad \\u"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| self.err("bad \\u"))?,
                                16,
                            )
                            .map_err(|_| self.err("bad \\u"))?;
                            self.pos += 4;
                            // Surrogate pairs are not produced by our writer;
                            // map lone surrogates to the replacement char.
                            s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => {
                    // Consume one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    let c = rest.chars().next().ok_or_else(|| self.err("eof"))?;
                    s.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' | b'-' | b'+' => self.pos += 1,
                b'.' | b'e' | b'E' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Number(Number::Int(i)));
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::Number(Number::UInt(u)));
            }
        }
        text.parse::<f64>()
            .map(|f| Value::Number(Number::Float(f)))
            .map_err(|_| self.err("invalid number"))
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek().ok_or_else(|| self.err("unexpected eof"))? {
            b'n' => self.eat_lit("null", Value::Null),
            b't' => self.eat_lit("true", Value::Bool(true)),
            b'f' => self.eat_lit("false", Value::Bool(false)),
            b'"' => Ok(Value::String(self.parse_string()?)),
            b'[' => {
                self.pos += 1;
                let mut items = Vec::new();
                loop {
                    self.skip_ws();
                    if self.peek() == Some(b']') {
                        self.pos += 1;
                        return Ok(Value::Array(items));
                    }
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {}
                        _ => return Err(self.err("expected , or ]")),
                    }
                }
            }
            b'{' => {
                self.pos += 1;
                let mut map = Map::new();
                loop {
                    self.skip_ws();
                    if self.peek() == Some(b'}') {
                        self.pos += 1;
                        return Ok(Value::Object(map));
                    }
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.eat(b':', "expected :")?;
                    let val = self.parse_value()?;
                    map.insert(key, val);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {}
                        _ => return Err(self.err("expected , or }")),
                    }
                }
            }
            _ => self.parse_number(),
        }
    }
}

/// Parses a JSON document into a [`Value`].
pub fn from_str(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing garbage"));
    }
    Ok(v)
}

/// Builds a [`Value`] from a JSON-like literal, mirroring `serde_json::json!`.
///
/// Supports object literals with string-literal keys, array literals, and
/// arbitrary expressions convertible via `Into<Value>`.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($tt:tt)* ]) => {{
        #[allow(unused_mut, clippy::vec_init_then_push)]
        let arr: Vec<$crate::Value> = {
            let mut arr = Vec::new();
            $crate::json_array!(arr, $($tt)*);
            arr
        };
        $crate::Value::Array(arr)
    }};
    ({ $($tt:tt)* }) => {{
        #[allow(unused_mut)]
        let mut map = $crate::Map::new();
        $crate::json_object!(map, $($tt)*);
        $crate::Value::Object(map)
    }};
    ($other:expr) => { $crate::Value::from($other) };
}

/// Internal: parses the body of a `json!` object literal.
#[macro_export]
#[doc(hidden)]
macro_rules! json_object {
    ($map:ident,) => {};
    ($map:ident) => {};
    ($map:ident, $k:literal : null $(, $($rest:tt)*)?) => {
        $map.insert($k.to_string(), $crate::Value::Null);
        $crate::json_object!($map, $($($rest)*)?);
    };
    ($map:ident, $k:literal : { $($v:tt)* } $(, $($rest:tt)*)?) => {
        $map.insert($k.to_string(), $crate::json!({ $($v)* }));
        $crate::json_object!($map, $($($rest)*)?);
    };
    ($map:ident, $k:literal : [ $($v:tt)* ] $(, $($rest:tt)*)?) => {
        $map.insert($k.to_string(), $crate::json!([ $($v)* ]));
        $crate::json_object!($map, $($($rest)*)?);
    };
    ($map:ident, $k:literal : $v:expr $(, $($rest:tt)*)?) => {
        $map.insert($k.to_string(), $crate::ToValue::to_value(&$v));
        $crate::json_object!($map, $($($rest)*)?);
    };
}

/// Internal: parses the body of a `json!` array literal.
#[macro_export]
#[doc(hidden)]
macro_rules! json_array {
    ($arr:ident,) => {};
    ($arr:ident) => {};
    ($arr:ident, null $(, $($rest:tt)*)?) => {
        $arr.push($crate::Value::Null);
        $crate::json_array!($arr, $($($rest)*)?);
    };
    ($arr:ident, { $($v:tt)* } $(, $($rest:tt)*)?) => {
        $arr.push($crate::json!({ $($v)* }));
        $crate::json_array!($arr, $($($rest)*)?);
    };
    ($arr:ident, [ $($v:tt)* ] $(, $($rest:tt)*)?) => {
        $arr.push($crate::json!([ $($v)* ]));
        $crate::json_array!($arr, $($($rest)*)?);
    };
    ($arr:ident, $v:expr $(, $($rest:tt)*)?) => {
        $arr.push($crate::ToValue::to_value(&$v));
        $crate::json_array!($arr, $($($rest)*)?);
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_macro_builds_nested_values() {
        let v = json!({
            "name": "fig",
            "n": 3,
            "ratio": 1.5,
            "nested": { "ok": true, "xs": [1, 2, 3] },
            "arr": [{ "a": 1 }, "s", 2.0],
        });
        assert_eq!(v["name"].as_str(), Some("fig"));
        assert_eq!(v["n"].as_u64(), Some(3));
        assert_eq!(v["nested"]["xs"][2].as_f64(), Some(3.0));
        assert_eq!(v["arr"][0]["a"].as_u64(), Some(1));
    }

    #[test]
    fn roundtrip_compact_and_pretty() {
        let v = json!({ "a": [1, 2.5, "x", null, true], "b": { "c": -7 } });
        for s in [to_string(&v).unwrap(), to_string_pretty(&v).unwrap()] {
            assert_eq!(from_str(&s).unwrap(), v);
        }
    }

    #[test]
    fn integers_print_without_decimal_point() {
        assert_eq!(json!(42u64).to_string(), "42");
        assert_eq!(json!(2.0).to_string(), "2.0");
        assert_eq!(json!(-3i32).to_string(), "-3");
    }

    #[test]
    fn string_escapes_roundtrip() {
        let v = json!({ "s": "a\"b\\c\nd\te" });
        assert_eq!(from_str(&v.to_string()).unwrap(), v);
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(from_str("{\"a\": }").is_err());
        assert!(from_str("[1, 2,] trailing").is_err());
        assert!(from_str("nope").is_err());
    }

    #[test]
    fn trailing_commas_in_arrays_parse() {
        // serde_json rejects these; we accept them (lenient reader, strict
        // writer) — our writer never emits them.
        assert_eq!(from_str("[1, 2,]").unwrap(), json!([1, 2]));
    }
}
