//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no registry access, so this workspace vendors a
//! tiny, deterministic, std-only replacement that is API-compatible with the
//! subset of `rand` 0.8 the repo uses: `StdRng::seed_from_u64`,
//! `Rng::{gen_range, gen_bool, gen}`, and `seq::SliceRandom::{shuffle,
//! choose}`. The generator is SplitMix64 — statistically solid for workload
//! synthesis and bit-reproducible across platforms, which is all the
//! simulator needs.

/// Core RNG interface: a 64-bit word source.
pub trait RngCore {
    /// Next raw 64-bit word.
    fn next_u64(&mut self) -> u64;
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws a value from the range using `rng`.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let r = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                (self.start as i128 + r as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let r = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                (lo as i128 + r as i128) as $t
            }
        }
    )*};
}
int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let u = (rng.next_u64() >> 11) as $t / (1u64 << 53) as $t;
                self.start + (self.end - self.start) * u
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                let u = (rng.next_u64() >> 11) as $t / ((1u64 << 53) - 1) as $t;
                lo + (hi - lo) * u
            }
        }
    )*};
}
float_range!(f32, f64);

/// Types producible by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws a uniformly random value.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}
impl Standard for u32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}
impl Standard for f64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}
impl Standard for f32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 / (1u64 << 24) as f32
    }
}
impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform draw from a (half-open or inclusive) range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        f64::draw(self) < p
    }

    /// Uniform draw of a whole value.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::draw(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds the RNG from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named RNG types, mirroring `rand::rngs`.
pub mod rngs {
    /// Deterministic SplitMix64 generator (stand-in for `rand::rngs::StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl super::RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea, Flood 2014).
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }

    impl super::SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            Self { state: seed }
        }
    }
}

/// Slice sampling helpers, mirroring `rand::seq`.
pub mod seq {
    use super::{Rng, RngCore};

    /// Shuffle/choose extension trait for slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;
        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);
        /// Uniformly random element, `None` on an empty slice.
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_across_instances() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-2.0f32..=2.0);
            assert!((-2.0..=2.0).contains(&f));
            let i = rng.gen_range(-5i32..5);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn gen_bool_respects_probability() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "{hits}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle should move something");
    }
}
