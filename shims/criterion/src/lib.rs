//! Offline stand-in for `criterion`.
//!
//! The build environment has no registry access, so this workspace vendors a
//! minimal, std-only micro-benchmark harness exposing the API subset the
//! bench suite uses: `Criterion::{bench_function, benchmark_group}`,
//! `Bencher::{iter, iter_batched}`, `BatchSize`, and the
//! `criterion_group!` / `criterion_main!` macros.
//!
//! Methodology: a short warm-up, then timed batches until ~0.5 s of samples
//! (bounded iteration count), reporting mean time per iteration. No
//! statistics beyond the mean — this is a smoke-speed harness, not a
//! measurement lab; use it for relative before/after comparisons.

use std::time::{Duration, Instant};

/// Batch sizing hints (accepted for API parity; batches are per-iteration).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration setup.
    SmallInput,
    /// Large per-iteration setup.
    LargeInput,
}

/// Per-benchmark driver passed to the closure of `bench_function`.
pub struct Bencher {
    total: Duration,
    iters: u64,
}

impl Bencher {
    /// Times `f` repeatedly.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // Warm-up.
        for _ in 0..3 {
            std::hint::black_box(f());
        }
        let mut iters = 0u64;
        let budget = Duration::from_millis(500);
        let start = Instant::now();
        while start.elapsed() < budget && iters < 10_000 {
            std::hint::black_box(f());
            iters += 1;
        }
        self.total = start.elapsed();
        self.iters = iters.max(1);
    }

    /// Times `f` with fresh input from `setup` each iteration (setup time
    /// excluded).
    pub fn iter_batched<I, R, S: FnMut() -> I, F: FnMut(I) -> R>(
        &mut self,
        mut setup: S,
        mut f: F,
        _size: BatchSize,
    ) {
        for _ in 0..3 {
            std::hint::black_box(f(setup()));
        }
        let mut iters = 0u64;
        let mut timed = Duration::ZERO;
        let budget = Duration::from_millis(500);
        let wall = Instant::now();
        while wall.elapsed() < budget && iters < 10_000 {
            let input = setup();
            let t = Instant::now();
            std::hint::black_box(f(input));
            timed += t.elapsed();
            iters += 1;
        }
        self.total = timed;
        self.iters = iters.max(1);
    }
}

fn report(name: &str, b: &Bencher) {
    let per = b.total.as_secs_f64() / b.iters as f64;
    let (value, unit) = if per >= 1.0 {
        (per, "s")
    } else if per >= 1e-3 {
        (per * 1e3, "ms")
    } else if per >= 1e-6 {
        (per * 1e6, "µs")
    } else {
        (per * 1e9, "ns")
    };
    println!(
        "bench {name:<44} {value:>10.3} {unit}/iter ({} iters)",
        b.iters
    );
}

/// Top-level benchmark context, mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion;

impl Criterion {
    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl Into<String>,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher {
            total: Duration::ZERO,
            iters: 0,
        };
        f(&mut b);
        report(&name.into(), &b);
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _c: self,
        }
    }
}

/// A named group, mirroring `criterion::BenchmarkGroup`.
pub struct BenchmarkGroup<'a> {
    name: String,
    _c: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Runs one named benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl Into<String>,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher {
            total: Duration::ZERO,
            iters: 0,
        };
        f(&mut b);
        report(&format!("{}/{}", self.name, name.into()), &b);
        self
    }

    /// Ends the group (no-op; kept for API parity).
    pub fn finish(&mut self) {}
}

/// Declares a group of benchmark functions, mirroring `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the bench entry point, mirroring `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
    }

    #[test]
    fn harness_runs_and_reports() {
        let mut c = Criterion;
        quick(&mut c);
        let mut g = c.benchmark_group("g");
        g.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput)
        });
        g.finish();
    }
}
