//! Offline stand-in for `rayon`.
//!
//! The build environment has no registry access, so this workspace vendors a
//! minimal, std-only replacement covering the subset the benches use:
//! `slice.par_iter().map(f).collect::<Vec<_>>()`. The implementation fans the
//! input out across `std::thread::scope` workers in contiguous chunks and
//! reassembles results in order — semantically identical to rayon for pure
//! `map`, minus work stealing.

/// A parallel iterator over a slice.
pub struct ParIter<'a, T> {
    items: &'a [T],
}

impl<'a, T: Sync> ParIter<'a, T> {
    /// Maps each item through `f` (runs at `collect` time).
    pub fn map<U, F: Fn(&'a T) -> U + Sync>(self, f: F) -> ParMap<'a, T, F> {
        ParMap {
            items: self.items,
            f,
        }
    }
}

/// The result of [`ParIter::map`], awaiting collection.
pub struct ParMap<'a, T, F> {
    items: &'a [T],
    f: F,
}

impl<'a, T: Sync, F> ParMap<'a, T, F> {
    /// Runs the map across available parallelism and collects in order.
    pub fn collect<C>(self) -> C
    where
        F: Fn(&'a T) -> C::Item + Sync,
        C: FromParallel,
        C::Item: Send,
    {
        let n = self.items.len();
        let workers = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
            .min(n.max(1));
        let mut out: Vec<Option<C::Item>> = (0..n).map(|_| None).collect();
        if n > 0 {
            let chunk = n.div_ceil(workers);
            let f = &self.f;
            let items = self.items;
            std::thread::scope(|scope| {
                for (ci, slot) in out.chunks_mut(chunk).enumerate() {
                    let start = ci * chunk;
                    scope.spawn(move || {
                        for (i, s) in slot.iter_mut().enumerate() {
                            *s = Some(f(&items[start + i]));
                        }
                    });
                }
            });
        }
        C::from_ordered(out.into_iter().map(|v| v.expect("worker filled slot")))
    }
}

/// Collection targets for [`ParMap::collect`] (only `Vec` is needed here).
pub trait FromParallel {
    /// Element type.
    type Item;
    /// Builds the collection from an ordered iterator.
    fn from_ordered(iter: impl Iterator<Item = Self::Item>) -> Self;
}

impl<T> FromParallel for Vec<T> {
    type Item = T;
    fn from_ordered(iter: impl Iterator<Item = T>) -> Self {
        iter.collect()
    }
}

/// Entry points, mirroring `rayon::prelude::*`.
pub mod prelude {
    use super::ParIter;

    /// Adds `.par_iter()` to slice-like containers.
    pub trait IntoParallelRefIterator<'a> {
        /// Item type.
        type Item: 'a;
        /// A parallel iterator borrowing `self`'s elements.
        fn par_iter(&'a self) -> ParIter<'a, Self::Item>;
    }

    impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
        type Item = T;
        fn par_iter(&'a self) -> ParIter<'a, T> {
            ParIter { items: self }
        }
    }

    impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
        type Item = T;
        fn par_iter(&'a self) -> ParIter<'a, T> {
            ParIter { items: self }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_map_preserves_order() {
        let xs: Vec<usize> = (0..1000).collect();
        let ys: Vec<usize> = xs.par_iter().map(|&x| x * 2).collect();
        assert_eq!(ys, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_input_collects_empty() {
        let xs: Vec<u8> = Vec::new();
        let ys: Vec<u8> = xs.par_iter().map(|&x| x).collect();
        assert!(ys.is_empty());
    }
}
