//! Offline stand-in for `proptest`.
//!
//! The build environment has no registry access, so this workspace vendors a
//! small, std-only property-testing harness that is API-compatible with the
//! subset of `proptest` the repo's tests use: the [`proptest!`] macro with
//! `#![proptest_config(...)]`, range / collection / sample / option / tuple
//! strategies, `prop_map`, [`prop_oneof!`], `any::<T>()`, and the
//! `prop_assert*` / `prop_assume!` macros.
//!
//! Differences from real proptest, by design:
//! * **no shrinking** — a failure reports the generated inputs verbatim;
//! * **derandomized** — cases are generated from a fixed seed (overridable
//!   via `MUX_PROPTEST_SEED`), so CI failures always reproduce locally.

use std::fmt;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Test-case failure or rejection, mirroring `proptest::test_runner::TestCaseError`.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// Assertion failure with a message.
    Fail(String),
    /// Case rejected by `prop_assume!` — retried, not failed.
    Reject(String),
}

impl TestCaseError {
    /// Constructs a failure.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// Constructs a rejection.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "test case failed: {m}"),
            TestCaseError::Reject(m) => write!(f, "test case rejected: {m}"),
        }
    }
}

/// Runner configuration, mirroring `proptest::test_runner::Config`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted cases to run per property.
    pub cases: u32,
    /// Give up after this many `prop_assume!` rejections.
    pub max_global_rejects: u32,
}

impl ProptestConfig {
    /// Config running `cases` accepted cases.
    pub fn with_cases(cases: u32) -> Self {
        Self {
            cases,
            ..Self::default()
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self {
            cases: 256,
            max_global_rejects: 65_536,
        }
    }
}

/// A generator of random values (no shrinking).
pub trait Strategy {
    /// Generated value type.
    type Value: fmt::Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U: fmt::Debug, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (used by [`prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// Boxed, type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

impl<T: fmt::Debug> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        self.0.generate(rng)
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U: fmt::Debug, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut StdRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Weighted union of boxed strategies (backs [`prop_oneof!`]).
pub struct Union<T>(pub Vec<BoxedStrategy<T>>);

impl<T: fmt::Debug> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        assert!(!self.0.is_empty(), "empty prop_oneof!");
        let i = rng.gen_range(0..self.0.len());
        self.0[i].generate(rng)
    }
}

macro_rules! int_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
int_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

/// Constant "strategy": a plain value generates itself. This mirrors
/// proptest's `Just` under the only uses the workspace has (selection lists
/// are expressed through `prop::sample::select`).
pub struct Just<T: Clone + fmt::Debug>(pub T);

impl<T: Clone + fmt::Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

macro_rules! tuple_strategies {
    ($(($($s:ident / $i:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$i.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategies! {
    (A/0)
    (A/0, B/1)
    (A/0, B/1, C/2)
    (A/0, B/1, C/2, D/3)
    (A/0, B/1, C/2, D/3, E/4)
    (A/0, B/1, C/2, D/3, E/4, F/5)
}

/// `any::<T>()` support, mirroring `proptest::arbitrary`.
pub trait Arbitrary: Sized + fmt::Debug {
    /// Strategy generating uniformly random values of `Self`.
    fn any_strategy() -> AnyStrategy<Self>;
}

/// Marker strategy returned by [`any`].
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

macro_rules! arbitrary_uniform {
    ($($t:ty => $gen:expr),* $(,)?) => {$(
        impl Arbitrary for $t {
            fn any_strategy() -> AnyStrategy<$t> {
                AnyStrategy(std::marker::PhantomData)
            }
        }
        impl Strategy for AnyStrategy<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                let f: fn(&mut StdRng) -> $t = $gen;
                f(rng)
            }
        }
    )*};
}
arbitrary_uniform! {
    u8 => |r| (r.gen::<u64>() & 0xff) as u8,
    u16 => |r| (r.gen::<u64>() & 0xffff) as u16,
    u32 => |r| r.gen::<u32>(),
    u64 => |r| r.gen::<u64>(),
    usize => |r| r.gen::<u64>() as usize,
    i8 => |r| (r.gen::<u64>() & 0xff) as i8,
    i16 => |r| (r.gen::<u64>() & 0xffff) as i16,
    i32 => |r| r.gen::<u32>() as i32,
    i64 => |r| r.gen::<u64>() as i64,
    isize => |r| r.gen::<u64>() as isize,
    bool => |r| r.gen::<u64>() & 1 == 1,
    f32 => |r| r.gen::<f32>(),
    f64 => |r| r.gen::<f64>(),
}

/// Uniform strategy over all values of `T`, mirroring `proptest::prelude::any`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    T::any_strategy()
}

/// The `prop::` strategy namespace.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::*;

        /// Strategy for `Vec`s with random length in `len`.
        pub struct VecStrategy<S> {
            element: S,
            min: usize,
            max: usize,
        }

        /// `Vec` of `element` values with a length drawn from `len`
        /// (mirrors `prop::collection::vec`).
        pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
            assert!(len.start < len.end, "empty length range");
            VecStrategy {
                element,
                min: len.start,
                max: len.end,
            }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
                let n = rng.gen_range(self.min..self.max);
                (0..n).map(|_| self.element.generate(rng)).collect()
            }
        }
    }

    /// Sampling strategies.
    pub mod sample {
        use super::super::*;

        /// Strategy choosing uniformly from a fixed list.
        pub struct Select<T: Clone + fmt::Debug>(Vec<T>);

        /// Uniform choice from `options` (mirrors `prop::sample::select`).
        pub fn select<T: Clone + fmt::Debug>(options: Vec<T>) -> Select<T> {
            assert!(!options.is_empty(), "empty select list");
            Select(options)
        }

        impl<T: Clone + fmt::Debug> Strategy for Select<T> {
            type Value = T;
            fn generate(&self, rng: &mut StdRng) -> T {
                self.0[rng.gen_range(0..self.0.len())].clone()
            }
        }
    }

    /// Option strategies.
    pub mod option {
        use super::super::*;

        /// Strategy for `Option<T>` (`None` 25% of the time, like proptest's
        /// default weight).
        pub struct OptionStrategy<S>(S);

        /// `Some(inner)` 75% / `None` 25% (mirrors `prop::option::of`).
        pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
            OptionStrategy(inner)
        }

        impl<S: Strategy> Strategy for OptionStrategy<S> {
            type Value = Option<S::Value>;
            fn generate(&self, rng: &mut StdRng) -> Option<S::Value> {
                if rng.gen_range(0..4usize) == 0 {
                    None
                } else {
                    Some(self.0.generate(rng))
                }
            }
        }
    }
}

/// Everything a test file needs, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError,
    };
}

/// Runs one property: draws inputs from `strategy`, passes them to `body`,
/// retries rejected cases, panics on the first failure (inputs included).
pub fn run_property<S: Strategy>(
    name: &str,
    config: &ProptestConfig,
    strategy: &S,
    body: impl Fn(S::Value) -> Result<(), TestCaseError>,
) {
    let seed = std::env::var("MUX_PROPTEST_SEED")
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
        .unwrap_or(0x6d75_7874_756e_6531);
    // Derive a per-property stream so properties are independent.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h = (h ^ b as u64).wrapping_mul(0x1000_0000_01b3);
    }
    let mut rng = StdRng::seed_from_u64(seed ^ h);
    let mut accepted = 0u32;
    let mut rejected = 0u32;
    while accepted < config.cases {
        let value = strategy.generate(&mut rng);
        let shown = format!("{value:?}");
        match body(value) {
            Ok(()) => accepted += 1,
            Err(TestCaseError::Reject(_)) => {
                rejected += 1;
                if rejected > config.max_global_rejects {
                    panic!("property {name}: too many prop_assume! rejections ({rejected})");
                }
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!(
                    "property {name} failed after {accepted} passing case(s)\n  inputs: {shown}\n  {msg}\n  (seed: set MUX_PROPTEST_SEED={seed} to reproduce)"
                );
            }
        }
    }
}

/// Fails the current property case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} ({}:{})",
                stringify!($cond), file!(), line!()
            )));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} ({}:{}): {}",
                stringify!($cond), file!(), line!(), format!($($fmt)*)
            )));
        }
    };
}

/// Fails the current property case unless `a == b`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (va, vb) = (&$a, &$b);
        $crate::prop_assert!(va == vb, "{va:?} != {vb:?}");
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (va, vb) = (&$a, &$b);
        $crate::prop_assert!(va == vb, "{va:?} != {vb:?}: {}", format!($($fmt)*));
    }};
}

/// Fails the current property case unless `a != b`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (va, vb) = (&$a, &$b);
        $crate::prop_assert!(va != vb, "{va:?} == {vb:?}");
    }};
}

/// Rejects (skips and retries) the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}

/// Uniform choice between heterogeneous strategies of one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

/// Defines property tests, mirroring `proptest::proptest!`.
///
/// The `#[test]` attribute test files write inside the macro body is
/// captured by the generic attribute matcher and re-emitted verbatim.
#[macro_export]
macro_rules! proptest {
    (@cfg ($config:expr)) => {};
    (
        @cfg ($config:expr)
        $(#[$attr:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$attr])*
        fn $name() {
            let strategy = ($($strategy,)+);
            $crate::run_property(
                stringify!($name),
                &$config,
                &strategy,
                |($($arg,)+)| {
                    $body
                    Ok(())
                },
            );
        }
        $crate::proptest!(@cfg ($config) $($rest)*);
    };
    // With a config header.
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@cfg ($config) $($rest)*);
    };
    // Without one.
    ($($rest:tt)+) => {
        $crate::proptest!(@cfg ($crate::ProptestConfig::default()) $($rest)+);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 1usize..10, y in 0.5f64..2.0) {
            prop_assert!((1..10).contains(&x));
            prop_assert!((0.5..2.0).contains(&y));
        }

        #[test]
        fn vec_strategy_respects_length(v in prop::collection::vec(0u8..=255, 1..20)) {
            prop_assert!(!v.is_empty() && v.len() < 20);
        }

        #[test]
        fn select_picks_from_list(c in prop::sample::select(vec![2usize, 4, 8])) {
            prop_assert!([2, 4, 8].contains(&c));
        }

        #[test]
        fn assume_retries(x in 0usize..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }

        #[test]
        fn oneof_and_prop_map_compose(
            v in prop_oneof![
                (0usize..4).prop_map(|x| x * 2),
                prop::sample::select(vec![100usize, 200]),
            ]
        ) {
            prop_assert!(v % 2 == 0);
        }
    }

    #[test]
    #[should_panic(expected = "property")]
    fn failures_panic_with_inputs() {
        crate::run_property(
            "always_fails",
            &ProptestConfig::with_cases(4),
            &(0usize..10,),
            |(_x,)| Err(TestCaseError::fail("nope")),
        );
    }
}
