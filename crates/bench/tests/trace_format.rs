//! Validates the Chrome-trace JSON emitted for the Fig-14 scenario —
//! the same artifact `report --trace-out` writes. The contract: the JSON
//! round-trips through the parser, every device exposes at least three
//! streams (compute / communication / stall lanes), and compute,
//! collective, and stall categories are all present and distinct.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::OnceLock;

use mux_bench::harness::fig14_trace_scenario;
use mux_gpu_sim::chrome_trace;
use serde_json::Value;

/// The scenario is a full planner run; compute it once for all tests.
fn trace() -> &'static (Value, usize, f64) {
    static TRACE: OnceLock<(Value, usize, f64)> = OnceLock::new();
    TRACE.get_or_init(|| {
        let (report, ops, num_devices) = fig14_trace_scenario();
        (
            chrome_trace(&ops, num_devices),
            num_devices,
            report.metrics.makespan,
        )
    })
}

#[test]
fn fig14_trace_is_valid_chrome_trace_json() {
    let (value, _, _) = &trace();
    // Serialize and parse back: what the viewer loads is what we checked.
    let text = serde_json::to_string_pretty(value).expect("serializes");
    let parsed: Value = serde_json::from_str(&text).expect("round-trips through the parser");
    assert_eq!(&parsed, value, "serialization must round-trip losslessly");

    let events = parsed["traceEvents"].as_array().expect("traceEvents array");
    assert!(!events.is_empty(), "trace has events");
    for e in events {
        let ph = e["ph"].as_str().expect("ph is a string");
        match ph {
            "X" => {
                assert!(e["ts"].as_f64().expect("ts") >= 0.0);
                assert!(e["dur"].as_f64().expect("dur") >= 0.0);
                assert!(e["pid"].as_u64().is_some(), "pid present");
                assert!(e["tid"].as_u64().is_some(), "tid present");
                assert!(e["name"].as_str().is_some(), "name present");
                assert!(e["cat"].as_str().is_some(), "cat present");
            }
            "M" => {
                let name = e["name"].as_str().expect("metadata name");
                assert!(
                    name == "process_name" || name == "thread_name",
                    "unexpected metadata record {name}"
                );
            }
            other => panic!("unexpected phase {other}"),
        }
    }
}

#[test]
fn fig14_trace_has_three_streams_and_distinct_categories_per_device() {
    let (value, num_devices, makespan) = &trace();
    let events = value["traceEvents"].as_array().expect("traceEvents array");

    let mut streams: BTreeMap<u64, BTreeSet<u64>> = BTreeMap::new();
    let mut cats: BTreeSet<String> = BTreeSet::new();
    let mut end_max = 0.0f64;
    for e in events.iter().filter(|e| e["ph"].as_str() == Some("X")) {
        let pid = e["pid"].as_u64().expect("pid");
        streams
            .entry(pid)
            .or_default()
            .insert(e["tid"].as_u64().expect("tid"));
        cats.insert(e["cat"].as_str().expect("cat").to_string());
        end_max = end_max.max(e["ts"].as_f64().expect("ts") + e["dur"].as_f64().expect("dur"));
    }

    // Every device appears, each with >= 3 streams.
    assert_eq!(streams.len(), *num_devices, "one pid per device");
    for (pid, tids) in &streams {
        assert!(
            tids.len() >= 3,
            "device {pid} exposes only streams {tids:?}, need >= 3"
        );
    }

    // The categories the paper's timeline distinguishes are all present.
    for required in ["compute", "collective", "stall"] {
        assert!(
            cats.contains(required),
            "missing category {required} (have {cats:?})"
        );
    }
    // tp=2 x pp=2 also exercises inter-stage point-to-point transfers.
    assert!(
        cats.contains("p2p"),
        "tp2xpp2 scenario should carry p2p events"
    );

    // Event times are microseconds; the last event must land on the
    // reported makespan (seconds), within rounding.
    assert!(
        (end_max / 1e6 - makespan).abs() < 1e-3,
        "trace ends at {end_max} us but makespan is {makespan} s"
    );
}

#[test]
fn fig14_trace_names_every_device_and_stream() {
    let (value, num_devices, _) = &trace();
    let events = value["traceEvents"].as_array().expect("traceEvents array");
    let process_names: BTreeSet<u64> = events
        .iter()
        .filter(|e| e["ph"].as_str() == Some("M") && e["name"].as_str() == Some("process_name"))
        .map(|e| e["pid"].as_u64().expect("pid"))
        .collect();
    assert_eq!(
        process_names.len(),
        *num_devices,
        "every device has a process_name record"
    );

    // Every (pid, tid) that carries events also carries a thread_name.
    let named: BTreeSet<(u64, u64)> = events
        .iter()
        .filter(|e| e["ph"].as_str() == Some("M") && e["name"].as_str() == Some("thread_name"))
        .map(|e| {
            (
                e["pid"].as_u64().expect("pid"),
                e["tid"].as_u64().expect("tid"),
            )
        })
        .collect();
    for e in events.iter().filter(|e| e["ph"].as_str() == Some("X")) {
        let key = (
            e["pid"].as_u64().expect("pid"),
            e["tid"].as_u64().expect("tid"),
        );
        assert!(
            named.contains(&key),
            "stream {key:?} carries events but has no thread_name"
        );
    }
}
