//! Regenerates a markdown experiment report from the JSON artifacts the
//! figure benches write to `target/experiments/`.
//!
//! Usage: run `cargo bench --workspace` first, then
//! `cargo run -p mux-bench --bin report [output.md] [--trace-out trace.json]`.
//!
//! `--trace-out` additionally runs the Fig-14 Testbed-A scenario with
//! tracing on and writes its timeline as chrome://tracing JSON (open in
//! `chrome://tracing` or Perfetto), plus a planner phase/stall summary to
//! stdout.

use std::fs;
use std::path::PathBuf;

use mux_bench::harness::fig14_trace_scenario;
use mux_gpu_sim::{chrome_trace, stall_breakdown};

/// The experiment ids the bench suite produces, with one-line descriptions,
/// in paper order.
const EXPERIMENTS: &[(&str, &str)] = &[
    ("table1_models", "Table 1 — model configurations"),
    ("fig3_inefficiency", "Fig 3 — PEFT resource inefficiencies"),
    (
        "fig4_stalls",
        "Fig 4 — device stalls under model parallelism",
    ),
    (
        "fig9_tradeoff",
        "Fig 9 — spatial-temporal multiplexing tradeoff",
    ),
    ("fig13_chunk", "Fig 13 — chunk-size tradeoff"),
    ("fig14_end_to_end", "Fig 14 — end-to-end throughput (A40)"),
    ("fig15_h100", "Fig 15 — throughput on H100"),
    ("fig16_ablation", "Fig 16 — component ablation"),
    ("fig17_memory", "Fig 17 — memory footprint vs task count"),
    (
        "fig18_orchestration",
        "Fig 18 — one-layer orchestration utilization",
    ),
    (
        "fig19_orchestration_e2e",
        "Fig 19 — orchestration-only speedups",
    ),
    ("fig20_alignment", "Fig 20 — chunk-based data alignment"),
    (
        "fig21_scalability",
        "Fig 21a — up-only vs up-then-out scaling",
    ),
    ("fig21_cluster", "Fig 21b — 128-GPU cluster replay"),
    ("fig22_template", "Fig 22 / Appendix A — template orderings"),
    (
        "isolation_convergence",
        "§3.2 — isolation & convergence on real training",
    ),
    (
        "ext_future_work",
        "§6 — energy, priority scheduling, SLO admission",
    ),
];

fn summarize(value: &serde_json::Value, depth: usize, out: &mut String) {
    let indent = "  ".repeat(depth);
    match value {
        serde_json::Value::Object(map) => {
            for (k, v) in map {
                match v {
                    serde_json::Value::Object(_) | serde_json::Value::Array(_) => {
                        out.push_str(&format!("{indent}- **{k}**:\n"));
                        summarize(v, depth + 1, out);
                    }
                    _ => out.push_str(&format!("{indent}- {k}: {v}\n")),
                }
            }
        }
        serde_json::Value::Array(items) => {
            let shown = items.len().min(6);
            for item in &items[..shown] {
                match item {
                    serde_json::Value::Object(m) => {
                        let line: Vec<String> = m.iter().map(|(k, v)| format!("{k}={v}")).collect();
                        out.push_str(&format!("{indent}- {}\n", line.join(", ")));
                    }
                    other => out.push_str(&format!("{indent}- {other}\n")),
                }
            }
            if items.len() > shown {
                out.push_str(&format!(
                    "{indent}- … ({} more rows)\n",
                    items.len() - shown
                ));
            }
        }
        other => out.push_str(&format!("{indent}- {other}\n")),
    }
}

/// Runs the Fig-14 scenario traced and writes its Chrome trace to `path`.
fn emit_trace(path: &PathBuf) {
    let _on = mux_obs::enabled_scope();
    mux_obs::reset();
    let (report, ops, num_devices) = fig14_trace_scenario();
    let trace = chrome_trace(&ops, num_devices);
    if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
        if let Err(e) = fs::create_dir_all(parent) {
            eprintln!("error: cannot create {}: {e}", parent.display());
            std::process::exit(1);
        }
    }
    let body = serde_json::to_string_pretty(&trace).expect("serialize trace");
    if let Err(e) = fs::write(path, body) {
        eprintln!("error: cannot write {}: {e}", path.display());
        std::process::exit(1);
    }
    println!(
        "wrote {} ({} events, makespan {:.3}s, effective {:.0} tok/s)",
        path.display(),
        trace["traceEvents"].as_array().map(Vec::len).unwrap_or(0),
        report.metrics.makespan,
        report.metrics.effective_throughput,
    );
    for b in stall_breakdown(&ops, num_devices) {
        println!(
            "  GPU {}: stalls bubble={:.4}s comm={:.4}s dependency={:.4}s",
            b.device, b.bubble_seconds, b.comm_seconds, b.dependency_seconds
        );
    }
    let snap = mux_obs::snapshot();
    for (name, stat) in &snap.phases {
        println!(
            "  phase {name}: {} call(s), {:.4}s",
            stat.count, stat.total_seconds
        );
    }
}

fn main() {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target/experiments");
    let mut out_path: Option<PathBuf> = None;
    let mut trace_out: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--trace-out" {
            let Some(path) = args.next() else {
                eprintln!("error: --trace-out requires a path");
                std::process::exit(2);
            };
            trace_out = Some(PathBuf::from(path));
        } else {
            out_path = Some(PathBuf::from(arg));
        }
    }
    if let Some(path) = &trace_out {
        emit_trace(path);
    }
    let out_path = out_path.unwrap_or_else(|| dir.join("REPORT.md"));

    let mut report = String::from("# MuxTune reproduction — experiment artifacts\n\n");
    report.push_str("Generated from `target/experiments/*.json` (run `cargo bench --workspace` to refresh).\n\n");
    let mut found = 0;
    for (id, title) in EXPERIMENTS {
        let path = dir.join(format!("{id}.json"));
        report.push_str(&format!("## {title}\n\n"));
        match fs::read_to_string(&path)
            .ok()
            .and_then(|s| serde_json::from_str(&s).ok())
        {
            Some(v) => {
                found += 1;
                summarize(&v, 0, &mut report);
                report.push('\n');
            }
            None => report.push_str("*(artifact missing — bench not run yet)*\n\n"),
        }
    }
    fs::create_dir_all(out_path.parent().expect("has parent")).expect("create output dir");
    fs::write(&out_path, &report).expect("write report");
    println!(
        "wrote {} ({found}/{} experiments present)",
        out_path.display(),
        EXPERIMENTS.len()
    );
}
