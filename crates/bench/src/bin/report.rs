//! Regenerates a markdown experiment report from the JSON artifacts the
//! figure benches write to `target/experiments/`, and hosts the CI
//! perf-regression gate.
//!
//! Usage: run `cargo bench --workspace` first, then
//! `cargo run -p mux-bench --bin report [output.md] [flags]`.
//!
//! Flags:
//! - `--trace-out <path>`: run the Fig-14 Testbed-A scenario with tracing
//!   on and write its timeline as chrome://tracing JSON (open in
//!   `chrome://tracing` or Perfetto) plus an `<path>.attribution.json`
//!   stall-attribution/critical-path summary, with a planner phase/stall
//!   report on stdout.
//! - `--format prom`: instead of markdown, emit the Fig-14-small
//!   scenario's metrics (makespan, utilization, 5-class stall seconds,
//!   planner phases, histograms) in Prometheus text-exposition format.
//! - `--write-baseline <json>`: run every gate scenario (`fig14-small`
//!   end-to-end run, `planner-scale` planning wall time at M=1024,
//!   `telemetry-overhead` disabled-path ingest wall time) and write their
//!   headline numbers as a perf-baseline array.
//! - `--check-baseline <json>`: re-run each scenario named in the
//!   checked-in baseline (array, or a single legacy object) and compare;
//!   exits non-zero on any regression (the CI gate).
//! - `--journal-out <path>`: run the service-telemetry scenario (storm +
//!   hopeless SLO, monitoring on), seal its event journal, and write it
//!   as JSONL.
//! - `--replay <journal>`: parse a JSONL journal, replay it, and check
//!   the result against the embedded final-state record; exits non-zero
//!   on corruption or state mismatch.
//! - `--watch <ticks>`: run the service-telemetry scenario live, printing
//!   one summary line per tick (throughput, stall shares, active alerts).
//! - `--chaos-seed <u64>`: run the deterministic chaos harness
//!   (`mux-chaos`) under the given seed, print the journal fingerprint
//!   and job outcomes, and re-verify the sealed journal by replay. With
//!   `--journal-out <path>`, the chaos journal is written there instead
//!   of the telemetry-scenario journal. Exits non-zero if the journal
//!   fails re-verification.
//! - `--trace-gen <u64>`: generate a seeded multi-tenant workload trace
//!   (`mux-workload`: diurnal Poisson arrivals, bounded-Pareto sizes,
//!   per-tenant SLOs, cancellation churn) and write it as sealed JSONL to
//!   `--trace-path <path>` (default
//!   `target/experiments/workload_trace_<seed>.jsonl`). `--trace-jobs <n>`
//!   sizes it (default 10000). Same seed ⇒ bitwise-identical file.
//! - `--replay-trace <path>`: load a generated trace and replay it
//!   end-to-end through `FineTuneService` under `--policy
//!   <fcfs|priority|wfs|drf>` — or all four when the flag is absent —
//!   printing terminal-outcome counts, per-tenant Jain fairness indices,
//!   per-tenant JCT / queue-wait quantiles (mergeable sketches), SLO
//!   attainment, capacity makespan, and the sealed journal fingerprint
//!   per policy. Exits non-zero if any trace job is lost or the replayed
//!   journal fails verification.
//! - `--replan-mode <simulate|estimate|incremental>`: how the replayed
//!   service re-prices membership changes (default `estimate`).
//!   `incremental` keeps a warm per-instance planner whose journals must
//!   be bitwise identical to `estimate`'s — the CI churn leg diffs the
//!   two replays.
//! - `--explain-job <id>`: after a `--replay-trace` run, reconstruct the
//!   job's causal lifecycle from the sealed journal (span tree, JCT
//!   decomposition, scheduler decision provenance) and print it. The id
//!   may be a trace id or a journal handle. Without `--policy` the
//!   replay defaults to `fcfs` so the explanation names one schedule.
//!   Pure function of the journal: run-twice output is bitwise identical.
//! - `--lifecycle-out <path>`: after a `--replay-trace` run, write every
//!   job's span tree as a tenant-lane Chrome/Perfetto trace (one process
//!   per tenant, one thread per job). Defaults the policy like
//!   `--explain-job`.
//! - `--profile-out <path>`: run the churn-replay scenario with the
//!   hierarchical self-profiler on and write the call-tree artifacts:
//!   `<path>` (full profile JSON), `<path>.work.json` (the
//!   bitwise-deterministic work profile — run twice, `diff` byte-for-byte),
//!   `<path>.collapsed` (flamegraph.pl collapsed stacks), and
//!   `<path>.chrome.json` (Chrome/Perfetto trace).
//! - `--profile-diff <before> <after>`: parse two profile artifacts and
//!   print the regression-ranked blame paths (exclusive-time delta, then
//!   work-counter drift).
//! - `--serve-mix <ratio>`: run the mixed training+serving scenario —
//!   inference requests multiplexed onto the same frozen backbone as the
//!   training jobs — at `ratio` requests per training job, and print the
//!   deterministic summary (fingerprint, request conservation, per-tenant
//!   TTFT / per-token p50/p95/p99, SLO attainment). `--serve-requests
//!   <n>` sizes the request stream (default 2000); `--serving-policy
//!   <spatial|temporal|hybrid>` picks the sharing policy (default
//!   hybrid). With `--journal-out <path>`, the sealed mixed journal is
//!   written there. Same seed ⇒ bitwise-identical output — CI diffs two
//!   runs literally.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

use mux_api::Journal;
use mux_bench::harness::{
    attribution_json, churn_replay_measurement, fig14_small_trace_scenario, fig14_trace_scenario,
    measure_run, planner_incremental_measurement, planner_scale_measurement,
    profile_overhead_measurement, serve_mix_measurement, service_telemetry_scenario,
    service_telemetry_step, sketch_overhead_measurement, telemetry_overhead_measurement,
    trace_replay_measurement, write_profile_artifacts, PLANNER_SCALE_M, SERVICE_TELEMETRY_TICKS,
};
use mux_gpu_sim::{chrome_trace, stall_breakdown};
use mux_obs_analysis::{
    analyze_journal, check_baseline_with_work, device_attribution, explain_job,
    lifecycle_chrome_trace, parse_profile, profile_diff, render_profile_diff, PerfBaseline,
    PerfMeasurement, StallClass, WorkCounts,
};

/// The experiment ids the bench suite produces, with one-line descriptions,
/// in paper order.
const EXPERIMENTS: &[(&str, &str)] = &[
    ("table1_models", "Table 1 — model configurations"),
    ("fig3_inefficiency", "Fig 3 — PEFT resource inefficiencies"),
    (
        "fig4_stalls",
        "Fig 4 — device stalls under model parallelism",
    ),
    (
        "fig9_tradeoff",
        "Fig 9 — spatial-temporal multiplexing tradeoff",
    ),
    ("fig13_chunk", "Fig 13 — chunk-size tradeoff"),
    ("fig14_end_to_end", "Fig 14 — end-to-end throughput (A40)"),
    ("fig15_h100", "Fig 15 — throughput on H100"),
    ("fig16_ablation", "Fig 16 — component ablation"),
    ("fig17_memory", "Fig 17 — memory footprint vs task count"),
    (
        "fig18_orchestration",
        "Fig 18 — one-layer orchestration utilization",
    ),
    (
        "fig19_orchestration_e2e",
        "Fig 19 — orchestration-only speedups",
    ),
    ("fig20_alignment", "Fig 20 — chunk-based data alignment"),
    (
        "fig21_scalability",
        "Fig 21a — up-only vs up-then-out scaling",
    ),
    ("fig21_cluster", "Fig 21b — 128-GPU cluster replay"),
    ("fig22_template", "Fig 22 / Appendix A — template orderings"),
    (
        "isolation_convergence",
        "§3.2 — isolation & convergence on real training",
    ),
    (
        "ext_future_work",
        "§6 — energy, priority scheduling, SLO admission",
    ),
];

fn summarize(value: &serde_json::Value, depth: usize, out: &mut String) {
    let indent = "  ".repeat(depth);
    match value {
        serde_json::Value::Object(map) => {
            for (k, v) in map {
                match v {
                    serde_json::Value::Object(_) | serde_json::Value::Array(_) => {
                        out.push_str(&format!("{indent}- **{k}**:\n"));
                        summarize(v, depth + 1, out);
                    }
                    _ => out.push_str(&format!("{indent}- {k}: {v}\n")),
                }
            }
        }
        serde_json::Value::Array(items) => {
            let shown = items.len().min(6);
            for item in &items[..shown] {
                match item {
                    serde_json::Value::Object(m) => {
                        let line: Vec<String> = m.iter().map(|(k, v)| format!("{k}={v}")).collect();
                        out.push_str(&format!("{indent}- {}\n", line.join(", ")));
                    }
                    other => out.push_str(&format!("{indent}- {other}\n")),
                }
            }
            if items.len() > shown {
                out.push_str(&format!(
                    "{indent}- … ({} more rows)\n",
                    items.len() - shown
                ));
            }
        }
        other => out.push_str(&format!("{indent}- {other}\n")),
    }
}

/// Creates `path`'s parent directory when it names one, with a readable
/// error instead of a raw panic ("foo.md" has the empty parent, which
/// needs no creation).
fn ensure_parent_dir(path: &Path) -> Result<(), String> {
    match path.parent().filter(|p| !p.as_os_str().is_empty()) {
        Some(parent) => fs::create_dir_all(parent)
            .map_err(|e| format!("cannot create directory {}: {e}", parent.display())),
        None => Ok(()),
    }
}

/// Writes `body` to `path`, creating parent directories, with readable
/// errors.
fn write_file(path: &Path, body: &str) -> Result<(), String> {
    ensure_parent_dir(path)?;
    fs::write(path, body).map_err(|e| format!("cannot write {}: {e}", path.display()))
}

fn fail(msg: &str) -> ExitCode {
    eprintln!("error: {msg}");
    ExitCode::from(1)
}

/// Runs the Fig-14 scenario traced and writes its Chrome trace to `path`
/// plus the attribution summary next to it.
fn emit_trace(path: &Path) -> Result<(), String> {
    let _on = mux_obs::enabled_scope();
    mux_obs::reset();
    let (report, ops, num_devices) = fig14_trace_scenario();
    let trace = chrome_trace(&ops, num_devices);
    let body = serde_json::to_string_pretty(&trace).map_err(|e| format!("serialize trace: {e}"))?;
    write_file(path, &body)?;
    println!(
        "wrote {} ({} events, makespan {:.3}s, effective {:.0} tok/s)",
        path.display(),
        trace["traceEvents"].as_array().map(Vec::len).unwrap_or(0),
        report.metrics.makespan,
        report.metrics.effective_throughput,
    );
    let attr_path = path.with_extension("attribution.json");
    let attr = attribution_json(&ops, num_devices);
    write_file(
        &attr_path,
        &serde_json::to_string_pretty(&attr).map_err(|e| format!("serialize attribution: {e}"))?,
    )?;
    println!("wrote {}", attr_path.display());
    for b in stall_breakdown(&ops, num_devices) {
        println!(
            "  GPU {}: stalls bubble={:.4}s comm={:.4}s dependency={:.4}s",
            b.device, b.bubble_seconds, b.comm_seconds, b.dependency_seconds
        );
    }
    let snap = mux_obs::snapshot();
    for (name, stat) in &snap.phases {
        println!(
            "  phase {name}: {} call(s), {:.4}s",
            stat.count, stat.total_seconds
        );
    }
    Ok(())
}

/// Renders the Fig-14-small scenario's metrics as Prometheus text
/// exposition: run headline gauges, per-device stall classes, and the
/// `mux-obs` registry captured during the run.
fn render_prom() -> String {
    let _on = mux_obs::enabled_scope();
    mux_obs::reset();
    let (report, ops, num_devices) = fig14_small_trace_scenario();
    for op in &ops {
        let dur = op.end - op.start;
        if dur > 0.0 {
            match op.kind {
                mux_gpu_sim::timeline::OpKind::Compute => {
                    mux_obs::record_histogram("engine.compute_op_seconds", dur)
                }
                mux_gpu_sim::timeline::OpKind::Collective => {
                    mux_obs::record_histogram("engine.collective_seconds", dur)
                }
                _ => {}
            }
        }
    }
    let m = measure_run(&report, &ops, num_devices);
    let mut out = String::new();
    out.push_str("# TYPE muxtune_run_makespan_seconds gauge\n");
    out.push_str(&format!(
        "muxtune_run_makespan_seconds {}\n",
        m.makespan_seconds
    ));
    out.push_str("# TYPE muxtune_run_mean_utilization gauge\n");
    out.push_str(&format!(
        "muxtune_run_mean_utilization {}\n",
        m.mean_utilization
    ));
    out.push_str("# TYPE muxtune_run_stall_share gauge\n");
    out.push_str(&format!("muxtune_run_stall_share {}\n", m.stall_share));
    out.push_str("# TYPE muxtune_device_stall_seconds gauge\n");
    for d in device_attribution(&ops, num_devices) {
        for class in StallClass::ALL {
            out.push_str(&format!(
                "muxtune_device_stall_seconds{{device=\"{}\",class=\"{}\"}} {}\n",
                d.device,
                class.name(),
                d.class_seconds(class)
            ));
        }
    }
    out.push_str(&mux_obs::snapshot_prom());
    out
}

/// The scenario names the baseline gate knows how to (re)measure.
const GATE_SCENARIOS: &[&str] = &[
    "fig14-small",
    "planner-scale",
    "planner-incremental",
    "churn-replay",
    "telemetry-overhead",
    "sketch-overhead",
    "trace-replay",
    "serve-mix",
    "profile-overhead",
];

/// Gate scenarios measuring host wall time (CI-noise-tolerant gating)
/// rather than simulated makespan.
const WALL_TIME_SCENARIOS: &[&str] = &[
    "planner-scale",
    "planner-incremental",
    "churn-replay",
    "telemetry-overhead",
    "sketch-overhead",
    "trace-replay",
    "serve-mix",
    "profile-overhead",
];

/// Gate scenarios measured with the self-profiler on so their baseline
/// entry carries exact per-path work budgets (`dp_cells`, `ranges_built`,
/// `heap_ops`, …). Same seed ⇒ identical counts, so these gate with
/// equality rather than a wall-time tolerance.
const PROFILED_SCENARIOS: &[&str] = &["planner-incremental", "churn-replay", "serve-mix"];

/// Runs one gate scenario and returns its headline numbers.
fn measure_scenario(name: &str) -> Result<PerfMeasurement, String> {
    match name {
        "fig14-small" => {
            let (report, ops, num_devices) = fig14_small_trace_scenario();
            Ok(measure_run(&report, &ops, num_devices))
        }
        "planner-scale" => Ok(planner_scale_measurement()),
        "planner-incremental" => Ok(planner_incremental_measurement()),
        "churn-replay" => Ok(churn_replay_measurement()),
        "telemetry-overhead" => Ok(telemetry_overhead_measurement()),
        "sketch-overhead" => Ok(sketch_overhead_measurement()),
        "trace-replay" => Ok(trace_replay_measurement()),
        "serve-mix" => Ok(serve_mix_measurement()),
        "profile-overhead" => Ok(profile_overhead_measurement()),
        other => Err(format!(
            "unknown baseline scenario `{other}` (expected one of {GATE_SCENARIOS:?})"
        )),
    }
}

/// Runs one gate scenario with the self-profiler on and returns its
/// headline numbers plus the deterministic per-path work counters. The
/// profile arena is reset first so each scenario's counts stand alone;
/// the call tree is left in place for `--profile-out` to export.
fn measure_scenario_profiled(name: &str) -> Result<(PerfMeasurement, WorkCounts), String> {
    mux_obs::profile::reset_profile();
    let m = {
        let _profiling = mux_obs::profile::profiling_scope();
        measure_scenario(name)?
    };
    let work = mux_obs::profile::work_counts(&mux_obs::profile::snapshot_profile());
    Ok((m, work))
}

/// `--profile-out`: runs the churn-replay scenario (the heaviest planner
/// path: cold fill + warm membership deltas) with the self-profiler on
/// and writes the call-tree artifacts next to `path` — the full profile,
/// the bitwise-deterministic `.work.json`, flamegraph.pl `.collapsed`
/// stacks, and a `.chrome.json` Perfetto trace.
fn emit_profile(path: &Path) -> Result<(), String> {
    let (m, work) = measure_scenario_profiled("churn-replay")?;
    println!(
        "profiled `churn-replay`: wall {:.6}s, {} instrumented path(s)",
        m.makespan_seconds,
        work.len()
    );
    let written = write_profile_artifacts(path)
        .map_err(|e| format!("cannot write profile artifacts at {}: {e}", path.display()))?;
    for p in written {
        println!("wrote {}", p.display());
    }
    Ok(())
}

/// `--profile-diff`: parses two profile JSON artifacts (full or
/// work-profile form) and prints the regression-ranked blame paths.
fn emit_profile_diff(before_path: &Path, after_path: &Path) -> Result<(), String> {
    let read = |p: &Path| -> Result<Vec<mux_obs_analysis::ProfileRow>, String> {
        let body =
            fs::read_to_string(p).map_err(|e| format!("cannot read {}: {e}", p.display()))?;
        parse_profile(&body).map_err(|e| format!("{}: {e}", p.display()))
    };
    let before = read(before_path)?;
    let after = read(after_path)?;
    let diff = profile_diff(&before, &after);
    print!("{}", render_profile_diff(&diff, 15));
    Ok(())
}

/// Runs the service-telemetry scenario to its configured horizon, seals
/// the journal, and writes it as JSONL.
fn emit_journal(path: &Path) -> Result<(), String> {
    let mut svc = service_telemetry_scenario();
    for _ in 0..SERVICE_TELEMETRY_TICKS {
        service_telemetry_step(&mut svc);
    }
    svc.seal_journal();
    let journal = svc.journal();
    write_file(path, &journal.to_jsonl())?;
    let alerts = svc.alerts();
    println!(
        "wrote {} ({} events over {} ticks, {} active alert(s))",
        path.display(),
        journal.len(),
        svc.current_tick(),
        alerts.len()
    );
    for a in alerts {
        println!(
            "  active: {} [{}] job {} (value {:.3} vs threshold {:.3})",
            a.rule,
            a.severity.name(),
            a.job,
            a.value,
            a.threshold
        );
    }
    Ok(())
}

/// Parses and replays a JSONL journal, checking the reconstruction
/// against the embedded final-state record.
fn replay_journal(path: &Path) -> Result<(), String> {
    let body =
        fs::read_to_string(path).map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let journal = Journal::from_jsonl(&body)
        .map_err(|e| format!("{}: corrupt journal: {e}", path.display()))?;
    let state = journal
        .verify()
        .map_err(|e| format!("{}: replay mismatch: {e}", path.display()))?;
    println!(
        "replay OK: {} events, final tick {}, {} job(s), {} active alert(s)",
        journal.len(),
        state.tick,
        state.jobs.len(),
        state.alerts.len()
    );
    for (job, st) in &state.jobs {
        println!("  job {job}: {st}");
    }
    for (rule, job) in &state.alerts {
        println!("  alert: {rule} on job {job}");
    }
    Ok(())
}

/// Runs the service-telemetry scenario live for `ticks` ticks, printing
/// one summary line per tick.
fn watch(ticks: usize) {
    let _telemetry = mux_obs::timeseries::telemetry_scope();
    let mut svc = service_telemetry_scenario();
    println!(
        "{:>5} {:>9} {:>4} {:>4} {:>4} {:>4} {:>14}  {:<39} alerts",
        "tick",
        "now",
        "run",
        "que",
        "done",
        "rej",
        "tokens/s",
        "stall shares (bub/comm/dep/align/fault)"
    );
    for _ in 0..ticks {
        service_telemetry_step(&mut svc);
        let s = svc.telemetry_summary();
        let alerts = if s.active_alerts.is_empty() {
            "-".to_string()
        } else {
            s.active_alerts
                .iter()
                .map(|(rule, job)| format!("{rule}@job{job}"))
                .collect::<Vec<_>>()
                .join(" ")
        };
        println!(
            "{:>5} {:>9.3} {:>4} {:>4} {:>4} {:>4} {:>14.0}  {:<39} {alerts}",
            s.tick,
            s.now,
            s.running,
            s.queued,
            s.completed,
            s.rejected,
            s.throughput_tokens_per_second,
            s.stall_class_shares
                .iter()
                .map(|share| format!("{share:.3}"))
                .collect::<Vec<_>>()
                .join("/"),
        );
    }
}

/// Runs the deterministic chaos harness under `seed`, prints the journal
/// fingerprint and job outcomes, re-verifies the sealed journal by
/// replay, and optionally writes the journal as JSONL.
fn run_chaos_seed(seed: u64, journal_out: Option<&Path>) -> Result<(), String> {
    let run = mux_chaos::run_chaos(&mux_chaos::DstConfig::seeded(seed));
    println!(
        "chaos seed {seed}: journal fingerprint {:016x}",
        run.fingerprint
    );
    println!(
        "  {} fault(s) applied, {} job(s) submitted",
        run.applied_faults, run.submitted_jobs
    );
    for (state, n) in &run.outcome_counts {
        println!("  {state}: {n}");
    }
    let (fp, replayed) = mux_chaos::verify_journal(&run.journal_jsonl)?;
    if fp != run.fingerprint || replayed != run.final_state {
        return Err(format!(
            "chaos journal failed re-verification (live {:016x}, replay {fp:016x})",
            run.fingerprint
        ));
    }
    println!(
        "  replay: OK ({} events)",
        run.journal_jsonl.lines().count()
    );
    if let Some(path) = journal_out {
        write_file(path, &run.journal_jsonl)?;
        println!("wrote {}", path.display());
    }
    Ok(())
}

/// Generates a seeded workload trace and writes it as sealed JSONL.
fn trace_gen(seed: u64, jobs: usize, path: &Path) -> Result<(), String> {
    let cfg = mux_workload::TraceConfig::standard(jobs);
    let trace = mux_workload::generate(seed, &cfg);
    write_file(path, &trace.to_jsonl())?;
    println!(
        "wrote {} ({} jobs, {} tenant(s), horizon {:.1}s, fingerprint {:016x})",
        path.display(),
        trace.jobs.len(),
        trace.tenants.len(),
        trace.horizon_seconds,
        trace.fingerprint()
    );
    Ok(())
}

/// Formats a sketch's p50/p95/p99 for the replay report (`-` when the
/// sketch saw no samples).
fn quantile_cell(sketch: &mux_obs::QuantileSketch) -> String {
    if sketch.is_empty() {
        "-".to_string()
    } else {
        format!(
            "p50 {:.1}s / p95 {:.1}s / p99 {:.1}s",
            sketch.quantile(0.5),
            sketch.quantile(0.95),
            sketch.quantile(0.99)
        )
    }
}

/// Replays a trace file through the service under one policy — or all
/// built-ins when `policy` is `None` — printing the fairness/SLO report
/// and re-verifying every sealed journal. With `explain` or
/// `lifecycle_out`, the sealed journal is additionally run through the
/// lifecycle analyzer (defaulting the policy to `fcfs` so the
/// explanation describes exactly one schedule).
fn replay_trace_file(
    path: &Path,
    policy: Option<&str>,
    replan_mode: Option<mux_api::ReplanMode>,
    explain: Option<u64>,
    lifecycle_out: Option<&Path>,
) -> Result<(), String> {
    let body =
        fs::read_to_string(path).map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let trace = mux_workload::Trace::from_jsonl(&body)
        .map_err(|e| format!("{}: corrupt trace: {e}", path.display()))?;
    let wants_lifecycle = explain.is_some() || lifecycle_out.is_some();
    let policies: Vec<&str> = match policy {
        Some(p) => vec![p],
        None if wants_lifecycle => vec!["fcfs"],
        None => mux_api::POLICY_NAMES.to_vec(),
    };
    let mut opts = mux_workload::ReplayOptions::default();
    if let Some(mode) = replan_mode {
        opts.replan_mode = mode;
    }
    for name in policies {
        let report = mux_workload::replay_trace_by_name(&trace, name, &opts)?;
        if report.terminal_total() != report.trace_jobs {
            return Err(format!(
                "policy {name}: {} of {} trace jobs unaccounted for",
                report.trace_jobs - report.terminal_total(),
                report.trace_jobs
            ));
        }
        let (fp, _) = mux_chaos::verify_journal(&report.journal_jsonl)
            .map_err(|e| format!("policy {name}: journal failed verification: {e}"))?;
        if fp != report.journal_fingerprint {
            return Err(format!(
                "policy {name}: journal fingerprint mismatch (live {:016x}, replay {fp:016x})",
                report.journal_fingerprint
            ));
        }
        println!(
            "policy {name}: {} jobs -> {} completed, {} rejected ({} at admission), {} shed, {} cancelled in {:.1}s simulated",
            report.trace_jobs,
            report.completed,
            report.rejected,
            report.admission_rejected,
            report.shed,
            report.cancelled,
            report.makespan_seconds
        );
        println!(
            "  fairness: jain(work) {:.4}, jain(jobs) {:.4}; SLO attainment {:.4}; journal fingerprint {:016x}",
            report.jain_work, report.jain_jobs, report.slo_attainment, report.journal_fingerprint
        );
        println!(
            "  jct {}; queue wait {}",
            quantile_cell(&report.jct),
            quantile_cell(&report.queue_wait)
        );
        for (tenant, t) in &report.per_tenant {
            println!(
                "  tenant {tenant}: {} completed / {} rejected / {} shed / {} cancelled, {:.0} tokens, SLO attainment {:.4}",
                t.completed,
                t.rejected,
                t.shed,
                t.cancelled,
                t.completed_tokens,
                t.slo_attainment()
            );
            println!(
                "    jct {}; queue wait {} (share {:.3})",
                quantile_cell(&t.jct),
                quantile_cell(&t.queue_wait),
                t.queue_wait_share()
            );
        }
        if wants_lifecycle {
            let analysis = analyze_journal(&report.journal_jsonl)
                .map_err(|e| format!("policy {name}: lifecycle analysis failed: {e}"))?;
            if let Some(out) = lifecycle_out {
                write_file(out, &lifecycle_chrome_trace(&analysis))?;
                println!(
                    "wrote {} ({} job lane(s), {} decision(s))",
                    out.display(),
                    analysis.jobs.len(),
                    analysis.decisions.len()
                );
            }
            if let Some(id) = explain {
                print!("{}", explain_job(&analysis, id)?);
            }
        }
    }
    Ok(())
}

/// `--serve-mix`: runs the mixed training+serving scenario and prints
/// its deterministic summary; optionally writes the sealed journal.
fn run_serve_mix_cli(
    ratio: f64,
    requests: usize,
    policy: mux_api::ServingPolicy,
    journal_out: Option<&Path>,
) -> Result<(), String> {
    let mut cfg = mux_workload::ServeMixConfig::standard(requests);
    cfg.training_jobs = ((requests as f64 / ratio).round() as usize).max(1);
    cfg.policy = policy;
    let report = mux_workload::run_serve_mix(&cfg)?;
    print!("{}", report.render_text());
    if let Some(path) = journal_out {
        write_file(path, &report.journal)?;
        println!("wrote {}", path.display());
    }
    Ok(())
}

fn write_baseline(path: &Path) -> Result<(), String> {
    let mut entries = Vec::new();
    for &name in GATE_SCENARIOS {
        let profiled = PROFILED_SCENARIOS.contains(&name);
        let (m, work) = if profiled {
            let (m, work) = measure_scenario_profiled(name)?;
            (m, Some(work))
        } else {
            (measure_scenario(name)?, None)
        };
        let mut base = PerfBaseline::new(name, &m);
        if WALL_TIME_SCENARIOS.contains(&name) {
            // Wall-time scenarios vary with CI host load far more than
            // the simulated-makespan scenarios do; gate only
            // order-of-magnitude blowups (the regressions these exist to
            // catch — an O(M³) planner, a non-zero-cost disabled
            // telemetry path — cost ~100x, not 4x).
            base.makespan_rel_tolerance = 3.0;
        }
        if let Some(work) = work {
            // Work counters are deterministic functions of the seeded
            // scenario, so the budget is exact equality — any drift
            // (either direction) fails the gate until re-blessed.
            base.work_budgets = work;
        }
        println!(
            "  {name}: makespan {:.6}s, utilization {:.4}, stall share {:.4}{}",
            m.makespan_seconds,
            m.mean_utilization,
            m.stall_share,
            if base.work_budgets.is_empty() {
                String::new()
            } else {
                format!(", {} exact work budget path(s)", base.work_budgets.len())
            }
        );
        entries.push(base.to_json());
    }
    let body = serde_json::to_string_pretty(&serde_json::Value::Array(entries))
        .map_err(|e| format!("serialize baseline: {e}"))?;
    write_file(path, &body)?;
    println!(
        "wrote {} ({} scenario(s), planner-scale at M={PLANNER_SCALE_M})",
        path.display(),
        GATE_SCENARIOS.len()
    );
    Ok(())
}

/// The CI gate: re-run each scenario named in the checked-in baseline file
/// (an array, or a single legacy object) and compare. `Ok(true)` = every
/// scenario within tolerance, `Ok(false)` = at least one regression.
fn check_against_baseline(path: &Path) -> Result<bool, String> {
    let body =
        fs::read_to_string(path).map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let value: serde_json::Value =
        serde_json::from_str(&body).map_err(|e| format!("cannot parse {}: {e}", path.display()))?;
    let entries: Vec<serde_json::Value> = match value {
        serde_json::Value::Array(items) => items,
        single => vec![single],
    };
    if entries.is_empty() {
        return Err(format!("{} holds no baseline entries", path.display()));
    }
    let mut all_ok = true;
    for entry in &entries {
        let base = PerfBaseline::from_json(entry)?;
        // Scenarios carrying exact work budgets are re-measured with the
        // profiler on so the gate can compare per-path counters; the
        // rest run with the cheap disabled span path.
        let (m, work) = if base.work_budgets.is_empty() {
            (measure_scenario(&base.scenario)?, None)
        } else {
            let (m, work) = measure_scenario_profiled(&base.scenario)?;
            (m, Some(work))
        };
        println!(
            "perf gate: scenario `{}` vs {}",
            base.scenario,
            path.display()
        );
        match check_baseline_with_work(&base, &m, work.as_ref()) {
            Ok(lines) => {
                for l in lines {
                    println!("  ok: {l}");
                }
            }
            Err(lines) => {
                for l in lines {
                    eprintln!("  REGRESSION: {l}");
                }
                all_ok = false;
            }
        }
    }
    Ok(all_ok)
}

fn main() -> ExitCode {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target/experiments");
    let mut out_path: Option<PathBuf> = None;
    let mut trace_out: Option<PathBuf> = None;
    let mut format = String::from("md");
    let mut baseline_check: Option<PathBuf> = None;
    let mut baseline_write: Option<PathBuf> = None;
    let mut journal_out: Option<PathBuf> = None;
    let mut replay: Option<PathBuf> = None;
    let mut watch_ticks: Option<usize> = None;
    let mut chaos_seed: Option<u64> = None;
    let mut trace_gen_seed: Option<u64> = None;
    let mut trace_jobs: usize = 10_000;
    let mut trace_path: Option<PathBuf> = None;
    let mut replay_trace: Option<PathBuf> = None;
    let mut policy: Option<String> = None;
    let mut replan_mode: Option<mux_api::ReplanMode> = None;
    let mut explain_job_id: Option<u64> = None;
    let mut lifecycle_out: Option<PathBuf> = None;
    let mut profile_out: Option<PathBuf> = None;
    let mut profile_diff_paths: Option<(PathBuf, PathBuf)> = None;
    let mut serve_mix: Option<f64> = None;
    let mut serve_requests: usize = 2_000;
    let mut serving_policy = mux_api::ServingPolicy::Hybrid;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut take = |flag: &str| -> Option<PathBuf> {
            match args.next() {
                Some(v) => Some(PathBuf::from(v)),
                None => {
                    eprintln!("error: {flag} requires a value");
                    None
                }
            }
        };
        match arg.as_str() {
            "--trace-out" => match take("--trace-out") {
                Some(p) => trace_out = Some(p),
                None => return ExitCode::from(2),
            },
            "--check-baseline" => match take("--check-baseline") {
                Some(p) => baseline_check = Some(p),
                None => return ExitCode::from(2),
            },
            "--write-baseline" => match take("--write-baseline") {
                Some(p) => baseline_write = Some(p),
                None => return ExitCode::from(2),
            },
            "--format" => match take("--format") {
                Some(p) => format = p.to_string_lossy().into_owned(),
                None => return ExitCode::from(2),
            },
            "--journal-out" => match take("--journal-out") {
                Some(p) => journal_out = Some(p),
                None => return ExitCode::from(2),
            },
            "--replay" => match take("--replay") {
                Some(p) => replay = Some(p),
                None => return ExitCode::from(2),
            },
            "--watch" => match take("--watch") {
                Some(p) => match p.to_string_lossy().parse::<usize>() {
                    Ok(n) => watch_ticks = Some(n),
                    Err(_) => {
                        eprintln!("error: --watch requires a tick count");
                        return ExitCode::from(2);
                    }
                },
                None => return ExitCode::from(2),
            },
            "--chaos-seed" => match take("--chaos-seed") {
                Some(p) => match p.to_string_lossy().parse::<u64>() {
                    Ok(n) => chaos_seed = Some(n),
                    Err(_) => {
                        eprintln!("error: --chaos-seed requires a u64 seed");
                        return ExitCode::from(2);
                    }
                },
                None => return ExitCode::from(2),
            },
            "--trace-gen" => match take("--trace-gen") {
                Some(p) => match p.to_string_lossy().parse::<u64>() {
                    Ok(n) => trace_gen_seed = Some(n),
                    Err(_) => {
                        eprintln!("error: --trace-gen requires a u64 seed");
                        return ExitCode::from(2);
                    }
                },
                None => return ExitCode::from(2),
            },
            "--trace-jobs" => match take("--trace-jobs") {
                Some(p) => match p.to_string_lossy().parse::<usize>() {
                    Ok(n) if n > 0 => trace_jobs = n,
                    _ => {
                        eprintln!("error: --trace-jobs requires a positive job count");
                        return ExitCode::from(2);
                    }
                },
                None => return ExitCode::from(2),
            },
            "--trace-path" => match take("--trace-path") {
                Some(p) => trace_path = Some(p),
                None => return ExitCode::from(2),
            },
            "--replay-trace" => match take("--replay-trace") {
                Some(p) => replay_trace = Some(p),
                None => return ExitCode::from(2),
            },
            "--explain-job" => match take("--explain-job") {
                Some(p) => match p.to_string_lossy().parse::<u64>() {
                    Ok(n) => explain_job_id = Some(n),
                    Err(_) => {
                        eprintln!("error: --explain-job requires a u64 job id");
                        return ExitCode::from(2);
                    }
                },
                None => return ExitCode::from(2),
            },
            "--lifecycle-out" => match take("--lifecycle-out") {
                Some(p) => lifecycle_out = Some(p),
                None => return ExitCode::from(2),
            },
            "--profile-out" => match take("--profile-out") {
                Some(p) => profile_out = Some(p),
                None => return ExitCode::from(2),
            },
            "--profile-diff" => match (take("--profile-diff"), take("--profile-diff")) {
                (Some(a), Some(b)) => profile_diff_paths = Some((a, b)),
                _ => {
                    eprintln!("error: --profile-diff requires two profile paths");
                    return ExitCode::from(2);
                }
            },
            "--serve-mix" => match take("--serve-mix") {
                Some(p) => match p.to_string_lossy().parse::<f64>() {
                    Ok(r) if r > 0.0 && r.is_finite() => serve_mix = Some(r),
                    _ => {
                        eprintln!("error: --serve-mix requires a positive requests-per-job ratio");
                        return ExitCode::from(2);
                    }
                },
                None => return ExitCode::from(2),
            },
            "--serve-requests" => match take("--serve-requests") {
                Some(p) => match p.to_string_lossy().parse::<usize>() {
                    Ok(n) if n > 0 => serve_requests = n,
                    _ => {
                        eprintln!("error: --serve-requests requires a positive request count");
                        return ExitCode::from(2);
                    }
                },
                None => return ExitCode::from(2),
            },
            "--serving-policy" => match take("--serving-policy") {
                Some(p) => match mux_api::ServingPolicy::parse(&p.to_string_lossy()) {
                    Some(pol) => serving_policy = pol,
                    None => {
                        eprintln!(
                            "error: unknown --serving-policy `{}` \
                             (expected spatial, temporal, or hybrid)",
                            p.to_string_lossy()
                        );
                        return ExitCode::from(2);
                    }
                },
                None => return ExitCode::from(2),
            },
            "--replan-mode" => match take("--replan-mode") {
                Some(p) => {
                    replan_mode = match p.to_string_lossy().as_ref() {
                        "simulate" => Some(mux_api::ReplanMode::Simulate),
                        "estimate" => Some(mux_api::ReplanMode::Estimate),
                        "incremental" => Some(mux_api::ReplanMode::Incremental),
                        other => {
                            eprintln!(
                                "error: unknown --replan-mode `{other}` \
                                 (expected simulate, estimate, or incremental)"
                            );
                            return ExitCode::from(2);
                        }
                    };
                }
                None => return ExitCode::from(2),
            },
            "--policy" => match take("--policy") {
                Some(p) => {
                    let name = p.to_string_lossy().into_owned();
                    if !mux_api::POLICY_NAMES.contains(&name.as_str()) {
                        eprintln!(
                            "error: unknown --policy `{name}` (expected one of {:?})",
                            mux_api::POLICY_NAMES
                        );
                        return ExitCode::from(2);
                    }
                    policy = Some(name);
                }
                None => return ExitCode::from(2),
            },
            _ => out_path = Some(PathBuf::from(arg)),
        }
    }

    if let Some(path) = &trace_out {
        if let Err(e) = emit_trace(path) {
            return fail(&e);
        }
    }
    if let Some(path) = &profile_out {
        if let Err(e) = emit_profile(path) {
            return fail(&e);
        }
    }
    if let Some((a, b)) = &profile_diff_paths {
        if let Err(e) = emit_profile_diff(a, b) {
            return fail(&e);
        }
    }
    if let Some(path) = &baseline_write {
        if let Err(e) = write_baseline(path) {
            return fail(&e);
        }
    }
    if let Some(path) = &baseline_check {
        match check_against_baseline(path) {
            Ok(true) => println!("perf gate: PASS"),
            Ok(false) => {
                eprintln!("perf gate: FAIL");
                return ExitCode::from(1);
            }
            Err(e) => return fail(&e),
        }
    }
    if let Some(seed) = chaos_seed {
        if let Err(e) = run_chaos_seed(seed, journal_out.as_deref()) {
            return fail(&e);
        }
    } else if let Some(ratio) = serve_mix {
        if let Err(e) = run_serve_mix_cli(
            ratio,
            serve_requests,
            serving_policy,
            journal_out.as_deref(),
        ) {
            return fail(&e);
        }
    } else if let Some(path) = &journal_out {
        if let Err(e) = emit_journal(path) {
            return fail(&e);
        }
    }
    if let Some(path) = &replay {
        if let Err(e) = replay_journal(path) {
            return fail(&e);
        }
    }
    if let Some(seed) = trace_gen_seed {
        let path = trace_path
            .clone()
            .unwrap_or_else(|| dir.join(format!("workload_trace_{seed}.jsonl")));
        if let Err(e) = trace_gen(seed, trace_jobs, &path) {
            return fail(&e);
        }
    }
    if let Some(path) = &replay_trace {
        if let Err(e) = replay_trace_file(
            path,
            policy.as_deref(),
            replan_mode,
            explain_job_id,
            lifecycle_out.as_deref(),
        ) {
            return fail(&e);
        }
    } else if explain_job_id.is_some() || lifecycle_out.is_some() {
        return fail("--explain-job / --lifecycle-out require --replay-trace <path>");
    }
    if let Some(ticks) = watch_ticks {
        watch(ticks);
    }
    // Baseline/journal/watch-only invocations skip report generation entirely.
    let side_mode = baseline_check.is_some()
        || baseline_write.is_some()
        || journal_out.is_some()
        || replay.is_some()
        || watch_ticks.is_some()
        || chaos_seed.is_some()
        || trace_gen_seed.is_some()
        || replay_trace.is_some()
        || explain_job_id.is_some()
        || lifecycle_out.is_some()
        || profile_out.is_some()
        || profile_diff_paths.is_some()
        || serve_mix.is_some();
    if side_mode && out_path.is_none() {
        return ExitCode::SUCCESS;
    }

    match format.as_str() {
        "prom" => {
            let text = render_prom();
            match &out_path {
                Some(path) => {
                    if let Err(e) = write_file(path, &text) {
                        return fail(&e);
                    }
                    println!("wrote {}", path.display());
                }
                None => print!("{text}"),
            }
        }
        "md" => {
            let out_path = out_path.unwrap_or_else(|| dir.join("REPORT.md"));
            let mut report = String::from("# MuxTune reproduction — experiment artifacts\n\n");
            report.push_str("Generated from `target/experiments/*.json` (run `cargo bench --workspace` to refresh).\n\n");
            let mut found = 0;
            for (id, title) in EXPERIMENTS {
                let path = dir.join(format!("{id}.json"));
                report.push_str(&format!("## {title}\n\n"));
                match fs::read_to_string(&path)
                    .ok()
                    .and_then(|s| serde_json::from_str(&s).ok())
                {
                    Some(v) => {
                        found += 1;
                        summarize(&v, 0, &mut report);
                        report.push('\n');
                    }
                    None => report.push_str("*(artifact missing — bench not run yet)*\n\n"),
                }
            }
            if let Err(e) = write_file(&out_path, &report) {
                return fail(&e);
            }
            println!(
                "wrote {} ({found}/{} experiments present)",
                out_path.display(),
                EXPERIMENTS.len()
            );
        }
        other => return fail(&format!("unknown --format `{other}` (expected md or prom)")),
    }
    ExitCode::SUCCESS
}
