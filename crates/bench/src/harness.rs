//! Shared helpers for the figure/table regeneration benches.
//!
//! Every bench prints the paper's rows/series next to our measured values
//! and appends a JSON record under `target/experiments/` so EXPERIMENTS.md
//! can be regenerated from artifacts.

use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};
use std::time::Instant;

use mux_data::corpus::{Corpus, DatasetKind};
use mux_gpu_sim::chrome_trace::chrome_trace;
use mux_gpu_sim::spec::{GpuSpec, LinkSpec};
use mux_gpu_sim::timeline::{Cluster, OpRecord};
use mux_model::config::ModelConfig;
use mux_obs_analysis::{critical_path, device_attribution, PerfMeasurement, StallClass};
use mux_parallel::plan::HybridParallelism;
use mux_peft::registry::TaskRegistry;
use mux_peft::types::{PeftTask, TaskId};
use muxtune_core::cost::CostModel;
use muxtune_core::fusion::{
    fuse_dp_seed, fuse_tasks, FusionPolicy, IncrementalPlanner, RangeBuild,
};
use muxtune_core::grouping::group_htasks;
use muxtune_core::planner::{plan_and_run_traced, MuxTuneReport, PlannerConfig};

/// A single-node A40 testbed (Testbed-A style).
pub fn a40_cluster(gpus: usize) -> Cluster {
    Cluster::single_node(GpuSpec::a40(), gpus, LinkSpec::nvlink_a40())
}

/// A multi-node A40 testbed (Testbed-B style: 2 GPUs per node, IB).
pub fn a40_multinode(nodes: usize) -> Cluster {
    Cluster::multi_node(
        GpuSpec::a40(),
        nodes,
        2,
        LinkSpec::nvlink_a40(),
        LinkSpec::ib100(),
    )
}

/// A single-node H100 testbed (Testbed-C style).
pub fn h100_cluster(gpus: usize) -> Cluster {
    Cluster::single_node(GpuSpec::h100(), gpus, LinkSpec::nvlink_h100())
}

/// The §5.1 dataset combinations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Combo {
    /// Same dataset for every co-located task.
    Uniform(DatasetKind),
    /// Different datasets across tasks.
    NonUniform,
}

impl Combo {
    /// Dataset of the `i`-th task.
    pub fn dataset(&self, i: usize) -> DatasetKind {
        match self {
            Combo::Uniform(k) => *k,
            Combo::NonUniform => match i % 3 {
                0 => DatasetKind::Sst2,
                1 => DatasetKind::OpenBookQa,
                _ => DatasetKind::Rte,
            },
        }
    }

    /// Label for output.
    pub fn label(&self) -> String {
        match self {
            Combo::Uniform(k) => format!("Uniform({})", k.name()),
            Combo::NonUniform => "Non-uniform".into(),
        }
    }
}

/// Builds a registry of `n_tasks` LoRA tasks plus their corpora. Each
/// task's global batch holds `micro_batch * micro_batches` sequences, so
/// the corpus size *is* the per-task global batch size.
pub fn build_workload(
    backbone: &ModelConfig,
    combo: Combo,
    n_tasks: usize,
    micro_batch: usize,
    seed: u64,
) -> (TaskRegistry, BTreeMap<TaskId, Vec<usize>>) {
    build_workload_c(backbone, combo, n_tasks, micro_batch, 4, seed)
}

/// [`build_workload`] with an explicit unified micro-batch count `C`.
pub fn build_workload_c(
    backbone: &ModelConfig,
    combo: Combo,
    n_tasks: usize,
    micro_batch: usize,
    micro_batches: usize,
    seed: u64,
) -> (TaskRegistry, BTreeMap<TaskId, Vec<usize>>) {
    let mut reg = TaskRegistry::new(backbone.clone());
    let mut corpora = BTreeMap::new();
    for i in 0..n_tasks {
        let ds = combo.dataset(i);
        let id = i as TaskId + 1;
        reg.register_task(PeftTask::lora(id, 16, micro_batch, ds.max_len()))
            .expect("fresh ids");
        corpora.insert(
            id,
            Corpus::generate(ds, micro_batch * micro_batches, seed.wrapping_add(i as u64)).lengths,
        );
    }
    (reg, corpora)
}

/// Table 2's two random workloads (WL-A and WL-B), verbatim from the paper.
pub fn table2_workload(wl: char) -> Vec<(DatasetKind, usize)> {
    use DatasetKind::{OpenBookQa as Qa, Rte, Sst2};
    let batch = [4usize, 2, 4, 4, 8, 2, 4, 4];
    let sets = match wl {
        'A' => [Sst2, Qa, Qa, Sst2, Sst2, Sst2, Qa, Qa],
        'B' => [Rte, Sst2, Rte, Sst2, Sst2, Rte, Rte, Rte],
        _ => panic!("workload must be A or B"),
    };
    sets.into_iter().zip(batch).collect()
}

/// Registers a Table 2 workload repeated `repeats` times.
pub fn table2_registry(
    backbone: &ModelConfig,
    wl: char,
    repeats: usize,
) -> (TaskRegistry, BTreeMap<TaskId, Vec<usize>>) {
    let spec = table2_workload(wl);
    let mut reg = TaskRegistry::new(backbone.clone());
    let mut corpora = BTreeMap::new();
    let mut id = 1;
    for r in 0..repeats {
        for &(ds, mb) in &spec {
            reg.register_task(PeftTask::lora(id, 16, mb, ds.max_len()))
                .expect("fresh ids");
            corpora.insert(
                id,
                Corpus::generate(ds, 64, (r * 100 + id as usize) as u64).lengths,
            );
            id += 1;
        }
    }
    (reg, corpora)
}

/// Prints a bench banner.
pub fn banner(id: &str, what: &str) {
    println!("\n=== {id}: {what} ===");
}

/// Prints one paper-vs-measured comparison row.
pub fn row(label: &str, paper: &str, measured: &str) {
    println!("{label:<46} paper: {paper:<20} measured: {measured}");
}

/// Appends a JSON record to `target/experiments/<id>.json`.
pub fn save_json(id: &str, value: &serde_json::Value) {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target/experiments");
    if fs::create_dir_all(&dir).is_ok() {
        let path = dir.join(format!("{id}.json"));
        if let Ok(s) = serde_json::to_string_pretty(value) {
            let _ = fs::write(path, s);
        }
    }
}

/// Formats a speedup ratio.
pub fn x(v: f64) -> String {
    format!("{v:.2}x")
}

/// Env var naming the directory the fig benches dump Chrome traces into.
/// Unset (the default) disables trace dumping entirely.
pub const TRACE_DIR_ENV: &str = "MUX_TRACE_DIR";

/// Serializes `ops` as chrome://tracing JSON to `<dir>/<id>.trace.json`.
pub fn write_trace_file(
    dir: &Path,
    id: &str,
    ops: &[OpRecord],
    num_devices: usize,
) -> Option<PathBuf> {
    fs::create_dir_all(dir).ok()?;
    let path = dir.join(format!("{id}.trace.json"));
    let body = serde_json::to_string_pretty(&chrome_trace(ops, num_devices)).ok()?;
    fs::write(&path, body).ok()?;
    Some(path)
}

/// Builds the stall-attribution + critical-path JSON for a finished run:
/// per-device 4-class breakdown (with the conservation window) and the
/// critical-path summary.
pub fn attribution_json(ops: &[OpRecord], num_devices: usize) -> serde_json::Value {
    let attribution = device_attribution(ops, num_devices);
    let devices: Vec<serde_json::Value> = attribution
        .iter()
        .map(|d| {
            let mut m = serde_json::Map::new();
            m.insert("device".into(), d.device.into());
            m.insert("window_seconds".into(), d.window.into());
            m.insert("busy_seconds".into(), d.busy_seconds.into());
            for class in StallClass::ALL {
                m.insert(
                    format!("{}_seconds", class.name()),
                    d.class_seconds(class).into(),
                );
            }
            serde_json::Value::Object(m)
        })
        .collect();
    let mut root = serde_json::Map::new();
    root.insert("devices".into(), serde_json::Value::Array(devices));
    root.insert("critical_path".into(), critical_path(ops).to_json(32));
    serde_json::Value::Object(root)
}

/// Headline numbers of a finished run for the perf-regression gate:
/// makespan, mean achieved utilization, and the attributed stall share
/// (stall seconds over total device-windows).
pub fn measure_run(
    report: &MuxTuneReport,
    ops: &[OpRecord],
    num_devices: usize,
) -> PerfMeasurement {
    let attribution = device_attribution(ops, num_devices);
    let total_window: f64 = attribution.iter().map(|d| d.window).sum();
    let total_stall: f64 = attribution.iter().map(|d| d.stall_seconds()).sum();
    PerfMeasurement {
        makespan_seconds: report.metrics.makespan,
        mean_utilization: report.metrics.mean_utilization,
        stall_share: total_stall / total_window.max(1e-12),
    }
}

/// Profiling hook for the fig benches: when [`TRACE_DIR_ENV`] is set,
/// re-runs the given scenario with tracing on and dumps the winning
/// configuration's timeline as `<dir>/<id>.trace.json`, plus the
/// stall-attribution/critical-path summary as `<dir>/<id>.attribution.json`.
/// No-op (and no extra simulation work) when the variable is unset, so
/// benches call it unconditionally on their headline scenario.
pub fn dump_trace(
    id: &str,
    registry: &TaskRegistry,
    cluster: &Cluster,
    corpora: &BTreeMap<TaskId, Vec<usize>>,
    cfg: &PlannerConfig,
) -> Option<PathBuf> {
    let dir = PathBuf::from(std::env::var_os(TRACE_DIR_ENV)?);
    let (_, ops) = plan_and_run_traced(registry, cluster, corpora, cfg).ok()?;
    let path = write_trace_file(&dir, id, &ops, cluster.num_gpus())?;
    println!("  [trace] wrote {}", path.display());
    let attr_path = dir.join(format!("{id}.attribution.json"));
    if let Ok(body) = serde_json::to_string_pretty(&attribution_json(&ops, cluster.num_gpus())) {
        if fs::write(&attr_path, body).is_ok() {
            println!("  [trace] wrote {}", attr_path.display());
        }
    }
    Some(path)
}

/// The Fig-14 Testbed-A reference scenario used by `report --trace-out`
/// and the trace-format tests: 4 LoRA tasks on LLaMA2-7B over 4 A40s,
/// uniform OpenBookQA, tp2 x pp2 — two-device stages so the trace carries
/// tensor-parallel collectives as well as inter-stage pipeline traffic.
pub fn fig14_trace_scenario() -> (MuxTuneReport, Vec<OpRecord>, usize) {
    let cluster = a40_cluster(4);
    let (reg, corpora) = build_workload(
        &ModelConfig::llama2_7b(),
        Combo::Uniform(DatasetKind::OpenBookQa),
        4,
        4,
        42,
    );
    let cfg = PlannerConfig::muxtune(
        HybridParallelism {
            tp: 2,
            pp: 2,
            dp: 1,
        },
        4,
    );
    let (report, ops) =
        plan_and_run_traced(&reg, &cluster, &corpora, &cfg).expect("fig14 scenario plans");
    (report, ops, cluster.num_gpus())
}

/// A truncated Fig-14 scenario for CI: the same task mix and tp2 x pp2
/// layout as [`fig14_trace_scenario`] on an 8-layer backbone, so it plans
/// and simulates in well under a second while still exercising pipeline
/// bubbles, tensor-parallel collectives, and inter-stage traffic. The CI
/// perf-regression gate (`report --check-baseline`) pins this scenario's
/// headline numbers.
pub fn fig14_small_trace_scenario() -> (MuxTuneReport, Vec<OpRecord>, usize) {
    let cluster = a40_cluster(4);
    let (reg, corpora) = build_workload(
        &ModelConfig::llama2_7b().with_layers(8),
        Combo::Uniform(DatasetKind::OpenBookQa),
        4,
        4,
        42,
    );
    let cfg = PlannerConfig::muxtune(
        HybridParallelism {
            tp: 2,
            pp: 2,
            dp: 1,
        },
        4,
    );
    let (report, ops) =
        plan_and_run_traced(&reg, &cluster, &corpora, &cfg).expect("fig14-small scenario plans");
    (report, ops, cluster.num_gpus())
}

/// The task count the `planner-scale` CI gate measures at.
pub const PLANNER_SCALE_M: usize = 1024;

/// Registry of `m` varied-shape LoRA tasks on an 8-layer backbone for the
/// `planner-scale` scenario. No corpora are attached: fusion runs on the
/// padded range-prober path, which is exactly the hot path the scale gate
/// times. The rank-1024 adapters carry enough optimizer state that only
/// narrow task ranges fit in one hTask — the memory-tight multi-tenant
/// regime the DP's feasibility pruning is built for.
pub fn planner_scale_registry(m: usize) -> TaskRegistry {
    let mut reg = TaskRegistry::new(ModelConfig::llama2_7b().with_layers(8));
    for i in 0..m {
        let seq = [64usize, 128, 256][i % 3];
        reg.register_task(PeftTask::lora(i as TaskId + 1, 1024, 1 + i % 4, seq))
            .expect("fresh ids");
    }
    reg
}

fn planner_scale_cost_model(reg: &TaskRegistry) -> CostModel<'_> {
    CostModel::new(reg, GpuSpec::a40(), HybridParallelism::pipeline(4))
}

/// One timed planner hot-path pass at `m` tasks: value-table DP fusion
/// (Eq. 6) over the padded prober, then Eq. 7 grouping of the fused hTasks.
/// Returns wall-clock seconds.
pub fn planner_scale_seconds(m: usize) -> f64 {
    let reg = planner_scale_registry(m);
    let cm = planner_scale_cost_model(&reg);
    let tasks: Vec<&PeftTask> = reg.tasks().collect();
    let build = RangeBuild::Padded { micro_batches: 4 };
    let start = Instant::now();
    let plan = fuse_tasks(&cm, &tasks, FusionPolicy::Dp, &build)
        .expect("padded scale workload is feasible");
    let grouping = group_htasks(&cm, &plan.htasks);
    let secs = start.elapsed().as_secs_f64();
    std::hint::black_box((plan.htasks.len(), grouping.estimated));
    secs
}

/// The same `m`-task workload through the retained seed O(M³) DP
/// ([`fuse_dp_seed`], no grouping), for the `planner-scale` speedup
/// comparison. Slow by design — keep `m` modest unless you mean it.
pub fn planner_scale_seed_seconds(m: usize) -> f64 {
    let reg = planner_scale_registry(m);
    let cm = planner_scale_cost_model(&reg);
    let tasks: Vec<&PeftTask> = reg.tasks().collect();
    let build = RangeBuild::Padded { micro_batches: 4 };
    let start = Instant::now();
    let plan = fuse_dp_seed(&cm, &tasks, &build).expect("padded scale workload is feasible");
    let secs = start.elapsed().as_secs_f64();
    std::hint::black_box(plan.htasks.len());
    secs
}

/// The `planner-scale` CI measurement: best-of-3 planning wall time at
/// [`PLANNER_SCALE_M`] tasks reported as the makespan. Utilization and
/// stall share are pinned at their ideal values so only the wall-time axis
/// gates.
pub fn planner_scale_measurement() -> PerfMeasurement {
    let secs = (0..3)
        .map(|_| planner_scale_seconds(PLANNER_SCALE_M))
        .fold(f64::INFINITY, f64::min);
    PerfMeasurement {
        makespan_seconds: secs,
        mean_utilization: 1.0,
        stall_share: 0.0,
    }
}

/// Task count of the `churn-replay` CI gate (the mid-size point of the
/// incremental-replanning tentpole).
pub const CHURN_M: usize = 4096;

/// Membership deltas the `churn-replay` gate applies against the warm
/// planner (1000 arrivals/cancellations, replanning after each).
pub const CHURN_DELTAS: usize = 1000;

/// Task count of the `planner-incremental` CI gate (the large point:
/// warm fill plus a burst of deltas at 16384 tasks).
pub const PLANNER_INCREMENTAL_M: usize = 16384;

/// Deltas the `planner-incremental` gate applies after the warm fill.
pub const PLANNER_INCREMENTAL_DELTAS: usize = 32;

/// xorshift64* step — the deterministic churn schedule (no external RNG).
fn churn_rng(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    *state = x;
    x.wrapping_mul(0x2545_F491_4F6C_DD1D)
}

/// A fresh planner-scale-shaped task for churn id `id`.
fn churn_task(id: TaskId) -> PeftTask {
    let i = id as usize;
    PeftTask::lora(id, 1024, 1 + i % 4, [64usize, 128, 256][i % 3])
}

/// Warm-fills an [`IncrementalPlanner`] with the planner-scale workload
/// at `m` tasks and plans once (the fill is *not* timed), then applies
/// `deltas` pseudo-random arrivals/cancellations — replanning after
/// every single delta — and returns the total replan wall time. This is
/// the steady-state multi-tenant regime the tentpole targets: each delta
/// invalidates only the ranges crossing its sorted position, so the
/// per-delta cost is bounded by the row width, not by M.
pub fn churn_replay_seconds(m: usize, deltas: usize) -> f64 {
    let mut reg = planner_scale_registry(m);
    let build = RangeBuild::Padded { micro_batches: 4 };
    let mut inc = IncrementalPlanner::new();
    let mut live: Vec<TaskId> = Vec::with_capacity(m + deltas);
    let seed: Vec<PeftTask> = reg.tasks().cloned().collect();
    for t in seed {
        live.push(t.id);
        inc.insert(t, 0);
    }
    inc.plan(&planner_scale_cost_model(&reg), &build)
        .expect("planner-scale churn is feasible");
    let mut next_id = m as TaskId + 1;
    let mut state = 0x9E37_79B9_7F4A_7C15u64;
    let start = Instant::now();
    for _ in 0..deltas {
        let r = churn_rng(&mut state);
        // ~50/50 arrivals vs cancellations, never draining below half.
        if r & 1 == 0 || live.len() <= m / 2 {
            let task = churn_task(next_id);
            reg.register_task(task.clone()).expect("fresh id");
            inc.insert(task, 0);
            live.push(next_id);
            next_id += 1;
        } else {
            let victim = live.swap_remove((r >> 1) as usize % live.len());
            reg.deregister_task(victim).expect("victim registered");
            assert!(inc.remove(victim), "victim is live");
        }
        // The cost model is rebuilt per delta, exactly as the service's
        // estimator does — its construction cost is part of a replan.
        let cm = planner_scale_cost_model(&reg);
        let plan = inc.plan(&cm, &build).expect("churn stays feasible");
        std::hint::black_box(plan.htasks.len());
    }
    start.elapsed().as_secs_f64()
}

/// One from-scratch value-table DP fusion over the live churn membership
/// at `m` tasks — what every delta would cost without the warm planner
/// (the [`fuse_tasks`] call behind `ReplanMode::Estimate`). Multiply by
/// the delta count for the from-scratch churn total.
pub fn churn_scratch_fusion_seconds(m: usize) -> f64 {
    let reg = planner_scale_registry(m);
    let cm = planner_scale_cost_model(&reg);
    let tasks: Vec<&PeftTask> = reg.tasks().collect();
    let build = RangeBuild::Padded { micro_batches: 4 };
    let start = Instant::now();
    let plan =
        fuse_tasks(&cm, &tasks, FusionPolicy::Dp, &build).expect("scale workload is feasible");
    let secs = start.elapsed().as_secs_f64();
    std::hint::black_box(plan.htasks.len());
    secs
}

/// The `churn-replay` CI measurement: total wall time of
/// [`CHURN_DELTAS`] warm-planner replans at [`CHURN_M`] tasks, reported
/// as the makespan. A single run — the warm fill already dominates
/// best-of-N — with utilization/stall pinned so only wall time gates.
pub fn churn_replay_measurement() -> PerfMeasurement {
    PerfMeasurement {
        makespan_seconds: churn_replay_seconds(CHURN_M, CHURN_DELTAS),
        mean_utilization: 1.0,
        stall_share: 0.0,
    }
}

/// The `planner-incremental` CI measurement: cold fill plus
/// [`PLANNER_INCREMENTAL_DELTAS`] warm deltas at
/// [`PLANNER_INCREMENTAL_M`] tasks — the scale point where the trimmed
/// per-range rows (feasible-prefix storage) keep the tables far below
/// the dense O(M²) footprint. Utilization/stall pinned; wall time gates.
pub fn planner_incremental_measurement() -> PerfMeasurement {
    let start = Instant::now();
    let secs = churn_replay_seconds(PLANNER_INCREMENTAL_M, PLANNER_INCREMENTAL_DELTAS);
    std::hint::black_box(secs);
    PerfMeasurement {
        makespan_seconds: start.elapsed().as_secs_f64(),
        mean_utilization: 1.0,
        stall_share: 0.0,
    }
}

/// Ticks the service-telemetry scenario runs for (`report --journal-out`
/// / `--watch` defaults).
pub const SERVICE_TELEMETRY_TICKS: usize = 60;

/// Simulated seconds per tick of the service-telemetry scenario.
pub const SERVICE_TELEMETRY_DT: f64 = 0.05;

/// Tick at which [`service_telemetry_step`] injects the co-tenant storm.
pub const SERVICE_TELEMETRY_STORM_TICK: u64 = 20;

/// The streaming-telemetry reference scenario: an 8-GPU A40 pool
/// (8-layer backbones for speed) with monitoring on, seeded with a
/// steady co-tenant pair, one best-effort long job, and one job whose
/// SLO is hopeless — so a full run always exercises the `slo_burn` rule,
/// and the mid-run storm injected by [`service_telemetry_step`] exercises
/// `throughput_drop` on the victim.
pub fn service_telemetry_scenario() -> mux_api::FineTuneService {
    let mut cfg = mux_api::ServiceConfig::a40_pool(8);
    cfg.backbone_layers = Some(8);
    let mut svc = mux_api::FineTuneService::new(cfg);
    svc.enable_monitoring(mux_api::MonitorConfig::default());
    let spec =
        |tokens: u64| mux_api::JobSpec::lora("LLaMA2-7B", DatasetKind::OpenBookQa, 16, 4, tokens);
    svc.submit(spec(40_000_000));
    svc.submit(spec(40_000_000));
    svc.submit(spec(40_000_000).with_slo(0.5)); // hopeless: burns from tick 1
    svc
}

/// Advances the telemetry scenario by one tick, injecting a co-tenant
/// storm (a burst of arrivals on the shared backbone) at
/// [`SERVICE_TELEMETRY_STORM_TICK`] so the established jobs' throughput
/// collapses mid-run.
pub fn service_telemetry_step(svc: &mut mux_api::FineTuneService) {
    if svc.current_tick() == SERVICE_TELEMETRY_STORM_TICK {
        for _ in 0..5 {
            svc.submit(mux_api::JobSpec::lora(
                "LLaMA2-7B",
                DatasetKind::OpenBookQa,
                16,
                4,
                40_000_000,
            ));
        }
    }
    svc.tick(SERVICE_TELEMETRY_DT);
}

/// The `telemetry-overhead` CI measurement: best-of-3 wall time of 2M
/// **disabled-path** telemetry ingests (the zero-cost guarantee),
/// reported as the makespan. Utilization and stall share are pinned so
/// only the wall-time axis gates.
pub fn telemetry_overhead_measurement() -> PerfMeasurement {
    const OPS: usize = 2_000_000;
    mux_obs::timeseries::set_telemetry(false);
    let secs = (0..3)
        .map(|_| {
            let start = Instant::now();
            for i in 0..OPS {
                mux_obs::timeseries::ingest("bench.telemetry.off", i as f64);
            }
            start.elapsed().as_secs_f64()
        })
        .fold(f64::INFINITY, f64::min);
    PerfMeasurement {
        makespan_seconds: secs,
        mean_utilization: 1.0,
        stall_share: 0.0,
    }
}

/// Jobs in the `trace-replay` CI gate scenario (10⁴ — the scale the
/// workload tentpole promises; the criterion bench also covers 10⁵).
pub const TRACE_REPLAY_JOBS: usize = 10_000;

/// Seed of the `trace-replay` gate trace (matches the golden trace).
pub const TRACE_REPLAY_SEED: u64 = 42;

/// The `trace-replay` CI measurement: wall time of one full 10⁴-job FCFS
/// trace replay (generation excluded), reported as the makespan. A single
/// run — the scenario takes tens of seconds, so best-of-N would dominate
/// the gate, and its 3× relative tolerance absorbs host noise anyway.
/// Utilization and stall share are pinned at their ideal values so only
/// the wall-time axis gates.
pub fn trace_replay_measurement() -> PerfMeasurement {
    let cfg = mux_workload::TraceConfig::standard(TRACE_REPLAY_JOBS);
    let trace = mux_workload::generate(TRACE_REPLAY_SEED, &cfg);
    let opts = mux_workload::ReplayOptions::default();
    let start = Instant::now();
    let report = mux_workload::replay_trace_by_name(&trace, "fcfs", &opts)
        .expect("golden-seed trace replays");
    std::hint::black_box(report.journal_fingerprint);
    PerfMeasurement {
        makespan_seconds: start.elapsed().as_secs_f64(),
        mean_utilization: 1.0,
        stall_share: 0.0,
    }
}

/// Requests in the `serve-mix` gate scenario (the CLI's release leg runs
/// 10⁴; the gate uses a smaller mix so the perf job stays fast).
pub const SERVE_MIX_REQUESTS: usize = 2_000;

/// The `serve-mix` CI measurement: wall time of one mixed
/// training+serving run at the golden seed (generation included — it is
/// a negligible slice of the run). A single run under the 3× wall-time
/// tolerance, like `trace-replay`. The scenario's `serving_requests` /
/// `serving_prefill_batches` / `serving_decode_tokens` work counters are
/// deterministic, so the baseline additionally carries exact work
/// budgets — any drift in what the serving runtime does per request
/// fails the gate until re-blessed.
pub fn serve_mix_measurement() -> PerfMeasurement {
    let cfg = mux_workload::ServeMixConfig::standard(SERVE_MIX_REQUESTS);
    let start = Instant::now();
    let report = mux_workload::run_serve_mix(&cfg).expect("golden-seed serve mix drains");
    std::hint::black_box(report.fingerprint);
    PerfMeasurement {
        makespan_seconds: start.elapsed().as_secs_f64(),
        mean_utilization: 1.0,
        stall_share: 0.0,
    }
}

/// The `sketch-overhead` CI measurement: best-of-3 wall time of 2M
/// quantile-sketch inserts plus a 64-way shard merge — the hot path the
/// timeseries window aggregator and the replay report now run instead of
/// exact-sample quantiles. Gated at wall-time tolerance so an
/// accidentally super-constant insert (e.g. a rebucketing loop) fails CI.
/// Utilization and stall share are pinned so only the wall-time axis
/// gates.
pub fn sketch_overhead_measurement() -> PerfMeasurement {
    const OPS: usize = 2_000_000;
    const SHARDS: usize = 64;
    let secs = (0..3)
        .map(|_| {
            let start = Instant::now();
            let mut shards: Vec<mux_obs::QuantileSketch> = (0..SHARDS)
                .map(|_| mux_obs::QuantileSketch::default())
                .collect();
            // xorshift64 log-uniform stream: deterministic, spans ~6
            // decades so every insert exercises the log-bucket math.
            let mut state = 0x9e37_79b9_7f4a_7c15u64;
            for i in 0..OPS {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                let u = (state >> 11) as f64 / (1u64 << 53) as f64;
                shards[i % SHARDS].insert(10f64.powf(u * 6.0 - 3.0));
            }
            let mut merged = mux_obs::QuantileSketch::default();
            for s in &shards {
                merged.merge(s).expect("shards share one alpha");
            }
            std::hint::black_box(merged.quantile(0.99));
            start.elapsed().as_secs_f64()
        })
        .fold(f64::INFINITY, f64::min);
    PerfMeasurement {
        makespan_seconds: secs,
        mean_utilization: 1.0,
        stall_share: 0.0,
    }
}

/// The `profile-overhead` CI measurement: best-of-3 wall time of 2M
/// **disabled-path** profiler touches — a `span` attempt plus a [`work`]
/// counter add per iteration, both of which must reduce to a single
/// relaxed atomic load while profiling is off. Gated at wall-time
/// tolerance so an accidental allocation or lock on the disabled path
/// fails CI. Utilization and stall share are pinned so only the
/// wall-time axis gates.
///
/// [`work`]: mux_obs::profile::work
pub fn profile_overhead_measurement() -> PerfMeasurement {
    const OPS: usize = 2_000_000;
    mux_obs::set_enabled(false);
    mux_obs::profile::set_profiling(false);
    let secs = (0..3)
        .map(|_| {
            let start = Instant::now();
            for i in 0..OPS {
                let s = mux_obs::span("bench.profile.off");
                debug_assert!(s.is_none());
                std::hint::black_box(&s);
                mux_obs::profile::work("bench.profile.noop", i as u64 & 1);
            }
            start.elapsed().as_secs_f64()
        })
        .fold(f64::INFINITY, f64::min);
    PerfMeasurement {
        makespan_seconds: secs,
        mean_utilization: 1.0,
        stall_share: 0.0,
    }
}

/// Directory to drop self-profile artifacts into; when set, benches (and
/// `report --profile-out`) emit the call-tree profile of their headline
/// scenario. Mirrors [`TRACE_DIR_ENV`].
pub const PROFILE_DIR_ENV: &str = "MUX_PROFILE_DIR";

/// Writes the three profile artifacts for the current
/// [`mux_obs::profile::snapshot_profile`] next to `base`:
/// `<base>` (full JSON), `<base>` with the extension swapped to
/// `work.json` (the bitwise-deterministic work profile), `collapsed`
/// (flamegraph.pl collapsed stacks), and `chrome.json` (Chrome/Perfetto
/// trace). Returns the paths written.
pub fn write_profile_artifacts(base: &std::path::Path) -> std::io::Result<Vec<PathBuf>> {
    if let Some(dir) = base.parent() {
        if !dir.as_os_str().is_empty() {
            fs::create_dir_all(dir)?;
        }
    }
    let snap = mux_obs::profile::snapshot_profile();
    let mut written = Vec::new();
    fs::write(base, mux_obs::profile::profile_json(&snap))?;
    written.push(base.to_path_buf());
    let work = base.with_extension("work.json");
    fs::write(&work, mux_obs::profile::work_profile_json(&snap))?;
    written.push(work);
    let collapsed = base.with_extension("collapsed");
    fs::write(&collapsed, mux_obs::profile::collapsed_stacks(&snap))?;
    written.push(collapsed);
    let chrome = base.with_extension("chrome.json");
    let rows = mux_obs_analysis::parse_profile(&mux_obs::profile::profile_json(&snap))
        .expect("freshly rendered profile parses");
    fs::write(&chrome, mux_obs_analysis::profile_chrome_trace(&rows))?;
    written.push(chrome);
    Ok(written)
}

/// Profile-emission hook for the benches, mirroring [`dump_trace`]: when
/// [`PROFILE_DIR_ENV`] is set, returns a guard that profiles everything
/// until drop and then writes `<dir>/<id>.profile.json` (+ `.work.json`,
/// `.collapsed`, `.chrome.json`). No-op (and `None`) when unset.
pub fn dump_profile(id: &str) -> Option<ProfileDump> {
    let dir = PathBuf::from(std::env::var_os(PROFILE_DIR_ENV)?);
    mux_obs::profile::reset_profile();
    mux_obs::profile::set_profiling(true);
    Some(ProfileDump {
        id: id.to_string(),
        dir,
    })
}

/// Guard returned by [`dump_profile`]; writes the artifacts on drop.
#[must_use = "profiling stops and artifacts are written when the guard drops"]
pub struct ProfileDump {
    id: String,
    dir: PathBuf,
}

impl Drop for ProfileDump {
    fn drop(&mut self) {
        mux_obs::profile::set_profiling(false);
        let base = self.dir.join(format!("{}.profile.json", self.id));
        match write_profile_artifacts(&base) {
            Ok(paths) => {
                for p in paths {
                    println!("  [profile] wrote {}", p.display());
                }
            }
            Err(e) => eprintln!("  [profile] failed to write {}: {e}", base.display()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_matches_paper() {
        let a = table2_workload('A');
        assert_eq!(a.len(), 8);
        assert_eq!(a[0], (DatasetKind::Sst2, 4));
        assert_eq!(a[4], (DatasetKind::Sst2, 8));
        let b = table2_workload('B');
        assert_eq!(b[0], (DatasetKind::Rte, 4));
        assert_eq!(b[7], (DatasetKind::Rte, 4));
    }

    #[test]
    fn workload_builder_counts() {
        let (reg, corp) = build_workload(&ModelConfig::gpt3_2_7b(), Combo::NonUniform, 6, 4, 1);
        assert_eq!(reg.len(), 6);
        assert_eq!(corp.len(), 6);
    }

    #[test]
    fn table2_registry_repeats() {
        let (reg, _) = table2_registry(&ModelConfig::gpt3_2_7b(), 'A', 4);
        assert_eq!(reg.len(), 32);
    }

    #[test]
    fn planner_scale_scenario_plans_at_small_m() {
        let fast = planner_scale_seconds(16);
        let seed = planner_scale_seed_seconds(16);
        assert!(fast.is_finite() && fast >= 0.0);
        assert!(seed.is_finite() && seed >= 0.0);
    }
}
