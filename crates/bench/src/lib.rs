//! # mux-bench
//!
//! The benchmark harness: shared helpers for regenerating every table and
//! figure of the paper (see the `benches/` targets and EXPERIMENTS.md).

pub mod harness;
