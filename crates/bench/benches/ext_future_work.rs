//! §6 extension experiments (the paper's "Discussion and Future Work"):
//!
//! 1. **Energy efficiency** — MuxTune mitigates wasted device stalls, so
//!    the same content costs fewer joules (tokens/joule up);
//! 2. **Priority-based scheduling** — dedicated instances keep
//!    high-priority task latency at solo levels while low-priority tasks
//!    co-locate for throughput;
//! 3. **SLO-aware admission control** — co-location is admitted only when
//!    every co-resident stays within its SLO.

use mux_baselines::runner::{run_system, SystemKind};
use mux_bench::harness::{a40_cluster, banner, build_workload, row, save_json, x, Combo};
use mux_cluster::policies::{assign_priorities, replay_priority, Priority};
use mux_cluster::sim::{replay_fcfs, ClusterShape, ThroughputProfile};
use mux_cluster::trace::generate;
use mux_data::corpus::DatasetKind;
use mux_model::config::ModelConfig;

fn energy() -> serde_json::Value {
    banner(
        "Ext 1",
        "energy efficiency (§6): tokens per joule, MuxTune vs baselines",
    );
    let (reg, corpora) = build_workload(
        &ModelConfig::llama2_7b(),
        Combo::Uniform(DatasetKind::OpenBookQa),
        4,
        8,
        3,
    );
    let cluster = a40_cluster(4);
    let mut out = serde_json::Map::new();
    let mut mux_tpj = 0.0;
    for sys in SystemKind::ALL {
        let rep = run_system(sys, &reg, &cluster, &corpora, 4)
            .unwrap_or_else(|_| panic!("{}", sys.name()));
        println!(
            "  {:<8}: {:>8.1} kJ, {:>8.1} effective tokens/joule",
            sys.name(),
            rep.metrics.energy_joules / 1e3,
            rep.metrics.tokens_per_joule
        );
        if sys == SystemKind::MuxTune {
            mux_tpj = rep.metrics.tokens_per_joule;
        } else {
            row(
                &format!("  energy efficiency vs {}", sys.name()),
                "higher (stalls burn idle power)",
                &x(mux_tpj / rep.metrics.tokens_per_joule),
            );
        }
        out.insert(
            sys.name().into(),
            serde_json::json!({
                "joules": rep.metrics.energy_joules,
                "tokens_per_joule": rep.metrics.tokens_per_joule,
            }),
        );
    }
    serde_json::Value::Object(out)
}

fn priority_and_slo() -> serde_json::Value {
    banner(
        "Ext 2+3",
        "priority-based co-location and SLO admission control (§6)",
    );
    let trace = generate(800, 17, None);
    let shape = ClusterShape {
        total_gpus: 128,
        gpus_per_instance: 4,
    };
    let profile = ThroughputProfile::from_rates(vec![1.0, 1.5, 1.8, 2.0]).expect("non-empty");

    // Plain FCFS with co-location everywhere.
    let fcfs = replay_fcfs(&trace, shape, &profile).expect("valid shape");
    // Priority-aware: 15% high-priority tasks get dedicated instances.
    let prios = assign_priorities(&trace, 0.15).expect("fraction in range");
    let pri = replay_priority(&trace, &prios, shape, &profile, None).expect("valid inputs");
    let solo_high: f64 = {
        let hi: Vec<f64> = trace
            .iter()
            .zip(&prios)
            .filter(|(_, &p)| p == Priority::High)
            .map(|(t, _)| t.duration_min)
            .collect();
        hi.iter().sum::<f64>() / hi.len() as f64
    };
    println!(
        "  FCFS-colocate : throughput {:.1}, mean JCT {:.0} min",
        fcfs.throughput, fcfs.mean_jct_min
    );
    println!(
        "  priority-aware: throughput {:.1}, high JCT {:.0} (service {:.0} = solo {:.0}), low JCT {:.0}, jain(slowdown) {:.3}",
        pri.throughput,
        pri.high.mean_jct_min,
        pri.high.mean_jct_min - pri.high.mean_queue_min,
        solo_high,
        pri.low.mean_jct_min,
        pri.jain_slowdown
    );
    row(
        "  high-priority latency guarantee",
        "dedicated resources, solo-level latency",
        &format!(
            "service/solo = {:.3}",
            (pri.high.mean_jct_min - pri.high.mean_queue_min) / solo_high
        ),
    );

    // SLO-aware admission control over an all-low-priority trace.
    let all_low = vec![Priority::Low; trace.len()];
    let slo = replay_priority(&trace, &all_low, shape, &profile, Some(1.8)).expect("valid inputs");
    println!(
        "  SLO admission (1.8x): attainment {:.1}%, throughput {:.1}",
        slo.low.slo_attainment * 100.0,
        slo.throughput
    );
    row(
        "  SLO attainment under admission control",
        "all colocated tasks complete within SLO",
        &format!("{:.1}%", slo.low.slo_attainment * 100.0),
    );
    serde_json::json!({
        "fcfs_throughput": fcfs.throughput,
        "priority_throughput": pri.throughput,
        "high_service_over_solo": (pri.high.mean_jct_min - pri.high.mean_queue_min) / solo_high,
        "slo_attainment": slo.low.slo_attainment,
    })
}

fn main() {
    let e = energy();
    let p = priority_and_slo();
    save_json(
        "ext_future_work",
        &serde_json::json!({ "energy": e, "priority_slo": p }),
    );
}
