//! `churn-replay`: warm incremental replanning vs from-scratch recompute
//! under membership churn.
//!
//! Replays [`CHURN_DELTAS`] arrivals/cancellations (deterministic
//! xorshift schedule) against a warm [`IncrementalPlanner`] at
//! [`CHURN_M`] tasks, replanning after every delta, and compares the
//! per-delta cost against what each delta costs from scratch:
//!
//! * the value-table DP fusion behind `ReplanMode::Estimate`
//!   (best-of-3 sample, extrapolated to the delta count), and
//! * the full `ReplanMode::Simulate` path (`plan_and_run`: fusion +
//!   grouping + engine simulation), sampled once — set
//!   `MUX_CHURN_SIM_SKIP=1` to omit it on slow hosts.
//!
//! The tentpole claim this bench pins: the warm planner beats from-
//! scratch `Simulate` recomputation by ≥ 5× per delta at M = 4096. The
//! CI perf gate tracks the incremental leg via `report
//! --check-baseline` (scenarios `churn-replay` and `planner-incremental`).

use std::time::Instant;

use mux_bench::harness::{
    banner, churn_replay_seconds, churn_scratch_fusion_seconds, dump_profile,
    planner_scale_registry, row, save_json, x, CHURN_DELTAS, CHURN_M, PLANNER_INCREMENTAL_DELTAS,
    PLANNER_INCREMENTAL_M,
};
use mux_gpu_sim::spec::GpuSpec;
use mux_gpu_sim::timeline::Cluster;

fn main() {
    banner(
        "churn_replay",
        "warm incremental replans vs from-scratch recompute under churn",
    );
    let _profile = dump_profile("churn_replay");

    let inc_total = churn_replay_seconds(CHURN_M, CHURN_DELTAS);
    let inc_per_delta = inc_total / CHURN_DELTAS as f64;
    row(
        &format!("M={CHURN_M} warm replan x{CHURN_DELTAS}"),
        "bounded by row width, not M",
        &format!("{inc_total:.4}s total, {:.3}ms/delta", inc_per_delta * 1e3),
    );

    let scratch = (0..3)
        .map(|_| churn_scratch_fusion_seconds(CHURN_M))
        .fold(f64::INFINITY, f64::min);
    row(
        &format!("M={CHURN_M} from-scratch fusion (Estimate path)"),
        "full DP per delta",
        &format!(
            "{scratch:.4}s/delta ({}, {:.1}s extrapolated over {CHURN_DELTAS})",
            x(scratch / inc_per_delta.max(1e-12)),
            scratch * CHURN_DELTAS as f64
        ),
    );

    let sim = (std::env::var_os("MUX_CHURN_SIM_SKIP").is_none()).then(|| {
        let reg = planner_scale_registry(CHURN_M);
        let cluster =
            Cluster::single_node(GpuSpec::a40(), 4, mux_gpu_sim::spec::LinkSpec::nvlink_a40());
        let cfg = muxtune_core::planner::PlannerConfig::muxtune(
            mux_parallel::plan::HybridParallelism::pipeline(4),
            4,
        );
        let corpora = std::collections::BTreeMap::new();
        let start = Instant::now();
        let report = muxtune_core::planner::plan_and_run(&reg, &cluster, &corpora, &cfg)
            .expect("scale workload simulates");
        std::hint::black_box(report.metrics.effective_throughput);
        start.elapsed().as_secs_f64()
    });
    match sim {
        Some(sim) => {
            let speedup = sim / inc_per_delta.max(1e-12);
            row(
                &format!("M={CHURN_M} from-scratch Simulate"),
                ">=5x slower than warm replan",
                &format!("{sim:.4}s/delta ({} vs warm)", x(speedup)),
            );
            assert!(
                speedup >= 5.0,
                "tentpole claim violated: Simulate {sim:.4}s vs warm {inc_per_delta:.6}s/delta \
                 is only {speedup:.1}x"
            );
        }
        None => row(
            &format!("M={CHURN_M} from-scratch Simulate"),
            ">=5x slower than warm replan",
            "skipped (MUX_CHURN_SIM_SKIP=1)",
        ),
    }

    let big = churn_replay_seconds(PLANNER_INCREMENTAL_M, PLANNER_INCREMENTAL_DELTAS);
    row(
        &format!("M={PLANNER_INCREMENTAL_M} warm replan x{PLANNER_INCREMENTAL_DELTAS}"),
        "trimmed rows keep tables O(M*W)",
        &format!(
            "{big:.4}s total, {:.3}ms/delta",
            big / PLANNER_INCREMENTAL_DELTAS as f64 * 1e3
        ),
    );

    save_json(
        "churn_replay",
        &serde_json::json!({
            "m": CHURN_M,
            "deltas": CHURN_DELTAS,
            "incremental_total_seconds": inc_total,
            "incremental_per_delta_seconds": inc_per_delta,
            "scratch_fusion_per_delta_seconds": scratch,
            "scratch_fusion_speedup": scratch / inc_per_delta.max(1e-12),
            "simulate_per_delta_seconds": sim,
            "simulate_speedup": sim.map(|s| s / inc_per_delta.max(1e-12)),
            "large_m": PLANNER_INCREMENTAL_M,
            "large_deltas": PLANNER_INCREMENTAL_DELTAS,
            "large_total_seconds": big,
        }),
    );
}
