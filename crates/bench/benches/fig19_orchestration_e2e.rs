//! Figure 19: throughput of operator orchestration alone — backbone
//! sharing + orchestration enabled, task fusion and chunk alignment
//! disabled — with a varying number of tasks, vs the NeMo baseline.
//!
//! Paper (LLaMA7B, sequence lengths 128/64/32): (a) 1 micro-batch of size
//! 8 under tensor parallelism — 1.20x / 1.22x / 1.23x; (b) 8 micro-batches
//! under the pipeline — 1.24x / 1.35x / 1.36x, rising to ~1.59x with only
//! 4 micro-batches (which leave more bubbles to fill).

use std::collections::BTreeMap;

use mux_baselines::runner::{run_system, SystemKind};
use mux_bench::harness::{a40_cluster, banner, row, save_json, x};
use mux_data::align::AlignStrategy;
use mux_model::config::ModelConfig;
use mux_parallel::plan::HybridParallelism;
use mux_peft::registry::TaskRegistry;
use mux_peft::types::{PeftTask, TaskId};
use muxtune_core::fusion::FusionPolicy;
use muxtune_core::planner::{plan_and_run, PlannerConfig};

fn registry(n_tasks: usize, micro_batch: usize, seq: usize) -> TaskRegistry {
    let mut reg = TaskRegistry::new(ModelConfig::llama2_7b().with_layers(16));
    for i in 0..n_tasks {
        reg.register_task(PeftTask::lora(i as TaskId + 1, 16, micro_batch, seq))
            .expect("ids");
    }
    reg
}

/// Orchestration-only MuxTune: temporal hTasks (no fusion), zero-pad
/// alignment (no chunking), orchestration + overlap on.
fn orchestration_only(plan: HybridParallelism, mbs: usize) -> PlannerConfig {
    let mut pc = PlannerConfig::muxtune(plan, mbs);
    pc.fusion = FusionPolicy::AllTemporal;
    pc.align = AlignStrategy::ZeroPadGlobalMax;
    pc
}

fn sweep(
    plan: HybridParallelism,
    micro_batches: usize,
    label: &str,
    paper: &str,
) -> serde_json::Value {
    println!("--- {label} ---");
    let cluster = a40_cluster(4);
    let mut rows = Vec::new();
    for &seq in &[128usize, 64, 32] {
        let mut line = format!("  seq {seq:>4}:");
        let mut best = 0.0f64;
        for n in [2usize, 4, 8] {
            let reg = registry(n, 8, seq);
            let mux = plan_and_run(
                &reg,
                &cluster,
                &BTreeMap::new(),
                &orchestration_only(plan, micro_batches),
            )
            .map(|r| r.metrics.throughput)
            .unwrap_or(0.0);
            let nemo = run_system(
                SystemKind::Nemo,
                &reg,
                &cluster,
                &BTreeMap::new(),
                micro_batches,
            )
            .map(|r| r.metrics.throughput)
            .unwrap_or(f64::INFINITY);
            let ratio = mux / nemo;
            best = best.max(ratio);
            line.push_str(&format!(" {n}tasks {}", x(ratio)));
            rows.push(serde_json::json!({
                "case": label, "seq": seq, "tasks": n, "mux": mux, "nemo": nemo, "ratio": ratio,
            }));
        }
        println!("{line}");
    }
    row(&format!("  {label} speedup over NeMo"), paper, "see rows");
    serde_json::json!(rows)
}

fn main() {
    banner("Fig 19", "orchestration-only throughput vs NeMo (LLaMA7B)");
    let a = sweep(
        HybridParallelism::tensor(4),
        1,
        "(a) tensor parallel, 1 micro-batch of 8",
        "1.20x / 1.22x / 1.23x",
    );
    let b = sweep(
        HybridParallelism::pipeline(4),
        8,
        "(b) pipeline, 8 micro-batches of 8",
        "1.24x / 1.35x / 1.36x",
    );
    let c = sweep(
        HybridParallelism::pipeline(4),
        4,
        "(b') pipeline, 4 micro-batches (more bubbles)",
        "up to 1.59x",
    );
    save_json(
        "fig19_orchestration_e2e",
        &serde_json::json!({ "a": a, "b": b, "fewer_mbs": c }),
    );
}
