//! Figure 3: PEFT resource inefficiencies.
//!
//! (a) single-GPU MFU of 8-layer LLaMA7B / GPT2.7B, PEFT vs pretraining,
//!     micro-batch sizes 1–8 at global batch 32, seq 128;
//! (b) operator utilization/latency of LoRA-rank GEMMs vs the pretraining
//!     GEMM `[MBS·128, 4096] × [4096, r]`;
//! (c) multi-GPU MFU of the full models at global batch 128;
//! (d) GPU and NVLink utilization under 4-GPU tensor parallelism.

use mux_bench::harness::{a40_cluster, banner, row, save_json, x};
use mux_gpu_sim::metrics::{device_metrics, utilization_trace};
use mux_gpu_sim::spec::{GpuSpec, Work};
use mux_gpu_sim::timeline::Timeline;
use mux_model::config::ModelConfig;
use mux_model::mfu::{mfu, TrainMode};
use mux_model::ops::{Pass, TokenShape};
use mux_parallel::tp::{execute_stage_sequential, UniformShape};
use mux_peft::registry::TaskRegistry;
use mux_peft::types::PeftTask;

/// Simulates `steps` train iterations of one stage graph on `tp` devices
/// (sequential launch) and returns tokens/sec.
fn train_throughput(
    registry: &TaskRegistry,
    peft: bool,
    tp: usize,
    mbs: usize,
    seq: usize,
    steps: usize,
) -> f64 {
    let cfg = registry.backbone();
    let cluster = a40_cluster(tp);
    let mut tl = Timeline::new(&cluster);
    let graph = if peft {
        registry.build_multitask_stage_graph(0, cfg.num_layers, tp, &[1])
    } else {
        registry.build_multitask_stage_graph(0, cfg.num_layers, tp, &[])
    };
    let shapes = UniformShape(TokenShape::new(mbs, seq));
    let devices: Vec<usize> = (0..tp).collect();
    let bwd = if peft {
        Pass::BackwardInputOnly
    } else {
        Pass::BackwardFull
    };
    for _ in 0..steps {
        execute_stage_sequential(&mut tl, &graph, &shapes, Pass::Forward, &devices, &[]);
        execute_stage_sequential(&mut tl, &graph, &shapes, bwd, &devices, &[]);
    }
    (steps * mbs * seq) as f64 / tl.finish_time()
}

fn fig3a() -> serde_json::Value {
    banner(
        "Fig 3a",
        "single-GPU MFU, PEFT vs pretraining (8-layer models, gbs 32, seq 128)",
    );
    let mut out = Vec::new();
    for base in [ModelConfig::llama2_7b(), ModelConfig::gpt3_2_7b()] {
        let cfg = base.with_layers(8);
        let mut reg = TaskRegistry::new(cfg.clone());
        reg.register_task(PeftTask::lora(1, 16, 8, 128))
            .expect("register");
        println!("--- {} ---", cfg.name);
        let mut worst_gap: f64 = 0.0;
        for mbs in [1usize, 2, 4, 8] {
            let steps = 32 / mbs;
            let peak = GpuSpec::a40().peak_flops;
            let tp_peft = train_throughput(&reg, true, 1, mbs, 128, steps);
            let tp_pre = train_throughput(&reg, false, 1, mbs, 128, steps);
            let mfu_peft = mfu(&cfg, 128, TrainMode::Peft, tp_peft, peak);
            let mfu_pre = mfu(&cfg, 128, TrainMode::Pretrain, tp_pre, peak);
            let gap = mfu_pre / mfu_peft;
            worst_gap = worst_gap.max(gap);
            println!(
                "  MBS {mbs}: PEFT MFU {:.3}  pretrain MFU {:.3}  gap {}",
                mfu_peft,
                mfu_pre,
                x(gap)
            );
            out.push(serde_json::json!({
                "model": cfg.name, "mbs": mbs, "mfu_peft": mfu_peft,
                "mfu_pretrain": mfu_pre, "gap": gap,
            }));
        }
        row(
            "  worst PEFT-vs-pretrain MFU gap",
            "up to 1.47x",
            &x(worst_gap),
        );
    }
    serde_json::json!(out)
}

fn fig3b() -> serde_json::Value {
    banner(
        "Fig 3b",
        "operator utilization & latency: LoRA ranks vs pretrain GEMM (MBS 8)",
    );
    let gpu = GpuSpec::a40();
    let sh = TokenShape::new(8, 128);
    let t = sh.tokens() as f64;
    let gemm = |r: usize| {
        let flops = 2.0 * t * 4096.0 * r as f64;
        let bytes = 2.0 * (t * 4096.0 + 4096.0 * r as f64 + t * r as f64);
        Work::tensor(flops, bytes)
    };
    let mut out = Vec::new();
    let pre = gemm(4096);
    let pre_lat = gpu.compute_time(pre, 1.0);
    let pre_util = gpu.op_utilization(pre);
    for r in [4usize, 8, 16, 32, 64] {
        let w = gemm(r);
        let lat = gpu.compute_time(w, 1.0);
        let util = gpu.op_utilization(w);
        println!(
            "  r={r:<5} latency {:.3} ms  utilization {:.1}%  (gap vs pretrain {:.1}pp)",
            lat * 1e3,
            util * 100.0,
            (pre_util - util) * 100.0
        );
        out.push(serde_json::json!({ "rank": r, "latency_ms": lat * 1e3, "utilization": util }));
    }
    println!(
        "  r=4096 latency {:.3} ms  utilization {:.1}%",
        pre_lat * 1e3,
        pre_util * 100.0
    );
    row(
        "  LoRA-op vs pretrain-GEMM latency",
        "0.46 ms vs 1.80 ms",
        &format!(
            "{:.2} ms vs {:.2} ms",
            gpu.compute_time(gemm(64), 1.0) * 1e3,
            pre_lat * 1e3
        ),
    );
    row(
        "  utilization gap",
        "up to 40.9%",
        &format!("{:.1}pp", (pre_util - gpu.op_utilization(gemm(4))) * 100.0),
    );
    out.push(
        serde_json::json!({ "rank": 4096, "latency_ms": pre_lat * 1e3, "utilization": pre_util }),
    );
    serde_json::json!(out)
}

fn fig3c() -> serde_json::Value {
    banner(
        "Fig 3c",
        "multi-GPU MFU of full models (gbs 128, seq 128, TP on Table 1 #GPUs)",
    );
    let mut out = Vec::new();
    for base in [ModelConfig::gpt3_2_7b(), ModelConfig::llama2_7b()] {
        let tp = base.default_gpus.min(4);
        let mut reg = TaskRegistry::new(base.clone());
        reg.register_task(PeftTask::lora(1, 16, 8, 128))
            .expect("register");
        let peak = GpuSpec::a40().peak_flops * tp as f64;
        let tp_peft = train_throughput(&reg, true, tp, 8, 128, 4);
        let tp_pre = train_throughput(&reg, false, tp, 8, 128, 4);
        let mfu_peft = mfu(&base, 128, TrainMode::Peft, tp_peft, peak);
        let mfu_pre = mfu(&base, 128, TrainMode::Pretrain, tp_pre, peak);
        println!(
            "  {} on {tp} GPUs: PEFT MFU {:.3}  pretrain MFU {:.3}  gap {}",
            base.name,
            mfu_peft,
            mfu_pre,
            x(mfu_pre / mfu_peft)
        );
        out.push(serde_json::json!({
            "model": base.name, "gpus": tp, "mfu_peft": mfu_peft, "mfu_pretrain": mfu_pre,
        }));
    }
    row("  multi-GPU MFU drop", "up to 1.65x", "see gaps above");
    serde_json::json!(out)
}

fn fig3d() -> serde_json::Value {
    banner(
        "Fig 3d",
        "GPU and NVLink utilization, 4-GPU tensor parallelism (sequential launch)",
    );
    let cfg = ModelConfig::llama2_7b();
    let mut reg = TaskRegistry::new(cfg.clone());
    reg.register_task(PeftTask::lora(1, 16, 8, 128))
        .expect("register");
    let cluster = a40_cluster(4);
    let mut tl = Timeline::new(&cluster);
    let graph = reg.build_multitask_stage_graph(0, 4, 4, &[1]);
    let shapes = UniformShape(TokenShape::new(8, 128));
    execute_stage_sequential(&mut tl, &graph, &shapes, Pass::Forward, &[0, 1, 2, 3], &[]);
    execute_stage_sequential(
        &mut tl,
        &graph,
        &shapes,
        Pass::BackwardInputOnly,
        &[0, 1, 2, 3],
        &[],
    );
    let w = tl.finish_time();
    let m = device_metrics(&tl, w);
    let tr = utilization_trace(&tl, 0, w, 20);
    println!(
        "  GPU0 busy {:.1}%, achieved util {:.1}%, NVLink busy {:.1}%",
        m[0].busy_fraction * 100.0,
        m[0].avg_utilization * 100.0,
        m[0].link_busy_fraction * 100.0
    );
    println!(
        "  utilization trace (20 buckets, %): {:?}",
        tr.compute
            .iter()
            .map(|v| (v * 100.0).round() as i32)
            .collect::<Vec<_>>()
    );
    row(
        "  stalls visible",
        "significant stalls (Fig 3d)",
        &format!(
            "compute idles {:.0}% of the window while comm runs",
            (1.0 - m[0].busy_fraction) * 100.0
        ),
    );
    serde_json::json!({
        "busy": m[0].busy_fraction, "util": m[0].avg_utilization,
        "link_busy": m[0].link_busy_fraction, "trace": tr.compute,
    })
}

fn main() {
    let a = fig3a();
    let b = fig3b();
    let c = fig3c();
    let d = fig3d();
    save_json(
        "fig3_inefficiency",
        &serde_json::json!({ "a": a, "b": b, "c": c, "d": d }),
    );
}
