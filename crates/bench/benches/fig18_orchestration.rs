//! Figure 18: GPU and NVLink utilization of one decoder layer under 4-GPU
//! tensor parallelism.
//!
//! Paper: (a) NeMo, 1 task, sequential launch — 82.5% utilization,
//! 43.2 ms; (b) 4 tasks interleaved without overlap — 84.7%, 172.5 ms
//! (linear growth); (c) MuxTune with full overlap — 97.8% (1.19x) and
//! 156.2 ms for the 4 tasks.
//!
//! Also ablates the §3.4.3 CTA policy: small-CTA vs generous-CTA vs SHARP.

use mux_bench::harness::{
    a40_cluster, banner, h100_cluster, row, save_json, write_trace_file, x, TRACE_DIR_ENV,
};
use mux_gpu_sim::metrics::device_metrics;
use mux_gpu_sim::timeline::Cluster;
use mux_model::config::ModelConfig;
use mux_parallel::plan::HybridParallelism;
use mux_peft::registry::TaskRegistry;
use mux_peft::types::{PeftTask, TaskId};
use muxtune_core::engine::{EngineOptions, MuxEngine};
use muxtune_core::htask::HTask;
use muxtune_core::template::BucketOrder;

fn registry(n: usize) -> TaskRegistry {
    // One decoder layer, as in the paper's profile.
    let mut reg = TaskRegistry::new(ModelConfig::llama2_7b().with_layers(1));
    for i in 0..n {
        reg.register_task(PeftTask::lora(i as TaskId + 1, 16, 8, 128))
            .expect("ids");
    }
    reg
}

/// Runs `n` single-task hTasks in one bucket for one round on 4-GPU TP and
/// returns (latency_ms, mean utilization).
fn run(
    cluster: &Cluster,
    n: usize,
    orchestrate: bool,
    overlap: bool,
    generous: bool,
) -> (f64, f64) {
    let reg = registry(n);
    let htasks: Vec<HTask> = reg.tasks().map(|t| HTask::from_padded(&[t], 1)).collect();
    let options = EngineOptions {
        overlap_comm: overlap,
        orchestrate,
        fuse_adapters: orchestrate,
        generous_ctas: generous,
        max_in_flight: 2,
        bucket_order: BucketOrder::Descending,
    };
    let engine = MuxEngine::new(
        &reg,
        cluster,
        HybridParallelism::tensor(4),
        vec![htasks],
        options,
    );
    let (m, _trace) = engine.run_traced().expect("fits");
    (m.makespan * 1e3, m.mean_utilization)
}

fn main() {
    banner(
        "Fig 18",
        "one-layer utilization under 4-GPU TP (fwd+bwd round)",
    );
    let a40 = a40_cluster(4);
    let (t1, u1) = run(&a40, 1, false, false, false);
    let (t4_seq, u4_seq) = run(&a40, 4, false, false, false);
    let (t4_mux, u4_mux) = run(&a40, 4, true, true, false);
    println!(
        "  (a) NeMo-style, 1 task     : {t1:.2} ms, utilization {:.1}%",
        u1 * 100.0
    );
    println!(
        "  (b) 4 tasks, no overlap    : {t4_seq:.2} ms, utilization {:.1}%",
        u4_seq * 100.0
    );
    println!(
        "  (c) MuxTune, 4 tasks       : {t4_mux:.2} ms, utilization {:.1}%",
        u4_mux * 100.0
    );
    row(
        "  (a) single-task utilization",
        "82.5% (43.2 ms)",
        &format!("{:.1}% ({t1:.1} ms)", u1 * 100.0),
    );
    row(
        "  (b) interleaved-no-overlap grows ~linearly",
        "172.5 ms (~4x), util ~84.7%",
        &format!(
            "{t4_seq:.1} ms ({:.2}x of 4x), util {:.1}%",
            t4_seq / (4.0 * t1),
            u4_seq * 100.0
        ),
    );
    row(
        "  (c) MuxTune overlap beats (b)",
        "156.2 ms, 97.8% (1.19x util)",
        &format!(
            "{t4_mux:.1} ms, {:.1}% ({} util)",
            u4_mux * 100.0,
            x(u4_mux / u4_seq)
        ),
    );

    // CTA-policy ablation (§3.4.3): generous CTAs vs small budget on A40,
    // and SHARP on H100 NVSwitch.
    let (t_gen, _) = run(&a40, 4, true, true, true);
    let h100 = h100_cluster(4);
    let (t_sharp_rel, u_sharp) = run(&h100, 4, true, true, false);
    let (t_h100_seq, _) = run(&h100, 4, false, false, false);
    println!(
        "\n  CTA tradeoff (A40, no SHARP): small-CTA {t4_mux:.1} ms vs generous-CTA {t_gen:.1} ms"
    );
    row(
        "  SHARP overlap wins on NVSwitch",
        "full overlap with 8 CTAs",
        &format!(
            "H100: overlap {t_sharp_rel:.2} ms vs sequential {t_h100_seq:.2} ms, util {:.1}%",
            u_sharp * 100.0
        ),
    );

    // Per-device sanity trace for the JSON artifact.
    let reg = registry(4);
    let htasks: Vec<HTask> = reg.tasks().map(|t| HTask::from_padded(&[t], 1)).collect();
    let engine = MuxEngine::new(
        &reg,
        &a40,
        HybridParallelism::tensor(4),
        vec![htasks],
        EngineOptions {
            max_in_flight: 2,
            ..EngineOptions::default()
        },
    );
    let (m, trace) = engine.run_traced().expect("fits");
    // Profiling hook (MUX_TRACE_DIR): the one-layer orchestration timeline.
    if let Some(dir) = std::env::var_os(TRACE_DIR_ENV) {
        if let Some(p) =
            write_trace_file(std::path::Path::new(&dir), "fig18_orchestration", &trace, 4)
        {
            println!("  [trace] wrote {}", p.display());
        }
    }
    let dm = {
        // Recover device metrics from the trace via a scratch timeline is
        // unnecessary — utilization is already aggregated in `m`.
        let _ = device_metrics;
        m.mean_utilization
    };
    save_json(
        "fig18_orchestration",
        &serde_json::json!({
            "nemo_1task": { "ms": t1, "util": u1 },
            "interleave_4task": { "ms": t4_seq, "util": u4_seq },
            "muxtune_4task": { "ms": t4_mux, "util": u4_mux },
            "generous_cta_ms": t_gen,
            "h100_sharp": { "ms": t_sharp_rel, "util": u_sharp },
            "trace_ops": trace.len(),
            "mean_util": dm,
        }),
    );
}
