//! Appendix A / Figure 22: optimality of the structured pipeline template.
//!
//! The template sorts hTask buckets descending by stage latency, keeps each
//! bucket's micro-batches consecutive, and launches eagerly within memory.
//! The Fig 22(e) counter-example — hiding the longest bucket mid-stream —
//! shrinks warm-up/drain but breaks the "last stage keeps busy" theorem
//! and ends up slower.

use mux_bench::harness::{a40_cluster, banner, row, save_json, x};
use mux_model::config::ModelConfig;
use mux_parallel::plan::HybridParallelism;
use mux_peft::registry::TaskRegistry;
use mux_peft::types::{PeftTask, TaskId};
use muxtune_core::engine::{EngineOptions, MuxEngine};
use muxtune_core::htask::HTask;
use muxtune_core::template::BucketOrder;

fn main() {
    banner(
        "Fig 22",
        "structured-template bucket orderings (Appendix A)",
    );
    // Heterogeneous buckets: micro-batch sizes 16 / 8 / 4 / 2 create the
    // descending load profile the template exploits.
    let mut reg = TaskRegistry::new(ModelConfig::llama2_7b().with_layers(16));
    for (i, mb) in [16usize, 8, 4, 2].iter().enumerate() {
        reg.register_task(PeftTask::lora(i as TaskId + 1, 16, *mb, 128))
            .expect("ids");
    }
    let cluster = a40_cluster(4);
    // One single-task hTask per bucket, 4 micro-batches each, already
    // sorted descending by load (registration order).
    let buckets: Vec<Vec<HTask>> = reg
        .tasks()
        .map(|t| vec![HTask::from_padded(&[t], 4)])
        .collect();

    let mut results = Vec::new();
    let mut times = std::collections::BTreeMap::new();
    for order in [
        BucketOrder::Descending,
        BucketOrder::Ascending,
        BucketOrder::MiddlePeak,
    ] {
        let options = EngineOptions {
            bucket_order: order,
            ..EngineOptions::default()
        };
        let engine = MuxEngine::new(
            &reg,
            &cluster,
            HybridParallelism::pipeline(4),
            buckets.clone(),
            options,
        );
        let m = engine.run().expect("fits");
        println!(
            "  {order:?}: makespan {:.1} ms, throughput {:.0} t/s (stream {:?})",
            m.makespan * 1e3,
            m.throughput,
            engine.template().bucket_stream
        );
        times.insert(format!("{order:?}"), m.makespan);
        results.push(serde_json::json!({
            "order": format!("{order:?}"), "makespan_ms": m.makespan * 1e3,
            "throughput": m.throughput,
        }));
    }
    let desc = times["Descending"];
    row(
        "  descending is never worse than ascending",
        "rule 1 of the template",
        &x(times["Ascending"] / desc),
    );
    row(
        "  middle-peak (Fig 22e) is worse",
        "disrupts Theorem 2",
        &x(times["MiddlePeak"] / desc),
    );
    save_json("fig22_template", &serde_json::json!({ "rows": results }));
}
