//! Table 1: model configurations used in experiments.
//!
//! Prints the paper's table next to the configs this reproduction derives
//! (layers, hidden, heads, #GPUs, plus our computed parameter counts and
//! fp16 backbone footprints, which the paper's §2.3/§5.3 memory numbers
//! corroborate).

use mux_bench::harness::{banner, save_json};
use mux_model::config::ModelConfig;

fn main() {
    banner("Table 1", "model configurations");
    println!(
        "{:<12} {:>7} {:>11} {:>7} {:>6} {:>12} {:>12}",
        "Model", "#Layers", "HiddenDim", "#Heads", "#GPUs", "Params", "fp16 GB"
    );
    let mut rows = Vec::new();
    for cfg in ModelConfig::table1() {
        let gb = cfg.param_bytes() as f64 / 1e9;
        println!(
            "{:<12} {:>7} {:>11} {:>7} {:>6} {:>12} {:>11.1}G",
            cfg.name,
            cfg.num_layers,
            cfg.hidden,
            cfg.num_heads,
            cfg.default_gpus,
            format!("{:.2}B", cfg.total_params() as f64 / 1e9),
            gb
        );
        rows.push(serde_json::json!({
            "model": cfg.name, "layers": cfg.num_layers, "hidden": cfg.hidden,
            "heads": cfg.num_heads, "gpus": cfg.default_gpus,
            "params": cfg.total_params(), "fp16_gb": gb,
        }));
    }
    println!("(paper Table 1 rows: GPT3-2.7B 32/2560/32/2, LLaMA2-7B 32/4096/32/4,");
    println!(" LLaMA2-13B 40/5120/40/8, OPT-30B 48/7168/56/16 — reproduced exactly)");
    save_json("table1_models", &serde_json::json!({ "rows": rows }));
}
