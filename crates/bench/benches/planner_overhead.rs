//! Criterion micro-benchmarks of the planner's own costs (§3.3/§4: the
//! paper bounds scheduling overhead at ~10 s for a fine-tuning task of
//! hours; ours is analytic, so the budget is milliseconds).
//!
//! Covers the DP fusion (O(M²(S+M))), Eq. 7 grouping, Algorithm-1 subgraph
//! scheduling, segmentation, FFD packing and the tensor substrate matmul.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use mux_gpu_sim::spec::GpuSpec;
use mux_model::config::ModelConfig;
use mux_parallel::plan::HybridParallelism;
use mux_peft::registry::TaskRegistry;
use mux_peft::types::{PeftTask, TaskId};
use mux_tensor::tensor::{matmul, Tensor};
use muxtune_core::cost::CostModel;
use muxtune_core::fusion::{fuse_tasks, FusionPolicy, RangeBuild};
use muxtune_core::grouping::group_htasks;
use muxtune_core::htask::HTask;
use muxtune_core::schedule::schedule_subgraphs;
use muxtune_core::subgraph::segment;

fn registry(m: usize) -> TaskRegistry {
    let mut reg = TaskRegistry::new(ModelConfig::llama2_7b().with_layers(16));
    for i in 0..m {
        let seq = [64usize, 128, 256][i % 3];
        reg.register_task(PeftTask::lora(i as TaskId + 1, 16, 2 + (i % 4) * 2, seq))
            .expect("ids");
    }
    reg
}

fn bench_fusion(c: &mut Criterion) {
    let mut g = c.benchmark_group("dp_fusion");
    for m in [8usize, 16, 32] {
        let reg = registry(m);
        let cm = CostModel::new(&reg, GpuSpec::a40(), HybridParallelism::pipeline(4));
        g.bench_function(format!("M={m}"), |b| {
            b.iter(|| {
                let tasks: Vec<&PeftTask> = reg.tasks().collect();
                black_box(fuse_tasks(
                    &cm,
                    &tasks,
                    FusionPolicy::Dp,
                    &RangeBuild::Padded { micro_batches: 4 },
                ))
            })
        });
    }
    g.finish();
}

fn bench_grouping(c: &mut Criterion) {
    let reg = registry(16);
    let cm = CostModel::new(&reg, GpuSpec::a40(), HybridParallelism::pipeline(4));
    let htasks: Vec<HTask> = reg.tasks().map(|t| HTask::from_padded(&[t], 4)).collect();
    c.bench_function("grouping_16_htasks", |b| {
        b.iter(|| black_box(group_htasks(&cm, &htasks)))
    });
}

fn bench_subgraphs(c: &mut Criterion) {
    let reg = registry(4);
    let ids: Vec<TaskId> = vec![1, 2, 3, 4];
    let graph = reg.build_multitask_stage_graph(0, 4, 4, &ids);
    c.bench_function("segment_4task_4layer_stage", |b| {
        b.iter(|| black_box(segment(&graph)))
    });
    let dags: Vec<_> = (0..4)
        .map(|i| {
            let g = reg.build_multitask_stage_graph(0, 4, 4, &[ids[i]]);
            segment(&g)
        })
        .collect();
    c.bench_function("algorithm1_schedule_4_dags", |b| {
        b.iter(|| black_box(schedule_subgraphs(&dags, &|_, sg| sg.nodes.len() as f64)))
    });
}

fn bench_packing(c: &mut Criterion) {
    let lens: Vec<usize> = (0..512).map(|i| (i * 37) % 250 + 4).collect();
    c.bench_function("ffd_pack_512_seqs", |b| {
        b.iter_batched(
            || lens.clone(),
            |l| black_box(mux_data::packing::pack_ffd(&l, 256)),
            BatchSize::SmallInput,
        )
    });
}

fn bench_tensor(c: &mut Criterion) {
    let a = Tensor::full(vec![64, 64], 0.5);
    let bm = Tensor::full(vec![64, 64], 0.25);
    c.bench_function("tensor_matmul_64x64", |b| {
        b.iter(|| black_box(matmul(&a, &bm)))
    });
}

fn bench_obs_overhead(c: &mut Criterion) {
    // The planner/engine hot paths carry mux-obs spans permanently; the
    // observability contract is < 2% overhead while collection is off (the
    // default). Compare the full planner with spans disabled vs enabled,
    // plus the raw cost of a disabled `span()` call (one relaxed atomic
    // load) to show where the budget goes.
    use mux_gpu_sim::spec::LinkSpec;
    use mux_gpu_sim::timeline::Cluster;
    use muxtune_core::planner::{plan_and_run, PlannerConfig};

    let reg = registry(8);
    let cluster = Cluster::single_node(GpuSpec::a40(), 4, LinkSpec::nvlink_a40());
    let cfg = PlannerConfig::muxtune(HybridParallelism::pipeline(4), 4);
    let corpora = std::collections::BTreeMap::new();
    let mut g = c.benchmark_group("obs_overhead");
    mux_obs::set_enabled(false);
    g.bench_function("plan_spans_disabled", |b| {
        b.iter(|| black_box(plan_and_run(&reg, &cluster, &corpora, &cfg)))
    });
    g.bench_function("plan_spans_enabled", |b| {
        let _on = mux_obs::enabled_scope();
        b.iter(|| black_box(plan_and_run(&reg, &cluster, &corpora, &cfg)))
    });
    g.bench_function("span_disabled_x1000", |b| {
        b.iter(|| {
            for _ in 0..1000 {
                black_box(mux_obs::span("bench.noop"));
            }
        })
    });
    g.finish();
}

fn bench_telemetry_overhead(c: &mut Criterion) {
    // Same contract as the span path: streaming telemetry (windowed
    // time-series fed by counters/gauges/histograms) must be free while
    // disabled. A disabled `ingest()` is one relaxed atomic load; it must
    // not touch the series store at all.
    use mux_obs::timeseries;

    timeseries::reset_telemetry();
    timeseries::set_telemetry(false);
    let mut g = c.benchmark_group("telemetry_overhead");
    g.bench_function("ingest_disabled_x1000", |b| {
        b.iter(|| {
            for i in 0..1000u64 {
                timeseries::ingest("bench.telemetry", black_box(i as f64));
            }
        })
    });
    // Zero-cost means zero side effects too: nothing may have been buffered.
    assert!(
        timeseries::snapshot_series().is_empty(),
        "disabled telemetry ingest must not allocate series state"
    );
    {
        let _on = timeseries::telemetry_scope();
        g.bench_function("ingest_enabled_x1000", |b| {
            b.iter(|| {
                for i in 0..1000u64 {
                    timeseries::ingest("bench.telemetry", black_box(i as f64));
                }
            })
        });
        g.bench_function("window_agg_w32", |b| {
            for t in 0..64 {
                timeseries::set_tick(t);
                timeseries::ingest("bench.telemetry.windowed", t as f64);
            }
            b.iter(|| black_box(timeseries::window("bench.telemetry.windowed", 32)))
        });
    }
    timeseries::reset_telemetry();
    g.finish();
}

criterion_group!(
    benches,
    bench_fusion,
    bench_grouping,
    bench_subgraphs,
    bench_packing,
    bench_tensor,
    bench_obs_overhead,
    bench_telemetry_overhead
);
criterion_main!(benches);
