//! §3.2 isolation and convergence-consistency experiment, run on *real*
//! training (tiny transformers on the mux-tensor substrate):
//!
//! 1. fused-vs-separate parameter trajectories (the paper reports ≈ 0.07
//!    mean-square-deviation-scale consistency on nondeterministic GPU
//!    kernels; our CPU kernels are deterministic, so the deviation is ~0);
//! 2. NaN containment: a task sabotaged with an absurd learning rate blows
//!    up alone, co-located tasks stay finite;
//! 3. convergence: losses of all co-scheduled tasks decrease under fused
//!    execution.

use mux_bench::harness::{banner, row, save_json};
use mux_peft::backbone::TinyConfig;
use mux_peft::isolation::{compare_fused_vs_separate, nan_containment};
use mux_peft::trainer::{ExecTask, MultiTaskTrainer, TaskBatch};

fn main() {
    banner(
        "Isolation",
        "fused vs separate execution on real training (§3.2)",
    );
    let cfg = TinyConfig::small();

    // 1. Trajectory consistency across 6 steps, 3 tasks of 3 PEFT types.
    let batches: Vec<Vec<TaskBatch>> = (0..6)
        .map(|s| {
            vec![
                TaskBatch::synthetic(10 + s, 2, 8, cfg.vocab),
                TaskBatch::synthetic(20 + s, 3, 8, cfg.vocab),
                TaskBatch::synthetic(30 + s, 2, 8, cfg.vocab),
            ]
        })
        .collect();
    let report = compare_fused_vs_separate(
        cfg,
        4242,
        || {
            vec![
                ExecTask::lora(&cfg, 1, 4, 1, 0.1),
                ExecTask::bottleneck(&cfg, 2, 8, 2, 0.1),
                ExecTask::diff_pruning(&cfg, 3, 0.2, 3, 0.1),
            ]
        },
        &batches,
    );
    println!(
        "  per-task max MSD after {} steps: {:?}",
        report.steps, report.max_msd_per_task
    );
    row(
        "  fused = separate trajectories (MSD)",
        "~0.07 consistency on GPUs",
        &format!("{:.2e} (deterministic CPU kernels)", report.worst_msd()),
    );
    row(
        "  final-loss deviation",
        "no convergence impact",
        &format!(
            "{:.2e}",
            report
                .loss_diff_per_task
                .iter()
                .cloned()
                .fold(0.0f32, f32::max)
        ),
    );

    // 2. NaN containment.
    let containment = nan_containment(cfg, 6);
    row(
        "  sabotaged task diverges",
        "gradient NaN from overlarge LR",
        &format!("{}", containment.bad_task_diverged),
    );
    row(
        "  co-located tasks stay finite",
        "no failure propagation",
        &format!("{}", !containment.healthy_task_contaminated),
    );

    // 3. Convergence under fused execution.
    let mut tasks = vec![
        ExecTask::lora(&cfg, 1, 4, 7, 0.2),
        ExecTask::bottleneck(&cfg, 2, 8, 8, 0.2),
    ];
    let data = vec![
        TaskBatch::synthetic(100, 4, 8, cfg.vocab),
        TaskBatch::synthetic(200, 4, 8, cfg.vocab),
    ];
    let mut tr = MultiTaskTrainer::new(cfg, 99);
    let first = tr.step_fused(&mut tasks, &data);
    let mut last = first.clone();
    for _ in 0..40 {
        last = tr.step_fused(&mut tasks, &data);
    }
    for (f, l) in first.iter().zip(&last) {
        println!("  task {}: loss {:.3} -> {:.3}", f.task, f.loss, l.loss);
    }
    row(
        "  all fused tasks converge",
        "losses decrease",
        &format!("{}", first.iter().zip(&last).all(|(f, l)| l.loss < f.loss)),
    );
    save_json(
        "isolation_convergence",
        &serde_json::json!({
            "worst_msd": report.worst_msd(),
            "bad_task_diverged": containment.bad_task_diverged,
            "healthy_contaminated": containment.healthy_task_contaminated,
            "losses_first": first.iter().map(|r| r.loss).collect::<Vec<_>>(),
            "losses_last": last.iter().map(|r| r.loss).collect::<Vec<_>>(),
        }),
    );
}
