//! Figure 17: memory footprint as PEFT tasks are added progressively
//! (Table 2 workloads repeated 4x = up to 32 tasks, 1 micro-batch each).
//!
//! Paper: (a) GPT2.7B on 2-GPU TP — NeMo/HF-PEFT OOM after 15 tasks;
//! MuxTune reduces memory up to 4.67x/1.44x vs NeMo/SL-PEFT at the OOM
//! point and 5.29x/1.46x at 32 tasks. (b) LLaMA7B with more GPUs —
//! 3.57x/1.37x, NeMo OOM after 11 tasks.

use mux_baselines::memory::{memory_per_gpu, oom_task_count};
use mux_baselines::runner::SystemKind;
use mux_bench::harness::{banner, row, save_json, table2_workload, x};
use mux_data::corpus::Corpus;
use mux_gpu_sim::spec::GpuSpec;
use mux_model::config::ModelConfig;
use mux_peft::types::PeftTask;

fn run_case(
    label: &str,
    cfg: &ModelConfig,
    wl: char,
    gpus: usize,
    paper_oom: &str,
    paper_full: [&str; 2],
) -> serde_json::Value {
    println!("--- {label}: {} on {gpus}-GPU TP, WL-{wl} x4 ---", cfg.name);
    let spec = table2_workload(wl);
    let mut tasks = Vec::new();
    let mut corpora = Vec::new();
    for r in 0..4 {
        for (i, &(ds, mb)) in spec.iter().enumerate() {
            let id = (r * spec.len() + i) as u32 + 1;
            tasks.push(PeftTask::lora(id, 16, mb, ds.max_len()));
            corpora.push(Corpus::generate(ds, 32, id as u64).lengths);
        }
    }
    let refs: Vec<&PeftTask> = tasks.iter().collect();
    let gpu = GpuSpec::a40();

    let mut curves = Vec::new();
    println!(
        "  {:>6} {:>12} {:>12} {:>12}",
        "#tasks", "NeMo GB", "SL-PEFT GB", "MuxTune GB"
    );
    for n in [1usize, 4, 8, 15, 16, 24, 32] {
        let gb =
            |sys| memory_per_gpu(sys, cfg, &refs[..n], &corpora[..n], gpus, 1).total() as f64 / 1e9;
        let (nemo, sl, mux) = (
            gb(SystemKind::Nemo),
            gb(SystemKind::SlPeft),
            gb(SystemKind::MuxTune),
        );
        println!("  {n:>6} {nemo:>12.1} {sl:>12.1} {mux:>12.1}");
        curves.push(serde_json::json!({ "tasks": n, "nemo_gb": nemo, "sl_gb": sl, "mux_gb": mux }));
    }
    let nemo_oom = oom_task_count(SystemKind::Nemo, cfg, &refs, &corpora, gpus, 1, &gpu);
    let sl_oom = oom_task_count(SystemKind::SlPeft, cfg, &refs, &corpora, gpus, 1, &gpu);
    let mux_oom = oom_task_count(SystemKind::MuxTune, cfg, &refs, &corpora, gpus, 1, &gpu);
    row(
        "  NeMo/HF-PEFT OOM point",
        paper_oom,
        &format!("{nemo_oom} tasks"),
    );
    println!("  SL-PEFT fits {sl_oom} tasks, MuxTune fits {mux_oom} tasks");

    let at =
        |sys, n: usize| memory_per_gpu(sys, cfg, &refs[..n], &corpora[..n], gpus, 1).total() as f64;
    let n_cmp = nemo_oom.max(1);
    let red_nemo_oom = at(SystemKind::Nemo, n_cmp) / at(SystemKind::MuxTune, n_cmp);
    let red_sl_oom = at(SystemKind::SlPeft, n_cmp) / at(SystemKind::MuxTune, n_cmp);
    row(
        "  reduction at the OOM point (vs NeMo / SL)",
        paper_full[0],
        &format!("{} / {}", x(red_nemo_oom), x(red_sl_oom)),
    );
    let red_nemo_32 = at(SystemKind::Nemo, 32) / at(SystemKind::MuxTune, 32);
    let red_sl_32 = at(SystemKind::SlPeft, 32) / at(SystemKind::MuxTune, 32);
    row(
        "  reduction at 32 tasks (vs NeMo / SL)",
        paper_full[1],
        &format!("{} / {}", x(red_nemo_32), x(red_sl_32)),
    );
    // Footprint breakdown of one MuxTune instance (paper Fig 17b inset:
    // 13.4 GB backbone, 4.3 GB activations, 0.4 GB others for LLaMA7B).
    let b = memory_per_gpu(SystemKind::MuxTune, cfg, &refs[..8], &corpora[..8], gpus, 1);
    println!(
        "  MuxTune breakdown @8 tasks: backbone {:.1} GB, activations {:.1} GB, task state {:.2} GB",
        b.backbone as f64 / 1e9,
        b.activations as f64 / 1e9,
        b.task_state as f64 / 1e9
    );
    serde_json::json!({
        "case": label, "curves": curves,
        "oom": { "nemo": nemo_oom, "sl": sl_oom, "mux": mux_oom },
        "reduction_at_oom": [red_nemo_oom, red_sl_oom],
        "reduction_at_32": [red_nemo_32, red_sl_32],
    })
}

fn main() {
    banner("Fig 17", "memory footprint vs number of co-located tasks");
    let a = run_case(
        "Fig 17a",
        &ModelConfig::gpt3_2_7b(),
        'A',
        2,
        "OOM after 15 tasks",
        ["4.67x / 1.44x", "5.29x / 1.46x"],
    );
    let b = run_case(
        "Fig 17b",
        &ModelConfig::llama2_7b(),
        'B',
        4,
        "OOM after 11 tasks",
        [
            "3.57x / 1.37x",
            "3.57x / 1.37x (paper reports OOM-point only)",
        ],
    );
    save_json("fig17_memory", &serde_json::json!({ "a": a, "b": b }));
}
