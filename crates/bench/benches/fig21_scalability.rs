//! Figure 21(a): system scalability under two scaling strategies
//! (LLaMA7B, global batch 128, micro-batch 8, n tasks for n GPUs).
//!
//! * "Up-only": one instance grows from 4 to 16 GPUs as workload grows —
//!   sub-linear, but MuxTune stays ~1.61x over NeMo;
//! * "Up-then-out": scale to 4-GPU instances, then replicate — near-linear
//!   for both, MuxTune up to ~1.28x ahead.

use mux_baselines::runner::{run_system, SystemKind};
use mux_bench::harness::{
    a40_cluster, a40_multinode, banner, build_workload, row, save_json, x, Combo,
};
use mux_data::corpus::DatasetKind;
use mux_gpu_sim::timeline::Cluster;
use mux_model::config::ModelConfig;

fn throughput(sys: SystemKind, cluster: &Cluster, n_tasks: usize) -> f64 {
    let (reg, corpora) = build_workload(
        &ModelConfig::llama2_7b(),
        Combo::Uniform(DatasetKind::OpenBookQa),
        n_tasks,
        8,
        5,
    );
    run_system(sys, &reg, cluster, &corpora, 4)
        .map(|r| r.metrics.throughput)
        .unwrap_or(0.0)
}

fn main() {
    banner(
        "Fig 21a",
        "scalability: up-only vs up-then-out (LLaMA7B, n tasks on n GPUs)",
    );
    let mut rows = Vec::new();
    let mut best_up = 0.0f64;
    let mut best_out = 0.0f64;
    println!(
        "  {:>6} {:>14} {:>14} {:>16} {:>16}",
        "#GPUs", "mux-UP t/s", "nemo-UP t/s", "mux-OUT t/s", "nemo-OUT t/s"
    );
    for n in [4usize, 8, 16] {
        // Up-only: one instance spanning all n GPUs (multi-node past 4).
        let up_cluster = if n <= 4 {
            a40_cluster(n)
        } else {
            a40_multinode(n / 2)
        };
        let mux_up = throughput(SystemKind::MuxTune, &up_cluster, n);
        let nemo_up = throughput(SystemKind::Nemo, &up_cluster, n);
        // Up-then-out: n/4 replicated 4-GPU instances, each n/(n/4)=4 tasks.
        let replicas = n / 4;
        let inst = a40_cluster(4);
        let mux_out: f64 = (0..replicas)
            .map(|_| throughput(SystemKind::MuxTune, &inst, 4))
            .sum();
        let nemo_out: f64 = (0..replicas)
            .map(|_| throughput(SystemKind::Nemo, &inst, 4))
            .sum();
        println!("  {n:>6} {mux_up:>14.0} {nemo_up:>14.0} {mux_out:>16.0} {nemo_out:>16.0}");
        best_up = best_up.max(mux_up / nemo_up);
        best_out = best_out.max(mux_out / nemo_out);
        rows.push(serde_json::json!({
            "gpus": n, "mux_up": mux_up, "nemo_up": nemo_up,
            "mux_out": mux_out, "nemo_out": nemo_out,
        }));
    }
    row("  up-only: MuxTune vs NeMo", "1.61x", &x(best_up));
    row(
        "  up-then-out: MuxTune vs NeMo",
        "up to 1.28x",
        &x(best_out),
    );
    row(
        "  up-then-out scales near-linearly",
        "near-linear for both",
        "replicated instances sum by construction",
    );
    save_json("fig21_scalability", &serde_json::json!({ "rows": rows }));
}
