//! Figure 15: throughput on H100 GPUs across global batch sizes, against
//! NeMo and SL-PEFT (configurations aligned with Fig 14).
//!
//! Paper headline: 5.29x / 2.31x over NeMo / SL-PEFT in the Uniform case,
//! 3.69x / 1.94x in the Non-uniform case — larger than on A40 because the
//! H100's compute amplifies single-task underutilization.

use mux_baselines::runner::{run_system, SystemKind};
use mux_bench::harness::{
    banner, build_workload, dump_trace, h100_cluster, row, save_json, x, Combo,
};
use mux_data::corpus::DatasetKind;
use mux_model::config::ModelConfig;
use muxtune_core::planner::PlannerConfig;

fn main() {
    banner("Fig 15", "throughput on H100 (Testbed-C) vs NeMo / SL-PEFT");
    let micro_batches = 4;
    let mut results = Vec::new();
    let mut best = std::collections::BTreeMap::new();
    let mut a40_best = std::collections::BTreeMap::new();
    for combo in [Combo::Uniform(DatasetKind::OpenBookQa), Combo::NonUniform] {
        println!("\n--- {} ---", combo.label());
        for (model, gpus) in [
            (ModelConfig::llama2_7b(), 4usize),
            (ModelConfig::llama2_13b(), 8),
        ] {
            let cluster = h100_cluster(gpus);
            println!("{} on {gpus} H100s (4 tasks):", model.name);
            for gbs_per_task in [16usize, 32, 64] {
                let micro_batch = gbs_per_task / micro_batches;
                let (reg, corpora) = build_workload(&model, combo, 4, micro_batch, 77);
                let mut line = format!("  gbs/task {gbs_per_task:>3}:");
                let mut mux_tp = 0.0;
                for sys in [SystemKind::MuxTune, SystemKind::Nemo, SystemKind::SlPeft] {
                    match run_system(sys, &reg, &cluster, &corpora, micro_batches) {
                        Ok(rep) => {
                            let tp = rep.metrics.effective_throughput;
                            if sys == SystemKind::MuxTune {
                                mux_tp = tp;
                                line.push_str(&format!(" {}={tp:.0}", sys.name()));
                                // Profiling hook (MUX_TRACE_DIR).
                                if gbs_per_task == 32 {
                                    dump_trace(
                                        &format!("fig15_{}_{}", model.name, combo.label()),
                                        &reg,
                                        &cluster,
                                        &corpora,
                                        &PlannerConfig::muxtune(rep.plan, micro_batches),
                                    );
                                }
                            } else {
                                let ratio = mux_tp / tp;
                                line.push_str(&format!(" {}={tp:.0} ({})", sys.name(), x(ratio)));
                                let e = best.entry((combo.label(), sys.name())).or_insert(0.0f64);
                                *e = e.max(ratio);
                            }
                            results.push(serde_json::json!({
                                "combo": combo.label(), "model": model.name, "gpus": gpus,
                                "gbs_per_task": gbs_per_task, "system": sys.name(),
                                "effective_throughput": tp,
                            }));
                        }
                        Err(e) => line.push_str(&format!(" {}=OOM({e})", sys.name())),
                    }
                }
                println!("{line}");
            }
        }
        // A40 reference at the same LLaMA7B workload, to verify the gains
        // grow on faster hardware (§5.2's argument).
        let (reg, corpora) = build_workload(&ModelConfig::llama2_7b(), combo, 4, 8, 77);
        let a40 = mux_bench::harness::a40_cluster(4);
        let mux = run_system(SystemKind::MuxTune, &reg, &a40, &corpora, micro_batches);
        let nemo = run_system(SystemKind::Nemo, &reg, &a40, &corpora, micro_batches);
        if let (Ok(m), Ok(n)) = (mux, nemo) {
            a40_best.insert(
                combo.label(),
                m.metrics.effective_throughput / n.metrics.effective_throughput,
            );
        }
    }
    println!();
    for ((combo, sys), ratio) in &best {
        let paper = match (combo.as_str(), *sys) {
            (c, "NeMo") if c.starts_with("Uniform") => "up to 5.29x",
            (c, "SL-PEFT") if c.starts_with("Uniform") => "up to 2.31x",
            (_, "NeMo") => "up to 3.69x",
            _ => "up to 1.94x",
        };
        row(&format!("  MuxTune vs {sys} ({combo})"), paper, &x(*ratio));
    }
    for (combo, a40_ratio) in &a40_best {
        let h100_ratio = best.get(&(combo.clone(), "NeMo")).copied().unwrap_or(0.0);
        row(
            &format!("  gains grow on faster HW ({combo})"),
            "H100 ratio > A40 ratio",
            &format!("A40 {} vs H100 {}", x(*a40_ratio), x(h100_ratio)),
        );
    }
    save_json("fig15_h100", &serde_json::json!({ "rows": results }));
}
