//! Figure 9: the spatial-temporal multiplexing tradeoff.
//!
//! (a) two tasks on a 16-layer LLaMA7B with a 4-GPU pipeline (4 micro-
//!     batches, seq 64): spatial batching wins at small micro-batch sizes
//!     (GPU unsaturated), temporal interleaving wins at large ones — the
//!     crossover that motivates the hTask abstraction;
//! (b) diminishing returns of batching on one GPU: ideally batching 8
//!     tasks (micro-batch 8, seq 128) only buys ~1.12x throughput.
//!
//! Ablation: re-run (b) on an idealized GPU (no efficiency ramp) to show
//! the entire effect comes from the saturation curve.

use std::collections::BTreeMap;

use mux_bench::harness::{a40_cluster, banner, dump_trace, row, save_json, x};
use mux_gpu_sim::spec::{GpuSpec, Work};
use mux_model::config::ModelConfig;
use mux_parallel::plan::HybridParallelism;
use mux_peft::registry::TaskRegistry;
use mux_peft::types::PeftTask;
use muxtune_core::fusion::FusionPolicy;
use muxtune_core::planner::{plan_and_run, PlannerConfig};

fn run_policy(mbs_size: usize, policy: FusionPolicy) -> f64 {
    let cfg = ModelConfig::llama2_7b().with_layers(16);
    let mut reg = TaskRegistry::new(cfg);
    reg.register_task(PeftTask::lora(1, 16, mbs_size, 64))
        .expect("t1");
    reg.register_task(PeftTask::lora(2, 16, mbs_size, 64))
        .expect("t2");
    let cluster = a40_cluster(4);
    let mut pc = PlannerConfig::muxtune(HybridParallelism::pipeline(4), 4);
    pc.fusion = policy;
    plan_and_run(&reg, &cluster, &BTreeMap::new(), &pc)
        .map(|r| r.metrics.throughput)
        .unwrap_or(0.0)
}

fn fig9a() -> serde_json::Value {
    banner(
        "Fig 9a",
        "spatial vs temporal: 2 tasks, 16-layer LLaMA7B, 4-GPU pipeline, seq 64",
    );
    let mut out = Vec::new();
    let mut crossover = None;
    let mut prev_spatial_won = None;
    for mbs in [1usize, 2, 4, 8, 16, 32, 64] {
        let spatial = run_policy(mbs, FusionPolicy::AllSpatial);
        let temporal = run_policy(mbs, FusionPolicy::AllTemporal);
        let dp = run_policy(mbs, FusionPolicy::Dp);
        let winner = if spatial >= temporal {
            "spatial"
        } else {
            "temporal"
        };
        println!(
            "  mbs {mbs:>3}: spatial {spatial:>9.0} t/s | temporal {temporal:>9.0} t/s | DP {dp:>9.0} t/s -> {winner}"
        );
        let spatial_won = spatial >= temporal;
        if let Some(prev) = prev_spatial_won {
            if prev && !spatial_won && crossover.is_none() {
                crossover = Some(mbs);
            }
        }
        prev_spatial_won = Some(spatial_won);
        out.push(serde_json::json!({
            "mbs": mbs, "spatial": spatial, "temporal": temporal, "dp": dp,
        }));
    }
    row(
        "  crossover exists",
        "spatial wins unsaturated, temporal saturated",
        &match crossover {
            Some(m) => format!("crossover at micro-batch size {m}"),
            None => "no crossover in sweep".into(),
        },
    );
    row(
        "  DP >= max(spatial, temporal)",
        "DP picks the winner",
        "see per-row DP column",
    );
    serde_json::json!(out)
}

fn batching_gain(gpu: &GpuSpec) -> f64 {
    // One forward GEMM-bound micro-batch, 8-layer LLaMA7B scale: approximate
    // the paper's measurement with the dominant per-layer GEMM work.
    let cfg = ModelConfig::llama2_7b().with_layers(8);
    let tokens = 8.0 * 128.0;
    let layer_flops = 2.0 * tokens * (cfg.hidden as f64) * (12.0 * cfg.hidden as f64);
    let one = Work::tensor(layer_flops, 100e6);
    let eight = Work::tensor(8.0 * layer_flops, 800e6);
    8.0 * gpu.compute_time(one, 1.0) / gpu.compute_time(eight, 1.0)
}

fn fig9b() -> serde_json::Value {
    banner(
        "Fig 9b",
        "diminishing batching returns (1 GPU, 8 tasks x mbs 8, seq 128)",
    );
    let real = batching_gain(&GpuSpec::a40());
    let mut ideal_gpu = GpuSpec::a40();
    ideal_gpu.flops_half = 1.0; // ablation: no saturation ramp
    ideal_gpu.launch_overhead = 0.0;
    let ideal = batching_gain(&ideal_gpu);
    row(
        "  throughput gain from batching 8 tasks",
        "~1.12x (vs ideal 8x)",
        &x(real),
    );
    row(
        "  ablation (no efficiency ramp)",
        "-> gain vanishes to ~1x",
        &x(ideal),
    );
    serde_json::json!({ "gain": real, "gain_ideal_gpu": ideal })
}

fn main() {
    let a = fig9a();
    let b = fig9b();
    save_json("fig9_tradeoff", &serde_json::json!({ "a": a, "b": b }));
    // Profiling hook (MUX_TRACE_DIR): the DP plan at the crossover point.
    let mut reg = TaskRegistry::new(ModelConfig::llama2_7b().with_layers(16));
    reg.register_task(PeftTask::lora(1, 16, 8, 64)).expect("t1");
    reg.register_task(PeftTask::lora(2, 16, 8, 64)).expect("t2");
    let pc = PlannerConfig::muxtune(HybridParallelism::pipeline(4), 4);
    dump_trace(
        "fig9_tradeoff",
        &reg,
        &a40_cluster(4),
        &BTreeMap::new(),
        &pc,
    );
}
