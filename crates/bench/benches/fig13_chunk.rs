//! Figure 13: quantifying chunk-based alignment — throughput vs padded
//! ratio as the chunk size sweeps (1 task, 16-layer LLaMA7B, 4-GPU
//! pipeline, sequence cap 256).
//!
//! Small chunks minimize padding but underutilize the GPU and add KV-cache
//! re-reads; oversized chunks waste compute on padding and coarsen the
//! pipeline. The paper's rule picks the greatest power-of-2 divisor of the
//! caps, floored at 64.

use std::collections::BTreeMap;

use mux_bench::harness::{a40_cluster, banner, dump_trace, row, save_json};
use mux_data::align::AlignStrategy;
use mux_data::corpus::{Corpus, DatasetKind};
use mux_model::config::ModelConfig;
use mux_parallel::plan::HybridParallelism;
use mux_peft::registry::TaskRegistry;
use mux_peft::types::PeftTask;
use muxtune_core::fusion::FusionPolicy;
use muxtune_core::planner::{plan_and_run, PlannerConfig};

fn main() {
    banner(
        "Fig 13",
        "chunk-size tradeoff (1 task, 16-layer LLaMA7B, 4-GPU pipeline, seq 256)",
    );
    let cfg = ModelConfig::llama2_7b().with_layers(16);
    let cluster = a40_cluster(4);
    let corpus = Corpus::generate(DatasetKind::Rte, 64, 7);

    let mut out = Vec::new();
    let mut best: Option<(usize, f64)> = None;
    println!(
        "  {:>6} {:>14} {:>16} {:>12}",
        "chunk", "tokens/s", "effective t/s", "pad ratio"
    );
    for chunk in [16usize, 32, 64, 128, 256] {
        let mut reg = TaskRegistry::new(cfg.clone());
        reg.register_task(PeftTask::lora(1, 16, 4, 256))
            .expect("register");
        let mut corpora = BTreeMap::new();
        corpora.insert(1, corpus.lengths.clone());
        let mut pc = PlannerConfig::muxtune(HybridParallelism::pipeline(4), 4);
        pc.fusion = FusionPolicy::AllSpatial;
        pc.align = AlignStrategy::ChunkExact { chunk };
        let m = plan_and_run(&reg, &cluster, &corpora, &pc)
            .expect("run")
            .metrics;
        let pad = 1.0 - m.effective_tokens as f64 / m.total_tokens as f64;
        println!(
            "  {chunk:>6} {:>14.0} {:>16.0} {:>11.1}%",
            m.throughput,
            m.effective_throughput,
            pad * 100.0
        );
        if best
            .map(|(_, b)| m.effective_throughput > b)
            .unwrap_or(true)
        {
            best = Some((chunk, m.effective_throughput));
        }
        out.push(serde_json::json!({
            "chunk": chunk, "throughput": m.throughput,
            "effective_throughput": m.effective_throughput, "pad_ratio": pad,
        }));
    }
    let (best_chunk, _) = best.expect("swept");
    row(
        "  smaller chunks cut padding",
        "pad ratio falls with chunk size",
        "see column above",
    );
    row(
        "  effective-throughput peak",
        "interior optimum (rule: pow2 divisor, min 64)",
        &format!("best chunk = {best_chunk}"),
    );
    save_json(
        "fig13_chunk",
        &serde_json::json!({ "sweep": out, "best_chunk": best_chunk }),
    );
    // Profiling hook (MUX_TRACE_DIR): the best chunk's timeline.
    let mut reg = TaskRegistry::new(cfg);
    reg.register_task(PeftTask::lora(1, 16, 4, 256))
        .expect("register");
    let mut corpora = BTreeMap::new();
    corpora.insert(1, corpus.lengths.clone());
    let mut pc = PlannerConfig::muxtune(HybridParallelism::pipeline(4), 4);
    pc.fusion = FusionPolicy::AllSpatial;
    pc.align = AlignStrategy::ChunkExact { chunk: best_chunk };
    dump_trace("fig13_chunk", &reg, &cluster, &corpora, &pc);
}
