//! Figure 16: performance breakdown — disabling each MuxTune component
//! (TF = task fusion, OO = operator orchestration, CA = chunk-based data
//! alignment) on LLaMA7B with a 4-GPU pipeline and global batch 128.
//!
//! Paper: with lightweight workloads, −TF/−OO/−CA cost 36.1% / 30.3% /
//! 22.5% of throughput; with heavier workloads CA dominates (−34.3%)
//! while TF matters little (−6.25%) because the GPU is already saturated.
//!
//! Extended ablation: fusion policy variants (DP vs greedy vs extremes).

use std::collections::BTreeMap;

use mux_bench::harness::{a40_cluster, banner, dump_trace, row, save_json};
use mux_data::align::AlignStrategy;
use mux_data::corpus::{Corpus, DatasetKind};
use mux_model::config::ModelConfig;
use mux_parallel::plan::HybridParallelism;
use mux_peft::registry::TaskRegistry;
use mux_peft::types::{PeftTask, TaskId};
use muxtune_core::fusion::FusionPolicy;
use muxtune_core::planner::{plan_and_run, PlannerConfig};

/// Builds a mixed-length workload: `n` tasks alternating SST2/QA/RTE with
/// the given micro-batch size.
fn workload(n: usize, micro_batch: usize) -> (TaskRegistry, BTreeMap<TaskId, Vec<usize>>) {
    let mut reg = TaskRegistry::new(ModelConfig::llama2_7b());
    let mut corpora = BTreeMap::new();
    for i in 0..n {
        let ds = match i % 3 {
            0 => DatasetKind::Sst2,
            1 => DatasetKind::OpenBookQa,
            _ => DatasetKind::Rte,
        };
        let id = i as TaskId + 1;
        reg.register_task(PeftTask::lora(id, 16, micro_batch, ds.max_len()))
            .expect("ids");
        corpora.insert(
            id,
            Corpus::generate(ds, (micro_batch * 4).max(32), i as u64).lengths,
        );
    }
    (reg, corpora)
}

fn throughput(
    reg: &TaskRegistry,
    corpora: &BTreeMap<TaskId, Vec<usize>>,
    cfg: &PlannerConfig,
) -> f64 {
    let cluster = a40_cluster(4);
    plan_and_run(reg, &cluster, corpora, cfg)
        .map(|r| r.metrics.effective_throughput)
        .unwrap_or(0.0)
}

fn run_case(
    label: &str,
    n_tasks: usize,
    micro_batch: usize,
    paper: [&str; 3],
) -> serde_json::Value {
    println!("--- {label} ({n_tasks} tasks, micro-batch {micro_batch}) ---");
    let (reg, corpora) = workload(n_tasks, micro_batch);
    let base = PlannerConfig::muxtune(HybridParallelism::pipeline(4), 4);
    let full = throughput(&reg, &corpora, &base);
    // Profiling hook (MUX_TRACE_DIR): the full-MuxTune timeline per case.
    dump_trace(
        &format!("fig16_{label}"),
        &reg,
        &a40_cluster(4),
        &corpora,
        &base,
    );

    let mut no_tf = base.clone();
    no_tf.fusion = FusionPolicy::AllTemporal;
    let tf = throughput(&reg, &corpora, &no_tf);

    let mut no_oo = base.clone();
    no_oo.options.orchestrate = false;
    no_oo.options.overlap_comm = false;
    let oo = throughput(&reg, &corpora, &no_oo);

    let mut no_ca = base.clone();
    no_ca.align = AlignStrategy::ZeroPadGlobalMax;
    let ca = throughput(&reg, &corpora, &no_ca);

    // The planner re-optimizes around a disabled component (e.g. with
    // orchestration off it may fuse everything spatially so nothing needs
    // interleaving). To isolate orchestration's own value, also measure
    // the -OO drop with the fusion held temporal (multiple hTasks that
    // *need* interleaving).
    let mut held = base.clone();
    held.fusion = FusionPolicy::AllTemporal;
    let held_on = throughput(&reg, &corpora, &held);
    let mut held_off = held.clone();
    held_off.options.orchestrate = false;
    held_off.options.overlap_comm = false;
    let held_oo = throughput(&reg, &corpora, &held_off);

    let drop = |v: f64| (1.0 - v / full) * 100.0;
    println!("  full MuxTune: {full:.0} effective tokens/s");
    row(
        "  disable task fusion (-TF)",
        paper[0],
        &format!("-{:.1}%", drop(tf)),
    );
    row(
        "  disable orchestration (-OO)",
        paper[1],
        &format!("-{:.1}%", drop(oo)),
    );
    row(
        "  -OO at fixed (temporal) fusion",
        "isolates orchestration",
        &format!("-{:.1}%", (1.0 - held_oo / held_on) * 100.0),
    );
    row(
        "  disable chunk alignment (-CA)",
        paper[2],
        &format!("-{:.1}%", drop(ca)),
    );

    // Extended ablation: fusion policy quality.
    let mut greedy = base.clone();
    greedy.fusion = FusionPolicy::Greedy;
    let g = throughput(&reg, &corpora, &greedy);
    let mut spatial = base.clone();
    spatial.fusion = FusionPolicy::AllSpatial;
    let s = throughput(&reg, &corpora, &spatial);
    println!(
        "  fusion policies: DP {full:.0} | greedy {g:.0} | all-spatial {s:.0} | all-temporal {tf:.0}"
    );
    serde_json::json!({
        "case": label, "full": full,
        "no_tf": tf, "no_oo": oo, "no_ca": ca,
        "greedy": g, "all_spatial": s,
        "drop_tf_pct": drop(tf), "drop_oo_pct": drop(oo), "drop_ca_pct": drop(ca),
    })
}

fn main() {
    banner("Fig 16", "component ablation (LLaMA7B, 4-GPU pipeline)");
    // Lightweight: 8 small tasks (micro-batch 4 at C=4 — unsaturated).
    let light = run_case("lightweight", 8, 4, ["-36.1%", "-30.3%", "-22.5%"]);
    // Heavy: 4 fat tasks (mbs 16 each).
    let heavy = run_case("heavy", 4, 16, ["-6.25%", "-25.1%", "-34.3%"]);
    save_json(
        "fig16_ablation",
        &serde_json::json!({ "light": light, "heavy": heavy }),
    );
}
