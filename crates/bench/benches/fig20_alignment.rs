//! Figure 20: effectiveness of chunk-based data alignment — overall and
//! effective throughput of one hybrid task as tasks are progressively
//! added, vs SL-PEFT-style global zero padding (LLaMA7B, 4-GPU pipeline).
//!
//! Paper: (a) WL-A with chunk 64 (matching SST2): up to 2.33x overall and
//! 3.59x effective throughput over ZeroPad; (b) WL-B forced to chunk 128
//! (SST2 tasks pay intra-chunk padding): still 3.77x overall and 2.57x
//! effective.

use std::collections::BTreeMap;

use mux_bench::harness::{a40_cluster, banner, dump_trace, row, save_json, table2_workload, x};
use mux_data::align::AlignStrategy;
use mux_data::corpus::Corpus;
use mux_model::config::ModelConfig;
use mux_parallel::plan::HybridParallelism;
use mux_peft::registry::TaskRegistry;
use mux_peft::types::{PeftTask, TaskId};
use muxtune_core::fusion::FusionPolicy;
use muxtune_core::planner::{plan_and_run, PlannerConfig};

fn run_case(label: &str, wl: char, align: AlignStrategy, paper: [&str; 2]) -> serde_json::Value {
    println!("--- {label} (WL-{wl}) ---");
    let cluster = a40_cluster(4);
    let spec = table2_workload(wl);
    let mut rows = Vec::new();
    let mut best_overall = 0.0f64;
    let mut best_effective = 0.0f64;
    println!(
        "  {:>6} {:>12} {:>12} {:>14} {:>14}",
        "#tasks", "mux t/s", "zeropad t/s", "mux eff t/s", "zeropad eff t/s"
    );
    for n in [2usize, 4, 6, 8] {
        let mut reg = TaskRegistry::new(ModelConfig::llama2_7b());
        let mut corpora = BTreeMap::new();
        for (i, &(ds, mb)) in spec.iter().take(n).enumerate() {
            let id = i as TaskId + 1;
            reg.register_task(PeftTask::lora(id, 16, mb, ds.max_len()))
                .expect("ids");
            // One micro-batch per iteration (the paper's Fig 20 setup): the
            // global batch is exactly the micro-batch.
            corpora.insert(id, Corpus::generate(ds, mb, id as u64).lengths);
        }
        // One hybrid task, one micro-batch (as in the paper's setup).
        let mut mux_cfg = PlannerConfig::muxtune(HybridParallelism::pipeline(4), 1);
        mux_cfg.fusion = FusionPolicy::AllSpatial;
        mux_cfg.align = align;
        let mut zp_cfg = mux_cfg.clone();
        zp_cfg.align = AlignStrategy::ZeroPadGlobalMax;
        let mux = match plan_and_run(&reg, &cluster, &corpora, &mux_cfg) {
            Ok(r) => r.metrics,
            Err(e) => {
                println!("  {n:>6} MuxTune OOM: {e}");
                continue;
            }
        };
        let zp = match plan_and_run(&reg, &cluster, &corpora, &zp_cfg) {
            Ok(r) => r.metrics,
            Err(e) => {
                println!("  {n:>6} {:>12.0} ZeroPad OOM ({e})", mux.throughput);
                continue;
            }
        };
        println!(
            "  {n:>6} {:>12.0} {:>12.0} {:>14.0} {:>14.0}",
            mux.throughput, zp.throughput, mux.effective_throughput, zp.effective_throughput
        );
        // "Overall" compares tokens-of-content per second: MuxTune's
        // denser batches process the same content in less time, so compare
        // effective content rates for overall too (the paper's overall
        // metric counts processed tokens, where ZeroPad's padding inflates
        // the number — effective is the economically meaningful one).
        best_overall = best_overall.max(mux.throughput / zp.throughput);
        best_effective = best_effective.max(mux.effective_throughput / zp.effective_throughput);
        // Profiling hook (MUX_TRACE_DIR): the full-width hybrid task.
        if n == 8 {
            dump_trace(&format!("fig20_wl{wl}"), &reg, &cluster, &corpora, &mux_cfg);
        }
        rows.push(serde_json::json!({
            "tasks": n,
            "mux": { "overall": mux.throughput, "effective": mux.effective_throughput },
            "zeropad": { "overall": zp.throughput, "effective": zp.effective_throughput },
        }));
    }
    row("  overall-throughput gain", paper[0], &x(best_overall));
    row("  effective-throughput gain", paper[1], &x(best_effective));
    serde_json::json!({ "case": label, "rows": rows,
        "best_overall": best_overall, "best_effective": best_effective })
}

fn main() {
    banner(
        "Fig 20",
        "chunk-based alignment vs SL-PEFT zero padding (1 hTask)",
    );
    let a = run_case(
        "Fig 20a: chunk 64 (no intra-chunk padding)",
        'A',
        AlignStrategy::ChunkBased { min_chunk: 64 },
        ["2.33x", "3.59x"],
    );
    let b = run_case(
        "Fig 20b: chunk 128 (SST2 pays intra-chunk padding)",
        'B',
        AlignStrategy::ChunkExact { chunk: 128 },
        ["3.77x", "2.57x"],
    );
    save_json("fig20_alignment", &serde_json::json!({ "a": a, "b": b }));
}
