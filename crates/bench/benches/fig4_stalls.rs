//! Figure 4 / §2.2: device stalls in PEFT under model parallelism, and why
//! pretraining's stall-killers backfire on PEFT.
//!
//! (a) pipeline stalls: 1F1B vs ZB-H2-style split backward vs a
//!     DualPipe-like bidirectional schedule, in pretraining (where the
//!     weight-gradient pass fills bubbles) and in PEFT (where it does not
//!     exist — the paper measures DualPipe 1.16x *worse* than 1F1B);
//! (b) communication stalls: overlapping by decomposing computation into
//!     tiles, which in PEFT drops utilization (paper: −24.5%) and inflates
//!     latency (paper: 1.17x, GPT2.7B on 2 GPUs).

use mux_bench::harness::{a40_cluster, banner, row, save_json, x};
use mux_gpu_sim::metrics::device_metrics;
#[allow(unused_imports)]
use mux_gpu_sim::spec::WorkClass;
use mux_gpu_sim::spec::{CommCtaPolicy, GpuSpec, LinkSpec, Work};
use mux_gpu_sim::timeline::{CollectiveKind, OpHandle, Timeline};
use mux_model::config::ModelConfig;
use mux_model::ops::{Pass, TokenShape};
use mux_parallel::plan::stage_layers;
use mux_parallel::pp::{
    dualpipe_like_with_w, one_f_one_b, simulate_pipeline, zb_h2, Phase, PipelineExec,
};
use mux_peft::registry::TaskRegistry;
use mux_peft::types::PeftTask;

/// Executes pipeline cells with per-stage latencies from the real stage
/// graphs (PEFT or pretrain costs).
struct StageExec {
    /// Per virtual stage: (forward secs, backward secs, weight secs).
    costs: Vec<(f64, f64, f64)>,
    ranks: usize,
    p2p: f64,
}

impl PipelineExec for StageExec {
    fn stage_devices(&self, stage: usize) -> Vec<usize> {
        vec![if stage < self.ranks {
            stage
        } else {
            2 * self.ranks - 1 - stage
        }]
    }
    fn exec(
        &mut self,
        tl: &mut Timeline<'_>,
        stage: usize,
        mb: usize,
        phase: Phase,
        deps: &[OpHandle],
    ) -> OpHandle {
        let (f, b, w) = self.costs[stage];
        let secs = match phase {
            Phase::Forward => f,
            Phase::Backward => b,
            Phase::Weight => w,
        };
        let dev = self.stage_devices(stage)[0];
        tl.compute_fixed(
            dev,
            secs,
            0.6,
            0.0,
            deps,
            format!("s{stage} mb{mb} {phase:?}"),
        )
    }
    fn p2p_bytes(&self, _mb: usize) -> f64 {
        self.p2p
    }
    fn upstream(&self, stage: usize, _num_virtual: usize) -> Option<usize> {
        // Two independent directions for DualPipe virtual stages.
        if stage == 0 || stage == self.ranks {
            None
        } else {
            Some(stage - 1)
        }
    }
}

/// Per-stage latency of `layers` decoder layers (single-GPU shard,
/// sequential op costs).
fn stage_secs(reg: &TaskRegistry, layers: (usize, usize), shape: TokenShape, pass: Pass) -> f64 {
    let g = reg.build_multitask_stage_graph(layers.0, layers.1, 1, &[1]);
    let gpu = GpuSpec::a40();
    g.nodes()
        .iter()
        .filter(|n| !n.template.kind.is_comm())
        .map(|n| {
            gpu.compute_time(
                mux_parallel::tp::work_for(&n.template.cost, n.template.kind, shape, pass),
                1.0,
            )
        })
        .sum()
}

fn fig4a() -> serde_json::Value {
    banner(
        "Fig 4a",
        "pipeline stalls: 1F1B vs ZB-H2 vs DualPipe-like (16-layer LLaMA7B, 4 ranks, 8 mbs)",
    );
    let cfg = ModelConfig::llama2_7b().with_layers(16);
    let mut reg = TaskRegistry::new(cfg.clone());
    reg.register_task(PeftTask::lora(1, 16, 4, 128))
        .expect("register");
    let shape = TokenShape::new(4, 128);
    let ranks = 4;
    let mbs = 8;
    let p2p = shape.tokens() as f64 * cfg.hidden as f64 * 2.0;

    // `w_slot`: the Weight-phase duration as a fraction of the forward.
    // Pretrain ZB fills it with real weight-gradient work (~1.0 forward);
    // PEFT DualPipe exposes it as an idle hole — only a minority of each
    // reserved slot lands on the critical path (most hides under the
    // opposite direction's communication and dependency waits).
    let run = |virt_stages: usize, program: &mux_parallel::pp::PipeProgram, w_slot: f64| -> f64 {
        let ranges = stage_layers(cfg.num_layers, ranks);
        let costs: Vec<(f64, f64, f64)> = (0..virt_stages)
            .map(|vs| {
                // Bidirectional schedules revisit the same layer split in
                // the reverse direction: virtual stage k maps to layer
                // range k % ranks.
                let r = ranges[vs % ranks];
                let f = stage_secs(&reg, r, shape, Pass::Forward);
                let b = stage_secs(&reg, r, shape, Pass::BackwardInputOnly);
                (f, b, w_slot * f)
            })
            .collect();
        let cluster = a40_cluster(ranks);
        let mut tl = Timeline::new(&cluster);
        let mut exec = StageExec { costs, ranks, p2p };
        simulate_pipeline(&mut tl, program, &mut exec, virt_stages)
    };

    // PEFT: the monolithic backward *is* the input-gradient pass.
    let t_1f1b_peft = run(ranks, &one_f_one_b(ranks, mbs), 0.0);
    let t_zb_peft = run(ranks, &zb_h2(ranks, mbs), 0.0);
    // DualPipe's *structured* template reserves a weight-gradient slot per
    // micro-batch; in PEFT there is no W work to fill it and the rigid
    // synchronization cannot compact it away ("stalls induced by omitted
    // weight gradients grow linearly with the number of micro-batches").
    // The reserved slot is an idle hole of roughly the W duration.
    let t_dual_peft = run(2 * ranks, &dualpipe_like_with_w(ranks, mbs), 0.12);
    // Pretrain: monolithic backward = B + W for 1F1B; ZB splits them.
    let t_1f1b_pre = {
        let ranges = stage_layers(cfg.num_layers, ranks);
        let costs: Vec<(f64, f64, f64)> = ranges
            .iter()
            .map(|&r| {
                let f = stage_secs(&reg, r, shape, Pass::Forward);
                let b = stage_secs(&reg, r, shape, Pass::BackwardInputOnly);
                (f, b + f, 0.0)
            })
            .collect();
        let cluster = a40_cluster(ranks);
        let mut tl = Timeline::new(&cluster);
        let mut exec = StageExec { costs, ranks, p2p };
        simulate_pipeline(&mut tl, &one_f_one_b(ranks, mbs), &mut exec, ranks)
    };
    let t_zb_pre = run(ranks, &zb_h2(ranks, mbs), 1.0);

    println!(
        "  PEFT     : 1F1B {:.1} ms | ZB-H2 {:.1} ms | DualPipe-like {:.1} ms",
        t_1f1b_peft * 1e3,
        t_zb_peft * 1e3,
        t_dual_peft * 1e3
    );
    println!(
        "  pretrain : 1F1B {:.1} ms | ZB-H2 {:.1} ms",
        t_1f1b_pre * 1e3,
        t_zb_pre * 1e3
    );
    row(
        "  ZB-H2 in pretrain vs 1F1B",
        "near-zero-bubble win",
        &x(t_1f1b_pre / t_zb_pre),
    );
    row(
        "  DualPipe-like in PEFT vs 1F1B",
        "1.16x slower",
        &x(t_dual_peft / t_1f1b_peft),
    );
    row(
        "  ZB-H2 in PEFT vs 1F1B",
        "no gain (W absent)",
        &x(t_zb_peft / t_1f1b_peft),
    );
    serde_json::json!({
        "peft": { "f1b_ms": t_1f1b_peft*1e3, "zb_ms": t_zb_peft*1e3, "dualpipe_ms": t_dual_peft*1e3 },
        "pretrain": { "f1b_ms": t_1f1b_pre*1e3, "zb_ms": t_zb_pre*1e3 },
        "dualpipe_slowdown": t_dual_peft / t_1f1b_peft,
    })
}

fn fig4b() -> serde_json::Value {
    banner(
        "Fig 4b",
        "communication stalls: tile-decomposed overlap (GPT2.7B 2 layers, 2-GPU TP)",
    );
    let cfg = ModelConfig::gpt3_2_7b();
    let reg = TaskRegistry::new(cfg.clone());
    let shape = TokenShape::new(8, 128);
    // Bare backbone graph so GEMMs directly feed their all-reduces.
    let g = reg.build_multitask_stage_graph(0, 2, 2, &[]);
    let link = LinkSpec::nvlink_a40();

    // Baseline: sequential launch (comm blocks compute).
    let cluster = a40_cluster(2);
    let mut tl_seq = Timeline::new(&cluster);
    {
        let mut last: Vec<OpHandle> = vec![];
        for n in g.nodes() {
            if n.template.kind.is_comm() {
                let h = tl_seq.collective(
                    &[0, 1],
                    CollectiveKind::AllReduce,
                    n.template.cost.comm_bytes(shape),
                    &last,
                    CommCtaPolicy::sequential(),
                    true,
                    "ar",
                );
                last = vec![h];
            } else {
                let w = mux_parallel::tp::work_for(
                    &n.template.cost,
                    n.template.kind,
                    shape,
                    Pass::Forward,
                );
                let h0 = tl_seq.compute(0, w, &last, n.template.name.clone());
                let h1 = tl_seq.compute(1, w, &last, n.template.name.clone());
                last = vec![h0, h1];
            }
        }
    }
    let t_seq = tl_seq.finish_time();
    let u_seq = device_metrics(&tl_seq, t_seq)[0].avg_utilization;

    // Decomposed overlap: split each comm-feeding GEMM into tiles, each
    // tile's partial all-reduce overlapping the next tile's compute.
    let tiles = 4usize;
    let policy = CommCtaPolicy::for_link(&link, true);
    let mut tl_dec = Timeline::new(&cluster);
    {
        let mut last: Vec<OpHandle> = vec![];
        let nodes = g.nodes();
        let mut i = 0;
        while i < nodes.len() {
            let n = &nodes[i];
            let feeds_comm = nodes
                .get(i + 1)
                .map(|m| m.template.kind.is_comm())
                .unwrap_or(false);
            if feeds_comm && !n.template.kind.is_comm() {
                let comm = &nodes[i + 1];
                let w = mux_parallel::tp::work_for(
                    &n.template.cost,
                    n.template.kind,
                    shape,
                    Pass::Forward,
                );
                let payload = comm.template.cost.comm_bytes(shape) / tiles as f64;
                let tile = Work {
                    flops: w.flops / tiles as f64,
                    bytes: w.bytes / tiles as f64,
                    ..w
                };
                let mut ars = Vec::new();
                let mut prev = last.clone();
                for t in 0..tiles {
                    let h0 = tl_dec.compute(0, tile, &prev, format!("{}-tile{t}", n.template.name));
                    let h1 = tl_dec.compute(1, tile, &prev, format!("{}-tile{t}", n.template.name));
                    let ar = tl_dec.collective(
                        &[0, 1],
                        CollectiveKind::AllReduce,
                        payload,
                        &[h0, h1],
                        policy,
                        false,
                        format!("ar-tile{t}"),
                    );
                    ars.push(ar);
                    prev = last.clone(); // tiles are independent shards
                }
                last = ars;
                i += 2;
            } else {
                let w = mux_parallel::tp::work_for(
                    &n.template.cost,
                    n.template.kind,
                    shape,
                    Pass::Forward,
                );
                let h0 = tl_dec.compute(0, w, &last, n.template.name.clone());
                let h1 = tl_dec.compute(1, w, &last, n.template.name.clone());
                last = vec![h0, h1];
                i += 1;
            }
        }
    }
    let t_dec = tl_dec.finish_time();
    let u_dec = device_metrics(&tl_dec, t_dec)[0].avg_utilization;

    println!(
        "  sequential : {:.2} ms, utilization {:.1}%",
        t_seq * 1e3,
        u_seq * 100.0
    );
    println!(
        "  decomposed : {:.2} ms, utilization {:.1}% ({tiles} tiles)",
        t_dec * 1e3,
        u_dec * 100.0
    );
    row(
        "  latency inflation from decomposition",
        "1.17x",
        &x(t_dec / t_seq),
    );
    row(
        "  utilization drop",
        "24.5%",
        &format!("{:.1}pp", (u_seq - u_dec) * 100.0),
    );
    serde_json::json!({
        "sequential_ms": t_seq * 1e3, "decomposed_ms": t_dec * 1e3,
        "util_seq": u_seq, "util_dec": u_dec, "inflation": t_dec / t_seq,
    })
}

fn main() {
    let a = fig4a();
    let b = fig4b();
    save_json("fig4_stalls", &serde_json::json!({ "a": a, "b": b }));
}
