//! `planner-scale`: planner hot-path wall time vs task count M.
//!
//! Sweeps M ∈ {16, 64, 256, 1024} through the value-table DP fusion
//! (padded prober path) plus Eq. 7 grouping, and compares against the
//! retained seed O(M³) DP. The seed leg runs at M ≤ 256 by default —
//! set `MUX_PLANNER_SCALE_FULL=1` to also time it at M = 1024 (minutes).
//! The M = 1024 cached-DP wall time is the number the CI perf gate pins
//! via `report --check-baseline` (scenario `planner-scale`).

use mux_bench::harness::{
    banner, dump_profile, planner_scale_seconds, planner_scale_seed_seconds, row, save_json, x,
    PLANNER_SCALE_M,
};

fn main() {
    banner(
        "planner_scale",
        "planner wall time vs task count (DP fusion + grouping)",
    );
    let _profile = dump_profile("planner_scale");
    let full_seed = std::env::var_os("MUX_PLANNER_SCALE_FULL").is_some();
    let mut records = Vec::new();
    for &m in &[16usize, 64, 256, PLANNER_SCALE_M] {
        let dp = planner_scale_seconds(m);
        let seed = (m <= 256 || full_seed).then(|| planner_scale_seed_seconds(m));
        let measured = match seed {
            Some(s) => format!("{:.4}s (seed {:.4}s, {})", dp, s, x(s / dp.max(1e-12))),
            None => format!("{dp:.4}s (seed skipped; MUX_PLANNER_SCALE_FULL=1 to run)"),
        };
        row(
            &format!("M={m} planning wall time"),
            "~seconds budget",
            &measured,
        );
        records.push(serde_json::json!({
            "tasks": m,
            "dp_seconds": dp,
            "seed_seconds": seed,
            "speedup": seed.map(|s| s / dp.max(1e-12)),
        }));
    }
    save_json(
        "planner_scale",
        &serde_json::json!({
            "series": records,
            "note": "dp = value-table O(M^2) fusion + grouping; seed = retained O(M^3) reference",
        }),
    );
}
