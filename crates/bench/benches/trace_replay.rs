//! `trace-replay`: end-to-end workload replay wall time vs trace size.
//!
//! Generates the seed-42 standard trace at 10³/10⁴ jobs and replays it
//! through `FineTuneService` under all four scheduling policies, then a
//! 10⁵-job trace under FCFS only (the other policies scale identically —
//! policy choice changes ordering, not the event count). The 10⁵ leg
//! takes minutes and is skipped by default — set
//! `MUX_TRACE_REPLAY_FULL=1` to run it. The 10⁴-job FCFS wall time is
//! the number the CI perf gate pins via `report --check-baseline`
//! (scenario `trace-replay`).

use std::time::Instant;

use mux_bench::harness::{banner, row, save_json, TRACE_REPLAY_SEED};
use mux_workload::{generate, replay_trace_by_name, Admission, ReplayOptions, TraceConfig};

fn main() {
    banner(
        "trace_replay",
        "multi-tenant trace replay wall time vs jobs and policy",
    );
    let opts = ReplayOptions::default();
    let mut records = Vec::new();
    for &jobs in &[1_000usize, 10_000] {
        let trace = generate(TRACE_REPLAY_SEED, &TraceConfig::standard(jobs));
        for policy in mux_api::POLICY_NAMES {
            let start = Instant::now();
            let report = replay_trace_by_name(&trace, policy, &opts).expect("trace replays");
            let secs = start.elapsed().as_secs_f64();
            row(
                &format!("{jobs} jobs / {policy}"),
                "~seconds budget",
                &format!(
                    "{secs:.3}s wall ({} completed, jain(work) {:.3}, SLO {:.3})",
                    report.completed, report.jain_work, report.slo_attainment
                ),
            );
            records.push(serde_json::json!({
                "jobs": jobs,
                "policy": policy,
                "wall_seconds": secs,
                "completed": report.completed,
                "jain_work": report.jain_work,
                "slo_attainment": report.slo_attainment,
                "makespan_seconds": report.makespan_seconds,
            }));
        }
    }
    // SLO attainment vs offered load: scale the arrival rate around the
    // standard profile and compare best-effort admission with
    // SLO-feasibility gating (EXPERIMENTS.md plots this curve). The
    // standard profile's slack is tight enough that co-location slowdown
    // alone dominates violations at every load; a 10× slack isolates the
    // queueing-delay component, which is what should bend with load.
    let mut slo_series = Vec::new();
    for &mult in &[0.5f64, 1.0, 2.0, 4.0] {
        let mut cfg = TraceConfig::standard(2_000);
        cfg.base_rate *= mult;
        for tenant in &mut cfg.tenants {
            tenant.slo_slack *= 10.0;
        }
        let trace = generate(TRACE_REPLAY_SEED, &cfg);
        let be =
            replay_trace_by_name(&trace, "drf", &ReplayOptions::default()).expect("trace replays");
        let ac = replay_trace_by_name(
            &trace,
            "drf",
            &ReplayOptions {
                admission: Admission::SloFeasible,
                ..ReplayOptions::default()
            },
        )
        .expect("trace replays");
        // Queue-wait share of total JCT (Σ queue-wait / Σ JCT over
        // completed jobs) plus sketch quantiles of per-job queue wait:
        // the EXPERIMENTS.md queue-wait-share-vs-load curve. Shares come
        // from the lifecycle decomposition's queue axis measured at the
        // replay report, so they bend with load while run time does not.
        let (wait_sum, jct_sum) = be.per_tenant.values().fold((0.0, 0.0), |(w, j), t| {
            (w + t.queue_wait_sum, j + t.jct_sum)
        });
        let wait_share = if jct_sum > 0.0 {
            wait_sum / jct_sum
        } else {
            0.0
        };
        row(
            &format!("load x{mult} / drf"),
            "SLO attainment: admission >= best-effort",
            &format!(
                "best-effort {:.3}, slo-feasible {:.3} ({} admission-rejected); queue-wait share {:.3} (p95 {:.1}s)",
                be.slo_attainment,
                ac.slo_attainment,
                ac.admission_rejected,
                wait_share,
                be.queue_wait.quantile(0.95)
            ),
        );
        slo_series.push(serde_json::json!({
            "load_multiplier": mult,
            "policy": "drf",
            "best_effort_slo_attainment": be.slo_attainment,
            "slo_feasible_slo_attainment": ac.slo_attainment,
            "admission_rejected": ac.admission_rejected,
            "best_effort_completed": be.completed,
            "slo_feasible_completed": ac.completed,
            "queue_wait_share": wait_share,
            "queue_wait_p50_seconds": be.queue_wait.quantile(0.5),
            "queue_wait_p95_seconds": be.queue_wait.quantile(0.95),
            "jct_p95_seconds": be.jct.quantile(0.95),
        }));
    }
    if std::env::var_os("MUX_TRACE_REPLAY_FULL").is_some() {
        let trace = generate(TRACE_REPLAY_SEED, &TraceConfig::standard(100_000));
        let start = Instant::now();
        let report = replay_trace_by_name(&trace, "fcfs", &opts).expect("trace replays");
        let secs = start.elapsed().as_secs_f64();
        row(
            "100000 jobs / fcfs",
            "~minutes budget",
            &format!("{secs:.3}s wall ({} completed)", report.completed),
        );
        records.push(serde_json::json!({
            "jobs": 100_000,
            "policy": "fcfs",
            "wall_seconds": secs,
            "completed": report.completed,
            "jain_work": report.jain_work,
            "slo_attainment": report.slo_attainment,
            "makespan_seconds": report.makespan_seconds,
        }));
    } else {
        row(
            "100000 jobs / fcfs",
            "~minutes budget",
            "skipped; MUX_TRACE_REPLAY_FULL=1 to run",
        );
    }
    save_json(
        "trace_replay",
        &serde_json::json!({
            "series": records,
            "slo_vs_load": slo_series,
            "note": "end-to-end FineTuneService replay; policy changes ordering, not event count",
        }),
    );
}
