//! Figure 21(b): cluster-level performance under production-grade
//! workloads — a Philly-like trace replayed on a simulated 128-GPU cluster
//! with a first-come-first-served scheduler and a LLaMA7B backbone.
//!
//! Paper: Uniform — MuxTune 1.61x / 1.51x / 1.36x over HF-PEFT / NeMo /
//! SL-PEFT cluster throughput; Non-uniform — 1.58x over SL-PEFT (chunk
//! alignment matters most with variable-length mixes).

use mux_baselines::runner::SystemKind;
use mux_bench::harness::{a40_cluster, banner, row, save_json, x};
use mux_cluster::calibrate::{calibrate, reference_throughput, Mix};
use mux_cluster::sim::{replay_fcfs, ClusterShape};
use mux_cluster::trace::generate;
use mux_data::corpus::DatasetKind;
use mux_model::config::ModelConfig;

fn main() {
    banner(
        "Fig 21b",
        "cluster throughput on a Philly-like trace (128 GPUs, FCFS)",
    );
    let backbone = ModelConfig::llama2_7b();
    let instance = a40_cluster(4);
    let shape = ClusterShape {
        total_gpus: 128,
        gpus_per_instance: 4,
    };
    let reference = reference_throughput(&backbone, &instance, 4);
    println!("  reference rate (NeMo, 1 QA task, 4 GPUs): {reference:.0} tokens/s");

    let mut out = serde_json::Map::new();
    for (mix, label, n_tasks) in [
        (Mix::Uniform(DatasetKind::OpenBookQa), "Uniform", 1500usize),
        (Mix::NonUniform, "Non-uniform", 1500),
    ] {
        println!("--- {label} ---");
        let trace = generate(
            n_tasks,
            99,
            match mix {
                Mix::Uniform(k) => Some(k),
                Mix::NonUniform => None,
            },
        );
        let mut tput = std::collections::BTreeMap::new();
        for sys in SystemKind::ALL {
            let profile = calibrate(sys, &backbone, &instance, mix, 6, 4, reference);
            let rep = replay_fcfs(&trace, shape, &profile).expect("valid shape");
            println!(
                "  {:<8} cluster throughput {:.2} (rel), mean JCT {:.0} min, queue {:.0} min, profile {:?}",
                sys.name(),
                rep.throughput,
                rep.mean_jct_min,
                rep.mean_queue_min,
                profile.rate.iter().map(|r| (r * 100.0).round() / 100.0).collect::<Vec<_>>()
            );
            tput.insert(sys.name(), rep.throughput);
            out.insert(
                format!("{label}_{}", sys.name()),
                serde_json::json!({
                    "throughput": rep.throughput, "jct_min": rep.mean_jct_min,
                    "queue_min": rep.mean_queue_min, "profile": profile.rate,
                }),
            );
        }
        let mux = tput["MuxTune"];
        match label {
            "Uniform" => {
                row("  MuxTune vs HF-PEFT", "1.61x", &x(mux / tput["HF-PEFT"]));
                row("  MuxTune vs NeMo", "1.51x", &x(mux / tput["NeMo"]));
                row("  MuxTune vs SL-PEFT", "1.36x", &x(mux / tput["SL-PEFT"]));
            }
            _ => {
                row(
                    "  MuxTune vs SL-PEFT (non-uniform)",
                    "1.58x",
                    &x(mux / tput["SL-PEFT"]),
                );
                row(
                    "  MuxTune vs NeMo (non-uniform)",
                    "(cf. uniform 1.51x)",
                    &x(mux / tput["NeMo"]),
                );
            }
        }
    }
    save_json("fig21_cluster", &serde_json::Value::Object(out));
}
