//! Figure 14: end-to-end system throughput (tokens/s) across global batch
//! sizes, backbone models and hardware configurations, on A40 testbeds,
//! for the Uniform and Non-uniform dataset combinations.
//!
//! Paper headline (A40): MuxTune up to 2.33x / 1.87x / 1.64x over
//! HF-PEFT / NeMo / SL-PEFT in the Uniform case, and 2.23x / 1.83x /
//! 1.85x in the Non-uniform case.

use mux_baselines::runner::{run_system, SystemKind};
use mux_bench::harness::{
    a40_cluster, a40_multinode, banner, build_workload, dump_trace, row, save_json, x, Combo,
};
use mux_data::corpus::DatasetKind;
use mux_gpu_sim::timeline::Cluster;
use mux_model::config::ModelConfig;
use muxtune_core::planner::PlannerConfig;
use rayon::prelude::*;

struct Testbed {
    model: ModelConfig,
    cluster: Cluster,
    tasks: usize,
}

fn testbeds() -> Vec<Testbed> {
    vec![
        // GPT3-2.7B on 2 A40s (Testbed-A slice).
        Testbed {
            model: ModelConfig::gpt3_2_7b(),
            cluster: a40_cluster(2),
            tasks: 4,
        },
        // LLaMA2-7B on 4 A40s (Testbed-A).
        Testbed {
            model: ModelConfig::llama2_7b(),
            cluster: a40_cluster(4),
            tasks: 4,
        },
        // LLaMA2-13B on 8 A40s (Testbed-B, 4 nodes x 2 GPUs, IB).
        Testbed {
            model: ModelConfig::llama2_13b(),
            cluster: a40_multinode(4),
            tasks: 4,
        },
        // OPT-30B on 16 A40s (Testbed-B, 8 nodes x 2 GPUs, IB).
        Testbed {
            model: ModelConfig::opt_30b(),
            cluster: a40_multinode(8),
            tasks: 4,
        },
    ]
}

fn main() {
    banner(
        "Fig 14",
        "end-to-end throughput vs baselines on A40 testbeds",
    );
    let micro_batches = 4; // unified C
    let mut results = Vec::new();
    let mut best = std::collections::BTreeMap::new();
    for combo in [Combo::Uniform(DatasetKind::OpenBookQa), Combo::NonUniform] {
        println!("\n--- {} ---", combo.label());
        for tb in testbeds() {
            println!(
                "{} on {} GPUs ({} tasks):",
                tb.model.name,
                tb.cluster.num_gpus(),
                tb.tasks
            );
            // Global batch size sweep: per-task sequences per step, split
            // into C micro-batches. The (gbs, system) grid is embarrassingly
            // parallel — fan it out with rayon.
            let grid: Vec<(usize, SystemKind)> = [16usize, 32, 64]
                .iter()
                .flat_map(|&g| SystemKind::ALL.iter().map(move |&s| (g, s)))
                .collect();
            let cell: Vec<_> = grid
                .par_iter()
                .map(|&(gbs_per_task, sys)| {
                    let micro_batch = gbs_per_task / micro_batches;
                    let (reg, corpora) =
                        build_workload(&tb.model, combo, tb.tasks, micro_batch, 42);
                    (
                        gbs_per_task,
                        sys,
                        run_system(sys, &reg, &tb.cluster, &corpora, micro_batches),
                    )
                })
                .collect();
            for gbs_per_task in [16usize, 32, 64] {
                let mut line = format!("  gbs/task {gbs_per_task:>3}:");
                let mut mux_tp = 0.0;
                for sys in SystemKind::ALL {
                    let res = cell
                        .iter()
                        .find(|(g, s, _)| *g == gbs_per_task && *s == sys)
                        .map(|(_, _, r)| r)
                        .expect("grid cell present");
                    match res {
                        Ok(rep) => {
                            let tp = rep.metrics.effective_throughput;
                            if sys == SystemKind::MuxTune {
                                mux_tp = tp;
                                line.push_str(&format!(" {}={tp:.0}", sys.name()));
                            } else {
                                let ratio = mux_tp / tp;
                                line.push_str(&format!(" {}={tp:.0} ({})", sys.name(), x(ratio)));
                                let key = (combo.label(), sys.name());
                                let e = best.entry(key).or_insert(0.0f64);
                                *e = e.max(ratio);
                            }
                            results.push(serde_json::json!({
                                "combo": combo.label(), "model": tb.model.name,
                                "gpus": tb.cluster.num_gpus(), "gbs_per_task": gbs_per_task,
                                "system": sys.name(), "effective_throughput": tp,
                                "plan": format!("tp{}xpp{}", rep.plan.tp, rep.plan.pp),
                            }));
                        }
                        Err(e) => line.push_str(&format!(" {}=OOM({e})", sys.name())),
                    }
                }
                println!("{line}");
            }
            // Profiling hook (MUX_TRACE_DIR): MuxTune's winning plan at
            // gbs 32 for this testbed/combo.
            if let Some((_, _, Ok(rep))) = cell
                .iter()
                .find(|(g, s, r)| *g == 32 && *s == SystemKind::MuxTune && r.is_ok())
            {
                let (reg, corpora) =
                    build_workload(&tb.model, combo, tb.tasks, 32 / micro_batches, 42);
                let id = format!("fig14_{}_{}", tb.model.name, combo.label());
                dump_trace(
                    &id,
                    &reg,
                    &tb.cluster,
                    &corpora,
                    &PlannerConfig::muxtune(rep.plan, micro_batches),
                );
            }
        }
    }
    println!();
    for ((combo, sys), ratio) in &best {
        let paper = match (combo.as_str(), *sys) {
            (c, "HF-PEFT") if c.starts_with("Uniform") => "up to 2.33x",
            (c, "NeMo") if c.starts_with("Uniform") => "up to 1.87x",
            (c, "SL-PEFT") if c.starts_with("Uniform") => "up to 1.64x",
            (_, "HF-PEFT") => "up to 2.23x",
            (_, "NeMo") => "up to 1.83x",
            _ => "up to 1.85x",
        };
        row(&format!("  MuxTune vs {sys} ({combo})"), paper, &x(*ratio));
    }
    save_json("fig14_end_to_end", &serde_json::json!({ "rows": results }));
}
