//! The deterministic-simulation-test (DST) harness.
//!
//! [`run_chaos`] drives a [`FineTuneService`] through a seeded
//! [`FaultPlan`] tick by tick and returns the sealed journal with its
//! [`Journal::fingerprint`]. The harness touches no ambient entropy —
//! same [`DstConfig`] ⇒ bitwise-identical [`DstRun`] — so two
//! independent processes given the same seed must agree byte for byte,
//! and CI can pin a seed matrix by diffing exactly that.

use std::collections::BTreeMap;

use mux_api::{
    FineTuneService, JobId, JobSpec, JobState, Journal, ReplayState, ServiceConfig, ServiceFault,
};
use mux_data::corpus::DatasetKind;
use rand::{rngs::StdRng, Rng, SeedableRng};

use crate::plan::{ChaosAction, FaultPlan, FaultPlanConfig};

/// Backbones the harness rotates through (all registered in `mux-model`).
pub const BACKBONES: [&str; 2] = ["LLaMA2-7B", "GPT3-2.7B"];

/// Datasets the harness rotates through.
pub const DATASETS: [DatasetKind; 3] =
    [DatasetKind::Sst2, DatasetKind::OpenBookQa, DatasetKind::Rte];

/// Everything a chaos run depends on. No hidden inputs: two runs with
/// equal configs are bitwise-identical.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DstConfig {
    /// Seed for both the fault plan and the workload generator.
    pub seed: u64,
    /// Simulation ticks.
    pub ticks: u64,
    /// Seconds per tick.
    pub dt: f64,
    /// GPU pool size handed to [`ServiceConfig::a40_pool`].
    pub gpus_total: usize,
    /// Jobs submitted up front (more arrive via plan churn).
    pub initial_jobs: usize,
    /// Chaos events scheduled across the run.
    pub fault_events: usize,
    /// Cap on permanent device losses.
    pub max_device_losses: usize,
}

impl Default for DstConfig {
    fn default() -> Self {
        Self {
            seed: 0,
            ticks: 200,
            dt: 0.05,
            gpus_total: 8,
            initial_jobs: 3,
            fault_events: 12,
            max_device_losses: 2,
        }
    }
}

impl DstConfig {
    /// A config differing from the default only in `seed`.
    pub fn seeded(seed: u64) -> Self {
        Self {
            seed,
            ..Self::default()
        }
    }
}

/// The output of one chaos run.
#[derive(Debug, Clone, PartialEq)]
pub struct DstRun {
    /// Seed the run was driven by.
    pub seed: u64,
    /// FNV-1a fingerprint of the sealed journal — the determinism pin.
    pub fingerprint: u64,
    /// The sealed journal, serialized as JSONL.
    pub journal_jsonl: String,
    /// Replay-visible terminal state (job lifecycle map + alerts).
    pub final_state: ReplayState,
    /// Fault injections that actually landed (invalid targets — e.g. a
    /// device already lost — are skipped, deterministically).
    pub applied_faults: usize,
    /// Jobs submitted across the run (initial + churn).
    pub submitted_jobs: usize,
    /// Terminal job states → count, e.g. `{"completed": 3, "rejected": 1}`.
    pub outcome_counts: BTreeMap<String, usize>,
}

/// Runs the service under the seeded fault plan and seals the journal.
pub fn run_chaos(cfg: &DstConfig) -> DstRun {
    let plan = FaultPlan::generate(
        cfg.seed,
        &FaultPlanConfig {
            ticks: cfg.ticks,
            events: cfg.fault_events,
            instances: (cfg.gpus_total / 4).max(1),
            devices_per_instance: 4,
            max_device_losses: cfg.max_device_losses,
            backbones: BACKBONES.len(),
            datasets: DATASETS.len(),
        },
    );
    let mut svc_cfg = ServiceConfig::a40_pool(cfg.gpus_total);
    svc_cfg.backbone_layers = Some(8); // keep per-tick planning cheap
    let mut svc = FineTuneService::new(svc_cfg);

    // Seeded initial workload, drawn from a *separate* stream so plan
    // generation and workload generation can't perturb each other.
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x9e37_79b9_7f4a_7c15);
    let mut submitted: Vec<JobId> = Vec::new();
    for _ in 0..cfg.initial_jobs {
        submitted.push(svc.submit(gen_spec(&mut rng)));
    }

    let mut applied = 0usize;
    for tick in 0..cfg.ticks {
        for ev in plan.at(tick) {
            applied += apply_action(&mut svc, &mut submitted, &ev.action) as usize;
        }
        svc.advance(cfg.dt);
    }
    // Drain whatever survived the chaos so terminal states are terminal.
    svc.run_to_completion();
    svc.seal_journal();

    let final_state = svc.state_fingerprint();
    let mut outcome_counts: BTreeMap<String, usize> = BTreeMap::new();
    for id in &submitted {
        let state = match svc.job(*id).map(|j| j.state) {
            Some(JobState::Completed) => "completed",
            Some(JobState::Rejected) => "rejected",
            Some(JobState::Queued) => "queued",
            Some(JobState::Running { .. }) => "running",
            None => "lost",
        };
        *outcome_counts.entry(state.to_string()).or_insert(0) += 1;
    }
    DstRun {
        seed: cfg.seed,
        fingerprint: svc.journal().fingerprint(),
        journal_jsonl: svc.journal().to_jsonl(),
        final_state,
        applied_faults: applied,
        submitted_jobs: submitted.len(),
        outcome_counts,
    }
}

/// Re-verifies a serialized chaos journal: parses it, replays it, and
/// returns `(fingerprint, replayed final state)`.
pub fn verify_journal(jsonl: &str) -> Result<(u64, ReplayState), String> {
    let journal = Journal::from_jsonl(jsonl)?;
    let state = journal.verify()?;
    Ok((journal.fingerprint(), state))
}

fn gen_spec(rng: &mut StdRng) -> JobSpec {
    let backbone = BACKBONES[rng.gen_range(0..BACKBONES.len())];
    let dataset = DATASETS[rng.gen_range(0..DATASETS.len())];
    let tokens = 10_000 * rng.gen_range(2..8u64);
    JobSpec::lora(backbone, dataset, 16, 4, tokens).with_priority(rng.gen_range(0..4u32) as u8)
}

/// Applies one chaos action; returns whether it landed. Invalid targets
/// (no live instance, device already lost, job already terminal) are
/// skipped — the *attempt* is still deterministic, so skipping is too.
///
/// Public so external drivers (the workload trace replayer) can inject a
/// [`FaultPlan`]'s actions mid-run with exactly the chaos harness's
/// virtual-index resolution. `submitted` is the churn ledger: SubmitJob
/// appends the new handle, CancelJob picks its victim from it.
pub fn apply_action(
    svc: &mut FineTuneService,
    submitted: &mut Vec<JobId>,
    action: &ChaosAction,
) -> bool {
    let live = svc.instance_count();
    let resolve = |virtual_idx: usize| -> Option<usize> { (live > 0).then(|| virtual_idx % live) };
    match action {
        ChaosAction::DeviceSlowdown {
            instance,
            device,
            factor,
        } => resolve(*instance)
            .map(|i| {
                svc.inject_fault(ServiceFault::DeviceSlowdown {
                    instance: i,
                    device: *device,
                    factor: *factor,
                })
                .is_ok()
            })
            .unwrap_or(false),
        ChaosAction::LinkDegrade { instance, factor } => resolve(*instance)
            .map(|i| {
                svc.inject_fault(ServiceFault::LinkDegrade {
                    instance: i,
                    factor: *factor,
                })
                .is_ok()
            })
            .unwrap_or(false),
        ChaosAction::TransientComm { instance, failures } => resolve(*instance)
            .map(|i| {
                svc.inject_fault(ServiceFault::TransientComm {
                    instance: i,
                    failures: *failures,
                })
                .is_ok()
            })
            .unwrap_or(false),
        ChaosAction::DeviceLoss { instance, device } => resolve(*instance)
            .map(|i| {
                svc.inject_fault(ServiceFault::DeviceLoss {
                    instance: i,
                    device: *device,
                })
                .is_ok()
            })
            .unwrap_or(false),
        ChaosAction::ClearFaults { instance } => resolve(*instance)
            .map(|i| svc.clear_fault(i).is_ok())
            .unwrap_or(false),
        ChaosAction::SubmitJob {
            backbone,
            dataset,
            tokens,
            priority,
        } => {
            let spec = JobSpec::lora(
                BACKBONES[*backbone % BACKBONES.len()],
                DATASETS[*dataset % DATASETS.len()],
                16,
                4,
                *tokens,
            )
            .with_priority(*priority);
            submitted.push(svc.submit(spec));
            true
        }
        ChaosAction::CancelJob { job } => {
            if submitted.is_empty() {
                return false;
            }
            let id = submitted[*job % submitted.len()];
            svc.cancel(id, "chaos churn")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_twice_is_bitwise_identical() {
        for seed in [0u64, 3, 11] {
            let a = run_chaos(&DstConfig::seeded(seed));
            let b = run_chaos(&DstConfig::seeded(seed));
            assert_eq!(a.fingerprint, b.fingerprint, "seed {seed}");
            assert_eq!(a.journal_jsonl, b.journal_jsonl, "seed {seed}");
            assert_eq!(a, b, "seed {seed}: whole run output matches");
        }
    }

    #[test]
    fn chaos_runs_terminate_every_job() {
        let run = run_chaos(&DstConfig::seeded(5));
        assert!(run.submitted_jobs >= 3);
        for state in run.outcome_counts.keys() {
            assert!(
                state == "completed" || state == "rejected",
                "job stuck in non-terminal state {state}"
            );
        }
    }

    #[test]
    fn sealed_chaos_journal_replays_to_the_live_state() {
        let run = run_chaos(&DstConfig::seeded(9));
        let (fp, replayed) = verify_journal(&run.journal_jsonl).expect("journal verifies");
        assert_eq!(fp, run.fingerprint);
        assert_eq!(replayed, run.final_state);
    }
}
