//! # mux-chaos
//!
//! Deterministic fault injection for the MuxTune fine-tuning service.
//!
//! The crate has two halves:
//!
//! - [`plan`]: a seeded [`plan::FaultPlan`] — a schedule of faults
//!   (stragglers, link degradation, transient comm outages, permanent
//!   device loss) and tenant churn (mid-run submits and cancellations)
//!   generated from a single `u64` seed.
//! - [`dst`]: the deterministic-simulation-test harness that drives a
//!   [`mux_api::FineTuneService`] through a fault plan tick by tick and
//!   returns the sealed journal plus its fingerprint. Same seed, same
//!   config ⇒ bitwise-identical journal, every time — which is what lets
//!   CI pin a seed matrix and diff two independent runs.
//!
//! Nothing here reads the wall clock or any other ambient entropy: all
//! randomness flows from `StdRng::seed_from_u64`, so a failing seed can
//! be replayed locally with `report --chaos-seed <seed>`.

pub mod dst;
pub mod plan;

pub use dst::{apply_action, run_chaos, verify_journal, DstConfig, DstRun};
pub use plan::{ChaosAction, FaultEvent, FaultPlan, FaultPlanConfig};
