//! Seeded fault plans: the schedule of what goes wrong, and when.

use rand::{rngs::StdRng, Rng, SeedableRng};

/// One thing the chaos harness does to the service at a scheduled tick.
///
/// Instance indices are *virtual*: the harness resolves them modulo the
/// number of live instances at application time, so a plan generated
/// before the cluster topology is known still lands its faults.
#[derive(Debug, Clone, PartialEq)]
pub enum ChaosAction {
    /// One device computes `factor`× slower until cleared.
    DeviceSlowdown {
        /// Virtual instance index (resolved modulo live instances).
        instance: usize,
        /// Device within the instance.
        device: usize,
        /// Slowdown factor, > 1.
        factor: f64,
    },
    /// The instance interconnect degrades by `factor` until cleared.
    LinkDegrade {
        /// Virtual instance index.
        instance: usize,
        /// Bandwidth degradation factor, > 1.
        factor: f64,
    },
    /// Training pauses; the service retries with exponential backoff and
    /// the `failures`-th retry succeeds.
    TransientComm {
        /// Virtual instance index.
        instance: usize,
        /// Retries needed before the fault clears.
        failures: u32,
    },
    /// A device drops out permanently; the service must replan or shed.
    DeviceLoss {
        /// Virtual instance index.
        instance: usize,
        /// Device within the instance.
        device: usize,
    },
    /// Clears every transient fault on the instance.
    ClearFaults {
        /// Virtual instance index.
        instance: usize,
    },
    /// Tenant churn: a new job arrives mid-run.
    SubmitJob {
        /// Backbone index into the harness's backbone list.
        backbone: usize,
        /// Dataset index into the harness's dataset list.
        dataset: usize,
        /// Total training tokens.
        tokens: u64,
        /// Tenant priority (higher sheds last).
        priority: u8,
    },
    /// Tenant churn: an existing job is cancelled (index is resolved
    /// modulo the number of jobs submitted so far).
    CancelJob {
        /// Virtual job index.
        job: usize,
    },
}

/// A [`ChaosAction`] pinned to the simulation tick it fires on.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultEvent {
    /// Tick (0-based) at which the harness applies the action, before
    /// advancing the service.
    pub at_tick: u64,
    /// What happens.
    pub action: ChaosAction,
}

/// Knobs for [`FaultPlan::generate`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlanConfig {
    /// Simulation length in ticks; events land in `[0, ticks)`.
    pub ticks: u64,
    /// How many chaos events to schedule.
    pub events: usize,
    /// Virtual instance range the plan draws from.
    pub instances: usize,
    /// Devices per instance (bounds `device` fields).
    pub devices_per_instance: usize,
    /// Cap on permanent device losses across the whole plan — losing
    /// every device just tests the shed path over and over, so keep
    /// permanent faults rare relative to transient ones.
    pub max_device_losses: usize,
    /// Backbone list length the harness will index into.
    pub backbones: usize,
    /// Dataset list length the harness will index into.
    pub datasets: usize,
}

impl Default for FaultPlanConfig {
    fn default() -> Self {
        Self {
            ticks: 200,
            events: 12,
            instances: 2,
            devices_per_instance: 4,
            max_device_losses: 2,
            backbones: 2,
            datasets: 3,
        }
    }
}

/// A seeded, reproducible schedule of faults and tenant churn.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed the plan was generated from (kept for reporting).
    pub seed: u64,
    /// Events sorted by `at_tick` (stable for equal ticks, preserving
    /// generation order — the tie-break is part of determinism).
    pub events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// Generates a plan from `seed`. The same `(seed, cfg)` pair always
    /// yields the same plan — byte for byte.
    pub fn generate(seed: u64, cfg: &FaultPlanConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut losses = 0usize;
        let mut events: Vec<FaultEvent> = (0..cfg.events)
            .map(|_| {
                let at_tick = rng.gen_range(0..cfg.ticks.max(1));
                let instance = rng.gen_range(0..cfg.instances.max(1));
                let device = rng.gen_range(0..cfg.devices_per_instance.max(1));
                let action = match rng.gen_range(0..8u32) {
                    0 => ChaosAction::DeviceSlowdown {
                        instance,
                        device,
                        factor: 1.5 + rng.gen_range(0..6) as f64 * 0.5,
                    },
                    1 => ChaosAction::LinkDegrade {
                        instance,
                        factor: 2.0 + rng.gen_range(0..4) as f64,
                    },
                    2 => ChaosAction::TransientComm {
                        instance,
                        failures: rng.gen_range(1..5),
                    },
                    3 if losses < cfg.max_device_losses => {
                        losses += 1;
                        ChaosAction::DeviceLoss { instance, device }
                    }
                    3 | 4 => ChaosAction::ClearFaults { instance },
                    5 | 6 => ChaosAction::SubmitJob {
                        backbone: rng.gen_range(0..cfg.backbones.max(1)),
                        dataset: rng.gen_range(0..cfg.datasets.max(1)),
                        tokens: 10_000 * rng.gen_range(2..8u64),
                        priority: rng.gen_range(0..4) as u8,
                    },
                    _ => ChaosAction::CancelJob {
                        job: rng.gen_range(0..64),
                    },
                };
                FaultEvent { at_tick, action }
            })
            .collect();
        events.sort_by_key(|e| e.at_tick);
        Self { seed, events }
    }

    /// Events firing at `tick`, in plan order.
    pub fn at(&self, tick: u64) -> impl Iterator<Item = &FaultEvent> {
        self.events.iter().filter(move |e| e.at_tick == tick)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_generates_the_identical_plan() {
        let cfg = FaultPlanConfig::default();
        for seed in [0u64, 1, 7, 0xDEAD_BEEF, u64::MAX] {
            let a = FaultPlan::generate(seed, &cfg);
            let b = FaultPlan::generate(seed, &cfg);
            assert_eq!(a, b, "seed {seed} must be reproducible");
            assert_eq!(a.events.len(), cfg.events);
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let cfg = FaultPlanConfig::default();
        let a = FaultPlan::generate(1, &cfg);
        let b = FaultPlan::generate(2, &cfg);
        assert_ne!(a.events, b.events);
    }

    #[test]
    fn plans_respect_config_bounds() {
        let cfg = FaultPlanConfig {
            ticks: 50,
            events: 200,
            instances: 3,
            devices_per_instance: 4,
            max_device_losses: 2,
            backbones: 2,
            datasets: 3,
        };
        for seed in 0..20u64 {
            let plan = FaultPlan::generate(seed, &cfg);
            let mut losses = 0;
            let mut sorted = true;
            let mut prev = 0u64;
            for ev in &plan.events {
                sorted &= ev.at_tick >= prev;
                prev = ev.at_tick;
                assert!(ev.at_tick < cfg.ticks);
                match &ev.action {
                    ChaosAction::DeviceSlowdown {
                        instance,
                        device,
                        factor,
                    } => {
                        assert!(*instance < cfg.instances && *device < cfg.devices_per_instance);
                        assert!(*factor > 1.0);
                    }
                    ChaosAction::LinkDegrade { instance, factor } => {
                        assert!(*instance < cfg.instances && *factor > 1.0);
                    }
                    ChaosAction::TransientComm { instance, failures } => {
                        assert!(*instance < cfg.instances && *failures >= 1);
                    }
                    ChaosAction::DeviceLoss { instance, device } => {
                        assert!(*instance < cfg.instances && *device < cfg.devices_per_instance);
                        losses += 1;
                    }
                    ChaosAction::ClearFaults { instance } => assert!(*instance < cfg.instances),
                    ChaosAction::SubmitJob {
                        backbone,
                        dataset,
                        tokens,
                        priority,
                    } => {
                        assert!(*backbone < cfg.backbones && *dataset < cfg.datasets);
                        assert!(*tokens > 0 && *priority < 4);
                    }
                    ChaosAction::CancelJob { .. } => {}
                }
            }
            assert!(sorted, "events sorted by tick");
            assert!(losses <= cfg.max_device_losses, "loss budget respected");
        }
    }
}
