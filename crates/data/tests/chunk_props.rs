//! Property tests for the §3.5 chunk-size rule and chunk partitioning:
//! the rule must return the greatest power-of-two divisor of all task
//! sequence caps, floored at the minimum threshold, and chunking must
//! conserve tokens exactly.

use mux_data::chunk::{chunk_packs, chunk_size_rule};
use mux_data::packing::pack_ffd;
use proptest::prelude::*;

/// Brute-force reference: the largest power of two dividing every cap
/// (trying every power of two up to the largest cap), floored at `thr`.
fn brute_force_rule(caps: &[usize], thr: usize) -> usize {
    let max_cap = *caps.iter().max().expect("non-empty");
    let mut best = 1;
    let mut s = 1usize;
    while s <= max_cap {
        if caps.iter().all(|&c| c % s == 0) {
            best = s;
        }
        s *= 2;
    }
    best.max(thr)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn rule_matches_brute_force(
        caps in prop::collection::vec(1usize..512, 1..8),
        thr in prop::sample::select(vec![16usize, 32, 64, 128]),
    ) {
        prop_assert_eq!(chunk_size_rule(&caps, thr), brute_force_rule(&caps, thr));
    }

    #[test]
    fn rule_is_floored_at_threshold_and_power_of_two(
        caps in prop::collection::vec(1usize..512, 1..8),
        thr in prop::sample::select(vec![16usize, 32, 64, 128]),
    ) {
        let chunk = chunk_size_rule(&caps, thr);
        prop_assert!(chunk >= thr);
        prop_assert!(chunk.is_power_of_two(), "chunk {chunk}");
    }

    #[test]
    fn rule_above_threshold_is_the_greatest_common_pow2_divisor(
        caps in prop::collection::vec(1usize..2048, 1..8),
    ) {
        let chunk = chunk_size_rule(&caps, 64);
        if chunk > 64 {
            // Divides every cap...
            for &c in &caps {
                prop_assert_eq!(c % chunk, 0, "cap {c} not divisible by {chunk}");
            }
            // ...and no larger power of two does (greatest-ness).
            prop_assert!(
                caps.iter().any(|&c| c % (2 * chunk) != 0),
                "2x{chunk} also divides all of {caps:?}"
            );
        }
    }

    #[test]
    fn rule_is_order_and_duplicate_invariant(
        caps in prop::collection::vec(1usize..512, 2..8),
    ) {
        let mut reversed = caps.clone();
        reversed.reverse();
        let mut doubled = caps.clone();
        doubled.extend_from_slice(&caps);
        prop_assert_eq!(chunk_size_rule(&caps, 64), chunk_size_rule(&reversed, 64));
        prop_assert_eq!(chunk_size_rule(&caps, 64), chunk_size_rule(&doubled, 64));
    }

    #[test]
    fn chunking_conserves_tokens_and_pads_only_pack_tails(
        lens in prop::collection::vec(1usize..256, 1..40),
        cap in prop::sample::select(vec![256usize, 512]),
        chunk in prop::sample::select(vec![32usize, 64, 128]),
    ) {
        let packs = pack_ffd(&lens, cap).expect("lens bounded by cap");
        let chunks = chunk_packs(&packs, chunk);
        let total: usize = lens.iter().sum();
        let effective: usize = chunks.iter().map(|c| c.effective).sum();
        prop_assert_eq!(effective, total, "chunking must conserve content tokens");
        for c in &chunks {
            prop_assert_eq!(c.len(), chunk, "every chunk is exactly one chunk long");
        }
        // Within a pack, only the final chunk may carry padding, and the
        // KV context grows by one chunk per step.
        for p in 0..packs.len() {
            let of_pack: Vec<_> = chunks.iter().filter(|c| c.pack == p).collect();
            for (i, c) in of_pack.iter().enumerate() {
                prop_assert_eq!(c.index, i);
                prop_assert_eq!(c.kv_context, i * chunk);
                prop_assert_eq!(c.depends_on_prev, i > 0);
                if i + 1 < of_pack.len() {
                    prop_assert_eq!(c.padding, 0, "interior chunk of pack {p} padded");
                }
            }
        }
    }
}
