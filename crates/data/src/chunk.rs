//! Chunk-based partitioning (step 2 of chunk-based alignment, §3.5).
//!
//! Packed rows are cut into equal-sized chunks. Rows longer than one chunk
//! scatter across consecutive chunks connected by a KV-cache-reuse
//! dependency (causal attention over earlier chunks is served from cached
//! keys/values, as in TeraPipe-style token-level pipelining). The chunk
//! size follows the paper's rule: the greatest power-of-two divisor of all
//! task sequence caps, floored at a minimum threshold (typically 64).

use crate::packing::Pack;

/// Default minimum chunk size (§3.5: "a minimum threshold (typically 64)").
pub const DEFAULT_MIN_CHUNK: usize = 64;

/// One chunk of one packed row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Chunk {
    /// Index of the source pack within its task's pack list.
    pub pack: usize,
    /// Position of this chunk within the pack (0-based).
    pub index: usize,
    /// Effective (semantic) tokens in this chunk.
    pub effective: usize,
    /// Zero-padded tokens in this chunk (only the pack's final chunk may
    /// have them).
    pub padding: usize,
    /// Whether this chunk attends over cached KV of earlier chunks.
    pub depends_on_prev: bool,
    /// KV-cache tokens read from earlier chunks of the same pack.
    pub kv_context: usize,
}

impl Chunk {
    /// Chunk length (effective + padding) — always the global chunk size.
    pub fn len(&self) -> usize {
        self.effective + self.padding
    }

    /// Whether the chunk carries no effective tokens.
    pub fn is_empty(&self) -> bool {
        self.effective == 0
    }
}

/// Greatest power-of-two divisor of `n` (n > 0).
fn pow2_divisor(n: usize) -> usize {
    1 << n.trailing_zeros()
}

/// The paper's chunk-size rule over the *padded caps* of the co-scheduled
/// tasks: greatest power-of-2 dividing all of them, floored at
/// `min_threshold`.
///
/// ```
/// use mux_data::chunk::chunk_size_rule;
/// assert_eq!(chunk_size_rule(&[64, 128, 256], 64), 64);
/// assert_eq!(chunk_size_rule(&[256], 64), 256);
/// assert_eq!(chunk_size_rule(&[96], 64), 64); // threshold floor wins
/// ```
///
/// When the divisor is below the threshold, the threshold wins and shorter
/// tasks accept intra-chunk padding (the Fig 20(b) regime).
pub fn chunk_size_rule(task_caps: &[usize], min_threshold: usize) -> usize {
    assert!(!task_caps.is_empty(), "no tasks");
    let divisor = task_caps
        .iter()
        .map(|&c| {
            assert!(c > 0, "zero-length cap");
            pow2_divisor(c)
        })
        .min()
        .expect("non-empty");
    divisor.max(min_threshold)
}

/// Splits one pack into `ceil(used / chunk)` chunks of `chunk` tokens.
pub fn chunk_pack(pack_idx: usize, pack: &Pack, chunk: usize) -> Vec<Chunk> {
    assert!(chunk > 0, "chunk size must be positive");
    let mut out = Vec::new();
    let mut remaining = pack.used;
    let mut index = 0;
    while remaining > 0 {
        let eff = remaining.min(chunk);
        out.push(Chunk {
            pack: pack_idx,
            index,
            effective: eff,
            padding: chunk - eff,
            depends_on_prev: index > 0,
            kv_context: index * chunk,
        });
        remaining -= eff;
        index += 1;
    }
    out
}

/// Chunks an entire pack list.
pub fn chunk_packs(packs: &[Pack], chunk: usize) -> Vec<Chunk> {
    packs
        .iter()
        .enumerate()
        .flat_map(|(i, p)| chunk_pack(i, p, chunk))
        .collect()
}

/// Padding fraction of a chunk set: padded / (effective + padded).
pub fn padding_fraction(chunks: &[Chunk]) -> f64 {
    let pad: usize = chunks.iter().map(|c| c.padding).sum();
    let eff: usize = chunks.iter().map(|c| c.effective).sum();
    if pad + eff == 0 {
        0.0
    } else {
        pad as f64 / (pad + eff) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packing::pack_ffd;

    #[test]
    fn rule_picks_gcd_power_of_two() {
        // SST2 (64) + QA (128): both divisible by 64.
        assert_eq!(chunk_size_rule(&[64, 128], 64), 64);
        // RTE only: 256 divisible by 256, so chunk 256.
        assert_eq!(chunk_size_rule(&[256], 64), 256);
        // All three: 64.
        assert_eq!(chunk_size_rule(&[64, 128, 256], 64), 64);
    }

    #[test]
    fn rule_floors_at_threshold() {
        // A 96-cap task has pow2 divisor 32 < 64: threshold wins (the
        // Fig 20b intra-chunk padding regime).
        assert_eq!(chunk_size_rule(&[96, 64], 64), 64);
        assert_eq!(chunk_size_rule(&[48], 64), 64);
    }

    #[test]
    fn chunking_preserves_tokens() {
        let packs = pack_ffd(&[60, 50, 40, 30, 20, 10], 128).expect("fits");
        let chunks = chunk_packs(&packs, 64);
        let eff: usize = chunks.iter().map(|c| c.effective).sum();
        assert_eq!(eff, 210);
        assert!(chunks.iter().all(|c| c.len() == 64));
    }

    #[test]
    fn only_final_chunk_of_a_pack_pads() {
        let packs = pack_ffd(&[100, 60], 256).expect("fits");
        let chunks = chunk_packs(&packs, 64);
        // One pack of 160 tokens -> 3 chunks: 64, 64, 32(+32 pad).
        assert_eq!(chunks.len(), 3);
        assert_eq!(chunks[0].padding, 0);
        assert_eq!(chunks[1].padding, 0);
        assert_eq!(chunks[2].padding, 32);
    }

    #[test]
    fn kv_dependencies_chain_within_pack() {
        let packs = pack_ffd(&[200], 256).expect("fits");
        let chunks = chunk_packs(&packs, 64);
        assert_eq!(chunks.len(), 4);
        assert!(!chunks[0].depends_on_prev);
        for (i, c) in chunks.iter().enumerate().skip(1) {
            assert!(c.depends_on_prev);
            assert_eq!(c.kv_context, i * 64);
        }
    }

    #[test]
    fn smaller_chunks_reduce_padding() {
        // Fig 13's tradeoff: padding falls as chunks shrink.
        let packs = pack_ffd(&[70, 70, 70], 256).expect("fits");
        let frac_small = padding_fraction(&chunk_packs(&packs, 16));
        let frac_large = padding_fraction(&chunk_packs(&packs, 128));
        assert!(frac_small < frac_large, "{frac_small} vs {frac_large}");
    }

    #[test]
    fn full_packs_have_zero_padding() {
        let packs = pack_ffd(&[64, 64], 64).expect("fits");
        let chunks = chunk_packs(&packs, 64);
        assert_eq!(padding_fraction(&chunks), 0.0);
    }
}
