//! Per-task sequence packing (step 1 of chunk-based alignment, §3.5).
//!
//! Sequences of one task's global batch are packed into longer, denser
//! rows with first-fit-decreasing bin packing. Packing is strictly
//! *within* one task and one global batch — the paper's condition for
//! leaving convergence untouched.

/// One packed row: the original sequences it carries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pack {
    /// Lengths of the sequences packed into this row, in packing order.
    pub seq_lens: Vec<usize>,
    /// Sum of `seq_lens`.
    pub used: usize,
    /// Bin capacity the pack was built for.
    pub capacity: usize,
}

impl Pack {
    /// Unused capacity.
    pub fn slack(&self) -> usize {
        self.capacity - self.used
    }

    /// Cross-sequence attention waste if this pack were attended as one
    /// sequence: `used² - Σ len_i²` score entries are semantically void
    /// (the [31, 52] observation motivating chunking over plain packing).
    pub fn cross_attention_waste(&self) -> u64 {
        let total = (self.used as u64).pow(2);
        let own: u64 = self.seq_lens.iter().map(|&l| (l as u64).pow(2)).sum();
        total - own
    }
}

/// Why a packing request could not be satisfied.
///
/// Packing failures are tenant-input problems (a sequence that does not
/// fit the advertised row capacity), so they surface as values rather than
/// panics: a multi-tenant service must reject the offending job, not abort
/// the process for everyone sharing the backbone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PackError {
    /// A sequence is longer than the pack capacity. Callers that want the
    /// lenient behaviour truncate to the dataset cap *before* packing (the
    /// service does this at corpus ingestion).
    OversizeSequence {
        /// Offending sequence length.
        len: usize,
        /// Row capacity it failed to fit.
        capacity: usize,
    },
    /// The requested row capacity is zero but there are sequences to pack.
    ZeroCapacity,
}

impl std::fmt::Display for PackError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PackError::OversizeSequence { len, capacity } => {
                write!(
                    f,
                    "sequence of length {len} exceeds pack capacity {capacity}"
                )
            }
            PackError::ZeroCapacity => write!(f, "pack capacity must be positive"),
        }
    }
}

impl std::error::Error for PackError {}

/// Packs `lengths` into bins of `capacity` with first-fit-decreasing.
///
/// ```
/// use mux_data::packing::pack_ffd;
/// let packs = pack_ffd(&[30, 30, 20, 10], 64).expect("fits");
/// assert_eq!(packs.len(), 2); // [30+30], [20+10] — half the rows
/// assert!(packs.iter().all(|p| p.used <= 64));
/// ```
///
/// # Errors
/// Returns [`PackError::OversizeSequence`] if any sequence exceeds
/// `capacity` (callers truncate to the dataset cap first) and
/// [`PackError::ZeroCapacity`] if `capacity == 0` with a non-empty input.
pub fn pack_ffd(lengths: &[usize], capacity: usize) -> Result<Vec<Pack>, PackError> {
    if capacity == 0 && !lengths.is_empty() {
        return Err(PackError::ZeroCapacity);
    }
    let mut sorted: Vec<usize> = lengths.to_vec();
    sorted.sort_unstable_by(|a, b| b.cmp(a));
    let mut packs: Vec<Pack> = Vec::new();
    for len in sorted {
        if len > capacity {
            return Err(PackError::OversizeSequence { len, capacity });
        }
        match packs.iter_mut().find(|p| p.used + len <= capacity) {
            Some(p) => {
                p.seq_lens.push(len);
                p.used += len;
            }
            None => packs.push(Pack {
                seq_lens: vec![len],
                used: len,
                capacity,
            }),
        }
    }
    Ok(packs)
}

/// Density of a packing: effective tokens / (packs × capacity).
pub fn packing_density(packs: &[Pack]) -> f64 {
    if packs.is_empty() {
        return 0.0;
    }
    let used: usize = packs.iter().map(|p| p.used).sum();
    let cap: usize = packs.iter().map(|p| p.capacity).sum();
    used as f64 / cap as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packing_preserves_all_sequences() {
        let lens = vec![10, 20, 30, 40, 50, 60];
        let packs = pack_ffd(&lens, 64).expect("fits");
        let mut recovered: Vec<usize> = packs.iter().flat_map(|p| p.seq_lens.clone()).collect();
        recovered.sort_unstable();
        assert_eq!(recovered, vec![10, 20, 30, 40, 50, 60]);
    }

    #[test]
    fn packing_never_overflows_capacity() {
        let lens: Vec<usize> = (1..=50).map(|i| (i * 7) % 63 + 1).collect();
        for p in pack_ffd(&lens, 64).expect("fits") {
            assert!(p.used <= 64);
            assert_eq!(p.used, p.seq_lens.iter().sum::<usize>());
        }
    }

    #[test]
    fn ffd_beats_one_sequence_per_row() {
        let lens = vec![30, 30, 30, 30, 4, 4, 4, 4];
        let packs = pack_ffd(&lens, 64).expect("fits");
        assert!(packs.len() < lens.len(), "packing should merge rows");
        assert!(packing_density(&packs) > 0.5);
    }

    #[test]
    fn full_sequences_get_own_packs() {
        let packs = pack_ffd(&[64, 64, 64], 64).expect("fits");
        assert_eq!(packs.len(), 3);
        assert!(packs.iter().all(|p| p.slack() == 0));
    }

    #[test]
    fn cross_attention_waste_zero_for_single_sequence() {
        let packs = pack_ffd(&[40], 64).expect("fits");
        assert_eq!(packs[0].cross_attention_waste(), 0);
        let multi = pack_ffd(&[30, 30], 64).expect("fits");
        // (60² - 2·30²) = 1800 void score entries.
        assert_eq!(multi[0].cross_attention_waste(), 1800);
    }

    #[test]
    fn oversize_sequence_is_an_error_not_a_panic() {
        let err = pack_ffd(&[100], 64).expect_err("oversize");
        assert_eq!(
            err,
            PackError::OversizeSequence {
                len: 100,
                capacity: 64
            }
        );
        assert!(err.to_string().contains("exceeds pack capacity"));
    }

    #[test]
    fn zero_capacity_is_an_error_for_nonempty_input() {
        assert_eq!(
            pack_ffd(&[1], 0).expect_err("zero cap"),
            PackError::ZeroCapacity
        );
        assert!(pack_ffd(&[], 0).expect("vacuous").is_empty());
    }

    #[test]
    fn empty_input_gives_no_packs() {
        assert!(pack_ffd(&[], 64).expect("empty").is_empty());
        assert_eq!(packing_density(&[]), 0.0);
    }
}
