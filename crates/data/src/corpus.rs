//! Synthetic PEFT corpora.
//!
//! The paper evaluates with SST2 (padded/truncated to 64), OpenBookQA (128)
//! and RTE (256) — §5.1. The scheduler and alignment layers consume only
//! *sequence lengths*; token content never matters. We therefore generate
//! corpora as length samples from distributions matching each dataset's
//! character (short sentiment snippets, mid-length QA, long entailment
//! pairs), capped at the paper's per-dataset maximum.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The three evaluation datasets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DatasetKind {
    /// Stanford Sentiment Treebank v2: short sentences, cap 64.
    Sst2,
    /// OpenBookQA: question + facts, cap 128.
    OpenBookQa,
    /// Recognizing Textual Entailment: premise + hypothesis, cap 256.
    Rte,
}

impl DatasetKind {
    /// The paper's pad/truncate cap for this dataset (§5.1).
    pub fn max_len(&self) -> usize {
        match self {
            DatasetKind::Sst2 => 64,
            DatasetKind::OpenBookQa => 128,
            DatasetKind::Rte => 256,
        }
    }

    /// Typical raw length (mode of the generator distribution).
    fn typical_len(&self) -> f64 {
        match self {
            DatasetKind::Sst2 => 38.0,
            DatasetKind::OpenBookQa => 92.0,
            DatasetKind::Rte => 175.0,
        }
    }

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            DatasetKind::Sst2 => "SST2",
            DatasetKind::OpenBookQa => "QA",
            DatasetKind::Rte => "RTE",
        }
    }
}

/// A corpus: raw (pre-padding) sequence lengths.
#[derive(Debug, Clone)]
pub struct Corpus {
    /// Which dataset this mimics.
    pub kind: DatasetKind,
    /// Raw sequence lengths, each in `[1, kind.max_len()]`.
    pub lengths: Vec<usize>,
}

impl Corpus {
    /// Generates `n` sequence lengths with a deterministic seed.
    ///
    /// Lengths follow a right-skewed distribution (sum of uniforms, squared
    /// tail) centered on the dataset's typical length and clamped to
    /// `[4, max_len]` — matching "sequence lengths vary significantly
    /// across PEFT corpora" (§2.1) without requiring the real datasets.
    pub fn generate(kind: DatasetKind, n: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15);
        let cap = kind.max_len();
        let typical = kind.typical_len();
        let lengths = (0..n)
            .map(|_| {
                // Right-skewed: base uniform around typical, occasionally
                // stretched toward the cap.
                let u: f64 = rng.gen_range(0.3..1.4);
                let stretch: f64 = if rng.gen_bool(0.15) {
                    rng.gen_range(1.2..2.2)
                } else {
                    1.0
                };
                ((typical * u * stretch).round() as usize).clamp(4, cap)
            })
            .collect();
        Self { kind, lengths }
    }

    /// Mean raw length.
    pub fn mean_len(&self) -> f64 {
        if self.lengths.is_empty() {
            return 0.0;
        }
        self.lengths.iter().sum::<usize>() as f64 / self.lengths.len() as f64
    }

    /// Total raw (effective) tokens.
    pub fn total_tokens(&self) -> u64 {
        self.lengths.iter().map(|&l| l as u64).sum()
    }

    /// Tokens after padding every sequence to the dataset cap — what
    /// single-task fine-tuning APIs bill (§3.5).
    pub fn padded_tokens(&self) -> u64 {
        (self.lengths.len() * self.kind.max_len()) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn caps_match_paper() {
        assert_eq!(DatasetKind::Sst2.max_len(), 64);
        assert_eq!(DatasetKind::OpenBookQa.max_len(), 128);
        assert_eq!(DatasetKind::Rte.max_len(), 256);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = Corpus::generate(DatasetKind::Rte, 100, 7);
        let b = Corpus::generate(DatasetKind::Rte, 100, 7);
        assert_eq!(a.lengths, b.lengths);
        let c = Corpus::generate(DatasetKind::Rte, 100, 8);
        assert_ne!(a.lengths, c.lengths);
    }

    #[test]
    fn lengths_respect_bounds() {
        for kind in [DatasetKind::Sst2, DatasetKind::OpenBookQa, DatasetKind::Rte] {
            let c = Corpus::generate(kind, 500, 1);
            assert!(c.lengths.iter().all(|&l| (4..=kind.max_len()).contains(&l)));
        }
    }

    #[test]
    fn datasets_have_distinct_scales() {
        let s = Corpus::generate(DatasetKind::Sst2, 500, 2).mean_len();
        let q = Corpus::generate(DatasetKind::OpenBookQa, 500, 2).mean_len();
        let r = Corpus::generate(DatasetKind::Rte, 500, 2).mean_len();
        assert!(s < q && q < r, "means {s} {q} {r}");
    }

    #[test]
    fn padding_inflates_tokens() {
        let c = Corpus::generate(DatasetKind::Sst2, 200, 3);
        assert!(c.padded_tokens() > c.total_tokens());
        assert_eq!(c.padded_tokens(), 200 * 64);
    }
}
