//! Streaming data loading (§3.1: "data batches are loaded in a streaming
//! manner and aligned across spatially batched tasks").
//!
//! A [`StreamingLoader`] walks each task's corpus in deterministic,
//! reshuffled epochs, emitting one aligned global batch per iteration: the
//! per-task sequence lengths for the step, already passed through the
//! configured alignment strategy so the engine sees uniform rows.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::align::{align, AlignStrategy, AlignedBatch, TaskData};
use crate::corpus::Corpus;

/// One task's streaming state.
#[derive(Debug, Clone)]
struct TaskStream {
    task: u32,
    cap: usize,
    lengths: Vec<usize>,
    order: Vec<usize>,
    cursor: usize,
    batch_size: usize,
    epoch: u64,
    seed: u64,
}

impl TaskStream {
    fn reshuffle(&mut self) {
        let mut rng = StdRng::seed_from_u64(self.seed ^ self.epoch.wrapping_mul(0x9e37_79b9));
        self.order.shuffle(&mut rng);
        self.cursor = 0;
        self.epoch += 1;
    }

    fn next_batch(&mut self) -> Vec<usize> {
        let mut out = Vec::with_capacity(self.batch_size);
        while out.len() < self.batch_size {
            if self.cursor >= self.order.len() {
                self.reshuffle();
            }
            out.push(self.lengths[self.order[self.cursor]]);
            self.cursor += 1;
        }
        out
    }
}

/// Streams aligned global batches for a set of co-scheduled tasks.
pub struct StreamingLoader {
    tasks: Vec<TaskStream>,
    strategy: AlignStrategy,
    steps: u64,
}

impl StreamingLoader {
    /// Creates a loader. `specs` holds `(task id, corpus, global batch
    /// sequences per step)` triples.
    pub fn new(specs: Vec<(u32, Corpus, usize)>, strategy: AlignStrategy, seed: u64) -> Self {
        assert!(!specs.is_empty(), "no tasks to stream");
        let tasks = specs
            .into_iter()
            .map(|(task, corpus, batch_size)| {
                assert!(batch_size > 0, "zero batch size for task {task}");
                assert!(!corpus.lengths.is_empty(), "empty corpus for task {task}");
                let n = corpus.lengths.len();
                let mut ts = TaskStream {
                    task,
                    cap: corpus.kind.max_len(),
                    lengths: corpus.lengths,
                    order: (0..n).collect(),
                    cursor: usize::MAX / 2, // force first-shuffle
                    batch_size,
                    epoch: 0,
                    seed: seed ^ (task as u64) << 17,
                };
                ts.reshuffle();
                ts
            })
            .collect();
        Self {
            tasks,
            strategy,
            steps: 0,
        }
    }

    /// Steps emitted so far.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Emits the next aligned global batch.
    pub fn next_step(&mut self) -> AlignedBatch {
        let data: Vec<TaskData> = self
            .tasks
            .iter_mut()
            .map(|t| TaskData {
                task: t.task,
                seq_lens: t.next_batch(),
                cap: t.cap,
            })
            .collect();
        self.steps += 1;
        // Streaming corpora come from `Corpus` (caps fixed per dataset kind,
        // lengths truncated to the cap inside `align`), so alignment cannot
        // fail here on any input the loader constructor accepts.
        align(&data, self.strategy).expect("corpus-backed batches always align")
    }
}

impl Iterator for StreamingLoader {
    type Item = AlignedBatch;

    fn next(&mut self) -> Option<Self::Item> {
        Some(self.next_step())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::DatasetKind;

    fn loader(strategy: AlignStrategy) -> StreamingLoader {
        StreamingLoader::new(
            vec![
                (1, Corpus::generate(DatasetKind::Sst2, 20, 1), 4),
                (2, Corpus::generate(DatasetKind::Rte, 12, 2), 2),
            ],
            strategy,
            42,
        )
    }

    #[test]
    fn every_step_is_aligned_to_one_unit_length() {
        let mut l = loader(AlignStrategy::ChunkBased { min_chunk: 64 });
        for _ in 0..10 {
            let b = l.next_step();
            assert_eq!(b.unit_len, 64);
            assert_eq!(b.tasks.len(), 2);
            assert!(b.effective_tokens() > 0);
        }
        assert_eq!(l.steps(), 10);
    }

    #[test]
    fn streaming_is_deterministic_per_seed() {
        let collect = |seed: u64| {
            let mut l = StreamingLoader::new(
                vec![(1, Corpus::generate(DatasetKind::OpenBookQa, 16, 7), 4)],
                AlignStrategy::ZeroPadGlobalMax,
                seed,
            );
            (0..6)
                .map(|_| l.next_step().effective_tokens())
                .collect::<Vec<_>>()
        };
        assert_eq!(collect(9), collect(9));
        assert_ne!(collect(9), collect(10));
    }

    #[test]
    fn epochs_cover_the_corpus_without_repeats() {
        // Batch 4 over a 20-sequence corpus: 5 steps = 1 epoch, and the
        // multiset of emitted lengths equals the corpus.
        let corpus = Corpus::generate(DatasetKind::Sst2, 20, 3);
        let mut want = corpus.lengths.clone();
        want.sort_unstable();
        let mut l = StreamingLoader::new(vec![(1, corpus, 4)], AlignStrategy::ZeroPadGlobalMax, 5);
        let mut got = Vec::new();
        for _ in 0..5 {
            let b = l.next_step();
            // ZeroPad keeps one row per sequence; recover raw lengths from
            // the per-task effective sum is lossy, so track via a second
            // loader handle instead: effective tokens per epoch must equal
            // the corpus total.
            got.push(b.tasks[0].effective_tokens);
        }
        let epoch_total: u64 = got.iter().sum();
        assert_eq!(epoch_total, want.iter().map(|&l| l as u64).sum::<u64>());
    }

    #[test]
    fn iterator_interface_streams_forever() {
        let l = loader(AlignStrategy::PackOnly);
        let batches: Vec<AlignedBatch> = l.take(25).collect();
        assert_eq!(batches.len(), 25);
    }

    #[test]
    #[should_panic(expected = "empty corpus")]
    fn empty_corpus_is_rejected() {
        let empty = Corpus {
            kind: DatasetKind::Sst2,
            lengths: vec![],
        };
        StreamingLoader::new(vec![(1, empty, 2)], AlignStrategy::ZeroPadGlobalMax, 1);
    }
}
