//! # mux-data
//!
//! The data substrate: synthetic PEFT corpora matching the paper's three
//! evaluation datasets (SST2/OpenBookQA/RTE length regimes), per-task
//! sequence packing, chunk-based partitioning with KV-reuse dependencies,
//! and the three inter-task alignment strategies of §3.5 with exact
//! effective-vs-padded token accounting.

pub mod align;
pub mod chunk;
pub mod corpus;
pub mod packing;
pub mod stream;

pub use align::{align, AlignError, AlignStrategy, AlignedBatch, TaskAlignment, TaskData};
pub use chunk::{chunk_size_rule, Chunk, DEFAULT_MIN_CHUNK};
pub use corpus::{Corpus, DatasetKind};
pub use packing::{pack_ffd, Pack, PackError};
pub use stream::StreamingLoader;
