//! Multi-task data alignment strategies (§3.5, Fig 12).
//!
//! Spatially batched tasks must agree on a per-row sequence length. Three
//! strategies are modeled:
//!
//! * **ZeroPadGlobalMax** — pad every sequence of every task to the global
//!   maximum (the SL-PEFT behaviour): massive *inter-task* ineffective
//!   tokens.
//! * **PackOnly** — pack sequences into global-max-length rows: dense, but
//!   wastes attention computation across packed sequences and produces
//!   long rows (coarse pipeline granularity).
//! * **ChunkBased** — MuxTune: per-task packing, then uniform chunk
//!   partitioning with KV-reuse dependencies.

use crate::chunk::{chunk_packs, chunk_size_rule, Chunk};
use crate::packing::{pack_ffd, Pack, PackError};

/// Why a set of task batches could not be aligned.
///
/// Alignment runs on the job-admission path of a multi-tenant service, so
/// bad tenant input (an empty task set, a zero cap, an un-truncated
/// oversize sequence) must surface as a value the caller can attach to the
/// offending job — never as a panic that takes down co-tenants.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlignError {
    /// No tasks were supplied.
    NoTasks,
    /// A chunked strategy was asked to use chunk size zero.
    ZeroChunk,
    /// Packing failed (oversize sequence or zero capacity).
    Pack(PackError),
}

impl std::fmt::Display for AlignError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AlignError::NoTasks => write!(f, "no tasks to align"),
            AlignError::ZeroChunk => write!(f, "chunk size must be positive"),
            AlignError::Pack(e) => write!(f, "packing failed: {e}"),
        }
    }
}

impl std::error::Error for AlignError {}

impl From<PackError> for AlignError {
    fn from(e: PackError) -> Self {
        AlignError::Pack(e)
    }
}

/// A task's data contribution to one aligned global batch.
#[derive(Debug, Clone)]
pub struct TaskData {
    /// Task id (matches `mux_peft::TaskId`).
    pub task: u32,
    /// Raw sequence lengths in this global batch.
    pub seq_lens: Vec<usize>,
    /// The task's dataset cap (sequences are padded/truncated to it before
    /// inter-task alignment, and padding up to the cap is billed to the
    /// user — only *inter-task* padding is the provider's problem).
    pub cap: usize,
}

/// Alignment strategy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AlignStrategy {
    /// Pad everything to the global maximum cap.
    ZeroPadGlobalMax,
    /// Pack into global-max-length rows (no chunking).
    PackOnly,
    /// MuxTune chunk-based alignment with the given minimum chunk size.
    ChunkBased {
        /// Minimum chunk size (paper default 64).
        min_chunk: usize,
    },
    /// Chunk-based alignment with an explicitly forced chunk size
    /// (bypasses the power-of-two rule — used by the Fig 13 sweep).
    ChunkExact {
        /// The exact chunk size to partition into.
        chunk: usize,
    },
}

/// Per-task accounting after alignment.
#[derive(Debug, Clone)]
pub struct TaskAlignment {
    /// Task id.
    pub task: u32,
    /// Number of aligned rows this task contributes.
    pub rows: usize,
    /// Semantic tokens (pre-padding content).
    pub effective_tokens: u64,
    /// Intra-task padding up to the dataset cap (billable).
    pub intra_task_padding: u64,
    /// Inter-task / alignment padding (not billable — the provider's cost).
    pub inter_task_padding: u64,
    /// Cross-sequence attention-waste score entries (PackOnly pathology).
    pub attention_waste: u64,
    /// KV-cache context tokens re-read by dependent chunks (ChunkBased).
    pub kv_context_tokens: u64,
    /// Token-weighted average attention context length (what each query
    /// token attends over, including cached KV of earlier chunks).
    pub avg_attn_context: f64,
    /// Average number of sequentially dependent attention kernels per
    /// packed row (1.0 when rows fit one chunk) — smaller chunks mean more,
    /// smaller attention launches (the Fig 13 underutilization risk).
    pub attn_splits: f64,
}

/// The aligned global batch: a uniform `(rows, unit_len)` shape.
#[derive(Debug, Clone)]
pub struct AlignedBatch {
    /// Strategy used.
    pub strategy: AlignStrategy,
    /// Per-row sequence length after alignment.
    pub unit_len: usize,
    /// Per-task accounting, in input order.
    pub tasks: Vec<TaskAlignment>,
}

impl AlignedBatch {
    /// Total rows across tasks.
    pub fn total_rows(&self) -> usize {
        self.tasks.iter().map(|t| t.rows).sum()
    }

    /// Total tokens processed (rows × unit_len).
    pub fn total_tokens(&self) -> u64 {
        (self.total_rows() * self.unit_len) as u64
    }

    /// Total effective tokens.
    pub fn effective_tokens(&self) -> u64 {
        self.tasks.iter().map(|t| t.effective_tokens).sum()
    }

    /// Effective fraction: semantic tokens / processed tokens — the ratio
    /// between effective and overall throughput (Fig 20's `-E` series).
    pub fn effective_fraction(&self) -> f64 {
        let total = self.total_tokens();
        if total == 0 {
            0.0
        } else {
            self.effective_tokens() as f64 / total as f64
        }
    }
}

fn align_task_zero_pad(td: &TaskData, unit: usize) -> TaskAlignment {
    let effective: u64 = td.seq_lens.iter().map(|&l| l as u64).sum();
    let intra = (td.seq_lens.len() * td.cap) as u64 - effective;
    let inter = (td.seq_lens.len() * (unit - td.cap)) as u64;
    TaskAlignment {
        task: td.task,
        rows: td.seq_lens.len(),
        effective_tokens: effective,
        intra_task_padding: intra,
        inter_task_padding: inter,
        attention_waste: 0,
        kv_context_tokens: 0,
        // Naive padded attention computes the full unit-length context.
        avg_attn_context: unit as f64,
        attn_splits: 1.0,
    }
}

fn truncated_lens(td: &TaskData) -> Vec<usize> {
    // Sequences longer than the dataset cap are truncated (§5.1). Packing
    // operates on the *raw* lengths: it reclaims the intra-task padding a
    // pad-to-cap deployment would compute.
    td.seq_lens.iter().map(|&l| l.min(td.cap)).collect()
}

fn align_task_pack_only(
    td: &TaskData,
    unit: usize,
) -> Result<(TaskAlignment, Vec<Pack>), AlignError> {
    let raw = truncated_lens(td);
    let effective: u64 = raw.iter().map(|&l| l as u64).sum();
    let packs = pack_ffd(&raw, unit)?;
    let slack: u64 = packs.iter().map(|p| p.slack() as u64).sum();
    let waste: u64 = packs.iter().map(|p| p.cross_attention_waste()).sum();
    Ok((
        TaskAlignment {
            task: td.task,
            rows: packs.len(),
            effective_tokens: effective,
            intra_task_padding: 0,
            inter_task_padding: slack,
            attention_waste: waste,
            kv_context_tokens: 0,
            // Each packed row attends over its full length (the cross-
            // sequence waste [31, 52] observe).
            avg_attn_context: unit as f64,
            attn_splits: 1.0,
        },
        packs,
    ))
}

fn align_task_chunked(
    td: &TaskData,
    chunk: usize,
) -> Result<(TaskAlignment, Vec<Chunk>), AlignError> {
    if chunk == 0 {
        return Err(AlignError::ZeroChunk);
    }
    let raw = truncated_lens(td);
    let effective: u64 = raw.iter().map(|&l| l as u64).sum();
    // Pack within the task into dense rows sized to the cap rounded up to
    // a whole number of chunks, then partition uniformly. Rows spanning
    // multiple chunks chain through KV-cache reuse.
    let pack_cap = td.cap.div_ceil(chunk) * chunk;
    let packs = pack_ffd(&raw, pack_cap)?;
    let chunks = chunk_packs(&packs, chunk);
    let inter: u64 = chunks.iter().map(|c| c.padding as u64).sum();
    let kv: u64 = chunks.iter().map(|c| c.kv_context as u64).sum();
    // Attention statistics: chunk i of a pack attends over (i+1)*chunk
    // tokens (its own chunk plus cached KV); chunks of one pack execute
    // sequentially (KV dependency), so a pack spanning n chunks issues n
    // smaller attention kernels.
    let total_tokens: f64 = chunks.iter().map(|c| c.len() as f64).sum();
    let weighted_ctx: f64 = chunks
        .iter()
        .map(|c| (c.len() * (c.kv_context + c.len())) as f64)
        .sum();
    let n_packs = packs.len().max(1) as f64;
    let splits = chunks.len() as f64 / n_packs;
    Ok((
        TaskAlignment {
            task: td.task,
            rows: chunks.len(),
            effective_tokens: effective,
            intra_task_padding: 0,
            inter_task_padding: inter,
            // Chunking confines attention to chunk-local scores plus cached
            // KV of the same pack, mitigating the cross-sequence waste of
            // plain packing (Fig 12c).
            attention_waste: 0,
            kv_context_tokens: kv,
            avg_attn_context: if total_tokens > 0.0 {
                weighted_ctx / total_tokens
            } else {
                chunk as f64
            },
            attn_splits: splits.max(1.0),
        },
        chunks,
    ))
}

/// Aligns the global batches of spatially fused tasks.
///
/// # Errors
/// Returns [`AlignError`] on bad tenant input — an empty task set, a zero
/// chunk size, or packing failures — instead of panicking, so callers on
/// the job-admission path can reject only the offending job.
pub fn align(tasks: &[TaskData], strategy: AlignStrategy) -> Result<AlignedBatch, AlignError> {
    let global_max = tasks
        .iter()
        .map(|t| t.cap)
        .max()
        .ok_or(AlignError::NoTasks)?;
    Ok(match strategy {
        AlignStrategy::ZeroPadGlobalMax => AlignedBatch {
            strategy,
            unit_len: global_max,
            tasks: tasks
                .iter()
                .map(|t| align_task_zero_pad(t, global_max))
                .collect(),
        },
        AlignStrategy::PackOnly => AlignedBatch {
            strategy,
            unit_len: global_max,
            tasks: tasks
                .iter()
                .map(|t| align_task_pack_only(t, global_max).map(|r| r.0))
                .collect::<Result<Vec<_>, _>>()?,
        },
        AlignStrategy::ChunkBased { min_chunk } => {
            let caps: Vec<usize> = tasks.iter().map(|t| t.cap).collect();
            let chunk = chunk_size_rule(&caps, min_chunk);
            AlignedBatch {
                strategy,
                unit_len: chunk,
                tasks: tasks
                    .iter()
                    .map(|t| align_task_chunked(t, chunk).map(|r| r.0))
                    .collect::<Result<Vec<_>, _>>()?,
            }
        }
        AlignStrategy::ChunkExact { chunk } => AlignedBatch {
            strategy,
            unit_len: chunk,
            tasks: tasks
                .iter()
                .map(|t| align_task_chunked(t, chunk).map(|r| r.0))
                .collect::<Result<Vec<_>, _>>()?,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::{Corpus, DatasetKind};

    fn task_from(kind: DatasetKind, n: usize, seed: u64, id: u32) -> TaskData {
        let c = Corpus::generate(kind, n, seed);
        TaskData {
            task: id,
            seq_lens: c.lengths,
            cap: kind.max_len(),
        }
    }

    #[test]
    fn zero_pad_charges_short_tasks_heavily() {
        // An SST2 task (cap 64) aligned with an RTE task (cap 256) pays
        // 192 inter-task pad tokens per sequence under ZeroPad.
        let tasks = vec![
            task_from(DatasetKind::Sst2, 8, 1, 1),
            task_from(DatasetKind::Rte, 8, 2, 2),
        ];
        let a = align(&tasks, AlignStrategy::ZeroPadGlobalMax).expect("aligns");
        assert_eq!(a.unit_len, 256);
        assert_eq!(a.tasks[0].inter_task_padding, 8 * 192);
        assert_eq!(a.tasks[1].inter_task_padding, 0);
    }

    #[test]
    fn chunking_keeps_inter_task_padding_below_one_chunk_per_pack() {
        // SST2 (64) + QA (128) with chunk 64: only each pack's final chunk
        // may pad, so padding stays far below ZeroPad's (Fig 20a regime).
        let tasks = vec![
            task_from(DatasetKind::Sst2, 16, 3, 1),
            task_from(DatasetKind::OpenBookQa, 16, 4, 2),
        ];
        let a = align(&tasks, AlignStrategy::ChunkBased { min_chunk: 64 }).expect("aligns");
        assert_eq!(a.unit_len, 64);
        let zp = align(&tasks, AlignStrategy::ZeroPadGlobalMax).expect("aligns");
        let pad_cb: u64 = a.tasks.iter().map(|t| t.inter_task_padding).sum();
        let pad_zp: u64 = zp
            .tasks
            .iter()
            .map(|t| t.inter_task_padding + t.intra_task_padding)
            .sum();
        assert!(
            pad_cb * 3 < pad_zp,
            "chunked pad {pad_cb} vs zero-pad {pad_zp}"
        );
    }

    #[test]
    fn chunk_based_beats_zero_pad_on_effective_fraction() {
        let tasks = vec![
            task_from(DatasetKind::Sst2, 16, 5, 1),
            task_from(DatasetKind::Sst2, 16, 6, 2),
            task_from(DatasetKind::Rte, 16, 7, 3),
        ];
        let zp = align(&tasks, AlignStrategy::ZeroPadGlobalMax).expect("aligns");
        let cb = align(&tasks, AlignStrategy::ChunkBased { min_chunk: 64 }).expect("aligns");
        assert!(
            cb.effective_fraction() > zp.effective_fraction() * 1.2,
            "chunked {} vs zero-pad {}",
            cb.effective_fraction(),
            zp.effective_fraction()
        );
    }

    #[test]
    fn pack_only_has_attention_waste_but_chunked_does_not() {
        let tasks = vec![task_from(DatasetKind::Sst2, 32, 8, 1)];
        let po = align(&tasks, AlignStrategy::PackOnly).expect("aligns");
        let cb = align(&tasks, AlignStrategy::ChunkBased { min_chunk: 64 }).expect("aligns");
        assert!(
            po.tasks[0].attention_waste > 0,
            "packing long rows wastes attention"
        );
        assert_eq!(cb.tasks[0].attention_waste, 0);
    }

    #[test]
    fn chunked_rows_are_finer_than_packed_rows() {
        // Finer rows = more, shorter micro-units = finer pipeline (§3.5).
        let tasks = vec![
            task_from(DatasetKind::Sst2, 16, 20, 1),
            task_from(DatasetKind::Rte, 16, 9, 2),
        ];
        let po = align(&tasks, AlignStrategy::PackOnly).expect("aligns");
        let cb = align(&tasks, AlignStrategy::ChunkBased { min_chunk: 64 }).expect("aligns");
        assert!(cb.unit_len < po.unit_len);
        assert!(cb.total_rows() > po.total_rows());
    }

    #[test]
    fn effective_tokens_are_invariant_across_strategies() {
        let tasks = vec![
            task_from(DatasetKind::OpenBookQa, 24, 10, 1),
            task_from(DatasetKind::Rte, 24, 11, 2),
        ];
        let effective = |s: AlignStrategy| align(&tasks, s).expect("aligns").effective_tokens();
        let e1 = effective(AlignStrategy::ZeroPadGlobalMax);
        let e2 = effective(AlignStrategy::PackOnly);
        let e3 = effective(AlignStrategy::ChunkBased { min_chunk: 64 });
        assert_eq!(e1, e2);
        assert_eq!(e2, e3);
    }

    #[test]
    fn uniform_tasks_see_little_zero_pad_penalty() {
        // With identical caps, ZeroPad has no inter-task padding — this is
        // why SL-PEFT looks fine in the Uniform case but degrades in the
        // Non-uniform case (§5.2).
        let tasks = vec![
            task_from(DatasetKind::Sst2, 16, 12, 1),
            task_from(DatasetKind::Sst2, 16, 13, 2),
        ];
        let zp = align(&tasks, AlignStrategy::ZeroPadGlobalMax).expect("aligns");
        assert_eq!(
            zp.tasks.iter().map(|t| t.inter_task_padding).sum::<u64>(),
            0
        );
    }

    #[test]
    fn kv_context_appears_only_when_rows_span_chunks() {
        // Mixed SST2 + RTE forces chunk 64; RTE's 256-token packs then span
        // four chunks and chain through KV reuse.
        let tasks = vec![
            task_from(DatasetKind::Sst2, 8, 21, 1),
            task_from(DatasetKind::Rte, 8, 14, 2),
        ];
        let cb = align(&tasks, AlignStrategy::ChunkBased { min_chunk: 64 }).expect("aligns");
        assert_eq!(cb.unit_len, 64);
        assert!(
            cb.tasks[1].kv_context_tokens > 0,
            "256-cap rows span 64-token chunks"
        );
        let short = vec![task_from(DatasetKind::Sst2, 8, 15, 1)];
        let cb2 = align(&short, AlignStrategy::ChunkBased { min_chunk: 64 }).expect("aligns");
        assert_eq!(
            cb2.tasks[0].kv_context_tokens, 0,
            "64-cap rows fit one chunk"
        );
    }

    #[test]
    fn bad_input_is_an_error_not_a_panic() {
        assert_eq!(
            align(&[], AlignStrategy::ZeroPadGlobalMax).expect_err("empty"),
            AlignError::NoTasks
        );
        let tasks = vec![task_from(DatasetKind::Sst2, 4, 16, 1)];
        assert_eq!(
            align(&tasks, AlignStrategy::ChunkExact { chunk: 0 }).expect_err("zero chunk"),
            AlignError::ZeroChunk
        );
    }
}
