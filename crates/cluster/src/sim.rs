//! Cluster-level scheduling simulation (§5.4, Fig 21b).
//!
//! Replays a trace on a fixed pool of GPUs carved into identical instances,
//! with a first-come-first-served scheduler. Per-instance execution speed
//! comes from a [`ThroughputProfile`] — aggregate instance throughput as a
//! function of co-located task count — calibrated from instance-level
//! engine runs, so cluster results inherit the fidelity of the
//! discrete-event engine without re-simulating every operator per trace
//! event.

use std::collections::VecDeque;

use crate::trace::TraceTask;

/// Typed errors for cluster replay and policy entry points — tenant-supplied
/// shapes and profiles must never panic the replayer (the same
/// panic-free-planning contract the planner's `PlanError` established).
#[derive(Debug, Clone, PartialEq)]
pub enum ClusterError {
    /// A throughput profile was built with no rates at all.
    EmptyProfile,
    /// The cluster shape carves out zero instances
    /// (`total_gpus < gpus_per_instance`).
    ZeroInstances {
        /// Total GPUs in the offending shape.
        total_gpus: usize,
        /// GPUs per instance in the offending shape.
        gpus_per_instance: usize,
    },
    /// `priorities` does not line up 1:1 with the trace.
    PriorityLengthMismatch {
        /// Trace length.
        trace: usize,
        /// Priority vector length.
        priorities: usize,
    },
    /// `high_fraction` fell outside `[0, 1]`.
    HighFractionOutOfRange(f64),
}

impl std::fmt::Display for ClusterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClusterError::EmptyProfile => {
                write!(f, "throughput profile needs at least the 1-task rate")
            }
            ClusterError::ZeroInstances {
                total_gpus,
                gpus_per_instance,
            } => write!(
                f,
                "cluster shape yields zero instances ({total_gpus} GPUs at {gpus_per_instance}/instance)"
            ),
            ClusterError::PriorityLengthMismatch { trace, priorities } => write!(
                f,
                "priority vector length {priorities} does not match trace length {trace}"
            ),
            ClusterError::HighFractionOutOfRange(x) => {
                write!(f, "high_fraction {x} outside [0, 1]")
            }
        }
    }
}

impl std::error::Error for ClusterError {}

/// Aggregate instance throughput (relative to one reference task running
/// alone = 1.0) as a function of the number of co-located tasks.
#[derive(Debug, Clone)]
pub struct ThroughputProfile {
    /// `rate[k-1]` = aggregate rate with `k` co-located tasks.
    pub rate: Vec<f64>,
    /// Maximum tasks an instance may co-locate (memory bound; 1 for
    /// replicating systems).
    pub max_colocated: usize,
}

impl ThroughputProfile {
    /// A single-task system (HF-PEFT / NeMo): one task per instance at the
    /// given relative rate.
    pub fn single_task(rate: f64) -> Self {
        Self {
            rate: vec![rate],
            max_colocated: 1,
        }
    }

    /// Builds a profile from measured aggregate rates for 1..=max tasks.
    pub fn from_rates(rate: Vec<f64>) -> Result<Self, ClusterError> {
        if rate.is_empty() {
            return Err(ClusterError::EmptyProfile);
        }
        let max = rate.len();
        Ok(Self {
            rate,
            max_colocated: max,
        })
    }

    /// Aggregate rate with `k` tasks, clamped to the calibrated range on
    /// both ends (`k = 0` reads the 1-task rate; an empty hand-built
    /// profile reads as rate 0 instead of panicking).
    pub fn aggregate(&self, k: usize) -> f64 {
        match self.rate.len() {
            0 => 0.0,
            n => self.rate[k.saturating_sub(1).min(n - 1)],
        }
    }
}

/// One instance-wide outage window for fault-aware replay: the instance
/// freezes (no progress, no placements) over `[start_min, end_min)` and
/// resumes its paused co-residents afterwards.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InstanceOutage {
    /// Instance index.
    pub instance: usize,
    /// Outage start, minutes.
    pub start_min: f64,
    /// Outage end, minutes.
    pub end_min: f64,
}

impl InstanceOutage {
    /// Whether the instance is down at `now`.
    fn covers(&self, now: f64) -> bool {
        self.start_min <= now && now < self.end_min
    }
}

/// Cluster geometry.
#[derive(Debug, Clone, Copy)]
pub struct ClusterShape {
    /// Total GPUs (the paper uses 128).
    pub total_gpus: usize,
    /// GPUs per instance (4 for LLaMA7B, Table 1).
    pub gpus_per_instance: usize,
}

impl ClusterShape {
    /// Number of instances.
    pub fn instances(&self) -> usize {
        self.total_gpus / self.gpus_per_instance
    }
}

/// Per-instance usage accounting over one replay: how much of the
/// makespan each instance spent hosting work, and how densely.
#[derive(Debug, Clone, PartialEq)]
pub struct InstanceUsage {
    /// Instance index.
    pub instance: usize,
    /// Minutes with at least one active task.
    pub busy_min: f64,
    /// Task-minutes of occupancy (`∫ active-task-count dt`), so
    /// `occupancy_task_min / busy_min` is the mean co-location depth
    /// while busy.
    pub occupancy_task_min: f64,
    /// Tasks that finished on this instance.
    pub completed: usize,
}

impl InstanceUsage {
    /// Fraction of `makespan` this instance was hosting work.
    pub fn busy_fraction(&self, makespan_min: f64) -> f64 {
        self.busy_min / makespan_min.max(1e-12)
    }
}

/// Results of one trace replay.
#[derive(Debug, Clone)]
pub struct ClusterReport {
    /// Time the last task completed, minutes.
    pub makespan_min: f64,
    /// Aggregate work completed per minute (work = task-minutes-alone) —
    /// the "cluster throughput" of Fig 21b, in reference-rate units.
    pub throughput: f64,
    /// Mean job completion time (arrival → finish), minutes.
    pub mean_jct_min: f64,
    /// Mean queueing delay (arrival → start), minutes.
    pub mean_queue_min: f64,
    /// Tasks completed.
    pub completed: usize,
    /// Per-instance busy time / occupancy / completion accounting.
    pub instances: Vec<InstanceUsage>,
}

impl ClusterReport {
    /// Mean busy fraction across instances (idle-instance attribution:
    /// `1 - mean_busy_fraction` of the pool-makespan product was spent
    /// with no work placed).
    pub fn mean_busy_fraction(&self) -> f64 {
        if self.instances.is_empty() {
            return 0.0;
        }
        self.instances
            .iter()
            .map(|u| u.busy_fraction(self.makespan_min))
            .sum::<f64>()
            / self.instances.len() as f64
    }
}

#[derive(Debug, Clone)]
struct Active {
    idx: usize,
    remaining: f64,
}

/// Replays `trace` under FCFS with the given per-instance profile.
pub fn replay_fcfs(
    trace: &[TraceTask],
    shape: ClusterShape,
    profile: &ThroughputProfile,
) -> Result<ClusterReport, ClusterError> {
    replay_fcfs_faulty(trace, shape, profile, &[])
}

/// Fault-aware FCFS replay: instances freeze inside their [`InstanceOutage`]
/// windows — in-flight tasks pause (their work is preserved, checkpoint
/// semantics) and no new work is placed — then resume when the outage
/// lifts. With an empty outage list this is exactly [`replay_fcfs`].
pub fn replay_fcfs_faulty(
    trace: &[TraceTask],
    shape: ClusterShape,
    profile: &ThroughputProfile,
    outages: &[InstanceOutage],
) -> Result<ClusterReport, ClusterError> {
    let n_inst = shape.instances();
    if n_inst == 0 {
        return Err(ClusterError::ZeroInstances {
            total_gpus: shape.total_gpus,
            gpus_per_instance: shape.gpus_per_instance,
        });
    }
    let down =
        |ii: usize, now: f64| -> bool { outages.iter().any(|o| o.instance == ii && o.covers(now)) };
    // The next outage boundary (start or end) strictly after `now`: rates
    // are piecewise-constant only between boundaries, so the event loop
    // must not integrate across one.
    let next_boundary = |now: f64| -> Option<f64> {
        outages
            .iter()
            .flat_map(|o| [o.start_min, o.end_min])
            .filter(|&t| t > now + 1e-12)
            .fold(None, |best: Option<f64>, t| {
                Some(best.map_or(t, |b| b.min(t)))
            })
    };
    let mut instances: Vec<Vec<Active>> = vec![Vec::new(); n_inst];
    let mut queue: VecDeque<usize> = VecDeque::new();
    let mut next_arrival = 0usize;
    let mut now = 0.0f64;
    let mut finish = vec![f64::NAN; trace.len()];
    let mut start = vec![f64::NAN; trace.len()];
    let mut completed = 0usize;
    let mut usage: Vec<InstanceUsage> = (0..n_inst)
        .map(|instance| InstanceUsage {
            instance,
            busy_min: 0.0,
            occupancy_task_min: 0.0,
            completed: 0,
        })
        .collect();

    let task_rate = |k: usize, profile: &ThroughputProfile| profile.aggregate(k) / k as f64;

    while completed < trace.len() {
        // Next event: earliest completion across *up* instances, the next
        // arrival, or the next outage boundary (down instances make no
        // progress, so they produce no completions until they resume).
        let mut next_completion: Option<(f64, usize)> = None; // (time, instance)
        for (ii, inst) in instances.iter().enumerate() {
            if inst.is_empty() || down(ii, now) {
                continue;
            }
            let rate = task_rate(inst.len(), profile);
            let soonest = inst
                .iter()
                .map(|a| a.remaining / rate)
                .fold(f64::INFINITY, f64::min);
            let t = now + soonest;
            if next_completion.map(|(bt, _)| t < bt).unwrap_or(true) {
                next_completion = Some((t, ii));
            }
        }
        let arrival_t = trace.get(next_arrival).map(|t| t.arrival_min);
        let boundary_t = next_boundary(now);
        let advance_to = [next_completion.map(|(ct, _)| ct), arrival_t, boundary_t]
            .into_iter()
            .flatten()
            .fold(None, |best: Option<f64>, t| {
                Some(best.map_or(t, |b| b.min(t)))
            });
        let Some(advance_to) = advance_to else { break };
        // Advance progress on every up instance.
        let dt = advance_to - now;
        for (ii, inst) in instances.iter_mut().enumerate() {
            if inst.is_empty() || down(ii, now) {
                continue;
            }
            usage[ii].busy_min += dt;
            usage[ii].occupancy_task_min += inst.len() as f64 * dt;
            let rate = task_rate(inst.len(), profile);
            for a in inst.iter_mut() {
                a.remaining -= rate * dt;
            }
        }
        now = advance_to;
        // Completions (tolerate float dust).
        for (ii, inst) in instances.iter_mut().enumerate() {
            inst.retain(|a| {
                if a.remaining <= 1e-9 {
                    finish[a.idx] = now;
                    completed += 1;
                    usage[ii].completed += 1;
                    false
                } else {
                    true
                }
            });
        }
        // Arrivals at this instant.
        while next_arrival < trace.len() && trace[next_arrival].arrival_min <= now + 1e-12 {
            queue.push_back(next_arrival);
            next_arrival += 1;
        }
        // FCFS placement: head of queue goes to the least-loaded *up*
        // instance with spare co-location capacity; stop at the first that
        // cannot be placed (strict FCFS, as in the paper).
        while let Some(&idx) = queue.front() {
            let slot = instances
                .iter()
                .enumerate()
                .filter(|(ii, inst)| inst.len() < profile.max_colocated && !down(*ii, now))
                .min_by_key(|(_, inst)| inst.len())
                .map(|(ii, _)| ii);
            match slot {
                Some(ii) => {
                    queue.pop_front();
                    start[idx] = now;
                    instances[ii].push(Active {
                        idx,
                        remaining: trace[idx].duration_min,
                    });
                }
                None => break,
            }
        }
    }

    let total_work: f64 = trace.iter().map(|t| t.duration_min).sum();
    let n = trace.len() as f64;
    Ok(ClusterReport {
        makespan_min: now,
        throughput: total_work / now,
        mean_jct_min: trace
            .iter()
            .enumerate()
            .map(|(i, t)| finish[i] - t.arrival_min)
            .sum::<f64>()
            / n,
        mean_queue_min: trace
            .iter()
            .enumerate()
            .map(|(i, t)| start[i] - t.arrival_min)
            .sum::<f64>()
            / n,
        completed,
        instances: usage,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::generate;

    fn shape() -> ClusterShape {
        ClusterShape {
            total_gpus: 128,
            gpus_per_instance: 4,
        }
    }

    #[test]
    fn all_tasks_complete() {
        let trace = generate(500, 11, None);
        let rep = replay_fcfs(&trace, shape(), &ThroughputProfile::single_task(1.0)).unwrap();
        assert_eq!(rep.completed, 500);
        assert!(rep.makespan_min >= trace.last().expect("non-empty").arrival_min);
    }

    #[test]
    fn higher_aggregate_rate_raises_cluster_throughput() {
        let trace = generate(800, 13, None);
        let slow = replay_fcfs(&trace, shape(), &ThroughputProfile::single_task(1.0)).unwrap();
        // A multiplexing system: 4 co-located tasks run at 2.2x aggregate.
        let mux = ThroughputProfile::from_rates(vec![1.0, 1.5, 1.9, 2.2]).unwrap();
        let fast = replay_fcfs(&trace, shape(), &mux).unwrap();
        assert!(
            fast.throughput > slow.throughput,
            "{} vs {}",
            fast.throughput,
            slow.throughput
        );
        assert!(fast.mean_jct_min <= slow.mean_jct_min);
    }

    #[test]
    fn colocation_capacity_is_respected() {
        // With capacity 1 and one instance, tasks serialize.
        let trace = generate(4, 17, None);
        let one = ClusterShape {
            total_gpus: 4,
            gpus_per_instance: 4,
        };
        let rep = replay_fcfs(&trace, one, &ThroughputProfile::single_task(1.0)).unwrap();
        let serial: f64 = trace.iter().map(|t| t.duration_min).sum();
        assert!(
            rep.makespan_min >= serial * 0.999,
            "{} vs serial {}",
            rep.makespan_min,
            serial
        );
    }

    #[test]
    fn empty_cluster_idles_until_arrivals() {
        let mut trace = generate(2, 19, None);
        trace[0].arrival_min = 100.0;
        trace[1].arrival_min = 100.0;
        let rep = replay_fcfs(&trace, shape(), &ThroughputProfile::single_task(1.0)).unwrap();
        assert!(rep.makespan_min > 100.0);
        assert!(rep.mean_queue_min < 1e-9, "no queueing with a huge cluster");
    }

    #[test]
    fn instance_usage_conserves_work_and_completions() {
        let trace = generate(200, 29, None);
        let rep = replay_fcfs(
            &trace,
            shape(),
            &ThroughputProfile::from_rates(vec![1.0, 1.6, 2.0, 2.3]).unwrap(),
        )
        .unwrap();
        assert_eq!(rep.instances.len(), shape().instances());
        // Completions across instances sum to the trace.
        let total: usize = rep.instances.iter().map(|u| u.completed).sum();
        assert_eq!(total, trace.len());
        for u in &rep.instances {
            assert!(
                u.busy_min <= rep.makespan_min + 1e-9,
                "instance {}",
                u.instance
            );
            // Occupancy is at least busy time (>=1 task while busy) and at
            // most busy * co-location capacity.
            assert!(u.occupancy_task_min >= u.busy_min - 1e-9);
            assert!(u.occupancy_task_min <= u.busy_min * 4.0 + 1e-9);
            let f = u.busy_fraction(rep.makespan_min);
            assert!((0.0..=1.0 + 1e-9).contains(&f));
        }
        let mean = rep.mean_busy_fraction();
        assert!(mean > 0.0 && mean <= 1.0 + 1e-9, "mean busy {mean}");
    }

    #[test]
    fn serialized_instance_is_busy_for_the_whole_work() {
        // Capacity 1, one instance, simultaneous arrivals: the instance is
        // busy for exactly the serial duration sum.
        let mut trace = generate(4, 17, None);
        for t in &mut trace {
            t.arrival_min = 0.0;
        }
        let one = ClusterShape {
            total_gpus: 4,
            gpus_per_instance: 4,
        };
        let rep = replay_fcfs(&trace, one, &ThroughputProfile::single_task(1.0)).unwrap();
        let serial: f64 = trace.iter().map(|t| t.duration_min).sum();
        let u = &rep.instances[0];
        assert!(
            (u.busy_min - serial).abs() <= 1e-6 * serial,
            "busy {} vs serial {serial}",
            u.busy_min
        );
        // One task at a time: occupancy equals busy time.
        assert!((u.occupancy_task_min - u.busy_min).abs() <= 1e-6 * serial);
        assert_eq!(u.completed, 4);
    }

    #[test]
    fn sharing_reduces_queueing_under_load() {
        // Tiny cluster, many tasks: co-location capacity 4 slashes queues.
        let trace = generate(100, 23, None);
        let tiny = ClusterShape {
            total_gpus: 8,
            gpus_per_instance: 4,
        };
        let single = replay_fcfs(&trace, tiny, &ThroughputProfile::single_task(1.0)).unwrap();
        let shared = replay_fcfs(
            &trace,
            tiny,
            &ThroughputProfile::from_rates(vec![1.0, 1.6, 2.0, 2.3]).unwrap(),
        )
        .unwrap();
        assert!(shared.mean_queue_min < single.mean_queue_min);
    }

    #[test]
    fn bad_inputs_are_typed_errors_not_panics() {
        assert_eq!(
            ThroughputProfile::from_rates(vec![]).unwrap_err(),
            ClusterError::EmptyProfile
        );
        let trace = generate(4, 3, None);
        let bad = ClusterShape {
            total_gpus: 2,
            gpus_per_instance: 4,
        };
        assert!(matches!(
            replay_fcfs(&trace, bad, &ThroughputProfile::single_task(1.0)),
            Err(ClusterError::ZeroInstances { .. })
        ));
        // Degenerate aggregate queries clamp instead of panicking.
        let p = ThroughputProfile::single_task(1.0);
        assert_eq!(p.aggregate(0), 1.0);
        assert_eq!(p.aggregate(100), 1.0);
    }

    #[test]
    fn zero_length_outage_matches_fault_free_replay() {
        let trace = generate(200, 31, None);
        let base = replay_fcfs(&trace, shape(), &ThroughputProfile::single_task(1.0)).unwrap();
        let noop = [InstanceOutage {
            instance: 0,
            start_min: 5.0,
            end_min: 5.0,
        }];
        let faulty =
            replay_fcfs_faulty(&trace, shape(), &ThroughputProfile::single_task(1.0), &noop)
                .unwrap();
        assert_eq!(faulty.completed, base.completed);
        assert!((faulty.makespan_min - base.makespan_min).abs() < 1e-9);
        assert!((faulty.mean_jct_min - base.mean_jct_min).abs() < 1e-9);
    }

    #[test]
    fn outage_pauses_work_and_everything_still_completes() {
        // One instance, serialized work: an outage in the middle delays the
        // makespan by at least its length, but every task still finishes.
        let mut trace = generate(4, 17, None);
        for t in &mut trace {
            t.arrival_min = 0.0;
        }
        let one = ClusterShape {
            total_gpus: 4,
            gpus_per_instance: 4,
        };
        let profile = ThroughputProfile::single_task(1.0);
        let base = replay_fcfs(&trace, one, &profile).unwrap();
        let outage = [InstanceOutage {
            instance: 0,
            start_min: 1.0,
            end_min: 11.0,
        }];
        let faulty = replay_fcfs_faulty(&trace, one, &profile, &outage).unwrap();
        assert_eq!(faulty.completed, trace.len(), "no task lost to the outage");
        assert!(
            faulty.makespan_min >= base.makespan_min + 10.0 - 1e-6,
            "outage of 10 min delays the makespan: {} vs {}",
            faulty.makespan_min,
            base.makespan_min
        );
        // Paused time is not busy time.
        assert!(faulty.instances[0].busy_min <= base.instances[0].busy_min + 1e-6);
    }

    #[test]
    fn outage_on_one_instance_leaves_others_unaffected() {
        // Two instances, two simultaneous tasks: each lands on its own
        // instance; knocking instance 1 out delays only its own task.
        let mut trace = generate(2, 23, None);
        for t in &mut trace {
            t.arrival_min = 0.0;
        }
        let two = ClusterShape {
            total_gpus: 8,
            gpus_per_instance: 4,
        };
        let profile = ThroughputProfile::single_task(1.0);
        let outage = [InstanceOutage {
            instance: 1,
            start_min: 0.5,
            end_min: 2.5,
        }];
        let base = replay_fcfs(&trace, two, &profile).unwrap();
        let faulty = replay_fcfs_faulty(&trace, two, &profile, &outage).unwrap();
        assert_eq!(faulty.completed, 2);
        assert_eq!(
            faulty.instances[0].completed, base.instances[0].completed,
            "co-tenant instance unaffected"
        );
        assert!(
            (faulty.instances[0].busy_min - base.instances[0].busy_min).abs() < 1e-9,
            "co-tenant busy time unchanged"
        );
    }
}
