//! Philly-like workload trace generation (§5.4).
//!
//! No public PEFT trace exists, so — like the paper, which adapts a
//! one-week Philly trace — we synthesize a trace matching the published
//! moments: task durations with mean 372.6 min and standard deviation
//! 612.9 min (log-normal), Poisson arrivals at 2.59 tasks/min, and random
//! per-task configurations (dataset, micro-batch size, LoRA rank).

use mux_data::corpus::DatasetKind;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Published Philly-trace moments (§5.4).
pub const MEAN_DURATION_MIN: f64 = 372.6;
/// Standard deviation of task durations.
pub const STD_DURATION_MIN: f64 = 612.9;
/// Mean arrival rate, tasks per minute.
pub const ARRIVAL_RATE_PER_MIN: f64 = 2.59;

/// One fine-tuning task in the cluster trace.
#[derive(Debug, Clone)]
pub struct TraceTask {
    /// Task id (also its submission order).
    pub id: u32,
    /// Arrival time, minutes from trace start.
    pub arrival_min: f64,
    /// Nominal duration when run alone on a reference instance, minutes.
    pub duration_min: f64,
    /// Dataset (drives sequence-length cap).
    pub dataset: DatasetKind,
    /// Micro-batch size.
    pub micro_batch: usize,
    /// LoRA rank.
    pub rank: usize,
}

/// Approximately-normal sample via Irwin–Hall (12 uniforms).
fn normalish(rng: &mut StdRng) -> f64 {
    let s: f64 = (0..12).map(|_| rng.gen_range(0.0f64..1.0)).sum();
    s - 6.0
}

/// Generates a trace of `n` tasks with the published moments.
pub fn generate(n: usize, seed: u64, uniform_dataset: Option<DatasetKind>) -> Vec<TraceTask> {
    // Log-normal parameters from mean/std: cv² = exp(σ²) − 1.
    let cv2 = (STD_DURATION_MIN / MEAN_DURATION_MIN).powi(2);
    let sigma2 = (1.0 + cv2).ln();
    let mu = MEAN_DURATION_MIN.ln() - sigma2 / 2.0;
    let sigma = sigma2.sqrt();

    let mut rng = StdRng::seed_from_u64(seed ^ 0x5851_f42d_4c95_7f2d);
    let mut t = 0.0;
    (0..n)
        .map(|i| {
            // Exponential inter-arrival via inverse CDF.
            let u: f64 = rng.gen_range(1e-12..1.0);
            t += -u.ln() / ARRIVAL_RATE_PER_MIN;
            let duration = (mu + sigma * normalish(&mut rng))
                .exp()
                .clamp(1.0, 14.0 * 24.0 * 60.0);
            let dataset = uniform_dataset.unwrap_or_else(|| match rng.gen_range(0..3) {
                0 => DatasetKind::Sst2,
                1 => DatasetKind::OpenBookQa,
                _ => DatasetKind::Rte,
            });
            TraceTask {
                id: i as u32,
                arrival_min: t,
                duration_min: duration,
                dataset,
                micro_batch: 1usize << rng.gen_range(1..4), // 2, 4, or 8
                rank: 8usize << rng.gen_range(0..3),        // 8, 16, or 32
            }
        })
        .collect()
}

/// Sample statistics of a trace (for validating against the published
/// moments).
pub fn stats(trace: &[TraceTask]) -> (f64, f64, f64) {
    let n = trace.len() as f64;
    let mean = trace.iter().map(|t| t.duration_min).sum::<f64>() / n;
    let var = trace
        .iter()
        .map(|t| (t.duration_min - mean).powi(2))
        .sum::<f64>()
        / n;
    let span = trace.last().map(|t| t.arrival_min).unwrap_or(0.0);
    let rate = if span > 0.0 { n / span } else { 0.0 };
    (mean, var.sqrt(), rate)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn moments_match_published_values() {
        let trace = generate(20_000, 42, None);
        let (mean, std, rate) = stats(&trace);
        assert!(
            (mean - MEAN_DURATION_MIN).abs() / MEAN_DURATION_MIN < 0.1,
            "mean {mean}"
        );
        assert!(
            (std - STD_DURATION_MIN).abs() / STD_DURATION_MIN < 0.2,
            "std {std}"
        );
        assert!(
            (rate - ARRIVAL_RATE_PER_MIN).abs() / ARRIVAL_RATE_PER_MIN < 0.05,
            "rate {rate}"
        );
    }

    #[test]
    fn arrivals_are_monotone() {
        let trace = generate(1000, 7, None);
        for w in trace.windows(2) {
            assert!(w[1].arrival_min >= w[0].arrival_min);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = generate(100, 1, None);
        let b = generate(100, 1, None);
        assert_eq!(a.len(), b.len());
        assert!(a
            .iter()
            .zip(&b)
            .all(|(x, y)| x.arrival_min == y.arrival_min && x.duration_min == y.duration_min));
    }

    #[test]
    fn uniform_mode_pins_the_dataset() {
        let trace = generate(50, 3, Some(DatasetKind::Sst2));
        assert!(trace.iter().all(|t| t.dataset == DatasetKind::Sst2));
    }

    #[test]
    fn configs_stay_in_range() {
        let trace = generate(500, 9, None);
        for t in &trace {
            assert!([2, 4, 8].contains(&t.micro_batch));
            assert!([8, 16, 32].contains(&t.rank));
            assert!(t.duration_min >= 1.0);
        }
    }
}
