//! Profile calibration: measure per-instance aggregate throughput for
//! 1..=k co-located tasks with the real engine, producing the
//! [`ThroughputProfile`] the cluster replay
//! consumes.

use std::collections::BTreeMap;

use mux_data::corpus::{Corpus, DatasetKind};
use mux_gpu_sim::timeline::Cluster;
use mux_model::config::ModelConfig;
use mux_peft::registry::TaskRegistry;
use mux_peft::types::{PeftTask, TaskId};

use mux_baselines::runner::{run_system, SystemKind};

use crate::sim::ThroughputProfile;

/// The dataset mix instances see.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mix {
    /// Every co-located task uses the same dataset (§5.1 "Uniform").
    Uniform(DatasetKind),
    /// Tasks cycle through SST2 / QA / RTE ("Non-uniform").
    NonUniform,
}

impl Mix {
    fn dataset_for(&self, i: usize) -> DatasetKind {
        match self {
            Mix::Uniform(k) => *k,
            Mix::NonUniform => match i % 3 {
                0 => DatasetKind::Sst2,
                1 => DatasetKind::OpenBookQa,
                _ => DatasetKind::Rte,
            },
        }
    }
}

/// Builds a `k`-task workload registry plus corpora for the mix.
pub fn workload(
    backbone: &ModelConfig,
    mix: Mix,
    k: usize,
    micro_batch: usize,
    seed: u64,
) -> (TaskRegistry, BTreeMap<TaskId, Vec<usize>>) {
    let mut r = TaskRegistry::new(backbone.clone());
    let mut corpora = BTreeMap::new();
    for i in 0..k {
        let ds = mix.dataset_for(i);
        let id = i as TaskId + 1;
        r.register_task(PeftTask::lora(id, 16, micro_batch, ds.max_len()))
            .expect("fresh ids");
        corpora.insert(id, Corpus::generate(ds, 64, seed + i as u64).lengths);
    }
    (r, corpora)
}

/// The reference rate: NeMo running one QA task alone (tokens/s). Cluster
/// profiles are expressed relative to this.
pub fn reference_throughput(
    backbone: &ModelConfig,
    cluster: &Cluster,
    micro_batches: usize,
) -> f64 {
    let (r, corpora) = workload(backbone, Mix::Uniform(DatasetKind::OpenBookQa), 1, 4, 1);
    run_system(SystemKind::Nemo, &r, cluster, &corpora, micro_batches)
        .expect("reference run")
        .metrics
        .effective_throughput
}

/// Calibrates `system`'s instance profile for 1..=`max_tasks` co-located
/// tasks, normalized by `reference_tps`.
pub fn calibrate(
    system: SystemKind,
    backbone: &ModelConfig,
    cluster: &Cluster,
    mix: Mix,
    max_tasks: usize,
    micro_batches: usize,
    reference_tps: f64,
) -> ThroughputProfile {
    assert!(reference_tps > 0.0);
    let mut rates = Vec::with_capacity(max_tasks);
    for k in 1..=max_tasks {
        let (r, corpora) = workload(backbone, mix, k, 4, 100 + k as u64);
        match run_system(system, &r, cluster, &corpora, micro_batches) {
            Ok(rep) => rates.push(rep.metrics.effective_throughput / reference_tps),
            Err(_) => break, // OOM: capacity reached
        }
    }
    if rates.is_empty() {
        ThroughputProfile::single_task(0.0)
    } else if matches!(system, SystemKind::HfPeft | SystemKind::Nemo) {
        // Replicating systems serialize tasks: cluster capacity is 1 task
        // per instance; aggregate rate is the 1-task rate.
        ThroughputProfile::single_task(rates[0])
    } else {
        ThroughputProfile::from_rates(rates).expect("rates checked non-empty above")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mux_gpu_sim::spec::{GpuSpec, LinkSpec};

    fn small_cluster() -> Cluster {
        Cluster::single_node(GpuSpec::a40(), 4, LinkSpec::nvlink_a40())
    }

    #[test]
    fn muxtune_profile_grows_with_colocation() {
        let backbone = ModelConfig::llama2_7b().with_layers(16);
        let c = small_cluster();
        let reference = reference_throughput(&backbone, &c, 4);
        assert!(reference > 0.0);
        let p = calibrate(
            SystemKind::MuxTune,
            &backbone,
            &c,
            Mix::Uniform(DatasetKind::OpenBookQa),
            3,
            4,
            reference,
        );
        assert!(p.max_colocated >= 2);
        assert!(
            p.aggregate(p.max_colocated) > p.aggregate(1),
            "multiplexing must raise aggregate rate: {:?}",
            p.rate
        );
    }

    #[test]
    fn nemo_profile_is_single_task() {
        let backbone = ModelConfig::llama2_7b().with_layers(16);
        let c = small_cluster();
        let reference = reference_throughput(&backbone, &c, 4);
        let p = calibrate(
            SystemKind::Nemo,
            &backbone,
            &c,
            Mix::Uniform(DatasetKind::OpenBookQa),
            3,
            4,
            reference,
        );
        assert_eq!(p.max_colocated, 1);
        assert!(
            (p.aggregate(1) - 1.0).abs() < 0.35,
            "NeMo ≈ reference: {}",
            p.aggregate(1)
        );
    }
}
