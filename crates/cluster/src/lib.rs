//! # mux-cluster
//!
//! Cluster-level evaluation (§5.4): Philly-like trace generation matching
//! the published workload moments, engine-calibrated instance throughput
//! profiles, and a first-come-first-served 128-GPU cluster replay.

pub mod calibrate;
pub mod policies;
pub mod sim;
pub mod trace;

pub use calibrate::{calibrate, reference_throughput, workload, Mix};
pub use policies::{assign_priorities, replay_priority, PolicyReport, Priority};
pub use sim::{
    replay_fcfs, replay_fcfs_faulty, ClusterError, ClusterReport, ClusterShape, InstanceOutage,
    ThroughputProfile,
};
pub use trace::{generate, TraceTask};
