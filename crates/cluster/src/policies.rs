//! Multiplexing-aware scheduling policies beyond FCFS (§6 "Discussion and
//! Future Work"): priority-based co-location and SLO-guarding admission
//! control.
//!
//! * **Priority-based**: high-priority tasks get dedicated instances
//!   (task-level latency guarantee); low-priority tasks co-locate to boost
//!   instance-level throughput — exactly the §6 sketch.
//! * **Admission control**: a task is only co-located if the resulting
//!   rate-sharing keeps every co-resident's projected completion within
//!   its SLO; otherwise it waits for a less-loaded slot.

use std::collections::VecDeque;

use mux_obs_analysis::fairness::jain_index;

use crate::sim::{ClusterError, ClusterShape, ThroughputProfile};
use crate::trace::TraceTask;

/// Task priority classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Priority {
    /// Latency-sensitive: gets dedicated resources.
    High,
    /// Throughput-oriented: co-locatable.
    Low,
}

/// Assigns priorities deterministically: every `1/high_fraction`-th task is
/// high-priority. A `high_fraction` outside `[0, 1]` (or NaN) is a typed
/// error, not a panic — it arrives from tenant-facing configuration.
pub fn assign_priorities(
    trace: &[TraceTask],
    high_fraction: f64,
) -> Result<Vec<Priority>, ClusterError> {
    if !(0.0..=1.0).contains(&high_fraction) {
        return Err(ClusterError::HighFractionOutOfRange(high_fraction));
    }
    let period = if high_fraction <= 0.0 {
        usize::MAX
    } else {
        (1.0 / high_fraction).round() as usize
    };
    Ok(trace
        .iter()
        .map(|t| {
            if period != usize::MAX && (t.id as usize).is_multiple_of(period) {
                Priority::High
            } else {
                Priority::Low
            }
        })
        .collect())
}

/// Per-class outcome of a policy replay.
#[derive(Debug, Clone)]
pub struct ClassReport {
    /// Tasks in the class.
    pub count: usize,
    /// Mean job completion time, minutes.
    pub mean_jct_min: f64,
    /// Mean queueing delay, minutes.
    pub mean_queue_min: f64,
    /// Fraction of tasks finishing within their SLO (if SLOs were set).
    pub slo_attainment: f64,
}

/// Result of a policy replay.
#[derive(Debug, Clone)]
pub struct PolicyReport {
    /// Makespan, minutes.
    pub makespan_min: f64,
    /// Cluster throughput in reference-rate units.
    pub throughput: f64,
    /// High-priority class outcome.
    pub high: ClassReport,
    /// Low-priority class outcome.
    pub low: ClassReport,
    /// Jain fairness of per-task slowdowns (JCT ÷ ideal duration) across
    /// the whole trace: 1 = every task sees the same slowdown.
    pub jain_slowdown: f64,
}

#[derive(Debug, Clone)]
struct Active {
    idx: usize,
    remaining: f64,
}

struct State {
    instances: Vec<Vec<Active>>,
    queue: VecDeque<usize>,
    now: f64,
    start: Vec<f64>,
    finish: Vec<f64>,
}

fn task_rate(k: usize, profile: &ThroughputProfile) -> f64 {
    profile.aggregate(k) / k as f64
}

/// Replays `trace` with priority-aware placement and optional SLO-guarding
/// admission control.
///
/// * High-priority tasks only take *empty* instances (dedicated).
/// * Low-priority tasks co-locate up to the profile's capacity; with
///   `slo_factor = Some(f)`, a placement is admitted only if every
///   co-resident (including the newcomer) is still projected to finish
///   within `f x` its solo duration, assuming the current co-location
///   level persists.
pub fn replay_priority(
    trace: &[TraceTask],
    priorities: &[Priority],
    shape: ClusterShape,
    profile: &ThroughputProfile,
    slo_factor: Option<f64>,
) -> Result<PolicyReport, ClusterError> {
    if trace.len() != priorities.len() {
        return Err(ClusterError::PriorityLengthMismatch {
            trace: trace.len(),
            priorities: priorities.len(),
        });
    }
    let n_inst = shape.instances();
    if n_inst == 0 {
        return Err(ClusterError::ZeroInstances {
            total_gpus: shape.total_gpus,
            gpus_per_instance: shape.gpus_per_instance,
        });
    }
    let mut st = State {
        instances: vec![Vec::new(); n_inst],
        queue: VecDeque::new(),
        now: 0.0,
        start: vec![f64::NAN; trace.len()],
        finish: vec![f64::NAN; trace.len()],
    };
    let mut next_arrival = 0usize;
    let mut completed = 0usize;

    // An instance hosting a high-priority task is marked dedicated.
    let mut dedicated = vec![false; n_inst];

    let admits = |inst: &[Active], newcomer: &TraceTask, now: f64, start: &[f64]| -> bool {
        let Some(f) = slo_factor else { return true };
        let k = inst.len() + 1;
        let rate = task_rate(k, profile);
        // Newcomer's projection.
        if newcomer.duration_min / rate > f * newcomer.duration_min {
            return false;
        }
        // Co-residents' projections: elapsed so far + remaining at the new
        // (slower) per-task rate must stay within each task's SLO.
        inst.iter().all(|a| {
            let t = &trace[a.idx];
            let elapsed = now - start[a.idx];
            elapsed + a.remaining / rate <= f * t.duration_min
        })
    };

    while completed < trace.len() {
        // Next event.
        let mut next_completion: Option<f64> = None;
        for inst in &st.instances {
            if inst.is_empty() {
                continue;
            }
            let rate = task_rate(inst.len(), profile);
            let soonest = inst
                .iter()
                .map(|a| a.remaining / rate)
                .fold(f64::INFINITY, f64::min);
            let t = st.now + soonest;
            if next_completion.map(|bt| t < bt).unwrap_or(true) {
                next_completion = Some(t);
            }
        }
        let arrival_t = trace.get(next_arrival).map(|t| t.arrival_min);
        let advance_to = match (next_completion, arrival_t) {
            (Some(ct), Some(at)) => ct.min(at),
            (Some(ct), None) => ct,
            (None, Some(at)) => at,
            (None, None) => break,
        };
        let dt = advance_to - st.now;
        for inst in st.instances.iter_mut() {
            if inst.is_empty() {
                continue;
            }
            let rate = task_rate(inst.len(), profile);
            for a in inst.iter_mut() {
                a.remaining -= rate * dt;
            }
        }
        st.now = advance_to;
        for (ii, inst) in st.instances.iter_mut().enumerate() {
            inst.retain(|a| {
                if a.remaining <= 1e-9 {
                    st.finish[a.idx] = st.now;
                    completed += 1;
                    false
                } else {
                    true
                }
            });
            if inst.is_empty() {
                dedicated[ii] = false;
            }
        }
        while next_arrival < trace.len() && trace[next_arrival].arrival_min <= st.now + 1e-12 {
            st.queue.push_back(next_arrival);
            next_arrival += 1;
        }
        // Placement: FCFS over the queue, but skip entries that cannot be
        // placed yet rather than head-of-line-blocking the other class.
        let mut qi = 0;
        while qi < st.queue.len() {
            let idx = st.queue[qi];
            let task = &trace[idx];
            let placed = match priorities[idx] {
                Priority::High => {
                    // Dedicated instance: must be empty.
                    if let Some(ii) = st.instances.iter().position(|i| i.is_empty()) {
                        dedicated[ii] = true;
                        st.start[idx] = st.now;
                        st.instances[ii].push(Active {
                            idx,
                            remaining: task.duration_min,
                        });
                        true
                    } else {
                        false
                    }
                }
                Priority::Low => {
                    let slot = st
                        .instances
                        .iter()
                        .enumerate()
                        .filter(|(ii, inst)| {
                            !dedicated[*ii]
                                && inst.len() < profile.max_colocated
                                && admits(inst, task, st.now, &st.start)
                        })
                        .min_by_key(|(_, inst)| inst.len())
                        .map(|(ii, _)| ii);
                    match slot {
                        Some(ii) => {
                            st.start[idx] = st.now;
                            st.instances[ii].push(Active {
                                idx,
                                remaining: task.duration_min,
                            });
                            true
                        }
                        None => false,
                    }
                }
            };
            if placed {
                st.queue.remove(qi);
            } else {
                qi += 1;
            }
        }
    }

    let class_report = |class: Priority| -> ClassReport {
        let idxs: Vec<usize> = (0..trace.len())
            .filter(|&i| priorities[i] == class)
            .collect();
        let n = idxs.len().max(1) as f64;
        let jct: f64 = idxs
            .iter()
            .map(|&i| st.finish[i] - trace[i].arrival_min)
            .sum::<f64>()
            / n;
        let queue: f64 = idxs
            .iter()
            .map(|&i| st.start[i] - trace[i].arrival_min)
            .sum::<f64>()
            / n;
        let slo = match slo_factor {
            Some(f) => {
                idxs.iter()
                    .filter(|&&i| st.finish[i] - st.start[i] <= f * trace[i].duration_min + 1e-6)
                    .count() as f64
                    / n
            }
            None => f64::NAN,
        };
        ClassReport {
            count: idxs.len(),
            mean_jct_min: jct,
            mean_queue_min: queue,
            slo_attainment: slo,
        }
    };

    let total_work: f64 = trace.iter().map(|t| t.duration_min).sum();
    let jain_slowdown = jain_index(
        (0..trace.len())
            .map(|i| (st.finish[i] - trace[i].arrival_min) / trace[i].duration_min.max(1e-9)),
    );
    Ok(PolicyReport {
        makespan_min: st.now,
        throughput: total_work / st.now,
        high: class_report(Priority::High),
        low: class_report(Priority::Low),
        jain_slowdown,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::replay_fcfs;
    use crate::trace::generate;

    fn shape() -> ClusterShape {
        ClusterShape {
            total_gpus: 64,
            gpus_per_instance: 4,
        }
    }

    fn mux_profile() -> ThroughputProfile {
        ThroughputProfile::from_rates(vec![1.0, 1.5, 1.8, 2.0]).unwrap()
    }

    #[test]
    fn priorities_are_deterministic_and_proportional() {
        let trace = generate(1000, 5, None);
        let p = assign_priorities(&trace, 0.2).unwrap();
        let high = p.iter().filter(|&&x| x == Priority::High).count();
        assert!((high as f64 / 1000.0 - 0.2).abs() < 0.02);
    }

    #[test]
    fn high_priority_tasks_run_undiluted() {
        let trace = generate(400, 7, None);
        let prios = assign_priorities(&trace, 0.15).unwrap();
        let rep = replay_priority(&trace, &prios, shape(), &mux_profile(), None).unwrap();
        // Dedicated execution: high-priority mean service time equals the
        // solo duration, so JCT_high - queue_high == mean solo duration.
        let high_service = rep.high.mean_jct_min - rep.high.mean_queue_min;
        let solo_mean: f64 = trace
            .iter()
            .zip(&prios)
            .filter(|(_, &p)| p == Priority::High)
            .map(|(t, _)| t.duration_min)
            .sum::<f64>()
            / rep.high.count as f64;
        assert!(
            (high_service - solo_mean).abs() / solo_mean < 0.01,
            "high-priority service {high_service} vs solo {solo_mean}"
        );
    }

    #[test]
    fn low_priority_service_is_diluted_but_cluster_throughput_holds() {
        let trace = generate(400, 9, None);
        let prios = assign_priorities(&trace, 0.1).unwrap();
        let rep = replay_priority(&trace, &prios, shape(), &mux_profile(), None).unwrap();
        let low_service = rep.low.mean_jct_min - rep.low.mean_queue_min;
        let solo_mean: f64 = trace
            .iter()
            .zip(&prios)
            .filter(|(_, &p)| p == Priority::Low)
            .map(|(t, _)| t.duration_min)
            .sum::<f64>()
            / rep.low.count as f64;
        assert!(low_service > solo_mean, "co-location dilutes per-task rate");
        // But aggregate throughput beats single-task FCFS.
        let single = replay_fcfs(&trace, shape(), &ThroughputProfile::single_task(1.0)).unwrap();
        assert!(rep.throughput > single.throughput);
    }

    #[test]
    fn admission_control_raises_slo_attainment() {
        let trace = generate(500, 11, None);
        let prios = vec![Priority::Low; trace.len()];
        // SLO: finish within 2.2x solo duration. Without admission control,
        // 4-way co-location runs each task at rate 0.5 -> 2x slowdown plus
        // fluctuation; with it, placements that would break the SLO wait.
        let with = replay_priority(&trace, &prios, shape(), &mux_profile(), Some(1.8)).unwrap();
        assert!(
            with.low.slo_attainment > 0.95,
            "admission control must protect SLOs: {}",
            with.low.slo_attainment
        );
    }

    #[test]
    fn no_slo_means_nan_attainment() {
        let trace = generate(50, 13, None);
        let prios = vec![Priority::Low; trace.len()];
        let rep = replay_priority(&trace, &prios, shape(), &mux_profile(), None).unwrap();
        assert!(rep.low.slo_attainment.is_nan());
        assert_eq!(rep.low.count, 50);
    }
}
