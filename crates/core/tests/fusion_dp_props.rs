//! Property tests: the Eq. 6 fusion DP is exact and the value-table
//! refactor is a pure optimization. For M ≤ 8 tasks the contiguous
//! partitions of the sorted task list can be enumerated outright
//! (2^(M-1) of them); the DP's chosen objective must equal the
//! brute-force optimum under the same cost model and memory filter, the
//! returned plan must itself be feasible and correctly priced, and the
//! O(M²) value-table DP must reproduce the seed O(M³) implementation's
//! optimum bit for bit.

use std::collections::BTreeMap;

use mux_data::align::AlignStrategy;
use mux_data::corpus::{Corpus, DatasetKind};
use mux_gpu_sim::spec::GpuSpec;
use mux_model::config::ModelConfig;
use mux_parallel::plan::HybridParallelism;
use mux_peft::registry::TaskRegistry;
use mux_peft::types::{PeftTask, TaskId};
use muxtune_core::cost::CostModel;
use muxtune_core::error::PlanError;
use muxtune_core::fusion::{
    fuse_dp_seed, fuse_tasks, sort_by_tokens, FusionPolicy, IncrementalPlanner, RangeBuild,
};
use muxtune_core::htask::HTask;
use proptest::prelude::*;

const MBS: usize = 4;

fn registry(shapes: &[(usize, usize)]) -> TaskRegistry {
    let mut r = TaskRegistry::new(ModelConfig::llama2_7b().with_layers(16));
    for (i, &(mb, seq)) in shapes.iter().enumerate() {
        r.register_task(PeftTask::lora(i as TaskId + 1, 16, mb, seq))
            .expect("register");
    }
    r
}

/// Objective of one contiguous partition (Eq. 6 unrolled):
/// `L(part_1) + Σ_{j≥2} L(part_j)/S`, or `None` if any part violates the
/// memory filter.
fn partition_objective(cm: &CostModel<'_>, sorted: &[&PeftTask], cuts: &[usize]) -> Option<f64> {
    let mut total = 0.0;
    for (j, w) in cuts.windows(2).enumerate() {
        let h = HTask::from_padded(&sorted[w[0]..w[1]], MBS);
        if !cm.fits_memory(std::slice::from_ref(&h), cm.num_stages()) {
            return None;
        }
        let lat = cm.pipeline_latency(&h);
        total += if j == 0 {
            lat
        } else {
            lat / cm.num_stages() as f64
        };
    }
    Some(total)
}

/// Exhaustively scores every contiguous partition of `sorted` (bitmask
/// over the M-1 possible cut points) and returns the feasible minimum.
fn brute_force_optimum(cm: &CostModel<'_>, sorted: &[&PeftTask]) -> Option<f64> {
    let m = sorted.len();
    let mut best: Option<f64> = None;
    for mask in 0u32..(1 << (m - 1)) {
        let mut cuts = vec![0];
        for i in 0..m - 1 {
            if mask & (1 << i) != 0 {
                cuts.push(i + 1);
            }
        }
        cuts.push(m);
        if let Some(obj) = partition_objective(cm, sorted, &cuts) {
            best = Some(best.map_or(obj, |b: f64| b.min(obj)));
        }
    }
    best
}

/// One membership delta: `insert` picks a fresh task of the given shape,
/// `!insert` removes the `pick`-th live task (mod the live count).
type ChurnOp = (bool, usize, usize, usize);

fn churn_strategy() -> impl Strategy<Value = Vec<ChurnOp>> {
    prop::collection::vec(
        (
            any::<bool>(),
            prop::sample::select(vec![1usize, 2, 4, 8]),
            prop::sample::select(vec![64usize, 128, 256]),
            0..64usize,
        ),
        1..12,
    )
}

/// Asserts the warm [`IncrementalPlanner`] and a from-scratch
/// [`fuse_tasks`] run agree bitwise on the current membership — same
/// predicted objective, same hTask cuts, or the same typed error.
fn assert_matches_scratch(
    r: &TaskRegistry,
    corpora: &BTreeMap<TaskId, Vec<usize>>,
    inc: &mut IncrementalPlanner,
) -> Result<(), TestCaseError> {
    let cm = CostModel::new(r, GpuSpec::a40(), HybridParallelism::pipeline(4));
    let custom = |members: &[&PeftTask]| -> Result<HTask, PlanError> {
        let have_all = members.iter().all(|t| corpora.contains_key(&t.id));
        if have_all {
            let lens: Vec<Vec<usize>> = members.iter().map(|t| corpora[&t.id].clone()).collect();
            HTask::fuse(
                members,
                &lens,
                MBS,
                AlignStrategy::ChunkBased { min_chunk: 64 },
            )
        } else {
            Ok(HTask::from_padded(members, MBS))
        }
    };
    let build = if corpora.is_empty() {
        RangeBuild::Padded { micro_batches: MBS }
    } else {
        RangeBuild::Custom(&custom)
    };
    let items: Vec<(PeftTask, u64)> = r.tasks().map(|t| (t.clone(), 0)).collect();
    inc.sync(&items);
    let tasks: Vec<&PeftTask> = r.tasks().collect();
    let scratch = fuse_tasks(&cm, &tasks, FusionPolicy::Dp, &build);
    let warm = if tasks.is_empty() {
        Err(PlanError::NoTasks)
    } else {
        inc.plan(&cm, &build)
    };
    match (warm, scratch) {
        (Ok(a), Ok(b)) => {
            prop_assert_eq!(
                a.predicted.to_bits(),
                b.predicted.to_bits(),
                "incremental {} vs scratch {}",
                a.predicted,
                b.predicted
            );
            let ca: Vec<Vec<TaskId>> = a.htasks.iter().map(|h| h.tasks.clone()).collect();
            let cb: Vec<Vec<TaskId>> = b.htasks.iter().map(|h| h.tasks.clone()).collect();
            prop_assert_eq!(ca, cb, "hTask cuts diverged");
        }
        (Err(a), Err(b)) => prop_assert_eq!(a, b),
        (a, b) => prop_assert!(false, "divergence: incremental {:?} vs scratch {:?}", a, b),
    }
    Ok(())
}

fn run_churn(ops: &[ChurnOp], with_corpora: bool) -> Result<(), TestCaseError> {
    let mut r = TaskRegistry::new(ModelConfig::llama2_7b().with_layers(16));
    let mut corpora: BTreeMap<TaskId, Vec<usize>> = BTreeMap::new();
    let mut next_id: TaskId = 1;
    let mut inc = IncrementalPlanner::new();
    for &(insert, mb, seq, pick) in ops {
        if insert {
            r.register_task(PeftTask::lora(next_id, 16, mb, seq))
                .expect("fresh id");
            if with_corpora {
                let kind = [DatasetKind::Sst2, DatasetKind::OpenBookQa, DatasetKind::Rte]
                    [(next_id as usize) % 3];
                corpora.insert(
                    next_id,
                    Corpus::generate(kind, MBS * mb, next_id as u64).lengths,
                );
            }
            next_id += 1;
        } else if !r.is_empty() {
            let ids: Vec<TaskId> = r.tasks().map(|t| t.id).collect();
            let id = ids[pick % ids.len()];
            r.deregister_task(id).expect("live task");
            corpora.remove(&id);
        }
        assert_matches_scratch(&r, &corpora, &mut inc)?;
    }
    Ok(())
}

fn shape_strategy() -> impl Strategy<Value = Vec<(usize, usize)>> {
    prop::collection::vec(
        (
            prop::sample::select(vec![1usize, 2, 4, 8]),
            prop::sample::select(vec![64usize, 128, 256]),
        ),
        1..9,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn dp_matches_exhaustive_enumeration(shapes in shape_strategy()) {
        let r = registry(&shapes);
        let cm = CostModel::new(&r, GpuSpec::a40(), HybridParallelism::pipeline(4));
        let tasks: Vec<&PeftTask> = r.tasks().collect();
        let sorted = sort_by_tokens(&tasks);
        let brute = brute_force_optimum(&cm, &sorted);

        let build = RangeBuild::Padded { micro_batches: MBS };
        let plan = fuse_tasks(&cm, &tasks, FusionPolicy::Dp, &build);

        // With no feasible partition at all the DP must report, not panic.
        let Some(brute) = brute else {
            prop_assert_eq!(
                plan.expect_err("no feasible partition"),
                PlanError::Infeasible { tasks: sorted.len() }
            );
            return Ok(());
        };
        let plan = plan.expect("a feasible partition exists");

        // Exactness: the DP found the enumeration's optimum.
        let rel = (plan.predicted - brute).abs() / brute.max(1e-12);
        prop_assert!(
            rel < 1e-9,
            "DP predicted {} but exhaustive optimum is {}",
            plan.predicted,
            brute
        );

        // The returned plan prices to its own reported objective and is
        // feasible part by part.
        let cuts: Vec<usize> = std::iter::once(0)
            .chain(plan.htasks.iter().scan(0, |acc, h| {
                *acc += h.tasks.len();
                Some(*acc)
            }))
            .collect();
        let repriced = partition_objective(&cm, &sorted, &cuts)
            .expect("chosen plan must satisfy the memory filter");
        prop_assert!(
            (repriced - plan.predicted).abs() / plan.predicted.max(1e-12) < 1e-9,
            "plan reprices to {} but reported {}",
            repriced,
            plan.predicted
        );

        // Partition validity: concatenating the hTasks reproduces the
        // sorted task list exactly once each.
        let flat: Vec<TaskId> = plan.htasks.iter().flat_map(|h| h.tasks.clone()).collect();
        let expect: Vec<TaskId> = sorted.iter().map(|t| t.id).collect();
        prop_assert_eq!(flat, expect);
    }

    /// The cache refactor is value-preserving: the O(M²) value-table DP
    /// and the seed O(M³) clone-cache DP see the exact same candidate
    /// sums (left-to-right association in both), so their optima must be
    /// bitwise identical — as must each returned plan's re-priced
    /// objective.
    #[test]
    fn value_table_dp_is_bitwise_identical_to_seed(shapes in shape_strategy()) {
        let r = registry(&shapes);
        let cm = CostModel::new(&r, GpuSpec::a40(), HybridParallelism::pipeline(4));
        let tasks: Vec<&PeftTask> = r.tasks().collect();
        let build = RangeBuild::Padded { micro_batches: MBS };
        let new = fuse_tasks(&cm, &tasks, FusionPolicy::Dp, &build);
        let seed = fuse_dp_seed(&cm, &tasks, &build);
        match (new, seed) {
            (Ok(n), Ok(s)) => {
                prop_assert_eq!(
                    n.predicted.to_bits(),
                    s.predicted.to_bits(),
                    "value-table {} vs seed {}",
                    n.predicted,
                    s.predicted
                );
                // Tie-broken *partitions* may differ; both must price to
                // the shared optimum.
                let sorted = sort_by_tokens(&tasks);
                for plan in [&n, &s] {
                    let cuts: Vec<usize> = std::iter::once(0)
                        .chain(plan.htasks.iter().scan(0, |acc, h| {
                            *acc += h.tasks.len();
                            Some(*acc)
                        }))
                        .collect();
                    let repriced = partition_objective(&cm, &sorted, &cuts)
                        .expect("chosen plan must be feasible");
                    prop_assert_eq!(repriced.to_bits(), n.predicted.to_bits());
                }
            }
            (Err(a), Err(b)) => prop_assert_eq!(a, b),
            (n, s) => prop_assert!(false, "divergence: new {:?} vs seed {:?}", n, s),
        }
    }

    /// Tentpole pin: a warm [`IncrementalPlanner`] fed any random
    /// insert/remove sequence produces bitwise-identical plans (objective
    /// and hTask cuts) to a from-scratch `fuse_tasks` recompute after
    /// every single delta — on the padded prober path.
    #[test]
    fn incremental_padded_matches_scratch_under_churn(ops in churn_strategy()) {
        run_churn(&ops, false)?;
    }

    /// The same pin on the corpus-backed custom-build path (chunk-based
    /// alignment), where rows are dense and feasibility is re-proved per
    /// built range.
    #[test]
    fn incremental_custom_matches_scratch_under_churn(ops in churn_strategy()) {
        run_churn(&ops, true)?;
    }
}
