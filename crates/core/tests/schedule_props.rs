//! Property test: the heap-based Algorithm 1 scheduler produces exactly
//! the launch order of the seed O(ready²) scan it replaced, on random
//! multi-DAG inputs with finite positive latencies (the seed's domain).

use muxtune_core::schedule::{is_valid_order, schedule_subgraphs, schedule_subgraphs_reference};
use muxtune_core::subgraph::Subgraph;
use proptest::prelude::*;

/// A random forward-edge DAG: `deps[i] ⊆ {0..i}`, priority = topological
/// depth (as the segmenter produces it, which the priority rule assumes).
fn dag_strategy() -> impl Strategy<Value = Vec<Subgraph>> {
    prop::collection::vec(prop::collection::vec(any::<bool>(), 0..6), 1..8).prop_map(|rows| {
        let n = rows.len();
        let mut depth = vec![0usize; n];
        let mut dags = Vec::with_capacity(n);
        for (i, row) in rows.into_iter().enumerate() {
            let deps: Vec<usize> = row
                .into_iter()
                .take(i)
                .enumerate()
                .filter_map(|(j, keep)| keep.then_some(j))
                .collect();
            depth[i] = deps.iter().map(|&d| depth[d] + 1).max().unwrap_or(0);
            dags.push(Subgraph {
                id: i,
                nodes: vec![i],
                priority: depth[i],
                deps,
                is_adapter: i % 2 == 0,
                task: 0,
                has_comm: i % 3 == 0,
            });
        }
        dags
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn heap_scheduler_matches_seed_reference(
        dags in prop::collection::vec(dag_strategy(), 1..5),
        // Finite, positive, occasionally tied latencies.
        lat_seed in prop::collection::vec(prop::sample::select(vec![0.5f64, 1.0, 1.0, 2.5, 7.0, 100.0]), 64..65),
    ) {
        let latency = |dag: usize, sg: &Subgraph| lat_seed[(dag * 31 + sg.id * 7) % lat_seed.len()];
        let fast = schedule_subgraphs(&dags, &latency);
        let slow = schedule_subgraphs_reference(&dags, &latency);
        prop_assert!(is_valid_order(&dags, &fast));
        prop_assert_eq!(fast, slow);
    }
}
