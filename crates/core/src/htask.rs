//! The hybrid-task ("hTask") abstraction (§3.3).
//!
//! An hTask is a set of PEFT tasks fused for *spatial* multiplexing: their
//! micro-batches are batched through shared backbone operators. Different
//! hTasks are multiplexed *temporally* — interleaved so one hTask's stalls
//! hide under another's compute.

use mux_data::align::{align, AlignStrategy, AlignedBatch, TaskData};
use mux_model::ops::TokenShape;
use mux_peft::types::{PeftTask, TaskId};

use crate::error::PlanError;

/// A hybrid task: spatially fused PEFT tasks plus their aligned data shape.
#[derive(Debug, Clone)]
pub struct HTask {
    /// Member task ids, in fusion order.
    pub tasks: Vec<TaskId>,
    /// Per-member tokens per micro-batch (`n_i` in Eq. 3), aligned order.
    pub tokens_per_task: Vec<usize>,
    /// Unified per-row length after data alignment.
    pub unit_len: usize,
    /// Unified number of micro-batches `C` (§3.3).
    pub micro_batches: usize,
    /// Effective-token fraction of the aligned batch (1.0 = no padding).
    pub effective_fraction: f64,
    /// Token-weighted average attention context length (chunked rows
    /// attend over cached KV of earlier chunks — §3.5).
    pub attn_context: usize,
    /// Average sequentially-dependent attention kernels per packed row.
    pub attn_splits: f64,
}

impl HTask {
    /// Builds an hTask from member tasks and an alignment strategy.
    ///
    /// Per-task tokens per micro-batch are the aligned row counts scaled to
    /// one micro-batch; alignment decides `unit_len` and the padding bill.
    ///
    /// # Errors
    /// Propagates alignment failures (empty member set, oversize sequences,
    /// degenerate caps) as [`PlanError`] — fusion sits on the job-admission
    /// path and must not panic on tenant input.
    pub fn fuse(
        members: &[&PeftTask],
        corpora: &[Vec<usize>],
        micro_batches: usize,
        strategy: AlignStrategy,
    ) -> Result<Self, PlanError> {
        if members.len() != corpora.len() {
            return Err(PlanError::DegenerateCost {
                detail: format!("{} member(s) but {} corpora", members.len(), corpora.len()),
            });
        }
        let data: Vec<TaskData> = members
            .iter()
            .zip(corpora)
            .map(|(t, lens)| TaskData {
                task: t.id,
                seq_lens: lens.clone(),
                cap: t.seq_len,
            })
            .collect();
        let aligned: AlignedBatch = align(&data, strategy)?;
        let tokens_per_task = members
            .iter()
            .map(|t| {
                // A micro-batch carries the task's configured micro-batch of
                // sequences; after alignment each sequence-cap's worth of
                // content occupies `cap/unit_len`-ish rows, but the token
                // count per micro-batch stays `micro_batch * cap` scaled by
                // the alignment's padding behaviour.
                let ta = aligned
                    .tasks
                    .iter()
                    .find(|a| a.task == t.id)
                    .expect("aligned member");
                let total = (ta.rows * aligned.unit_len) as f64;
                (total / micro_batches as f64).ceil() as usize
            })
            .collect();
        // Token-weighted attention statistics across members.
        let total: f64 = aligned
            .tasks
            .iter()
            .map(|t| (t.rows * aligned.unit_len) as f64)
            .sum();
        let wctx: f64 = aligned
            .tasks
            .iter()
            .map(|t| t.avg_attn_context * (t.rows * aligned.unit_len) as f64)
            .sum();
        let wsplit: f64 = aligned
            .tasks
            .iter()
            .map(|t| t.attn_splits * (t.rows * aligned.unit_len) as f64)
            .sum();
        Ok(Self {
            tasks: members.iter().map(|t| t.id).collect(),
            tokens_per_task,
            unit_len: aligned.unit_len,
            micro_batches,
            effective_fraction: aligned.effective_fraction(),
            attn_context: if total > 0.0 {
                (wctx / total).round() as usize
            } else {
                aligned.unit_len
            },
            attn_splits: if total > 0.0 {
                (wsplit / total).max(1.0)
            } else {
                1.0
            },
        })
    }

    /// Builds an hTask directly from per-task padded shapes (no corpus):
    /// task `i` contributes `micro_batch * seq_len` tokens per micro-batch
    /// at its own cap. Used when data alignment is disabled (ablations) or
    /// for cost-model-only planning.
    pub fn from_padded(members: &[&PeftTask], micro_batches: usize) -> Self {
        assert!(!members.is_empty(), "empty hTask");
        let unit_len = members.iter().map(|t| t.seq_len).max().expect("non-empty");
        let tokens_per_task = members.iter().map(|t| t.micro_batch * unit_len).collect();
        Self {
            tasks: members.iter().map(|t| t.id).collect(),
            tokens_per_task,
            unit_len,
            micro_batches,
            effective_fraction: members
                .iter()
                .map(|t| (t.micro_batch * t.seq_len) as f64)
                .sum::<f64>()
                / members
                    .iter()
                    .map(|t| (t.micro_batch * unit_len) as f64)
                    .sum::<f64>(),
            attn_context: unit_len,
            attn_splits: 1.0,
        }
    }

    /// Combined tokens per micro-batch (`Σ n_k` in Eq. 3).
    pub fn total_tokens(&self) -> usize {
        self.tokens_per_task.iter().sum()
    }

    /// The unified batched shape one micro-batch presents to backbone ops.
    pub fn shape(&self) -> TokenShape {
        TokenShape::new(
            self.total_tokens().div_ceil(self.unit_len).max(1),
            self.unit_len,
        )
    }

    /// The shape task `idx` (member index) presents to its adapters.
    pub fn member_shape(&self, idx: usize) -> TokenShape {
        TokenShape::new(
            self.tokens_per_task[idx].div_ceil(self.unit_len).max(1),
            self.unit_len,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mux_data::corpus::{Corpus, DatasetKind};

    fn lora(id: TaskId, mb: usize, seq: usize) -> PeftTask {
        PeftTask::lora(id, 16, mb, seq)
    }

    #[test]
    fn padded_fusion_sums_tokens() {
        let a = lora(1, 4, 64);
        let b = lora(2, 2, 128);
        let h = HTask::from_padded(&[&a, &b], 4);
        assert_eq!(h.unit_len, 128);
        // Task 1 pads to 128: 4*128; task 2: 2*128.
        assert_eq!(h.tokens_per_task, vec![512, 256]);
        assert_eq!(h.total_tokens(), 768);
        assert!(h.effective_fraction < 1.0, "task 1 pays inter-task padding");
    }

    #[test]
    fn uniform_members_have_full_effective_fraction() {
        let a = lora(1, 4, 64);
        let b = lora(2, 2, 64);
        let h = HTask::from_padded(&[&a, &b], 4);
        assert_eq!(h.effective_fraction, 1.0);
    }

    #[test]
    fn chunked_fusion_beats_padded_on_effective_fraction() {
        let a = lora(1, 4, 64);
        let b = lora(2, 4, 256);
        let ca = Corpus::generate(DatasetKind::Sst2, 32, 1).lengths;
        let cb = Corpus::generate(DatasetKind::Rte, 32, 2).lengths;
        let padded = HTask::from_padded(&[&a, &b], 4);
        let chunked = HTask::fuse(
            &[&a, &b],
            &[ca, cb],
            4,
            AlignStrategy::ChunkBased { min_chunk: 64 },
        )
        .expect("fuses");
        assert!(chunked.effective_fraction > padded.effective_fraction);
        assert_eq!(chunked.unit_len, 64);
    }

    #[test]
    fn shape_reflects_unit_len() {
        let a = lora(1, 4, 64);
        let h = HTask::from_padded(&[&a], 2);
        assert_eq!(h.shape(), TokenShape::new(4, 64));
        assert_eq!(h.member_shape(0), TokenShape::new(4, 64));
    }
}
