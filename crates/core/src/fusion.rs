//! Task fusion via dynamic programming (§3.3, Eq. 6).
//!
//! Bin-packs `M` tasks (sorted ascending by token count) into `N`
//! contiguous hTasks, minimizing predicted end-to-end pipeline latency
//! under the Eq. 3–5 cost model, with a memory-feasibility filter.
//!
//! ## Complexity
//!
//! The textbook Eq. 6 table `F(m, n)` has O(M²) states and O(M)
//! transitions each — O(M³) probes. Because the objective only ever charges
//! the *first* hTask at full latency and every later one at `L/S`, the
//! minimum over all `N` collapses into one unbounded recurrence
//!
//! ```text
//! G(m) = min( L(0..m) [if it fits],  min_{0<j<m} G(j) + L(j..m)/S )
//! ```
//!
//! with `G(M) = min_N F(M, N)` — every partition contributes the exact same
//! floating-point sum in both formulations (left-to-right association), so
//! the minimum is bit-for-bit identical. That is O(M²) transitions over
//! plain `(latency, fits)` value tables; hTasks are materialized only at
//! reconstruction. Each contiguous range is costed exactly once, and with a
//! [`PaddedRangeProber`] feasibility is decided in O(1) *before* paying the
//! per-member latency cost, so infeasible ranges are never built at all.

use mux_model::ops::Pass;
use mux_peft::types::PeftTask;

use crate::cost::{CostModel, PaddedRangeProber};
use crate::error::PlanError;
use crate::htask::HTask;

/// The fusion decision.
#[derive(Debug, Clone)]
pub struct FusionPlan {
    /// The fused hTasks, each holding a contiguous run of the sorted tasks.
    pub htasks: Vec<HTask>,
    /// DP objective value of the chosen plan (Eq. 6's `F*`).
    pub predicted: f64,
}

/// Fusion policies (`Dp` is MuxTune; the rest are ablation baselines).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FusionPolicy {
    /// Eq. 6 dynamic programming (the paper's algorithm).
    Dp,
    /// One hTask containing all tasks (pure spatial multiplexing).
    AllSpatial,
    /// One hTask per task (pure temporal multiplexing).
    AllTemporal,
    /// Greedy: grow the current hTask while the marginal steady-state
    /// latency per token improves; start a new one otherwise.
    Greedy,
}

/// How to build the hTask for a contiguous task run.
pub enum RangeBuild<'b> {
    /// Arbitrary builder (e.g. corpus-backed data alignment).
    Custom(&'b dyn Fn(&[&PeftTask]) -> Result<HTask, PlanError>),
    /// The canonical padded build — `HTask::from_padded(range, micro_batches)`.
    /// Declaring it lets the DP prove memory feasibility in O(1) per range
    /// via [`CostModel::padded_prober`] instead of building every candidate.
    Padded {
        /// Unified micro-batch count `C` for every built hTask.
        micro_batches: usize,
    },
}

impl RangeBuild<'_> {
    fn build(&self, range: &[&PeftTask]) -> Result<HTask, PlanError> {
        match self {
            RangeBuild::Custom(f) => f(range),
            RangeBuild::Padded { micro_batches } => Ok(HTask::from_padded(range, *micro_batches)),
        }
    }
}

/// Sorts tasks ascending by token count (`n_i`), the Eq. 6 precondition.
pub fn sort_by_tokens<'t>(tasks: &[&'t PeftTask]) -> Vec<&'t PeftTask> {
    let mut v = tasks.to_vec();
    v.sort_by_key(|t| (t.tokens_per_micro_batch(), t.id));
    v
}

/// Runs task fusion under `policy`.
///
/// `build` constructs the hTask for a contiguous task run (injecting the
/// data-alignment strategy).
///
/// # Errors
/// [`PlanError::NoTasks`] on an empty task set, [`PlanError::Infeasible`]
/// when no memory-feasible fusion exists (even fully temporal),
/// [`PlanError::DegenerateCost`] when the cost model yields non-finite
/// latencies for every feasible fusion, plus anything `build` returns.
pub fn fuse_tasks(
    cm: &CostModel<'_>,
    tasks: &[&PeftTask],
    policy: FusionPolicy,
    build: &RangeBuild<'_>,
) -> Result<FusionPlan, PlanError> {
    if tasks.is_empty() {
        return Err(PlanError::NoTasks);
    }
    let sorted = sort_by_tokens(tasks);
    match policy {
        FusionPolicy::AllSpatial => {
            let h = build.build(&sorted)?;
            let predicted = cm.pipeline_latency(&h);
            Ok(FusionPlan {
                htasks: vec![h],
                predicted,
            })
        }
        FusionPolicy::AllTemporal => {
            let htasks: Vec<HTask> = sorted
                .iter()
                .map(|t| build.build(&[*t]))
                .collect::<Result<_, _>>()?;
            let predicted = htasks.iter().map(|h| cm.pipeline_latency(h)).sum();
            Ok(FusionPlan { htasks, predicted })
        }
        FusionPolicy::Greedy => fuse_greedy(cm, &sorted, build),
        FusionPolicy::Dp => fuse_dp(cm, &sorted, build),
    }
}

fn fuse_greedy(
    cm: &CostModel<'_>,
    sorted: &[&PeftTask],
    build: &RangeBuild<'_>,
) -> Result<FusionPlan, PlanError> {
    let mut htasks = Vec::new();
    let mut start = 0;
    while start < sorted.len() {
        let mut end = start + 1;
        let mut best = build.build(&sorted[start..end])?;
        let mut best_per_token =
            cm.stage_latency(0, &best, Pass::Forward) / best.total_tokens() as f64;
        while end < sorted.len() {
            let cand = build.build(&sorted[start..end + 1])?;
            if !cm.fits_memory(std::slice::from_ref(&cand), cm.num_stages()) {
                break;
            }
            let per_token = cm.stage_latency(0, &cand, Pass::Forward) / cand.total_tokens() as f64;
            if per_token < best_per_token {
                best = cand;
                best_per_token = per_token;
                end += 1;
            } else {
                break;
            }
        }
        htasks.push(best);
        start = end;
    }
    let predicted = htasks.iter().map(|h| cm.pipeline_latency(h)).sum();
    Ok(FusionPlan { htasks, predicted })
}

/// Per-range `(latency, fits)` value tables over `sorted[a..b)`.
///
/// Latency is paid only for feasible ranges; with a padded prober the
/// infeasible ones never even construct their hTask.
struct RangeValues {
    m: usize,
    lat: Vec<f64>,
    fits: Vec<bool>,
    /// Count of feasible ranges whose latency came out non-finite.
    degenerate: usize,
}

impl RangeValues {
    fn idx(&self, a: usize, b: usize) -> usize {
        a * (self.m + 1) + b
    }

    fn fill(
        cm: &CostModel<'_>,
        sorted: &[&PeftTask],
        build: &RangeBuild<'_>,
    ) -> Result<Self, PlanError> {
        let m = sorted.len();
        let prober: Option<PaddedRangeProber<'_>> = match build {
            RangeBuild::Padded { .. } => Some(cm.padded_prober(sorted)),
            RangeBuild::Custom(_) => None,
        };
        let mut v = Self {
            m,
            lat: vec![f64::INFINITY; m * (m + 1) + 1],
            fits: vec![false; m * (m + 1) + 1],
            degenerate: 0,
        };
        let s = cm.num_stages();
        for a in 0..m {
            for b in a + 1..=m {
                let i = v.idx(a, b);
                match &prober {
                    Some(p) => {
                        v.fits[i] = p.fits(a, b);
                        if v.fits[i] {
                            v.lat[i] = cm.pipeline_latency(&build.build(&sorted[a..b])?);
                        }
                    }
                    None => {
                        let h = build.build(&sorted[a..b])?;
                        v.fits[i] = cm.fits_memory(std::slice::from_ref(&h), s);
                        if v.fits[i] {
                            v.lat[i] = cm.pipeline_latency(&h);
                        }
                    }
                }
                if v.fits[i] && !v.lat[i].is_finite() {
                    v.degenerate += 1;
                }
            }
        }
        Ok(v)
    }
}

/// Eq. 6: `F(m, n) = min_i { F(i, n-1) + L(H_{i+1..m}) / S }`, with
/// `F(m', 1) = L(H_{1..m'})`; the answer is `min_N F(M, N)`, computed here
/// as the equivalent unbounded recurrence `G` (see the module docs).
fn fuse_dp(
    cm: &CostModel<'_>,
    sorted: &[&PeftTask],
    build: &RangeBuild<'_>,
) -> Result<FusionPlan, PlanError> {
    let m = sorted.len();
    let s = cm.num_stages() as f64;
    let values = RangeValues::fill(cm, sorted, build)?;

    const INF: f64 = f64::INFINITY;
    // g[mm] = best objective over partitions of the first mm tasks.
    // choice[mm] = start of the last hTask (0 ⇒ a single hTask [0, mm)).
    let mut g = vec![INF; m + 1];
    let mut choice = vec![usize::MAX; m + 1];
    for mm in 1..=m {
        let whole = values.idx(0, mm);
        if values.fits[whole] && values.lat[whole] < g[mm] {
            g[mm] = values.lat[whole];
            choice[mm] = 0;
        }
        for j in 1..mm {
            if g[j] == INF {
                continue;
            }
            let i = values.idx(j, mm);
            if !values.fits[i] {
                continue;
            }
            let cand = g[j] + values.lat[i] / s;
            if cand < g[mm] {
                g[mm] = cand;
                choice[mm] = j;
            }
        }
    }

    let best_val = g[m];
    if !best_val.is_finite() {
        // No memory-feasible partition — or every feasible one cost NaN.
        return Err(if values.degenerate > 0 {
            PlanError::DegenerateCost {
                detail: format!(
                    "{} feasible range(s) had non-finite latency",
                    values.degenerate
                ),
            }
        } else {
            PlanError::Infeasible { tasks: m }
        });
    }

    // Reconstruct cuts, then materialize hTasks — the only point where
    // range hTasks are built for the DP (the tables hold plain values).
    let mut cuts = vec![m];
    let mut mm = m;
    while choice[mm] != 0 {
        mm = choice[mm];
        cuts.push(mm);
    }
    cuts.push(0);
    cuts.reverse();
    let mut htasks = Vec::with_capacity(cuts.len() - 1);
    for w in cuts.windows(2) {
        htasks.push(build.build(&sorted[w[0]..w[1]])?);
    }
    Ok(FusionPlan {
        htasks,
        predicted: best_val,
    })
}

/// The seed O(M³) Eq. 6 implementation, retained verbatim (modulo the
/// panic-to-error conversion) as the differential reference for the DP
/// proptests and the `planner-scale` speedup measurement. Do not use on
/// hot paths.
#[allow(clippy::needless_range_loop)] // explicit DP indices mirror Eq. 6
pub fn fuse_dp_seed(
    cm: &CostModel<'_>,
    tasks: &[&PeftTask],
    build: &RangeBuild<'_>,
) -> Result<FusionPlan, PlanError> {
    if tasks.is_empty() {
        return Err(PlanError::NoTasks);
    }
    let sorted = sort_by_tokens(tasks);
    let m = sorted.len();
    let s = cm.num_stages() as f64;
    // Memoized hTask + latency per contiguous range, cloned on every probe
    // (the seed behaviour the value tables replace).
    let mut range_cache: Vec<Vec<Option<(HTask, f64, bool)>>> = vec![vec![None; m + 1]; m];
    let mut range = |a: usize, b: usize| -> Result<(HTask, f64, bool), PlanError> {
        if range_cache[a][b].is_none() {
            let h = build.build(&sorted[a..b])?;
            let lat = cm.pipeline_latency(&h);
            let fits = cm.fits_memory(std::slice::from_ref(&h), cm.num_stages());
            range_cache[a][b] = Some((h, lat, fits));
        }
        Ok(range_cache[a][b].clone().expect("just filled"))
    };

    const INF: f64 = f64::INFINITY;
    let mut f = vec![vec![INF; m + 1]; m + 1];
    let mut choice = vec![vec![usize::MAX; m + 1]; m + 1];
    for m1 in 1..=m {
        let (_, lat, fits) = range(0, m1)?;
        if fits {
            f[1][m1] = lat;
        }
    }
    for n in 2..=m {
        for mm in n..=m {
            for i in (n - 1)..mm {
                if f[n - 1][i] == INF {
                    continue;
                }
                let (_, lat, fits) = range(i, mm)?;
                if !fits {
                    continue;
                }
                let cand = f[n - 1][i] + lat / s;
                if cand < f[n][mm] {
                    f[n][mm] = cand;
                    choice[n][mm] = i;
                }
            }
        }
    }
    let mut best_n = 1;
    let mut best_val = f[1][m];
    for n in 2..=m {
        if f[n][m] < best_val {
            best_val = f[n][m];
            best_n = n;
        }
    }
    if !best_val.is_finite() {
        return Err(PlanError::Infeasible { tasks: m });
    }
    let mut cuts = Vec::new();
    let (mut n, mut mm) = (best_n, m);
    while n > 1 {
        let i = choice[n][mm];
        cuts.push(i);
        mm = i;
        n -= 1;
    }
    cuts.push(0);
    cuts.reverse();
    cuts.push(m);
    let mut htasks = Vec::with_capacity(best_n);
    for w in cuts.windows(2) {
        htasks.push(range(w[0], w[1])?.0);
    }
    Ok(FusionPlan {
        htasks,
        predicted: best_val,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mux_gpu_sim::spec::GpuSpec;
    use mux_model::config::ModelConfig;
    use mux_parallel::plan::HybridParallelism;
    use mux_peft::registry::TaskRegistry;
    use mux_peft::types::TaskId;

    fn setup(task_shapes: &[(usize, usize)]) -> TaskRegistry {
        let mut r = TaskRegistry::new(ModelConfig::llama2_7b().with_layers(16));
        for (i, &(mb, seq)) in task_shapes.iter().enumerate() {
            r.register_task(PeftTask::lora(i as TaskId + 1, 16, mb, seq))
                .expect("register");
        }
        r
    }

    fn run(r: &TaskRegistry, policy: FusionPolicy, mbs: usize) -> FusionPlan {
        let cm = CostModel::new(r, GpuSpec::a40(), HybridParallelism::pipeline(4));
        let tasks: Vec<&PeftTask> = r.tasks().collect();
        fuse_tasks(
            &cm,
            &tasks,
            policy,
            &RangeBuild::Padded { micro_batches: mbs },
        )
        .expect("feasible")
    }

    #[test]
    fn every_task_appears_exactly_once() {
        let r = setup(&[(4, 64), (2, 128), (8, 64), (4, 128), (2, 256), (8, 128)]);
        for policy in [
            FusionPolicy::Dp,
            FusionPolicy::Greedy,
            FusionPolicy::AllSpatial,
            FusionPolicy::AllTemporal,
        ] {
            let plan = run(&r, policy, 4);
            let mut all: Vec<TaskId> = plan.htasks.iter().flat_map(|h| h.tasks.clone()).collect();
            all.sort_unstable();
            assert_eq!(all, (1..=6).collect::<Vec<_>>(), "{policy:?}");
        }
    }

    #[test]
    fn dp_is_at_least_as_good_as_extremes() {
        let r = setup(&[(2, 64), (4, 64), (8, 64), (2, 256), (4, 256), (8, 256)]);
        let dp = run(&r, FusionPolicy::Dp, 4);
        let spatial = run(&r, FusionPolicy::AllSpatial, 4);
        let temporal = run(&r, FusionPolicy::AllTemporal, 4);
        // The DP objective mixes full-latency and per-stage terms, so
        // compare on its own scale: DP must not exceed the better extreme
        // expressed in the same objective (AllSpatial with N=1 is F(M,1)).
        assert!(
            dp.predicted <= spatial.predicted * 1.0001,
            "dp {} vs spatial {}",
            dp.predicted,
            spatial.predicted
        );
        let temporal_obj = temporal.predicted; // Σ L(H_i) >= DP's objective form
        assert!(
            dp.predicted <= temporal_obj,
            "dp {} vs temporal {}",
            dp.predicted,
            temporal_obj
        );
    }

    #[test]
    fn small_tasks_fuse_spatially() {
        // Many tiny tasks under-utilize alone: DP should batch them.
        let r = setup(&[(1, 64), (1, 64), (1, 64), (1, 64)]);
        let dp = run(&r, FusionPolicy::Dp, 4);
        assert!(
            dp.htasks.len() < 4,
            "tiny tasks should fuse, got {} hTasks",
            dp.htasks.len()
        );
    }

    #[test]
    fn saturated_tasks_stay_temporal() {
        // Very large tasks saturate the GPU alone: fusing them only adds
        // stage latency, so DP should keep several hTasks.
        let r = setup(&[(64, 256), (64, 256), (64, 256), (64, 256)]);
        let dp = run(&r, FusionPolicy::Dp, 4);
        assert!(dp.htasks.len() > 1, "saturated tasks should not all fuse");
    }

    #[test]
    fn fusion_respects_sorted_contiguity() {
        let r = setup(&[(8, 128), (1, 64), (4, 64), (2, 256)]);
        let dp = run(&r, FusionPolicy::Dp, 4);
        // Token counts within the hTask sequence must be non-decreasing
        // across the concatenated plan (sorted ascending before cutting).
        let tokens: Vec<usize> = dp
            .htasks
            .iter()
            .flat_map(|h| h.tokens_per_task.clone())
            .collect();
        let mut sorted = tokens.clone();
        sorted.sort_unstable();
        assert_eq!(tokens, sorted);
    }

    #[test]
    fn memory_infeasible_fusions_are_split() {
        // Tasks so fat that an all-spatial hTask would OOM: DP must split.
        let mut r = TaskRegistry::new(ModelConfig::llama2_7b());
        for i in 0..8 {
            r.register_task(PeftTask::lora(i + 1, 16, 8, 256))
                .expect("register");
        }
        let cm = CostModel::new(&r, GpuSpec::a40(), HybridParallelism::pipeline(4));
        let tasks: Vec<&PeftTask> = r.tasks().collect();
        let all = HTask::from_padded(&tasks, 4);
        assert!(
            !cm.fits_memory(std::slice::from_ref(&all), 4),
            "precondition: all-spatial OOMs"
        );
        let plan = fuse_tasks(
            &cm,
            &tasks,
            FusionPolicy::Dp,
            &RangeBuild::Padded { micro_batches: 4 },
        )
        .expect("splittable");
        assert!(plan.htasks.len() >= 2);
        for h in &plan.htasks {
            assert!(
                cm.fits_memory(std::slice::from_ref(h), 4),
                "each chosen hTask must fit"
            );
        }
    }

    #[test]
    fn infeasible_single_task_is_an_error_not_a_panic() {
        // One task so fat it cannot fit alone: even fully temporal fails,
        // and the DP reports it instead of aborting the process.
        let mut r = TaskRegistry::new(ModelConfig::llama2_7b());
        r.register_task(PeftTask::lora(1, 16, 4096, 256))
            .expect("register");
        let cm = CostModel::new(&r, GpuSpec::a40(), HybridParallelism::pipeline(4));
        let tasks: Vec<&PeftTask> = r.tasks().collect();
        let err = fuse_tasks(
            &cm,
            &tasks,
            FusionPolicy::Dp,
            &RangeBuild::Padded { micro_batches: 4 },
        )
        .expect_err("cannot fit");
        assert_eq!(err, PlanError::Infeasible { tasks: 1 });
    }

    #[test]
    fn empty_task_set_is_an_error() {
        let r = setup(&[(1, 64)]);
        let cm = CostModel::new(&r, GpuSpec::a40(), HybridParallelism::pipeline(4));
        let err = fuse_tasks(
            &cm,
            &[],
            FusionPolicy::Dp,
            &RangeBuild::Padded { micro_batches: 4 },
        )
        .expect_err("empty");
        assert_eq!(err, PlanError::NoTasks);
    }

    #[test]
    fn value_table_dp_matches_seed_dp() {
        // The G-recurrence must reproduce the seed F(m, n) table's optimum
        // bit-for-bit (same candidate sums, same minimum).
        for shapes in [
            vec![(4, 64), (2, 128), (8, 64), (4, 128), (2, 256), (8, 128)],
            vec![(1, 64), (1, 64), (1, 64), (1, 64)],
            vec![(64, 256), (64, 256), (64, 256), (64, 256)],
            vec![(8, 128), (1, 64), (4, 64), (2, 256)],
        ] {
            let r = setup(&shapes);
            let cm = CostModel::new(&r, GpuSpec::a40(), HybridParallelism::pipeline(4));
            let tasks: Vec<&PeftTask> = r.tasks().collect();
            let build = RangeBuild::Padded { micro_batches: 4 };
            let new = fuse_tasks(&cm, &tasks, FusionPolicy::Dp, &build).expect("feasible");
            let seed = fuse_dp_seed(&cm, &tasks, &build).expect("feasible");
            assert_eq!(new.predicted.to_bits(), seed.predicted.to_bits());
        }
    }
}
