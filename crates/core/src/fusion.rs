//! Task fusion via dynamic programming (§3.3, Eq. 6).
//!
//! Bin-packs `M` tasks (sorted ascending by token count) into `N`
//! contiguous hTasks, minimizing predicted end-to-end pipeline latency
//! under the Eq. 3–5 cost model, with a memory-feasibility filter.

use mux_model::ops::Pass;
use mux_peft::types::PeftTask;

use crate::cost::CostModel;
use crate::htask::HTask;

/// The fusion decision.
#[derive(Debug, Clone)]
pub struct FusionPlan {
    /// The fused hTasks, each holding a contiguous run of the sorted tasks.
    pub htasks: Vec<HTask>,
    /// DP objective value of the chosen plan (Eq. 6's `F*`).
    pub predicted: f64,
}

/// Fusion policies (`Dp` is MuxTune; the rest are ablation baselines).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FusionPolicy {
    /// Eq. 6 dynamic programming (the paper's algorithm).
    Dp,
    /// One hTask containing all tasks (pure spatial multiplexing).
    AllSpatial,
    /// One hTask per task (pure temporal multiplexing).
    AllTemporal,
    /// Greedy: grow the current hTask while the marginal steady-state
    /// latency per token improves; start a new one otherwise.
    Greedy,
}

/// Sorts tasks ascending by token count (`n_i`), the Eq. 6 precondition.
pub fn sort_by_tokens<'t>(tasks: &[&'t PeftTask]) -> Vec<&'t PeftTask> {
    let mut v = tasks.to_vec();
    v.sort_by_key(|t| (t.tokens_per_micro_batch(), t.id));
    v
}

/// Runs task fusion under `policy`.
///
/// `build` constructs the hTask for a contiguous task run (injecting the
/// data-alignment strategy); `micro_batches` is the unified `C`.
pub fn fuse_tasks(
    cm: &CostModel<'_>,
    tasks: &[&PeftTask],
    policy: FusionPolicy,
    build: &dyn Fn(&[&PeftTask]) -> HTask,
) -> FusionPlan {
    assert!(!tasks.is_empty(), "no tasks to fuse");
    let sorted = sort_by_tokens(tasks);
    match policy {
        FusionPolicy::AllSpatial => {
            let h = build(&sorted);
            let predicted = cm.pipeline_latency(&h);
            FusionPlan {
                htasks: vec![h],
                predicted,
            }
        }
        FusionPolicy::AllTemporal => {
            let htasks: Vec<HTask> = sorted.iter().map(|t| build(&[*t])).collect();
            let predicted = htasks.iter().map(|h| cm.pipeline_latency(h)).sum();
            FusionPlan { htasks, predicted }
        }
        FusionPolicy::Greedy => fuse_greedy(cm, &sorted, build),
        FusionPolicy::Dp => fuse_dp(cm, &sorted, build),
    }
}

fn fuse_greedy(
    cm: &CostModel<'_>,
    sorted: &[&PeftTask],
    build: &dyn Fn(&[&PeftTask]) -> HTask,
) -> FusionPlan {
    let mut htasks = Vec::new();
    let mut start = 0;
    while start < sorted.len() {
        let mut end = start + 1;
        let mut best = build(&sorted[start..end]);
        let mut best_per_token =
            cm.stage_latency(0, &best, Pass::Forward) / best.total_tokens() as f64;
        while end < sorted.len() {
            let cand = build(&sorted[start..end + 1]);
            if !cm.fits_memory(std::slice::from_ref(&cand), cm.num_stages()) {
                break;
            }
            let per_token = cm.stage_latency(0, &cand, Pass::Forward) / cand.total_tokens() as f64;
            if per_token < best_per_token {
                best = cand;
                best_per_token = per_token;
                end += 1;
            } else {
                break;
            }
        }
        htasks.push(best);
        start = end;
    }
    let predicted = htasks.iter().map(|h| cm.pipeline_latency(h)).sum();
    FusionPlan { htasks, predicted }
}

/// Eq. 6: `F(m, n) = min_i { F(i, n-1) + L(H_{i+1..m}) / S }`, with
/// `F(m', 1) = L(H_{1..m'})`; the answer is `min_N F(M, N)`.
#[allow(clippy::needless_range_loop)] // explicit DP indices mirror Eq. 6
fn fuse_dp(
    cm: &CostModel<'_>,
    sorted: &[&PeftTask],
    build: &dyn Fn(&[&PeftTask]) -> HTask,
) -> FusionPlan {
    let m = sorted.len();
    let s = cm.num_stages() as f64;
    // Memoized hTask + latency per contiguous range [i, j) (1-indexed DP
    // below uses [i+1..=m] style; store by (start, end) 0-indexed).
    let mut range_cache: Vec<Vec<Option<(HTask, f64, bool)>>> = vec![vec![None; m + 1]; m];
    let mut range = |a: usize, b: usize| -> (HTask, f64, bool) {
        if range_cache[a][b].is_none() {
            let h = build(&sorted[a..b]);
            let lat = cm.pipeline_latency(&h);
            let fits = cm.fits_memory(std::slice::from_ref(&h), cm.num_stages());
            range_cache[a][b] = Some((h, lat, fits));
        }
        range_cache[a][b].clone().expect("just filled")
    };

    const INF: f64 = f64::INFINITY;
    // f[n][m] = best objective packing first m tasks into n hTasks.
    let mut f = vec![vec![INF; m + 1]; m + 1];
    let mut choice = vec![vec![usize::MAX; m + 1]; m + 1];
    for m1 in 1..=m {
        let (_, lat, fits) = range(0, m1);
        if fits {
            f[1][m1] = lat;
        }
    }
    for n in 2..=m {
        for mm in n..=m {
            for i in (n - 1)..mm {
                if f[n - 1][i] == INF {
                    continue;
                }
                let (_, lat, fits) = range(i, mm);
                if !fits {
                    continue;
                }
                let cand = f[n - 1][i] + lat / s;
                if cand < f[n][mm] {
                    f[n][mm] = cand;
                    choice[n][mm] = i;
                }
            }
        }
    }
    // Pick the best N and reconstruct.
    let mut best_n = 1;
    let mut best_val = f[1][m];
    for n in 2..=m {
        if f[n][m] < best_val {
            best_val = f[n][m];
            best_n = n;
        }
    }
    assert!(
        best_val.is_finite(),
        "no memory-feasible fusion exists even fully temporal — reject tasks upstream"
    );
    let mut cuts = Vec::new();
    let (mut n, mut mm) = (best_n, m);
    while n > 1 {
        let i = choice[n][mm];
        cuts.push(i);
        mm = i;
        n -= 1;
    }
    cuts.push(0);
    cuts.reverse();
    cuts.push(m);
    let mut htasks = Vec::with_capacity(best_n);
    for w in cuts.windows(2) {
        htasks.push(range(w[0], w[1]).0);
    }
    FusionPlan {
        htasks,
        predicted: best_val,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mux_gpu_sim::spec::GpuSpec;
    use mux_model::config::ModelConfig;
    use mux_parallel::plan::HybridParallelism;
    use mux_peft::registry::TaskRegistry;
    use mux_peft::types::TaskId;

    fn setup(task_shapes: &[(usize, usize)]) -> TaskRegistry {
        let mut r = TaskRegistry::new(ModelConfig::llama2_7b().with_layers(16));
        for (i, &(mb, seq)) in task_shapes.iter().enumerate() {
            r.register_task(PeftTask::lora(i as TaskId + 1, 16, mb, seq))
                .expect("register");
        }
        r
    }

    fn run(r: &TaskRegistry, policy: FusionPolicy, mbs: usize) -> FusionPlan {
        let cm = CostModel::new(r, GpuSpec::a40(), HybridParallelism::pipeline(4));
        let tasks: Vec<&PeftTask> = r.tasks().collect();
        fuse_tasks(&cm, &tasks, policy, &|members| {
            HTask::from_padded(members, mbs)
        })
    }

    #[test]
    fn every_task_appears_exactly_once() {
        let r = setup(&[(4, 64), (2, 128), (8, 64), (4, 128), (2, 256), (8, 128)]);
        for policy in [
            FusionPolicy::Dp,
            FusionPolicy::Greedy,
            FusionPolicy::AllSpatial,
            FusionPolicy::AllTemporal,
        ] {
            let plan = run(&r, policy, 4);
            let mut all: Vec<TaskId> = plan.htasks.iter().flat_map(|h| h.tasks.clone()).collect();
            all.sort_unstable();
            assert_eq!(all, (1..=6).collect::<Vec<_>>(), "{policy:?}");
        }
    }

    #[test]
    fn dp_is_at_least_as_good_as_extremes() {
        let r = setup(&[(2, 64), (4, 64), (8, 64), (2, 256), (4, 256), (8, 256)]);
        let dp = run(&r, FusionPolicy::Dp, 4);
        let spatial = run(&r, FusionPolicy::AllSpatial, 4);
        let temporal = run(&r, FusionPolicy::AllTemporal, 4);
        // The DP objective mixes full-latency and per-stage terms, so
        // compare on its own scale: DP must not exceed the better extreme
        // expressed in the same objective (AllSpatial with N=1 is F(M,1)).
        assert!(
            dp.predicted <= spatial.predicted * 1.0001,
            "dp {} vs spatial {}",
            dp.predicted,
            spatial.predicted
        );
        let temporal_obj = temporal.predicted; // Σ L(H_i) >= DP's objective form
        assert!(
            dp.predicted <= temporal_obj,
            "dp {} vs temporal {}",
            dp.predicted,
            temporal_obj
        );
    }

    #[test]
    fn small_tasks_fuse_spatially() {
        // Many tiny tasks under-utilize alone: DP should batch them.
        let r = setup(&[(1, 64), (1, 64), (1, 64), (1, 64)]);
        let dp = run(&r, FusionPolicy::Dp, 4);
        assert!(
            dp.htasks.len() < 4,
            "tiny tasks should fuse, got {} hTasks",
            dp.htasks.len()
        );
    }

    #[test]
    fn saturated_tasks_stay_temporal() {
        // Very large tasks saturate the GPU alone: fusing them only adds
        // stage latency, so DP should keep several hTasks.
        let r = setup(&[(64, 256), (64, 256), (64, 256), (64, 256)]);
        let dp = run(&r, FusionPolicy::Dp, 4);
        assert!(dp.htasks.len() > 1, "saturated tasks should not all fuse");
    }

    #[test]
    fn fusion_respects_sorted_contiguity() {
        let r = setup(&[(8, 128), (1, 64), (4, 64), (2, 256)]);
        let dp = run(&r, FusionPolicy::Dp, 4);
        // Token counts within the hTask sequence must be non-decreasing
        // across the concatenated plan (sorted ascending before cutting).
        let tokens: Vec<usize> = dp
            .htasks
            .iter()
            .flat_map(|h| h.tokens_per_task.clone())
            .collect();
        let mut sorted = tokens.clone();
        sorted.sort_unstable();
        assert_eq!(tokens, sorted);
    }

    #[test]
    fn memory_infeasible_fusions_are_split() {
        // Tasks so fat that an all-spatial hTask would OOM: DP must split.
        let mut r = TaskRegistry::new(ModelConfig::llama2_7b());
        for i in 0..8 {
            r.register_task(PeftTask::lora(i + 1, 16, 8, 256))
                .expect("register");
        }
        let cm = CostModel::new(&r, GpuSpec::a40(), HybridParallelism::pipeline(4));
        let tasks: Vec<&PeftTask> = r.tasks().collect();
        let all = HTask::from_padded(&tasks, 4);
        assert!(
            !cm.fits_memory(std::slice::from_ref(&all), 4),
            "precondition: all-spatial OOMs"
        );
        let plan = fuse_tasks(&cm, &tasks, FusionPolicy::Dp, &|m| HTask::from_padded(m, 4));
        assert!(plan.htasks.len() >= 2);
        for h in &plan.htasks {
            assert!(
                cm.fits_memory(std::slice::from_ref(h), 4),
                "each chosen hTask must fit"
            );
        }
    }
}
