//! Task fusion via dynamic programming (§3.3, Eq. 6).
//!
//! Bin-packs `M` tasks (sorted ascending by token count) into `N`
//! contiguous hTasks, minimizing predicted end-to-end pipeline latency
//! under the Eq. 3–5 cost model, with a memory-feasibility filter.
//!
//! ## Complexity
//!
//! The textbook Eq. 6 table `F(m, n)` has O(M²) states and O(M)
//! transitions each — O(M³) probes. Because the objective only ever charges
//! the *first* hTask at full latency and every later one at `L/S`, the
//! minimum over all `N` collapses into one unbounded recurrence
//!
//! ```text
//! G(m) = min( L(0..m) [if it fits],  min_{0<j<m} G(j) + L(j..m)/S )
//! ```
//!
//! with `G(M) = min_N F(M, N)` — every partition contributes the exact same
//! floating-point sum in both formulations (left-to-right association), so
//! the minimum is bit-for-bit identical. That is O(M²) transitions over
//! plain `(latency, fits)` value tables; hTasks are materialized only at
//! reconstruction. Each contiguous range is costed exactly once, and with a
//! [`PaddedRangeProber`] feasibility is decided in O(1) *before* paying the
//! per-member latency cost, so infeasible ranges are never built at all.

use mux_model::ops::Pass;
use mux_peft::types::{PeftTask, TaskId};

use crate::cost::{CostModel, PaddedRangeProber};
use crate::error::PlanError;
use crate::htask::HTask;

/// The fusion decision.
#[derive(Debug, Clone)]
pub struct FusionPlan {
    /// The fused hTasks, each holding a contiguous run of the sorted tasks.
    pub htasks: Vec<HTask>,
    /// DP objective value of the chosen plan (Eq. 6's `F*`).
    pub predicted: f64,
}

/// Fusion policies (`Dp` is MuxTune; the rest are ablation baselines).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FusionPolicy {
    /// Eq. 6 dynamic programming (the paper's algorithm).
    Dp,
    /// One hTask containing all tasks (pure spatial multiplexing).
    AllSpatial,
    /// One hTask per task (pure temporal multiplexing).
    AllTemporal,
    /// Greedy: grow the current hTask while the marginal steady-state
    /// latency per token improves; start a new one otherwise.
    Greedy,
}

/// How to build the hTask for a contiguous task run.
///
/// Builders must be `Sync`: the [`IncrementalPlanner`] evaluates
/// freshly-needed range builds in parallel across rows.
pub enum RangeBuild<'b> {
    /// Arbitrary builder (e.g. corpus-backed data alignment).
    Custom(&'b (dyn Fn(&[&PeftTask]) -> Result<HTask, PlanError> + Sync)),
    /// The canonical padded build — `HTask::from_padded(range, micro_batches)`.
    /// Declaring it lets the DP prove memory feasibility in O(1) per range
    /// via [`CostModel::padded_prober`] instead of building every candidate.
    Padded {
        /// Unified micro-batch count `C` for every built hTask.
        micro_batches: usize,
    },
}

impl RangeBuild<'_> {
    fn build(&self, range: &[&PeftTask]) -> Result<HTask, PlanError> {
        match self {
            RangeBuild::Custom(f) => f(range),
            RangeBuild::Padded { micro_batches } => Ok(HTask::from_padded(range, *micro_batches)),
        }
    }
}

/// Sorts tasks ascending by token count (`n_i`), the Eq. 6 precondition.
pub fn sort_by_tokens<'t>(tasks: &[&'t PeftTask]) -> Vec<&'t PeftTask> {
    let mut v = tasks.to_vec();
    v.sort_by_key(|t| (t.tokens_per_micro_batch(), t.id));
    v
}

/// Runs task fusion under `policy`.
///
/// `build` constructs the hTask for a contiguous task run (injecting the
/// data-alignment strategy).
///
/// # Errors
/// [`PlanError::NoTasks`] on an empty task set, [`PlanError::Infeasible`]
/// when no memory-feasible fusion exists (even fully temporal),
/// [`PlanError::DegenerateCost`] when the cost model yields non-finite
/// latencies for every feasible fusion, plus anything `build` returns.
pub fn fuse_tasks(
    cm: &CostModel<'_>,
    tasks: &[&PeftTask],
    policy: FusionPolicy,
    build: &RangeBuild<'_>,
) -> Result<FusionPlan, PlanError> {
    if tasks.is_empty() {
        return Err(PlanError::NoTasks);
    }
    let sorted = sort_by_tokens(tasks);
    match policy {
        FusionPolicy::AllSpatial => {
            let h = build.build(&sorted)?;
            let predicted = cm.pipeline_latency(&h);
            Ok(FusionPlan {
                htasks: vec![h],
                predicted,
            })
        }
        FusionPolicy::AllTemporal => {
            let htasks: Vec<HTask> = sorted
                .iter()
                .map(|t| build.build(&[*t]))
                .collect::<Result<_, _>>()?;
            let predicted = htasks.iter().map(|h| cm.pipeline_latency(h)).sum();
            Ok(FusionPlan { htasks, predicted })
        }
        FusionPolicy::Greedy => fuse_greedy(cm, &sorted, build),
        FusionPolicy::Dp => fuse_dp(cm, &sorted, build),
    }
}

fn fuse_greedy(
    cm: &CostModel<'_>,
    sorted: &[&PeftTask],
    build: &RangeBuild<'_>,
) -> Result<FusionPlan, PlanError> {
    let mut htasks = Vec::new();
    let mut start = 0;
    while start < sorted.len() {
        let mut end = start + 1;
        let mut best = build.build(&sorted[start..end])?;
        let mut best_per_token =
            cm.stage_latency(0, &best, Pass::Forward) / best.total_tokens() as f64;
        while end < sorted.len() {
            let cand = build.build(&sorted[start..end + 1])?;
            if !cm.fits_memory(std::slice::from_ref(&cand), cm.num_stages()) {
                break;
            }
            let per_token = cm.stage_latency(0, &cand, Pass::Forward) / cand.total_tokens() as f64;
            if per_token < best_per_token {
                best = cand;
                best_per_token = per_token;
                end += 1;
            } else {
                break;
            }
        }
        htasks.push(best);
        start = end;
    }
    let predicted = htasks.iter().map(|h| cm.pipeline_latency(h)).sum();
    Ok(FusionPlan { htasks, predicted })
}

/// Per-range `(latency, fits)` value tables over `sorted[a..b)`.
///
/// Latency is paid only for feasible ranges; with a padded prober the
/// infeasible ones never even construct their hTask.
struct RangeValues {
    m: usize,
    lat: Vec<f64>,
    fits: Vec<bool>,
    /// Count of feasible ranges whose latency came out non-finite.
    degenerate: usize,
}

impl RangeValues {
    fn idx(&self, a: usize, b: usize) -> usize {
        a * (self.m + 1) + b
    }

    fn fill(
        cm: &CostModel<'_>,
        sorted: &[&PeftTask],
        build: &RangeBuild<'_>,
    ) -> Result<Self, PlanError> {
        let _span = mux_obs::span("fusion.range_values");
        let m = sorted.len();
        mux_obs::profile::work("ranges_built", (m * (m + 1) / 2) as u64);
        let prober: Option<PaddedRangeProber<'_>> = match build {
            RangeBuild::Padded { .. } => Some(cm.padded_prober(sorted)),
            RangeBuild::Custom(_) => None,
        };
        let mut v = Self {
            m,
            lat: vec![f64::INFINITY; m * (m + 1) + 1],
            fits: vec![false; m * (m + 1) + 1],
            degenerate: 0,
        };
        let s = cm.num_stages();
        for a in 0..m {
            for b in a + 1..=m {
                let i = v.idx(a, b);
                match &prober {
                    Some(p) => {
                        v.fits[i] = p.fits(a, b);
                        if v.fits[i] {
                            v.lat[i] = cm.pipeline_latency(&build.build(&sorted[a..b])?);
                        }
                    }
                    None => {
                        let h = build.build(&sorted[a..b])?;
                        v.fits[i] = cm.fits_memory(std::slice::from_ref(&h), s);
                        if v.fits[i] {
                            v.lat[i] = cm.pipeline_latency(&h);
                        }
                    }
                }
                if v.fits[i] && !v.lat[i].is_finite() {
                    v.degenerate += 1;
                }
            }
        }
        Ok(v)
    }
}

/// Eq. 6: `F(m, n) = min_i { F(i, n-1) + L(H_{i+1..m}) / S }`, with
/// `F(m', 1) = L(H_{1..m'})`; the answer is `min_N F(M, N)`, computed here
/// as the equivalent unbounded recurrence `G` (see the module docs).
fn fuse_dp(
    cm: &CostModel<'_>,
    sorted: &[&PeftTask],
    build: &RangeBuild<'_>,
) -> Result<FusionPlan, PlanError> {
    let m = sorted.len();
    let s = cm.num_stages() as f64;
    let values = RangeValues::fill(cm, sorted, build)?;

    let _dp_span = mux_obs::span("fusion.dp");
    // One whole-range check plus the j-loop per prefix: m + m(m-1)/2.
    mux_obs::profile::work("dp_cells", (m + m * m.saturating_sub(1) / 2) as u64);
    const INF: f64 = f64::INFINITY;
    // g[mm] = best objective over partitions of the first mm tasks.
    // choice[mm] = start of the last hTask (0 ⇒ a single hTask [0, mm)).
    let mut g = vec![INF; m + 1];
    let mut choice = vec![usize::MAX; m + 1];
    for mm in 1..=m {
        let whole = values.idx(0, mm);
        if values.fits[whole] && values.lat[whole] < g[mm] {
            g[mm] = values.lat[whole];
            choice[mm] = 0;
        }
        for j in 1..mm {
            if g[j] == INF {
                continue;
            }
            let i = values.idx(j, mm);
            if !values.fits[i] {
                continue;
            }
            let cand = g[j] + values.lat[i] / s;
            if cand < g[mm] {
                g[mm] = cand;
                choice[mm] = j;
            }
        }
    }

    let best_val = g[m];
    if !best_val.is_finite() {
        // No memory-feasible partition — or every feasible one cost NaN.
        return Err(if values.degenerate > 0 {
            PlanError::DegenerateCost {
                detail: format!(
                    "{} feasible range(s) had non-finite latency",
                    values.degenerate
                ),
            }
        } else {
            PlanError::Infeasible { tasks: m }
        });
    }

    // Reconstruct cuts, then materialize hTasks — the only point where
    // range hTasks are built for the DP (the tables hold plain values).
    let mut cuts = vec![m];
    let mut mm = m;
    while choice[mm] != 0 {
        mm = choice[mm];
        cuts.push(mm);
    }
    cuts.push(0);
    cuts.reverse();
    let mut htasks = Vec::with_capacity(cuts.len() - 1);
    for w in cuts.windows(2) {
        htasks.push(build.build(&sorted[w[0]..w[1]])?);
    }
    Ok(FusionPlan {
        htasks,
        predicted: best_val,
    })
}

/// Lifetime counters of an [`IncrementalPlanner`]. Monotone — callers diff
/// snapshots around an operation to count the work it did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IncrementalStats {
    /// Range candidates evaluated (one per `(a, b)` latency/feasibility
    /// evaluation — the unit of work the incremental planner avoids).
    pub ranges_built: u64,
    /// Stored range entries carried over a recompute instead of rebuilt.
    pub ranges_reused: u64,
    /// Membership deltas (inserts + removes) applied.
    pub deltas_applied: u64,
    /// `plan()` calls answered entirely from the cached plan: zero range
    /// builds, zero DP work (the no-op replan path).
    pub noop_plans: u64,
    /// `plan()` calls that recomputed at least the DP suffix.
    pub replans: u64,
}

/// One row of the persisted range tables: entry `w - 1` holds the
/// `(latency, fits)` value of range `[a, a + w)` for the row's start `a`.
///
/// Padded rows exploit that Eq. 5 memory grows monotonically in `b` (the
/// token total and adapter state of `[a, b)` are non-decreasing), so they
/// store exactly the feasible prefix of widths and stop at the first
/// infeasible one. Custom rows (corpus-backed builds carry no such proof)
/// are dense up to the current membership size.
#[derive(Debug, Clone, Default)]
struct RangeRow {
    lat: Vec<f64>,
    fits: Vec<bool>,
    /// Stored feasible entries whose latency came out non-finite.
    degenerate: usize,
}

impl RangeRow {
    /// Drops entries of width > `width`; returns how many were dropped
    /// (the `ranges_truncated` unit of the work profile).
    fn truncate(&mut self, width: usize) -> usize {
        let dropped = self.lat.len().saturating_sub(width);
        if dropped > 0 {
            for w in width..self.lat.len() {
                if self.fits[w] && !self.lat[w].is_finite() {
                    self.degenerate -= 1;
                }
            }
            self.lat.truncate(width);
            self.fits.truncate(width);
        }
        dropped
    }
}

/// Rows below this many pending extensions run serially — scoped-thread
/// fan-out costs more than a handful of O(width) row builds.
const PAR_ROWS_MIN: usize = 8;

/// Persistent Eq. 6 fusion-DP state that survives membership changes.
///
/// [`fuse_tasks`] rebuilds the full `(lat, fits)` value tables and DP on
/// every call — O(M²) work per membership delta. This planner keeps the
/// sorted task list, the per-range value tables (`RangeRow`), and the
/// DP arrays alive across replans:
///
/// * Tasks stay sorted by `(tokens_per_micro_batch, id)` — the same total
///   order [`sort_by_tokens`] uses — so an insert or remove lands at one
///   sorted position `k` and invalidates **only the ranges crossing `k`**
///   and the DP suffix `g[k+1..]`. Every other stored value is reused
///   verbatim, which is what makes the result bit-for-bit identical to a
///   from-scratch [`fuse_tasks`] run: reused entries are the same floats,
///   and the recomputed suffix runs the same recurrence in the same order.
/// * Freshly-needed range builds are evaluated in parallel across rows via
///   the rayon shim (deterministically: results are applied in ascending
///   row order, and each row's candidates are evaluated in ascending `b`,
///   matching the from-scratch fill's error ordering).
/// * A `plan()` with no pending deltas returns the cached [`FusionPlan`]
///   without building a single range (the no-op replan path — e.g. a
///   fault clear with unchanged membership).
///
/// The tables themselves are trimmed: padded rows store only the feasible
/// prefix of widths (memory is monotone in range width), so a warm planner
/// at M=16384 holds O(M·W) entries, not the O(M²) a dense table would need.
#[derive(Default)]
pub struct IncrementalPlanner {
    /// Owned tasks, sorted ascending by `(tokens_per_micro_batch, id)`.
    tasks: Vec<PeftTask>,
    /// Per-slot content fingerprint (task shape + corpus), caller-defined:
    /// a changed fingerprint re-inserts the task, invalidating its ranges.
    fps: Vec<u64>,
    rows: Vec<RangeRow>,
    /// `g[mm]` = best objective over partitions of the first `mm` tasks.
    g: Vec<f64>,
    /// `choice[mm]` = start of the last hTask (0 ⇒ single hTask `[0, mm)`).
    choice: Vec<usize>,
    /// First prefix length whose `g`/`choice` entry is stale (`None` ⇒ the
    /// DP arrays are valid for the current membership).
    dp_from: Option<usize>,
    /// Upper bound on any row's stored width (stale-high after removals,
    /// which only widens the truncate/DP scan windows — never wrong).
    widest: usize,
    cached: Option<FusionPlan>,
    stats: IncrementalStats,
}

impl IncrementalPlanner {
    /// An empty planner; populate with [`sync`](Self::sync) or
    /// [`insert`](Self::insert).
    pub fn new() -> Self {
        Self::default()
    }

    /// Current membership size.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// Whether the planner holds no tasks.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Lifetime work counters.
    pub fn stats(&self) -> IncrementalStats {
        self.stats
    }

    /// Records a no-op replan served entirely from a cache *above* the
    /// planner (e.g. [`IncrementalEstimator`]'s throughput cache, which
    /// short-circuits before reaching [`plan`](Self::plan)), so the
    /// stats still account every replan the caller saw.
    ///
    /// [`IncrementalEstimator`]: crate::planner::IncrementalEstimator
    pub fn note_noop(&mut self) {
        self.stats.noop_plans += 1;
    }

    /// The plan of the most recent successful [`plan`](Self::plan), if the
    /// membership has not changed since.
    pub fn cached_plan(&self) -> Option<&FusionPlan> {
        self.cached.as_ref()
    }

    fn sort_key(task: &PeftTask) -> (usize, TaskId) {
        (task.tokens_per_micro_batch(), task.id)
    }

    /// Inserts `task` at its sorted position, invalidating only the ranges
    /// that cross it. `fingerprint` is an opaque content hash (e.g. over
    /// the task's corpus); [`sync`](Self::sync) re-inserts a task whose
    /// fingerprint changed.
    pub fn insert(&mut self, task: PeftTask, fingerprint: u64) {
        debug_assert!(
            self.tasks.iter().all(|t| t.id != task.id),
            "duplicate task id {}",
            task.id
        );
        let key = Self::sort_key(&task);
        let k = self.tasks.partition_point(|t| Self::sort_key(t) < key);
        self.tasks.insert(k, task);
        self.fps.insert(k, fingerprint);
        self.rows.insert(k, RangeRow::default());
        self.invalidate_at(k);
    }

    /// Removes the task with `id`; returns whether it was present.
    pub fn remove(&mut self, id: TaskId) -> bool {
        let Some(k) = self.tasks.iter().position(|t| t.id == id) else {
            return false;
        };
        self.tasks.remove(k);
        self.fps.remove(k);
        self.rows.remove(k);
        self.invalidate_at(k);
        true
    }

    /// After an insert/remove at sorted position `k`: rows starting at or
    /// after `k` shifted in place and stay valid; rows starting before `k`
    /// keep exactly their entries with `b <= k` (ranges not crossing the
    /// delta); the DP is stale from prefix `k + 1` on.
    fn invalidate_at(&mut self, k: usize) {
        let _span = mux_obs::span("fusion.invalidate");
        let mut truncated = 0u64;
        for a in k.saturating_sub(self.widest)..k {
            truncated += self.rows[a].truncate(k - a) as u64;
        }
        if truncated > 0 {
            mux_obs::profile::work("ranges_truncated", truncated);
        }
        // Rows at or after the delta position moved in place.
        let shifted = (self.rows.len() - k) as u64;
        if shifted > 0 {
            mux_obs::profile::work("rows_shifted", shifted);
        }
        self.dp_from = Some(self.dp_from.map_or(k + 1, |d| d.min(k + 1)));
        self.cached = None;
        self.stats.deltas_applied += 1;
    }

    /// Diffs the desired membership against the current one and applies
    /// the minimal insert/remove deltas (a changed fingerprint counts as
    /// remove + insert). Returns the number of deltas applied — 0 means
    /// the upcoming [`plan`](Self::plan) is a no-op served from cache.
    pub fn sync(&mut self, items: &[(PeftTask, u64)]) -> usize {
        let want: std::collections::BTreeMap<TaskId, u64> =
            items.iter().map(|(t, fp)| (t.id, *fp)).collect();
        debug_assert_eq!(want.len(), items.len(), "duplicate task ids in sync");
        let stale: Vec<TaskId> = self
            .tasks
            .iter()
            .zip(&self.fps)
            .filter(|(t, fp)| want.get(&t.id) != Some(fp))
            .map(|(t, _)| t.id)
            .collect();
        let mut deltas = stale.len();
        for id in stale {
            self.remove(id);
        }
        let have: std::collections::BTreeSet<TaskId> = self.tasks.iter().map(|t| t.id).collect();
        for (task, fp) in items {
            if !have.contains(&task.id) {
                self.insert(task.clone(), *fp);
                deltas += 1;
            }
        }
        deltas
    }

    /// Runs the Eq. 6 DP over the persisted tables, rebuilding only what
    /// pending deltas invalidated, and returns a plan bit-for-bit equal to
    /// `fuse_tasks(cm, tasks, FusionPolicy::Dp, build)` on the same
    /// membership.
    ///
    /// With no pending deltas the cached plan is returned without any
    /// range builds. `cm` and `build` must describe the same planning
    /// context across calls — a context change (parallelism plan, GPU,
    /// alignment, micro-batch count) requires a fresh planner.
    ///
    /// # Errors
    /// Exactly [`fuse_tasks`]'s: [`PlanError::NoTasks`] when empty,
    /// [`PlanError::Infeasible`] / [`PlanError::DegenerateCost`] when no
    /// finite-cost partition exists, plus anything `build` returns.
    pub fn plan(
        &mut self,
        cm: &CostModel<'_>,
        build: &RangeBuild<'_>,
    ) -> Result<FusionPlan, PlanError> {
        let m = self.tasks.len();
        if m == 0 {
            return Err(PlanError::NoTasks);
        }
        let _plan_span = mux_obs::span("fusion.plan");
        if self.dp_from.is_none() {
            if let Some(plan) = &self.cached {
                self.stats.noop_plans += 1;
                return Ok(plan.clone());
            }
        }
        self.stats.replans += 1;
        self.stats.ranges_reused += self.rows.iter().map(|r| r.lat.len() as u64).sum::<u64>();
        let refs: Vec<&PeftTask> = self.tasks.iter().collect();
        let prober: Option<PaddedRangeProber<'_>> = match build {
            RangeBuild::Padded { .. } => Some(cm.padded_prober(&refs)),
            RangeBuild::Custom(_) => None,
        };

        // Rows needing extension: padded rows whose next width still fits
        // (O(1) probe — rows that stopped at infeasibility or at the end
        // are skipped for free), custom rows not yet dense.
        let todo: Vec<usize> = (0..m)
            .filter(|&a| {
                let next = a + 1 + self.rows[a].lat.len();
                next <= m && prober.as_ref().is_none_or(|p| p.fits(a, next))
            })
            .collect();
        let stages = cm.num_stages();
        let rows = &self.rows;
        // Worker threads graft their range-build spans under this call's
        // path; on the serial fallback `adopt` is a no-op (frames are
        // already open on this thread) and the span nests naturally.
        let ctx = mux_obs::profile::current_context();
        type RowTables = Result<(Vec<f64>, Vec<bool>), PlanError>;
        let eval_row = |a: usize| -> RowTables {
            let _graft = mux_obs::profile::adopt(&ctx);
            let _row_span = mux_obs::span("fusion.range_build");
            let mut lat = Vec::new();
            let mut fits = Vec::new();
            let mut b = a + 1 + rows[a].lat.len();
            match &prober {
                Some(p) => {
                    // Feasible widths form a prefix: extend until the
                    // prober says no (or the membership ends).
                    while b <= m && p.fits(a, b) {
                        lat.push(cm.pipeline_latency(&build.build(&refs[a..b])?));
                        fits.push(true);
                        b += 1;
                    }
                }
                None => {
                    while b <= m {
                        let h = build.build(&refs[a..b])?;
                        let f = cm.fits_memory(std::slice::from_ref(&h), stages);
                        lat.push(if f {
                            cm.pipeline_latency(&h)
                        } else {
                            f64::INFINITY
                        });
                        fits.push(f);
                        b += 1;
                    }
                }
            }
            mux_obs::profile::work("ranges_built", lat.len() as u64);
            Ok((lat, fits))
        };
        let results: Vec<RowTables> = if todo.len() >= PAR_ROWS_MIN {
            use rayon::prelude::*;
            todo.par_iter().map(|&a| eval_row(a)).collect()
        } else {
            todo.iter().map(|&a| eval_row(a)).collect()
        };
        let mut built = 0u64;
        let mut first_err = None;
        for (&a, res) in todo.iter().zip(results) {
            // Apply in ascending row order; surface the first error in the
            // same (a asc, b asc) order the from-scratch fill would.
            match res {
                Ok((lat, fits)) => {
                    built += lat.len() as u64;
                    let row = &mut self.rows[a];
                    for (l, f) in lat.iter().zip(&fits) {
                        if *f && !l.is_finite() {
                            row.degenerate += 1;
                        }
                    }
                    row.lat.extend(lat);
                    row.fits.extend(fits);
                    self.widest = self.widest.max(row.lat.len());
                }
                Err(e) => {
                    first_err = Some(e);
                    break;
                }
            }
        }
        self.stats.ranges_built += built;
        if built > 0 {
            mux_obs::incr_counter("planner.candidates", built);
        }
        if let Some(e) = first_err {
            return Err(e);
        }

        // Recompute the invalidated DP suffix only — the same recurrence,
        // iteration order, and strict-< tie-break as `fuse_dp`, with the
        // transition window bounded by the widest stored row (anything
        // wider is provably infeasible and would be skipped anyway).
        const INF: f64 = f64::INFINITY;
        self.g.resize(m + 1, INF);
        self.choice.resize(m + 1, usize::MAX);
        let start = self.dp_from.unwrap_or(m + 1).max(1);
        let s = stages as f64;
        let wmax = self.widest.max(1);
        let dp_span = mux_obs::span("fusion.dp_suffix");
        if mux_obs::profile::profiling() && start <= m {
            // Transitions examined by the suffix recompute (the loop below
            // is branch-free in its bounds, so the count is closed-form):
            // one whole-range check plus the bounded j-window per prefix.
            let cells: u64 = (start..=m)
                .map(|mm| 1 + (mm - mm.saturating_sub(wmax).max(1)) as u64)
                .sum();
            mux_obs::profile::work("dp_cells", cells);
        }
        for mm in start..=m {
            let mut best = INF;
            let mut ch = usize::MAX;
            let whole = &self.rows[0];
            if mm <= whole.lat.len() && whole.fits[mm - 1] && whole.lat[mm - 1] < best {
                best = whole.lat[mm - 1];
                ch = 0;
            }
            for j in mm.saturating_sub(wmax).max(1)..mm {
                if self.g[j] == INF {
                    continue;
                }
                let w = mm - j;
                let row = &self.rows[j];
                if w > row.lat.len() || !row.fits[w - 1] {
                    continue;
                }
                let cand = self.g[j] + row.lat[w - 1] / s;
                if cand < best {
                    best = cand;
                    ch = j;
                }
            }
            self.g[mm] = best;
            self.choice[mm] = ch;
        }
        drop(dp_span);
        self.dp_from = None;

        let best_val = self.g[m];
        if !best_val.is_finite() {
            let degenerate: usize = self.rows.iter().map(|r| r.degenerate).sum();
            return Err(if degenerate > 0 {
                PlanError::DegenerateCost {
                    detail: format!("{degenerate} feasible range(s) had non-finite latency"),
                }
            } else {
                PlanError::Infeasible { tasks: m }
            });
        }

        let mut cuts = vec![m];
        let mut mm = m;
        while self.choice[mm] != 0 {
            mm = self.choice[mm];
            cuts.push(mm);
        }
        cuts.push(0);
        cuts.reverse();
        let mut htasks = Vec::with_capacity(cuts.len() - 1);
        for w in cuts.windows(2) {
            htasks.push(build.build(&refs[w[0]..w[1]])?);
        }
        let plan = FusionPlan {
            htasks,
            predicted: best_val,
        };
        self.cached = Some(plan.clone());
        Ok(plan)
    }
}

/// The seed O(M³) Eq. 6 implementation, retained verbatim (modulo the
/// panic-to-error conversion) as the differential reference for the DP
/// proptests and the `planner-scale` speedup measurement. Do not use on
/// hot paths.
#[allow(clippy::needless_range_loop)] // explicit DP indices mirror Eq. 6
pub fn fuse_dp_seed(
    cm: &CostModel<'_>,
    tasks: &[&PeftTask],
    build: &RangeBuild<'_>,
) -> Result<FusionPlan, PlanError> {
    if tasks.is_empty() {
        return Err(PlanError::NoTasks);
    }
    let sorted = sort_by_tokens(tasks);
    let m = sorted.len();
    let s = cm.num_stages() as f64;
    // Memoized hTask + latency per contiguous range, cloned on every probe
    // (the seed behaviour the value tables replace).
    let mut range_cache: Vec<Vec<Option<(HTask, f64, bool)>>> = vec![vec![None; m + 1]; m];
    let mut range = |a: usize, b: usize| -> Result<(HTask, f64, bool), PlanError> {
        if range_cache[a][b].is_none() {
            let h = build.build(&sorted[a..b])?;
            let lat = cm.pipeline_latency(&h);
            let fits = cm.fits_memory(std::slice::from_ref(&h), cm.num_stages());
            range_cache[a][b] = Some((h, lat, fits));
        }
        Ok(range_cache[a][b].clone().expect("just filled"))
    };

    const INF: f64 = f64::INFINITY;
    let mut f = vec![vec![INF; m + 1]; m + 1];
    let mut choice = vec![vec![usize::MAX; m + 1]; m + 1];
    for m1 in 1..=m {
        let (_, lat, fits) = range(0, m1)?;
        if fits {
            f[1][m1] = lat;
        }
    }
    for n in 2..=m {
        for mm in n..=m {
            for i in (n - 1)..mm {
                if f[n - 1][i] == INF {
                    continue;
                }
                let (_, lat, fits) = range(i, mm)?;
                if !fits {
                    continue;
                }
                let cand = f[n - 1][i] + lat / s;
                if cand < f[n][mm] {
                    f[n][mm] = cand;
                    choice[n][mm] = i;
                }
            }
        }
    }
    let mut best_n = 1;
    let mut best_val = f[1][m];
    for n in 2..=m {
        if f[n][m] < best_val {
            best_val = f[n][m];
            best_n = n;
        }
    }
    if !best_val.is_finite() {
        return Err(PlanError::Infeasible { tasks: m });
    }
    let mut cuts = Vec::new();
    let (mut n, mut mm) = (best_n, m);
    while n > 1 {
        let i = choice[n][mm];
        cuts.push(i);
        mm = i;
        n -= 1;
    }
    cuts.push(0);
    cuts.reverse();
    cuts.push(m);
    let mut htasks = Vec::with_capacity(best_n);
    for w in cuts.windows(2) {
        htasks.push(range(w[0], w[1])?.0);
    }
    Ok(FusionPlan {
        htasks,
        predicted: best_val,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mux_gpu_sim::spec::GpuSpec;
    use mux_model::config::ModelConfig;
    use mux_parallel::plan::HybridParallelism;
    use mux_peft::registry::TaskRegistry;
    use mux_peft::types::TaskId;

    fn setup(task_shapes: &[(usize, usize)]) -> TaskRegistry {
        let mut r = TaskRegistry::new(ModelConfig::llama2_7b().with_layers(16));
        for (i, &(mb, seq)) in task_shapes.iter().enumerate() {
            r.register_task(PeftTask::lora(i as TaskId + 1, 16, mb, seq))
                .expect("register");
        }
        r
    }

    fn run(r: &TaskRegistry, policy: FusionPolicy, mbs: usize) -> FusionPlan {
        let cm = CostModel::new(r, GpuSpec::a40(), HybridParallelism::pipeline(4));
        let tasks: Vec<&PeftTask> = r.tasks().collect();
        fuse_tasks(
            &cm,
            &tasks,
            policy,
            &RangeBuild::Padded { micro_batches: mbs },
        )
        .expect("feasible")
    }

    #[test]
    fn every_task_appears_exactly_once() {
        let r = setup(&[(4, 64), (2, 128), (8, 64), (4, 128), (2, 256), (8, 128)]);
        for policy in [
            FusionPolicy::Dp,
            FusionPolicy::Greedy,
            FusionPolicy::AllSpatial,
            FusionPolicy::AllTemporal,
        ] {
            let plan = run(&r, policy, 4);
            let mut all: Vec<TaskId> = plan.htasks.iter().flat_map(|h| h.tasks.clone()).collect();
            all.sort_unstable();
            assert_eq!(all, (1..=6).collect::<Vec<_>>(), "{policy:?}");
        }
    }

    #[test]
    fn dp_is_at_least_as_good_as_extremes() {
        let r = setup(&[(2, 64), (4, 64), (8, 64), (2, 256), (4, 256), (8, 256)]);
        let dp = run(&r, FusionPolicy::Dp, 4);
        let spatial = run(&r, FusionPolicy::AllSpatial, 4);
        let temporal = run(&r, FusionPolicy::AllTemporal, 4);
        // The DP objective mixes full-latency and per-stage terms, so
        // compare on its own scale: DP must not exceed the better extreme
        // expressed in the same objective (AllSpatial with N=1 is F(M,1)).
        assert!(
            dp.predicted <= spatial.predicted * 1.0001,
            "dp {} vs spatial {}",
            dp.predicted,
            spatial.predicted
        );
        let temporal_obj = temporal.predicted; // Σ L(H_i) >= DP's objective form
        assert!(
            dp.predicted <= temporal_obj,
            "dp {} vs temporal {}",
            dp.predicted,
            temporal_obj
        );
    }

    #[test]
    fn small_tasks_fuse_spatially() {
        // Many tiny tasks under-utilize alone: DP should batch them.
        let r = setup(&[(1, 64), (1, 64), (1, 64), (1, 64)]);
        let dp = run(&r, FusionPolicy::Dp, 4);
        assert!(
            dp.htasks.len() < 4,
            "tiny tasks should fuse, got {} hTasks",
            dp.htasks.len()
        );
    }

    #[test]
    fn saturated_tasks_stay_temporal() {
        // Very large tasks saturate the GPU alone: fusing them only adds
        // stage latency, so DP should keep several hTasks.
        let r = setup(&[(64, 256), (64, 256), (64, 256), (64, 256)]);
        let dp = run(&r, FusionPolicy::Dp, 4);
        assert!(dp.htasks.len() > 1, "saturated tasks should not all fuse");
    }

    #[test]
    fn fusion_respects_sorted_contiguity() {
        let r = setup(&[(8, 128), (1, 64), (4, 64), (2, 256)]);
        let dp = run(&r, FusionPolicy::Dp, 4);
        // Token counts within the hTask sequence must be non-decreasing
        // across the concatenated plan (sorted ascending before cutting).
        let tokens: Vec<usize> = dp
            .htasks
            .iter()
            .flat_map(|h| h.tokens_per_task.clone())
            .collect();
        let mut sorted = tokens.clone();
        sorted.sort_unstable();
        assert_eq!(tokens, sorted);
    }

    #[test]
    fn memory_infeasible_fusions_are_split() {
        // Tasks so fat that an all-spatial hTask would OOM: DP must split.
        let mut r = TaskRegistry::new(ModelConfig::llama2_7b());
        for i in 0..8 {
            r.register_task(PeftTask::lora(i + 1, 16, 8, 256))
                .expect("register");
        }
        let cm = CostModel::new(&r, GpuSpec::a40(), HybridParallelism::pipeline(4));
        let tasks: Vec<&PeftTask> = r.tasks().collect();
        let all = HTask::from_padded(&tasks, 4);
        assert!(
            !cm.fits_memory(std::slice::from_ref(&all), 4),
            "precondition: all-spatial OOMs"
        );
        let plan = fuse_tasks(
            &cm,
            &tasks,
            FusionPolicy::Dp,
            &RangeBuild::Padded { micro_batches: 4 },
        )
        .expect("splittable");
        assert!(plan.htasks.len() >= 2);
        for h in &plan.htasks {
            assert!(
                cm.fits_memory(std::slice::from_ref(h), 4),
                "each chosen hTask must fit"
            );
        }
    }

    #[test]
    fn infeasible_single_task_is_an_error_not_a_panic() {
        // One task so fat it cannot fit alone: even fully temporal fails,
        // and the DP reports it instead of aborting the process.
        let mut r = TaskRegistry::new(ModelConfig::llama2_7b());
        r.register_task(PeftTask::lora(1, 16, 4096, 256))
            .expect("register");
        let cm = CostModel::new(&r, GpuSpec::a40(), HybridParallelism::pipeline(4));
        let tasks: Vec<&PeftTask> = r.tasks().collect();
        let err = fuse_tasks(
            &cm,
            &tasks,
            FusionPolicy::Dp,
            &RangeBuild::Padded { micro_batches: 4 },
        )
        .expect_err("cannot fit");
        assert_eq!(err, PlanError::Infeasible { tasks: 1 });
    }

    #[test]
    fn empty_task_set_is_an_error() {
        let r = setup(&[(1, 64)]);
        let cm = CostModel::new(&r, GpuSpec::a40(), HybridParallelism::pipeline(4));
        let err = fuse_tasks(
            &cm,
            &[],
            FusionPolicy::Dp,
            &RangeBuild::Padded { micro_batches: 4 },
        )
        .expect_err("empty");
        assert_eq!(err, PlanError::NoTasks);
    }

    fn items(r: &TaskRegistry) -> Vec<(PeftTask, u64)> {
        r.tasks().map(|t| (t.clone(), 0)).collect()
    }

    #[test]
    fn incremental_first_plan_matches_scratch_bitwise() {
        let r = setup(&[(4, 64), (2, 128), (8, 64), (4, 128), (2, 256), (8, 128)]);
        let cm = CostModel::new(&r, GpuSpec::a40(), HybridParallelism::pipeline(4));
        let tasks: Vec<&PeftTask> = r.tasks().collect();
        let build = RangeBuild::Padded { micro_batches: 4 };
        let scratch = fuse_tasks(&cm, &tasks, FusionPolicy::Dp, &build).expect("feasible");
        let mut inc = IncrementalPlanner::new();
        inc.sync(&items(&r));
        let plan = inc.plan(&cm, &build).expect("feasible");
        assert_eq!(plan.predicted.to_bits(), scratch.predicted.to_bits());
        let cuts: Vec<Vec<TaskId>> = plan.htasks.iter().map(|h| h.tasks.clone()).collect();
        let scratch_cuts: Vec<Vec<TaskId>> =
            scratch.htasks.iter().map(|h| h.tasks.clone()).collect();
        assert_eq!(cuts, scratch_cuts);
    }

    #[test]
    fn warm_planner_noop_replan_builds_zero_ranges() {
        let r = setup(&[(4, 64), (2, 128), (8, 64), (4, 128)]);
        let cm = CostModel::new(&r, GpuSpec::a40(), HybridParallelism::pipeline(4));
        let build = RangeBuild::Padded { micro_batches: 4 };
        let mut inc = IncrementalPlanner::new();
        inc.sync(&items(&r));
        let p1 = inc.plan(&cm, &build).expect("feasible");
        let before = inc.stats();
        assert_eq!(inc.sync(&items(&r)), 0, "unchanged membership is a no-op");
        let p2 = inc.plan(&cm, &build).expect("feasible");
        let after = inc.stats();
        assert_eq!(
            after.ranges_built, before.ranges_built,
            "no-op must build nothing"
        );
        assert_eq!(
            after.replans, before.replans,
            "no-op must not recompute the DP"
        );
        assert_eq!(after.noop_plans, before.noop_plans + 1);
        assert_eq!(p1.predicted.to_bits(), p2.predicted.to_bits());
    }

    #[test]
    fn delta_reuses_ranges_not_crossing_the_position() {
        let mut r = setup(&[(4, 64), (2, 128), (8, 64), (4, 128), (2, 256), (8, 128)]);
        let cm = CostModel::new(&r, GpuSpec::a40(), HybridParallelism::pipeline(4));
        let build = RangeBuild::Padded { micro_batches: 4 };
        let mut inc = IncrementalPlanner::new();
        inc.sync(&items(&r));
        inc.plan(&cm, &build).expect("feasible");
        let cold = inc.stats();
        assert!(cold.ranges_built > 0);

        r.register_task(PeftTask::lora(7, 16, 2, 64))
            .expect("register");
        let cm = CostModel::new(&r, GpuSpec::a40(), HybridParallelism::pipeline(4));
        assert_eq!(inc.sync(&items(&r)), 1);
        let plan = inc.plan(&cm, &build).expect("feasible");
        let warm = inc.stats();
        let delta_builds = warm.ranges_built - cold.ranges_built;
        assert!(
            delta_builds < cold.ranges_built,
            "a single insert must rebuild fewer ranges ({delta_builds}) than the cold fill ({})",
            cold.ranges_built
        );
        assert!(warm.ranges_reused > 0, "unchanged ranges must be reused");

        let tasks: Vec<&PeftTask> = r.tasks().collect();
        let scratch = fuse_tasks(&cm, &tasks, FusionPolicy::Dp, &build).expect("feasible");
        assert_eq!(plan.predicted.to_bits(), scratch.predicted.to_bits());
    }

    #[test]
    fn incremental_remove_to_empty_then_refill() {
        let r = setup(&[(4, 64), (2, 128)]);
        let cm = CostModel::new(&r, GpuSpec::a40(), HybridParallelism::pipeline(4));
        let build = RangeBuild::Padded { micro_batches: 4 };
        let mut inc = IncrementalPlanner::new();
        inc.sync(&items(&r));
        inc.plan(&cm, &build).expect("feasible");
        assert_eq!(inc.sync(&[]), 2);
        assert!(inc.is_empty());
        assert_eq!(
            inc.plan(&cm, &build).expect_err("empty"),
            PlanError::NoTasks
        );
        inc.sync(&items(&r));
        let plan = inc.plan(&cm, &build).expect("feasible again");
        let tasks: Vec<&PeftTask> = r.tasks().collect();
        let scratch = fuse_tasks(&cm, &tasks, FusionPolicy::Dp, &build).expect("feasible");
        assert_eq!(plan.predicted.to_bits(), scratch.predicted.to_bits());
    }

    #[test]
    fn incremental_infeasible_error_matches_scratch() {
        let mut r = TaskRegistry::new(ModelConfig::llama2_7b());
        r.register_task(PeftTask::lora(1, 16, 4096, 256))
            .expect("register");
        let cm = CostModel::new(&r, GpuSpec::a40(), HybridParallelism::pipeline(4));
        let build = RangeBuild::Padded { micro_batches: 4 };
        let mut inc = IncrementalPlanner::new();
        inc.sync(&items(&r));
        let err = inc.plan(&cm, &build).expect_err("cannot fit");
        assert_eq!(err, PlanError::Infeasible { tasks: 1 });
    }

    #[test]
    fn changed_fingerprint_reinserts_the_task() {
        let r = setup(&[(4, 64), (2, 128), (8, 64)]);
        let cm = CostModel::new(&r, GpuSpec::a40(), HybridParallelism::pipeline(4));
        let build = RangeBuild::Padded { micro_batches: 4 };
        let mut inc = IncrementalPlanner::new();
        inc.sync(&items(&r));
        inc.plan(&cm, &build).expect("feasible");
        // Same membership, one task's content fingerprint changed: that is
        // a remove + insert, not a no-op.
        let mut changed = items(&r);
        changed[1].1 = 0xdead_beef;
        assert_eq!(inc.sync(&changed), 2);
        inc.plan(&cm, &build).expect("feasible");
        let tasks: Vec<&PeftTask> = r.tasks().collect();
        let scratch = fuse_tasks(&cm, &tasks, FusionPolicy::Dp, &build).expect("feasible");
        assert_eq!(
            inc.cached_plan().expect("cached").predicted.to_bits(),
            scratch.predicted.to_bits()
        );
    }

    #[test]
    fn value_table_dp_matches_seed_dp() {
        // The G-recurrence must reproduce the seed F(m, n) table's optimum
        // bit-for-bit (same candidate sums, same minimum).
        for shapes in [
            vec![(4, 64), (2, 128), (8, 64), (4, 128), (2, 256), (8, 128)],
            vec![(1, 64), (1, 64), (1, 64), (1, 64)],
            vec![(64, 256), (64, 256), (64, 256), (64, 256)],
            vec![(8, 128), (1, 64), (4, 64), (2, 256)],
        ] {
            let r = setup(&shapes);
            let cm = CostModel::new(&r, GpuSpec::a40(), HybridParallelism::pipeline(4));
            let tasks: Vec<&PeftTask> = r.tasks().collect();
            let build = RangeBuild::Padded { micro_batches: 4 };
            let new = fuse_tasks(&cm, &tasks, FusionPolicy::Dp, &build).expect("feasible");
            let seed = fuse_dp_seed(&cm, &tasks, &build).expect("feasible");
            assert_eq!(new.predicted.to_bits(), seed.predicted.to_bits());
        }
    }
}
