//! Typed planning errors.
//!
//! Every failure the planner can hit on the job-admission path — an
//! infeasible fusion, an oversize sequence, a degenerate cost model, an
//! engine OOM — surfaces as a [`PlanError`] value instead of a panic, so a
//! multi-tenant service can reject the offending job with a reason while
//! co-located tenants keep training.

use mux_data::align::AlignError;
use mux_data::packing::PackError;
use mux_gpu_sim::timeline::OomError;

/// Why a plan could not be produced.
#[derive(Debug, Clone, PartialEq)]
pub enum PlanError {
    /// No tasks were supplied to the planner.
    NoTasks,
    /// No memory-feasible fusion exists — even fully temporal, some single
    /// task overflows device memory on its own.
    Infeasible {
        /// Number of tasks in the rejected set.
        tasks: usize,
    },
    /// A sequence exceeds the row capacity it must pack into (tenant input
    /// that escaped cap truncation).
    Oversize {
        /// Offending sequence length.
        len: usize,
        /// Capacity it failed to fit.
        capacity: usize,
    },
    /// The cost model produced non-finite latencies for every feasible
    /// fusion (degenerate shapes, e.g. zero tokens).
    DegenerateCost {
        /// Human-readable description of the degeneracy.
        detail: String,
    },
    /// The execution engine ran out of device memory.
    Oom(OomError),
}

impl std::fmt::Display for PlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanError::NoTasks => write!(f, "no tasks to plan"),
            PlanError::Infeasible { tasks } => {
                write!(f, "no memory-feasible fusion exists for {tasks} task(s)")
            }
            PlanError::Oversize { len, capacity } => {
                write!(f, "sequence of length {len} exceeds capacity {capacity}")
            }
            PlanError::DegenerateCost { detail } => {
                write!(f, "degenerate cost model: {detail}")
            }
            PlanError::Oom(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for PlanError {}

impl From<OomError> for PlanError {
    fn from(e: OomError) -> Self {
        PlanError::Oom(e)
    }
}

impl From<PackError> for PlanError {
    fn from(e: PackError) -> Self {
        match e {
            PackError::OversizeSequence { len, capacity } => PlanError::Oversize { len, capacity },
            PackError::ZeroCapacity => PlanError::DegenerateCost {
                detail: "pack capacity is zero".to_string(),
            },
        }
    }
}

impl From<AlignError> for PlanError {
    fn from(e: AlignError) -> Self {
        match e {
            AlignError::NoTasks => PlanError::NoTasks,
            AlignError::ZeroChunk => PlanError::DegenerateCost {
                detail: "chunk size is zero".to_string(),
            },
            AlignError::Pack(p) => p.into(),
        }
    }
}
