//! # muxtune-core
//!
//! The paper's primary contribution: hierarchical spatial-temporal backbone
//! multiplexing for multi-task PEFT fine-tuning.
//!
//! * [`htask`] — the hybrid-task abstraction unifying spatial batching and
//!   temporal interleaving (§3.3);
//! * [`cost`] — the Eq. 3–5 latency/memory cost model;
//! * [`fusion`] — Eq. 6 dynamic-programming task fusion (plus ablation
//!   policies);
//! * [`grouping`] — Eq. 7 workload-balanced hTask bucketing;
//! * [`template`] — the structured multi-task 1F1B pipeline template
//!   (§3.4.1, Appendix A);
//! * [`subgraph`] / [`schedule`] — dependency-aware segmentation and the
//!   Algorithm-1 priority scheduler (§3.4.2);
//! * [`adapter_fusion`] — horizontal adapter fusion rules (§3.4.3);
//! * [`engine`] — execution of the planned run on the simulator;
//! * [`planner`] — the end-to-end pipeline with ablation toggles.

pub mod adapter_fusion;
pub mod cost;
pub mod engine;
pub mod error;
pub mod fusion;
pub mod grouping;
pub mod htask;
pub mod planner;
pub mod schedule;
pub mod subgraph;
pub mod template;

pub use cost::CostModel;
pub use engine::{EngineOptions, MuxEngine, RunMetrics};
pub use error::PlanError;
pub use fusion::{
    fuse_tasks, FusionPlan, FusionPolicy, IncrementalPlanner, IncrementalStats, RangeBuild,
};
pub use grouping::{group_htasks, Grouping};
pub use htask::HTask;
pub use planner::{
    degraded_plan, plan_and_run, plan_and_run_traced, plan_estimate, IncrementalEstimator,
    MuxTuneReport, PlannerConfig,
};
pub use template::BucketOrder;
