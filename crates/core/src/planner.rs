//! The end-to-end execution planner: data alignment → task fusion (DP) →
//! hTask grouping → structured template → engine run. This is the
//! "Execution Planner" box of the paper's Fig 6, with every component
//! individually toggleable for the §5.3 ablations.

use std::collections::BTreeMap;
use std::time::Instant;

use mux_data::align::AlignStrategy;
use mux_gpu_sim::timeline::{Cluster, OomError, OpRecord};
use mux_parallel::plan::HybridParallelism;
use mux_peft::registry::TaskRegistry;
use mux_peft::types::{PeftTask, TaskId};

use crate::cost::CostModel;
use crate::engine::{EngineOptions, MuxEngine, RunMetrics};
use crate::error::PlanError;
use crate::fusion::{
    fuse_tasks, FusionPlan, FusionPolicy, IncrementalPlanner, IncrementalStats, RangeBuild,
};
use crate::grouping::{group_htasks, Grouping};
use crate::htask::HTask;

/// Planner configuration.
#[derive(Debug, Clone)]
pub struct PlannerConfig {
    /// Parallelism plan.
    pub plan: HybridParallelism,
    /// Unified micro-batch count `C` per hTask (§3.3).
    pub micro_batches: usize,
    /// Data alignment strategy (§3.5; `ZeroPadGlobalMax` = "-CA" ablation).
    pub align: AlignStrategy,
    /// Task fusion policy (`AllTemporal` ≈ "-TF" ablation).
    pub fusion: FusionPolicy,
    /// Engine toggles (orchestration, overlap, fusion kernels).
    pub options: EngineOptions,
}

impl PlannerConfig {
    /// Full MuxTune defaults for a given plan.
    pub fn muxtune(plan: HybridParallelism, micro_batches: usize) -> Self {
        Self {
            plan,
            micro_batches,
            align: AlignStrategy::ChunkBased { min_chunk: 64 },
            fusion: FusionPolicy::Dp,
            options: EngineOptions::default(),
        }
    }
}

/// Everything the planner decided plus the measured outcome.
#[derive(Debug, Clone)]
pub struct MuxTuneReport {
    /// The fusion decision.
    pub fusion: FusionPlan,
    /// The grouping decision.
    pub grouping: Grouping,
    /// Simulated run metrics.
    pub metrics: RunMetrics,
    /// Wall-clock planning overhead in seconds (the paper bounds it at
    /// ~10 s; ours is milliseconds because profiling is analytic).
    pub planning_seconds: f64,
}

/// Plans and runs all registered tasks of `registry` on `cluster`.
///
/// `corpora` supplies per-task raw sequence lengths for alignment-aware
/// fusion; tasks without a corpus fall back to padded-shape planning.
///
/// # Errors
/// Returns a typed [`PlanError`] — infeasible fusion, oversize sequence,
/// degenerate cost, engine OOM — instead of panicking, so multi-tenant
/// callers can reject the offending job while co-tenants keep running.
pub fn plan_and_run(
    registry: &TaskRegistry,
    cluster: &Cluster,
    corpora: &BTreeMap<TaskId, Vec<usize>>,
    cfg: &PlannerConfig,
) -> Result<MuxTuneReport, PlanError> {
    plan_and_run_inner(registry, cluster, corpora, cfg, false).map(|(r, _)| r)
}

/// [`plan_and_run`], additionally returning the winning configuration's
/// full operator trace (export it with `mux_gpu_sim::chrome_trace`).
///
/// When the winner disabled orchestration (per-bucket back-to-back runs),
/// the per-bucket traces are concatenated on a shifted time axis so the
/// combined trace spans the summed makespan.
pub fn plan_and_run_traced(
    registry: &TaskRegistry,
    cluster: &Cluster,
    corpora: &BTreeMap<TaskId, Vec<usize>>,
    cfg: &PlannerConfig,
) -> Result<(MuxTuneReport, Vec<OpRecord>), PlanError> {
    plan_and_run_inner(registry, cluster, corpora, cfg, true)
        .map(|(r, t)| (r, t.expect("trace requested")))
}

/// Cost-model-only planning fast path: runs the Eq. 6 fusion DP and the
/// Eq. 7 grouping exactly like [`plan_and_run`], but derives effective
/// throughput from the grouped pipeline's Appendix-A latency estimate
/// instead of validating candidates on the simulator — no engine runs,
/// no launch-variant sweep. Feasibility (memory, degenerate workloads)
/// is still proven by the fusion DP, so the error surface matches
/// [`plan_and_run`]. Two orders of magnitude cheaper per call; the
/// high-job-count trace replayer (`mux-workload`) runs the service in
/// this mode to reach 10⁴–10⁵ job replays.
///
/// Returns estimated effective tokens per second.
pub fn plan_estimate(
    registry: &TaskRegistry,
    cluster: &Cluster,
    corpora: &BTreeMap<TaskId, Vec<usize>>,
    cfg: &PlannerConfig,
) -> Result<f64, PlanError> {
    let _total_span = mux_obs::span("planner.estimate");
    let cm = CostModel::new(registry, cluster.gpus[0].clone(), cfg.plan);
    let tasks: Vec<&PeftTask> = registry.tasks().collect();
    if tasks.is_empty() {
        return Err(PlanError::NoTasks);
    }
    let mbs = cfg.micro_batches;
    let align = cfg.align;
    let custom = |members: &[&PeftTask]| -> Result<HTask, PlanError> {
        let have_all = members.iter().all(|t| corpora.contains_key(&t.id));
        if have_all {
            let lens: Vec<Vec<usize>> = members.iter().map(|t| corpora[&t.id].clone()).collect();
            HTask::fuse(members, &lens, mbs, align)
        } else {
            Ok(HTask::from_padded(members, mbs))
        }
    };
    let build = if corpora.is_empty() {
        RangeBuild::Padded { micro_batches: mbs }
    } else {
        RangeBuild::Custom(&custom)
    };
    let fusion = fuse_tasks(&cm, &tasks, cfg.fusion, &build)?;
    Ok(estimate_throughput(&cm, &fusion))
}

/// The Appendix-A throughput estimate of a fusion plan: Eq. 7 grouping,
/// then effective content per round over the grouped pipeline's estimated
/// round latency. Shared by [`plan_estimate`] and [`IncrementalEstimator`]
/// so the two paths are arithmetic-identical by construction.
fn estimate_throughput(cm: &CostModel<'_>, fusion: &FusionPlan) -> f64 {
    let grouping = group_htasks(cm, &fusion.htasks);
    // Effective content per round: every hTask runs its micro-batches
    // once per round, each carrying `total_tokens` of which
    // `effective_fraction` is real (non-padding) content.
    let effective_per_round: f64 = fusion
        .htasks
        .iter()
        .map(|h| h.total_tokens() as f64 * h.micro_batches as f64 * h.effective_fraction)
        .sum();
    effective_per_round / grouping.estimated.max(1e-9)
}

/// Content fingerprint of one task's corpus for the incremental planner's
/// membership diff: a changed corpus re-inserts the task, invalidating
/// exactly the ranges that contain it. Absent corpora hash to a sentinel
/// distinct from any empty-corpus hash, so attaching or dropping a corpus
/// is also a content change.
fn corpus_fingerprint(lens: Option<&Vec<usize>>) -> u64 {
    match lens {
        None => u64::MAX,
        Some(lens) => {
            let mut bytes = Vec::with_capacity(lens.len() * 8);
            for &l in lens {
                bytes.extend_from_slice(&(l as u64).to_le_bytes());
            }
            mux_obs::fingerprint::fnv1a_64(&bytes)
        }
    }
}

/// Fingerprint of everything the estimate depends on *besides* membership
/// and corpora: a change (degraded plan after device loss, shrunk cluster,
/// different alignment or micro-batch count) invalidates every persisted
/// range value, so the estimator starts a fresh planner.
fn context_fingerprint(registry: &TaskRegistry, cluster: &Cluster, cfg: &PlannerConfig) -> u64 {
    let ctx = format!(
        "{:?}|{:?}|{}|{:?}|{}|{:?}",
        cfg.plan,
        cfg.align,
        cfg.micro_batches,
        cluster.gpus.first(),
        cluster.num_gpus(),
        registry.backbone()
    );
    mux_obs::fingerprint::fnv1a_64(ctx.as_bytes())
}

/// [`plan_estimate`] with persisted planner state: the Eq. 6 value tables
/// and DP arrays survive membership changes inside an
/// [`IncrementalPlanner`], so a replan costs only the work the delta
/// invalidated (and a replan with *no* delta — e.g. a fault clear with
/// unchanged membership — costs zero range builds). Throughput results are
/// bitwise-identical to calling [`plan_estimate`] from scratch on the same
/// membership: reused range values are the same floats, and the recomputed
/// DP suffix runs the same recurrence in the same order.
///
/// One estimator serves one planning context (instance). A context change
/// — degraded parallelism plan, shrunk cluster, new alignment — is
/// detected by fingerprint and starts a fresh planner; a fusion policy
/// other than [`FusionPolicy::Dp`] falls back to [`plan_estimate`].
#[derive(Default)]
pub struct IncrementalEstimator {
    planner: IncrementalPlanner,
    ctx: Option<u64>,
    cached_throughput: Option<f64>,
}

impl IncrementalEstimator {
    /// A fresh estimator with no persisted state.
    pub fn new() -> Self {
        Self::default()
    }

    /// The underlying planner's lifetime work counters.
    pub fn stats(&self) -> IncrementalStats {
        self.planner.stats()
    }

    /// The fusion plan of the most recent successful estimate, if the
    /// membership has not changed since.
    pub fn fusion_plan(&self) -> Option<&FusionPlan> {
        self.planner.cached_plan()
    }

    /// Estimated effective tokens per second for the current membership —
    /// see [`plan_estimate`] for semantics and the error surface.
    pub fn estimate(
        &mut self,
        registry: &TaskRegistry,
        cluster: &Cluster,
        corpora: &BTreeMap<TaskId, Vec<usize>>,
        cfg: &PlannerConfig,
    ) -> Result<f64, PlanError> {
        let _total_span = mux_obs::span("planner.estimate_incremental");
        if cfg.fusion != FusionPolicy::Dp {
            return plan_estimate(registry, cluster, corpora, cfg);
        }
        let ctx = context_fingerprint(registry, cluster, cfg);
        if self.ctx != Some(ctx) {
            self.planner = IncrementalPlanner::new();
            self.ctx = Some(ctx);
            self.cached_throughput = None;
        }
        let items: Vec<(PeftTask, u64)> = registry
            .tasks()
            .map(|t| (t.clone(), corpus_fingerprint(corpora.get(&t.id))))
            .collect();
        if items.is_empty() {
            return Err(PlanError::NoTasks);
        }
        if self.planner.sync(&items) == 0 {
            // No-op replan: unchanged membership, unchanged context. Serve
            // the cached throughput without touching the tables at all.
            if let Some(tp) = self.cached_throughput {
                self.planner.note_noop();
                return Ok(tp);
            }
        } else {
            self.cached_throughput = None;
        }
        let cm = CostModel::new(registry, cluster.gpus[0].clone(), cfg.plan);
        let mbs = cfg.micro_batches;
        let align = cfg.align;
        let custom = |members: &[&PeftTask]| -> Result<HTask, PlanError> {
            let have_all = members.iter().all(|t| corpora.contains_key(&t.id));
            if have_all {
                let lens: Vec<Vec<usize>> =
                    members.iter().map(|t| corpora[&t.id].clone()).collect();
                HTask::fuse(members, &lens, mbs, align)
            } else {
                Ok(HTask::from_padded(members, mbs))
            }
        };
        let build = if corpora.is_empty() {
            RangeBuild::Padded { micro_batches: mbs }
        } else {
            RangeBuild::Custom(&custom)
        };
        let fusion = self.planner.plan(&cm, &build)?;
        let tp = estimate_throughput(&cm, &fusion);
        self.cached_throughput = Some(tp);
        Ok(tp)
    }
}

/// Shrinks a parallelism plan to fit on `devices` surviving GPUs after a
/// permanent device loss — the replan entry point the recovery path uses.
///
/// The original plan is kept verbatim when it still fits; otherwise the
/// plan degrades to a pure pipeline over the survivors (the smallest-memory
/// shape, maximising the chance the re-fused workload still fits). Returns
/// `None` only when no device survives, in which case the caller must shed.
pub fn degraded_plan(plan: HybridParallelism, devices: usize) -> Option<HybridParallelism> {
    if devices == 0 {
        return None;
    }
    if plan.num_gpus() <= devices {
        Some(plan)
    } else {
        Some(HybridParallelism::pipeline(devices))
    }
}

/// Appends `records` to `out`, shifting times by `t_off` and dependency
/// indices by `out`'s current length (per-bucket traces index their own
/// op lists).
fn append_shifted(out: &mut Vec<OpRecord>, records: Vec<OpRecord>, t_off: f64) {
    let base = out.len();
    out.extend(records.into_iter().map(|mut r| {
        r.start += t_off;
        r.end += t_off;
        for d in &mut r.deps {
            *d += base;
        }
        r
    }));
}

fn plan_and_run_inner(
    registry: &TaskRegistry,
    cluster: &Cluster,
    corpora: &BTreeMap<TaskId, Vec<usize>>,
    cfg: &PlannerConfig,
    trace: bool,
) -> Result<(MuxTuneReport, Option<Vec<OpRecord>>), PlanError> {
    let _total_span = mux_obs::span("planner.total");
    let t0 = Instant::now();
    let cm = CostModel::new(registry, cluster.gpus[0].clone(), cfg.plan);
    let tasks: Vec<&PeftTask> = registry.tasks().collect();
    if tasks.is_empty() {
        return Err(PlanError::NoTasks);
    }

    let mbs = cfg.micro_batches;
    let align = cfg.align;
    let custom = |members: &[&PeftTask]| -> Result<HTask, PlanError> {
        let have_all = members.iter().all(|t| corpora.contains_key(&t.id));
        if have_all {
            let lens: Vec<Vec<usize>> = members.iter().map(|t| corpora[&t.id].clone()).collect();
            HTask::fuse(members, &lens, mbs, align)
        } else {
            Ok(HTask::from_padded(members, mbs))
        }
    };
    // Without corpora every range is the canonical padded build, which lets
    // the fusion DP prove memory feasibility in O(1) per range.
    let build = if corpora.is_empty() {
        RangeBuild::Padded { micro_batches: mbs }
    } else {
        RangeBuild::Custom(&custom)
    };

    // Candidate fusion plans. The Eq. 6 DP minimizes the *cost model's*
    // objective; like the paper's planner (which validates against offline
    // profiles), we validate the shortlist on the simulator and keep the
    // fastest — the DP result plus the two multiplexing extremes.
    let policies: Vec<FusionPolicy> = match cfg.fusion {
        FusionPolicy::Dp => vec![
            FusionPolicy::Dp,
            FusionPolicy::AllSpatial,
            FusionPolicy::AllTemporal,
        ],
        p => vec![p],
    };
    let mut best: Option<(MuxTuneReport, f64, Option<Vec<OpRecord>>)> = None;
    // Fusion-level errors (infeasible, oversize, degenerate) carry the
    // actionable reason; engine OOMs are the fallback diagnosis when every
    // policy that fused still failed to run.
    let mut plan_err: Option<PlanError> = None;
    let mut run_err: Option<OomError> = None;
    for policy in policies {
        let fusion = {
            let _s = mux_obs::span("planner.fusion");
            match fuse_tasks(&cm, &tasks, policy, &build) {
                Ok(f) => f,
                Err(e) => {
                    plan_err.get_or_insert(e);
                    continue;
                }
            }
        };
        let grouping = {
            let _s = mux_obs::span("planner.grouping");
            group_htasks(&cm, &fusion.htasks)
        };
        let buckets: Vec<Vec<HTask>> = grouping
            .buckets
            .iter()
            .map(|b| b.iter().map(|&i| fusion.htasks[i].clone()).collect())
            .collect();

        // Template rule 3: derive the in-flight cap from the memory model —
        // temporally interleaved buckets share the budget, so the cap counts
        // resident pipeline *cells*, not per-hTask copies.
        let mut options = cfg.options;
        if options.max_in_flight == 0 {
            options.max_in_flight = cm
                .max_in_flight(&buckets)
                .max(cfg.plan.pp.min(2 * cfg.plan.pp + 4));
        }

        // Overlapping communication pays a CTA/bandwidth toll (§3.4.3); it
        // only wins when the launch order has independent work to hide it
        // under. Evaluate both launch modes and keep the faster.
        let mut variants = vec![options];
        if options.overlap_comm {
            let mut seq_opts = options;
            seq_opts.overlap_comm = false;
            variants.push(seq_opts);
        }
        for opts in variants {
            mux_obs::incr_counter("planner.candidates", 1);
            let _cand_span = mux_obs::span("planner.candidate_run");
            // Disabling orchestration (-OO) removes *both* tiers of §3.4:
            // no Algorithm-1 interleaving inside a bucket (engine flag) and
            // no inter-stage interleaving across buckets — each bucket runs
            // as its own pipeline, back to back.
            let run_result = if opts.orchestrate {
                let eng = MuxEngine::new(registry, cluster, cfg.plan, buckets.clone(), opts);
                if trace {
                    eng.run_traced().map(|(m, t)| (m, Some(t)))
                } else {
                    eng.run().map(|m| (m, None))
                }
            } else {
                let mut combined: Option<RunMetrics> = None;
                let mut records: Vec<OpRecord> = Vec::new();
                let mut failed = None;
                for bucket in &buckets {
                    let eng =
                        MuxEngine::new(registry, cluster, cfg.plan, vec![bucket.clone()], opts);
                    let bucket_result = if trace {
                        eng.run_traced().map(|(m, t)| (m, Some(t)))
                    } else {
                        eng.run().map(|m| (m, None))
                    };
                    match bucket_result {
                        Ok((m, t)) => {
                            if let Some(t) = t {
                                let t_off = combined.as_ref().map(|c| c.makespan).unwrap_or(0.0);
                                append_shifted(&mut records, t, t_off);
                            }
                            combined = Some(match combined {
                                None => m,
                                Some(mut acc) => {
                                    acc.makespan += m.makespan;
                                    acc.total_tokens += m.total_tokens;
                                    acc.effective_tokens += m.effective_tokens;
                                    acc.throughput = acc.total_tokens as f64 / acc.makespan;
                                    acc.effective_throughput =
                                        acc.effective_tokens as f64 / acc.makespan;
                                    acc.mean_utilization =
                                        (acc.mean_utilization + m.mean_utilization) / 2.0;
                                    for (p, q) in acc.peak_mem.iter_mut().zip(&m.peak_mem) {
                                        *p = (*p).max(*q);
                                    }
                                    acc.mfu = (acc.mfu + m.mfu) / 2.0;
                                    acc.energy_joules += m.energy_joules;
                                    acc.tokens_per_joule = if acc.energy_joules > 0.0 {
                                        acc.effective_tokens as f64 / acc.energy_joules
                                    } else {
                                        0.0
                                    };
                                    acc
                                }
                            });
                        }
                        Err(e) => {
                            failed = Some(e);
                            break;
                        }
                    }
                }
                match (combined, failed) {
                    (Some(m), None) => Ok((m, trace.then_some(records))),
                    (_, Some(e)) => Err(e),
                    (None, None) => unreachable!("at least one bucket exists"),
                }
            };
            match run_result {
                Ok((m, t)) => {
                    let score = m.effective_throughput;
                    if best.as_ref().map(|(_, b, _)| score > *b).unwrap_or(true) {
                        best = Some((
                            MuxTuneReport {
                                fusion: fusion.clone(),
                                grouping: grouping.clone(),
                                metrics: m,
                                planning_seconds: 0.0,
                            },
                            score,
                            t,
                        ));
                    }
                }
                Err(e) => run_err = Some(e),
            }
        }
    }
    let (mut report, _, trace_out) = match best {
        Some(b) => b,
        None => {
            return Err(plan_err
                .or(run_err.map(PlanError::Oom))
                .expect("at least one candidate was attempted"))
        }
    };
    report.planning_seconds = t0.elapsed().as_secs_f64();
    mux_obs::set_gauge("run.makespan_seconds", report.metrics.makespan);
    mux_obs::set_gauge("run.mean_utilization", report.metrics.mean_utilization);
    mux_obs::set_gauge(
        "run.effective_throughput",
        report.metrics.effective_throughput,
    );
    mux_obs::set_gauge("planner.planning_seconds", report.planning_seconds);
    Ok((report, trace_out))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mux_data::corpus::{Corpus, DatasetKind};
    use mux_gpu_sim::spec::{GpuSpec, LinkSpec};
    use mux_model::config::ModelConfig;

    fn registry(n: usize, seq: usize) -> TaskRegistry {
        let mut r = TaskRegistry::new(ModelConfig::llama2_7b().with_layers(16));
        for i in 0..n {
            r.register_task(PeftTask::lora(i as TaskId + 1, 16, 4, seq))
                .expect("register");
        }
        r
    }

    fn corpora(r: &TaskRegistry, kind: DatasetKind) -> BTreeMap<TaskId, Vec<usize>> {
        r.tasks()
            .map(|t| (t.id, Corpus::generate(kind, 64, t.id as u64).lengths))
            .collect()
    }

    fn cluster(n: usize) -> Cluster {
        Cluster::single_node(GpuSpec::a40(), n, LinkSpec::nvlink_a40())
    }

    #[test]
    fn end_to_end_plan_runs_and_reports() {
        let r = registry(4, 128);
        let c = cluster(4);
        let cfg = PlannerConfig::muxtune(HybridParallelism::pipeline(4), 4);
        let rep = plan_and_run(&r, &c, &corpora(&r, DatasetKind::OpenBookQa), &cfg)
            .expect("run succeeds");
        assert!(rep.metrics.makespan > 0.0);
        assert!(rep.metrics.throughput > 0.0);
        assert!(rep.metrics.effective_throughput <= rep.metrics.throughput);
        assert!(rep.metrics.mean_utilization > 0.0 && rep.metrics.mean_utilization <= 1.0);
        assert!(
            rep.metrics.mfu > 0.0 && rep.metrics.mfu < 1.0,
            "mfu {}",
            rep.metrics.mfu
        );
        assert!(rep.planning_seconds < 10.0, "planning overhead bound (§4)");
    }

    #[test]
    fn multiplexing_beats_sequential_single_task_runs() {
        // 4 small tasks co-scheduled must out-throughput running the same
        // 4 tasks one after another (the headline claim, in miniature).
        let r = registry(4, 64);
        let c = cluster(4);
        let muxed = plan_and_run(
            &r,
            &c,
            &BTreeMap::new(),
            &PlannerConfig::muxtune(HybridParallelism::pipeline(4), 4),
        )
        .expect("muxed run");
        // Sequential: each task alone, summed makespans.
        let mut seq_time = 0.0;
        let mut seq_tokens = 0u64;
        for t in r.tasks() {
            let mut solo = TaskRegistry::new(r.backbone().clone());
            solo.register_task(t.clone()).expect("register");
            let rep = plan_and_run(
                &solo,
                &c,
                &BTreeMap::new(),
                &PlannerConfig::muxtune(HybridParallelism::pipeline(4), 4),
            )
            .expect("solo run");
            seq_time += rep.metrics.makespan;
            seq_tokens += rep.metrics.total_tokens;
        }
        let seq_tp = seq_tokens as f64 / seq_time;
        assert!(
            muxed.metrics.throughput > seq_tp * 1.1,
            "muxed {} vs sequential {}",
            muxed.metrics.throughput,
            seq_tp
        );
    }

    #[test]
    fn disabling_orchestration_costs_throughput() {
        let r = registry(4, 128);
        let c = cluster(4);
        let base = PlannerConfig::muxtune(
            HybridParallelism {
                tp: 4,
                pp: 1,
                dp: 1,
            },
            4,
        );
        let full = plan_and_run(&r, &c, &BTreeMap::new(), &base).expect("full");
        let mut no_oo = base.clone();
        no_oo.options.overlap_comm = false;
        no_oo.options.orchestrate = false;
        let ablated = plan_and_run(&r, &c, &BTreeMap::new(), &no_oo).expect("ablated");
        assert!(
            full.metrics.throughput >= ablated.metrics.throughput,
            "orchestration must not hurt: {} vs {}",
            full.metrics.throughput,
            ablated.metrics.throughput
        );
    }

    #[test]
    fn chunked_alignment_raises_effective_throughput_on_mixed_lengths() {
        // Two SST2-ish tasks + two RTE-ish tasks: ZeroPad wastes compute.
        let mut r = TaskRegistry::new(ModelConfig::llama2_7b().with_layers(16));
        r.register_task(PeftTask::lora(1, 16, 4, 64)).expect("t1");
        r.register_task(PeftTask::lora(2, 16, 4, 64)).expect("t2");
        r.register_task(PeftTask::lora(3, 16, 4, 256)).expect("t3");
        r.register_task(PeftTask::lora(4, 16, 4, 256)).expect("t4");
        let mut corp = BTreeMap::new();
        for t in r.tasks() {
            let kind = if t.seq_len == 64 {
                DatasetKind::Sst2
            } else {
                DatasetKind::Rte
            };
            corp.insert(t.id, Corpus::generate(kind, 64, t.id as u64).lengths);
        }
        let c = cluster(4);
        let mut cfg = PlannerConfig::muxtune(HybridParallelism::pipeline(4), 4);
        cfg.fusion = FusionPolicy::AllSpatial; // force inter-task alignment
        let chunked = plan_and_run(&r, &c, &corp, &cfg).expect("chunked");
        cfg.align = AlignStrategy::ZeroPadGlobalMax;
        let zeropad = plan_and_run(&r, &c, &corp, &cfg).expect("zeropad");
        assert!(
            chunked.metrics.effective_throughput > zeropad.metrics.effective_throughput,
            "chunked {} vs zeropad {}",
            chunked.metrics.effective_throughput,
            zeropad.metrics.effective_throughput
        );
    }

    #[test]
    fn oom_is_reported_not_panicked() {
        // Absurdly fat tasks on a small pipeline with forced AllSpatial:
        // the engine's ledger must surface OOM.
        let mut r = TaskRegistry::new(ModelConfig::llama2_7b());
        for i in 0..12 {
            r.register_task(PeftTask::lora(i + 1, 16, 64, 256))
                .expect("register");
        }
        let c = cluster(2);
        let mut cfg = PlannerConfig::muxtune(HybridParallelism::pipeline(2), 8);
        cfg.fusion = FusionPolicy::AllSpatial;
        cfg.options.max_in_flight = 8;
        let res = plan_and_run(&r, &c, &BTreeMap::new(), &cfg);
        assert!(res.is_err(), "expected OOM");
    }

    #[test]
    fn degraded_plan_shrinks_to_survivors() {
        // A fitting plan is preserved verbatim.
        let p = HybridParallelism::pipeline(2);
        assert_eq!(degraded_plan(p, 4), Some(p));
        assert_eq!(degraded_plan(p, 2), Some(p));
        // An oversized plan collapses to a pipeline over the survivors.
        let big = HybridParallelism::pipeline(4);
        assert_eq!(degraded_plan(big, 3), Some(HybridParallelism::pipeline(3)));
        assert_eq!(degraded_plan(big, 1), Some(HybridParallelism::single()));
        // No survivors: the caller must shed.
        assert_eq!(degraded_plan(big, 0), None);
    }

    #[test]
    fn degraded_plan_still_runs_on_the_shrunk_cluster() {
        let mut r = TaskRegistry::new(ModelConfig::llama2_7b().with_layers(8));
        for i in 0..2 {
            r.register_task(PeftTask::lora(i + 1, 8, 4, 128))
                .expect("register");
        }
        // Lost one of 4 GPUs: replan onto 3 and run end-to-end.
        let plan = degraded_plan(HybridParallelism::pipeline(4), 3).expect("survivors");
        let c = cluster(3);
        let rep = plan_and_run(&r, &c, &BTreeMap::new(), &PlannerConfig::muxtune(plan, 4))
            .expect("degraded run succeeds");
        assert!(rep.metrics.effective_throughput > 0.0);
    }
}
