//! Horizontal adapter fusion (§3.4.3).
//!
//! Small PEFT-native operators cannot be batched across tasks (independent
//! weights), but they can be *horizontally fused* into one grouped kernel
//! whose thread blocks are assigned per task in proportion to FLOPs. Three
//! cases govern fusibility:
//!
//! 1. adapters of spatially batched tasks **within one hTask** fuse;
//! 2. adapters of **single-task hTasks in the same bucket** fuse, provided
//!    the fusion does not force a synchronization ahead of another task's
//!    pending collective (Fig 11: LoRA branches fuse, `Add` ops feeding
//!    all-reduces do not);
//! 3. **no fusion across buckets** (they never share a pipeline clock).

use mux_gpu_sim::spec::GpuSpec;

/// Where an adapter subgraph sits, for the fusion decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdapterSite {
    /// Bucket the owning hTask belongs to.
    pub bucket: usize,
    /// hTask index within the bucket.
    pub htask: usize,
    /// Whether the owning hTask contains exactly one task.
    pub single_task_htask: bool,
    /// Subgraph priority (topological depth) — fusible branches must sit at
    /// the same depth to fuse without reordering.
    pub priority: usize,
    /// Whether the branch's aggregate feeds a pending collective whose
    /// other inputs are not yet ready (the Fig 11 `Add`-before-AllReduce
    /// case): fusing would inject a global sync ahead of that collective.
    pub feeds_pending_collective: bool,
}

/// Case-2 fusibility of two adapter branches from *different* hTasks.
pub fn fusible_across_htasks(a: AdapterSite, b: AdapterSite) -> bool {
    // Case 3: never across buckets.
    if a.bucket != b.bucket {
        return false;
    }
    // Same hTask is case 1, handled by spatial batching itself.
    if a.htask == b.htask {
        return false;
    }
    // Case 2 preconditions.
    a.single_task_htask
        && b.single_task_htask
        && a.priority == b.priority
        && !a.feeds_pending_collective
        && !b.feeds_pending_collective
}

/// Grouped-kernel latency of horizontally fused adapter branches, given
/// each branch's standalone `(latency, utilization)` (the Eq. 3 estimate):
/// thread blocks are split in proportion to work, so the fused kernel runs
/// in `max(Σ u_i · t_i, max_i t_i)` — the weighted sum when the GPU has
/// spare capacity, floored by the largest member.
pub fn fused_latency(branches: &[(f64, f64)]) -> f64 {
    if branches.is_empty() {
        return 0.0;
    }
    let weighted: f64 = branches.iter().map(|(t, u)| t * u).sum();
    let largest = branches.iter().map(|(t, _)| *t).fold(0.0, f64::max);
    weighted.max(largest)
}

/// Latency and utilization of one adapter branch, summing its nodes'
/// standalone costs on `gpu` (helper shared by cost model and engine).
pub fn branch_cost(
    gpu: &GpuSpec,
    ops: impl Iterator<Item = mux_gpu_sim::spec::Work>,
) -> (f64, f64) {
    let mut t = 0.0;
    let mut u: f64 = 0.0;
    for w in ops {
        t += gpu.compute_time(w, 1.0);
        u = u.max(gpu.op_utilization(w));
    }
    (t, u)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn site(bucket: usize, htask: usize) -> AdapterSite {
        AdapterSite {
            bucket,
            htask,
            single_task_htask: true,
            priority: 3,
            feeds_pending_collective: false,
        }
    }

    #[test]
    fn same_bucket_single_task_htasks_fuse() {
        assert!(fusible_across_htasks(site(0, 0), site(0, 1)));
    }

    #[test]
    fn cross_bucket_never_fuses() {
        assert!(!fusible_across_htasks(site(0, 0), site(1, 0)));
    }

    #[test]
    fn multi_task_htasks_do_not_fuse_across() {
        let mut a = site(0, 0);
        a.single_task_htask = false;
        assert!(!fusible_across_htasks(a, site(0, 1)));
    }

    #[test]
    fn pending_collective_blocks_fusion() {
        // Fig 11: the Add ops cannot fuse because that would globally
        // synchronize ahead of each task's AllReduce.
        let mut a = site(0, 0);
        a.feeds_pending_collective = true;
        assert!(!fusible_across_htasks(a, site(0, 1)));
        assert!(!fusible_across_htasks(site(0, 1), a));
    }

    #[test]
    fn priority_mismatch_blocks_fusion() {
        let mut a = site(0, 0);
        a.priority = 7;
        assert!(!fusible_across_htasks(a, site(0, 1)));
    }

    #[test]
    fn fused_latency_beats_serial_for_underutilized_branches() {
        // Two identical branches at 10% utilization: fused ~ max(0.2t, t)
        // = t, i.e. 2x better than serial 2t.
        let branches = [(1.0e-3, 0.1), (1.0e-3, 0.1)];
        let fused = fused_latency(&branches);
        assert!(fused <= 1.0e-3 + 1e-12);
        assert!(fused < 2.0e-3 / 1.8);
    }

    #[test]
    fn fused_latency_respects_saturation() {
        // Highly-utilized branches gain nothing: weighted sum dominates.
        let branches = [(1.0e-3, 0.95), (1.0e-3, 0.95)];
        let fused = fused_latency(&branches);
        assert!(fused > 1.8e-3, "saturated branches serialize: {fused}");
    }

    #[test]
    fn empty_fusion_is_free() {
        assert_eq!(fused_latency(&[]), 0.0);
    }
}
