//! The PEFT engine: executes a planned multi-task run on the simulator.
//!
//! Precomputes, per (bucket, stage), the Algorithm-1 launch order over the
//! member hTasks' segmented subgraphs — with horizontal adapter fusion
//! applied — and then drives the structured pipeline template through
//! `mux_parallel::simulate_pipeline`, with collectives overlapped on the
//! communication stream (or launched blocking, for baseline/ablation
//! modes) and activation memory tracked against device capacity.

use mux_gpu_sim::metrics::{device_metrics, mean_utilization};
use mux_gpu_sim::spec::CommCtaPolicy;
use mux_gpu_sim::timeline::{Cluster, CollectiveKind, OomError, OpHandle, OpRecord, Timeline};
use mux_model::memory::activation_bytes;
use mux_model::mfu::{train_flops_per_token, TrainMode};
use mux_model::ops::Pass;
use mux_parallel::plan::{stage_layers, HybridParallelism};
use mux_parallel::pp::{simulate_pipeline, Phase, PipelineExec};
use mux_peft::registry::TaskRegistry;

use crate::adapter_fusion::{fused_latency, fusible_across_htasks, AdapterSite};
use crate::htask::HTask;
use crate::schedule::schedule_subgraphs;
use crate::subgraph::segment;
use crate::template::{build_template, BucketOrder, PipelineTemplate};

/// Engine behaviour toggles (the Fig 16 ablation knobs).
#[derive(Debug, Clone, Copy)]
pub struct EngineOptions {
    /// Overlap collectives on the comm stream (operator orchestration
    /// "OO"); false = blocking sequential launch.
    pub overlap_comm: bool,
    /// Interleave subgraphs across hTasks per Algorithm 1; false = run
    /// each hTask's DAG back-to-back.
    pub orchestrate: bool,
    /// Horizontally fuse adapter branches (§3.4.3).
    pub fuse_adapters: bool,
    /// Without SHARP, give comm kernels a generous CTA budget (high
    /// bandwidth, high contention) instead of a small one.
    pub generous_ctas: bool,
    /// Memory cap on in-flight micro-batches per stage (template rule 3).
    pub max_in_flight: usize,
    /// Bucket stream order (Appendix A ablation).
    pub bucket_order: BucketOrder,
}

impl Default for EngineOptions {
    fn default() -> Self {
        Self {
            overlap_comm: true,
            orchestrate: true,
            fuse_adapters: true,
            generous_ctas: false,
            max_in_flight: 0, // 0 = derive S from the plan
            bucket_order: BucketOrder::Descending,
        }
    }
}

/// Aggregate results of one simulated training round-trip.
#[derive(Debug, Clone)]
pub struct RunMetrics {
    /// End-to-end latency of the pipeline run, seconds.
    pub makespan: f64,
    /// Tokens processed, padding included.
    pub total_tokens: u64,
    /// Semantic tokens processed.
    pub effective_tokens: u64,
    /// Processed tokens per second.
    pub throughput: f64,
    /// Effective (semantic) tokens per second — Fig 20's `-E` metric.
    pub effective_throughput: f64,
    /// Mean achieved GPU utilization across devices.
    pub mean_utilization: f64,
    /// Peak memory per device, bytes.
    pub peak_mem: Vec<u64>,
    /// Model FLOPs utilization over all devices.
    pub mfu: f64,
    /// Total energy drawn across devices, joules (§6 extension).
    pub energy_joules: f64,
    /// Effective tokens per joule — the energy-efficiency headline.
    pub tokens_per_joule: f64,
}

/// One precomputed launch item of a (bucket, stage) cell.
#[derive(Debug, Clone)]
struct Item {
    /// Item indices this one waits on (within the cell).
    deps: Vec<usize>,
    /// Forward (duration, utilization, flops).
    fwd: (f64, f64, f64),
    /// Backward (duration, utilization, flops).
    bwd: (f64, f64, f64),
    /// Trailing collective payload bytes (0 = none).
    comm_payload: f64,
    /// Label for traces.
    label: String,
}

/// A fully planned, executable multi-task run.
pub struct MuxEngine<'a> {
    cluster: &'a Cluster,
    plan: HybridParallelism,
    /// Buckets of hTasks (resolved).
    buckets: Vec<Vec<HTask>>,
    template: PipelineTemplate,
    /// `items[bucket][stage]` — launch items per pipeline cell.
    items: Vec<Vec<Vec<Item>>>,
    /// Per-bucket activation bytes per stage per in-flight micro-batch.
    act_bytes: Vec<Vec<u64>>,
    /// Per-bucket per-micro-batch p2p payload bytes.
    p2p_bytes: Vec<f64>,
    /// Token accounting per pipeline round of each bucket.
    tokens_per_round: Vec<(u64, u64)>,
    options: EngineOptions,
    comm_policy: CommCtaPolicy,
    train_flops_per_eff_token: f64,
}

impl<'a> MuxEngine<'a> {
    /// Plans an engine run: `buckets` contain the fused hTasks grouped by
    /// Eq. 7 (outer order = descending load).
    pub fn new(
        registry: &TaskRegistry,
        cluster: &'a Cluster,
        plan: HybridParallelism,
        buckets: Vec<Vec<HTask>>,
        options: EngineOptions,
    ) -> Self {
        assert_eq!(
            plan.num_gpus(),
            cluster.num_gpus(),
            "plan does not match cluster size"
        );
        let _build_span = mux_obs::span("engine.build");
        let cfg = registry.backbone();
        let ranges = stage_layers(cfg.num_layers, plan.pp);
        let gpu = &cluster.gpus[0];
        let link = &cluster.intra_link;
        let comm_policy = if options.overlap_comm {
            CommCtaPolicy::for_link(link, options.generous_ctas)
        } else {
            CommCtaPolicy::sequential()
        };

        let mut items = Vec::with_capacity(buckets.len());
        let mut act_bytes = Vec::with_capacity(buckets.len());
        let mut p2p = Vec::with_capacity(buckets.len());
        let mut tokens = Vec::with_capacity(buckets.len());
        for bucket in &buckets {
            let mut per_stage = Vec::with_capacity(ranges.len());
            for &(a, b) in &ranges {
                // Build + segment each member hTask's stage graph.
                let graphs: Vec<_> = bucket
                    .iter()
                    .map(|h| registry.build_multitask_stage_graph(a, b, plan.tp, &h.tasks))
                    .collect();
                let dags: Vec<_> = {
                    let _s = mux_obs::span("engine.segment");
                    graphs.iter().map(segment).collect()
                };
                // Per-subgraph costs.
                let sg_cost = |gi: usize, sg: &crate::subgraph::Subgraph, pass: Pass| {
                    let h = &bucket[gi];
                    let mut dur = 0.0;
                    let mut util: f64 = 0.0;
                    let mut flops = 0.0;
                    for &n in &sg.nodes {
                        let node = graphs[gi].node(n);
                        if node.template.kind.is_comm() {
                            continue;
                        }
                        let member = if node.tag == 0 {
                            None
                        } else {
                            Some(
                                h.tasks
                                    .iter()
                                    .position(|&t| t == node.tag)
                                    .expect("adapter tag is a member"),
                            )
                        };
                        let (t, u, f) = crate::cost::htask_op_time(
                            gpu,
                            node.template.kind,
                            &node.template.cost,
                            h,
                            member,
                            pass,
                        );
                        dur += t;
                        util = util.max(u);
                        flops += f;
                    }
                    (dur, util, flops)
                };
                let comm_payload = |gi: usize, sg: &crate::subgraph::Subgraph| -> f64 {
                    sg.nodes
                        .iter()
                        .map(|&n| {
                            let node = graphs[gi].node(n);
                            if node.template.kind.is_comm() {
                                node.template.cost.comm_bytes(bucket[gi].shape())
                            } else {
                                0.0
                            }
                        })
                        .sum()
                };
                // Launch order.
                let order = if options.orchestrate {
                    let _s = mux_obs::span("engine.schedule");
                    schedule_subgraphs(&dags, &|gi, sg| sg_cost(gi, sg, Pass::Forward).0)
                } else {
                    dags.iter()
                        .enumerate()
                        .flat_map(|(gi, d)| {
                            d.iter().map(move |sg| crate::schedule::LaunchItem {
                                dag: gi,
                                subgraph: sg.id,
                            })
                        })
                        .collect()
                };
                // Convert to items, applying case-2 adapter fusion over
                // adjacent ready adapter branches.
                let mut cell_items: Vec<Item> = Vec::new();
                let mut item_of = vec![vec![usize::MAX; 0]; dags.len()];
                for (gi, d) in dags.iter().enumerate() {
                    item_of[gi] = vec![usize::MAX; d.len()];
                }
                let mut i = 0;
                while i < order.len() {
                    let li = order[i];
                    let sg = &dags[li.dag][li.subgraph];
                    // Horizontal adapter fusion (§3.4.3). Case 1: adapter
                    // branches of *different member tasks within one hTask*
                    // at the same attach point (same priority) fuse into a
                    // grouped kernel. Case 2: adapters of single-task
                    // hTasks in the same bucket fuse across DAGs. Case 3
                    // (across buckets) never shares a cell by construction.
                    let mut group = vec![li];
                    if options.fuse_adapters && sg.is_adapter {
                        let site = |l: &crate::schedule::LaunchItem| AdapterSite {
                            bucket: 0,
                            htask: l.dag,
                            single_task_htask: bucket[l.dag].tasks.len() == 1,
                            priority: dags[l.dag][l.subgraph].priority,
                            feeds_pending_collective: false,
                        };
                        while i + group.len() < order.len() {
                            let nxt = order[i + group.len()];
                            let nsg = &dags[nxt.dag][nxt.subgraph];
                            let case1 = nxt.dag == li.dag
                                && nsg.is_adapter
                                && nsg.task != sg.task
                                && nsg.priority == sg.priority;
                            let case2 = nxt.dag != li.dag
                                && nsg.is_adapter
                                && fusible_across_htasks(site(&li), site(&nxt));
                            if case1 || case2 {
                                group.push(nxt);
                            } else {
                                break;
                            }
                        }
                    }
                    let idx = cell_items.len();
                    let mut deps = Vec::new();
                    let mut payload = 0.0;
                    let mut fwd_branches = Vec::new();
                    let mut bwd_branches = Vec::new();
                    let mut flops = (0.0, 0.0);
                    let mut label = String::new();
                    for l in &group {
                        let s = &dags[l.dag][l.subgraph];
                        for &dsg in &s.deps {
                            let di = item_of[l.dag][dsg];
                            debug_assert_ne!(di, usize::MAX, "dep not yet issued");
                            if !deps.contains(&di) {
                                deps.push(di);
                            }
                        }
                        let f = sg_cost(l.dag, s, Pass::Forward);
                        let bw = sg_cost(l.dag, s, Pass::BackwardInputOnly);
                        fwd_branches.push((f.0, f.1));
                        bwd_branches.push((bw.0, bw.1));
                        flops.0 += f.2;
                        flops.1 += bw.2;
                        payload += comm_payload(l.dag, s);
                        item_of[l.dag][l.subgraph] = idx;
                        if !label.is_empty() {
                            label.push('+');
                        }
                        label.push_str(&format!("h{}sg{}", l.dag, l.subgraph));
                    }
                    let (fd, fu) = if group.len() > 1 {
                        let d = fused_latency(&fwd_branches);
                        (
                            d,
                            fwd_branches.iter().map(|(t, u)| t * u).sum::<f64>() / d.max(1e-12),
                        )
                    } else {
                        fwd_branches[0]
                    };
                    let (bd, bu) = if group.len() > 1 {
                        let d = fused_latency(&bwd_branches);
                        (
                            d,
                            bwd_branches.iter().map(|(t, u)| t * u).sum::<f64>() / d.max(1e-12),
                        )
                    } else {
                        bwd_branches[0]
                    };
                    cell_items.push(Item {
                        deps,
                        fwd: (fd, fu.min(1.0), flops.0),
                        bwd: (bd, bu.min(1.0), flops.1),
                        comm_payload: payload,
                        label,
                    });
                    i += group.len();
                }
                per_stage.push(cell_items);
            }
            items.push(per_stage);

            // Memory + token accounting.
            let stage_act: Vec<u64> = ranges
                .iter()
                .map(|&(a, b)| {
                    bucket
                        .iter()
                        .map(|h| activation_bytes(cfg, b - a, h.total_tokens()))
                        .sum()
                })
                .collect();
            act_bytes.push(stage_act);
            let tok_per_mb: u64 = bucket.iter().map(|h| h.total_tokens() as u64).sum();
            p2p.push(tok_per_mb as f64 * cfg.hidden as f64 * cfg.dtype_bytes as f64);
            let eff: u64 = bucket
                .iter()
                .map(|h| (h.total_tokens() as f64 * h.effective_fraction) as u64)
                .sum();
            tokens.push((tok_per_mb, eff));
        }

        let rounds: Vec<usize> = buckets
            .iter()
            .map(|b| b.iter().map(|h| h.micro_batches).max().unwrap_or(1))
            .collect();
        let max_in_flight = if options.max_in_flight == 0 {
            plan.pp
        } else {
            options.max_in_flight
        };
        let template = build_template(plan.pp, &rounds, max_in_flight, options.bucket_order);
        // Mean unit length for model-FLOPs accounting.
        let unit = buckets
            .iter()
            .flatten()
            .map(|h| h.unit_len)
            .max()
            .unwrap_or(128);
        Self {
            cluster,
            plan,
            buckets,
            template,
            items,
            act_bytes,
            p2p_bytes: p2p,
            tokens_per_round: tokens,
            options,
            comm_policy,
            train_flops_per_eff_token: train_flops_per_token(cfg, unit, TrainMode::Peft),
        }
    }

    /// The generated template (inspectable for tests/ablation).
    pub fn template(&self) -> &PipelineTemplate {
        &self.template
    }

    /// The bucketed hTasks this engine executes.
    pub fn buckets(&self) -> &[Vec<HTask>] {
        &self.buckets
    }

    /// Runs the engine; returns metrics or the OOM that aborted it.
    pub fn run(&self) -> Result<RunMetrics, OomError> {
        self.run_inner(false).map(|(m, _)| m)
    }

    /// Runs and also returns the full operator trace (Fig 18 style).
    pub fn run_traced(&self) -> Result<(RunMetrics, Vec<OpRecord>), OomError> {
        self.run_inner(true)
            .map(|(m, t)| (m, t.expect("trace requested")))
    }

    fn run_inner(&self, trace: bool) -> Result<(RunMetrics, Option<Vec<OpRecord>>), OomError> {
        let _sim_span = mux_obs::span("engine.simulate");
        let mut tl = Timeline::new(self.cluster);
        // Static memory (backbone shard + task state) is vetted by the
        // Eq. 5 cost model at planning time; the ledger enforces the
        // dynamic activation part during execution.
        let mut exec = EngineExec {
            eng: self,
            oom: None,
        };
        let makespan = simulate_pipeline(&mut tl, &self.template.program, &mut exec, self.plan.pp);
        if let Some(oom) = exec.oom {
            return Err(oom);
        }
        let mut total = 0u64;
        let mut eff = 0u64;
        for (b, &(t, e)) in self.tokens_per_round.iter().enumerate() {
            let rounds = self.template.mb_bucket.iter().filter(|&&x| x == b).count() as u64;
            total += t * rounds;
            eff += e * rounds;
        }
        let peak: Vec<u64> = (0..self.cluster.num_gpus())
            .map(|d| tl.peak_mem(d))
            .collect();
        let peak_flops: f64 = self.cluster.gpus.iter().map(|g| g.peak_flops).sum();
        let dm = device_metrics(&tl, makespan);
        let energy: f64 = dm
            .iter()
            .map(|d| {
                self.cluster.gpus[d.device].energy_joules(
                    makespan,
                    d.busy_fraction.min(1.0),
                    d.avg_utilization.min(1.0),
                )
            })
            .sum();
        let metrics = RunMetrics {
            makespan,
            total_tokens: total,
            effective_tokens: eff,
            throughput: total as f64 / makespan,
            effective_throughput: eff as f64 / makespan,
            mean_utilization: mean_utilization(&tl, makespan),
            peak_mem: peak,
            mfu: self.train_flops_per_eff_token * eff as f64 / (makespan * peak_flops),
            energy_joules: energy,
            tokens_per_joule: if energy > 0.0 {
                eff as f64 / energy
            } else {
                0.0
            },
        };
        let records = trace.then(|| tl.ops().to_vec());
        Ok((metrics, records))
    }
}

struct EngineExec<'e, 'c> {
    eng: &'e MuxEngine<'c>,
    oom: Option<OomError>,
}

impl PipelineExec for EngineExec<'_, '_> {
    fn stage_devices(&self, stage: usize) -> Vec<usize> {
        self.eng.plan.stage_devices(0, stage)
    }

    fn exec(
        &mut self,
        tl: &mut Timeline<'_>,
        stage: usize,
        mb: usize,
        phase: Phase,
        deps: &[OpHandle],
    ) -> OpHandle {
        let bucket = self.eng.template.mb_bucket[mb];
        let devices = self.stage_devices(stage);
        // Activation memory: allocate on forward, release on backward.
        if self.oom.is_none() {
            let bytes = self.eng.act_bytes[bucket][stage];
            match phase {
                Phase::Forward => {
                    for &d in &devices {
                        if let Err(e) = tl.alloc(d, bytes / devices.len() as u64) {
                            self.oom = Some(e);
                        }
                    }
                }
                Phase::Backward => {
                    for &d in &devices {
                        tl.free(d, bytes / devices.len() as u64);
                    }
                }
                Phase::Weight => {}
            }
        }
        let items = &self.eng.items[bucket][stage];
        let mut handles: Vec<Vec<OpHandle>> = Vec::with_capacity(items.len());
        for item in items {
            let (dur, util, flops) = match phase {
                Phase::Forward => item.fwd,
                Phase::Backward | Phase::Weight => item.bwd,
            };
            let mut item_deps: Vec<OpHandle> = deps.to_vec();
            for &d in &item.deps {
                item_deps.extend(handles[d].iter().copied());
            }
            let mut hs: Vec<OpHandle> = devices
                .iter()
                .map(|&dev| {
                    tl.compute_fixed(
                        dev,
                        dur,
                        util,
                        flops,
                        &item_deps,
                        format!("b{bucket} s{stage} mb{mb} {:?} {}", phase, item.label),
                    )
                })
                .collect();
            if item.comm_payload > 0.0 && devices.len() > 1 {
                let c = tl.collective(
                    &devices,
                    CollectiveKind::AllReduce,
                    item.comm_payload,
                    &hs,
                    self.eng.comm_policy,
                    !self.eng.options.overlap_comm,
                    format!("b{bucket} s{stage} mb{mb} {:?} ar", phase),
                );
                hs.push(c);
            }
            handles.push(hs);
        }
        let all: Vec<OpHandle> = handles.into_iter().flatten().collect();
        tl.join(&all, format!("cell b{bucket} s{stage} mb{mb} {phase:?}"))
    }

    fn p2p_bytes(&self, mb: usize) -> f64 {
        self.eng.p2p_bytes[self.eng.template.mb_bucket[mb]]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mux_gpu_sim::spec::{GpuSpec, LinkSpec};
    use mux_model::config::ModelConfig;
    use mux_peft::types::PeftTask;

    fn setup(n: usize) -> (TaskRegistry, Cluster) {
        let mut reg = TaskRegistry::new(ModelConfig::llama2_7b().with_layers(8));
        for i in 0..n as u32 {
            reg.register_task(PeftTask::lora(i + 1, 16, 4, 128))
                .expect("register");
        }
        (
            reg,
            Cluster::single_node(GpuSpec::a40(), 4, LinkSpec::nvlink_a40()),
        )
    }

    fn single_buckets(reg: &TaskRegistry, mbs: usize) -> Vec<Vec<HTask>> {
        reg.tasks()
            .map(|t| vec![HTask::from_padded(&[t], mbs)])
            .collect()
    }

    #[test]
    fn engine_runs_and_accounts_tokens_exactly() {
        let (reg, cluster) = setup(2);
        let buckets = single_buckets(&reg, 4);
        let eng = MuxEngine::new(
            &reg,
            &cluster,
            HybridParallelism::pipeline(4),
            buckets,
            EngineOptions::default(),
        );
        let m = eng.run().expect("fits");
        // 2 tasks x 4 rounds x (4 seqs x 128 tokens) each.
        assert_eq!(m.total_tokens, 2 * 4 * 4 * 128);
        assert_eq!(
            m.effective_tokens, m.total_tokens,
            "uniform caps, padded planning"
        );
        assert!(m.energy_joules > 0.0);
    }

    #[test]
    fn traced_run_reports_every_cell() {
        let (reg, cluster) = setup(2);
        let buckets = single_buckets(&reg, 2);
        let eng = MuxEngine::new(
            &reg,
            &cluster,
            HybridParallelism::pipeline(4),
            buckets,
            EngineOptions::default(),
        );
        let (m, trace) = eng.run_traced().expect("fits");
        assert!(m.makespan > 0.0);
        // 2 buckets x 2 rounds x 4 stages x 2 passes cells, each with >= 1 op.
        assert!(trace.len() >= 2 * 2 * 4 * 2);
    }

    #[test]
    fn adapter_fusion_reduces_cell_items() {
        let mut reg = TaskRegistry::new(ModelConfig::llama2_7b().with_layers(8));
        reg.register_task(PeftTask::lora(1, 16, 4, 128))
            .expect("t1");
        reg.register_task(PeftTask::lora(2, 16, 4, 128))
            .expect("t2");
        let cluster = Cluster::single_node(GpuSpec::a40(), 4, LinkSpec::nvlink_a40());
        let h = HTask::from_padded(&reg.tasks().collect::<Vec<_>>(), 2);
        let mk = |fuse: bool| {
            let opts = EngineOptions {
                fuse_adapters: fuse,
                ..EngineOptions::default()
            };
            MuxEngine::new(
                &reg,
                &cluster,
                HybridParallelism::pipeline(4),
                vec![vec![h.clone()]],
                opts,
            )
        };
        let fused = mk(true);
        let unfused = mk(false);
        let items = |e: &MuxEngine<'_>| e.items[0].iter().map(Vec::len).sum::<usize>();
        assert!(
            items(&fused) < items(&unfused),
            "fusion must merge adapter branches"
        );
        // And fusing must not be slower.
        let tf = fused.run().expect("fits").makespan;
        let tu = unfused.run().expect("fits").makespan;
        assert!(tf <= tu * 1.001, "fused {tf} vs unfused {tu}");
    }

    #[test]
    fn template_matches_bucket_rounds() {
        let (reg, cluster) = setup(3);
        let buckets = single_buckets(&reg, 5);
        let eng = MuxEngine::new(
            &reg,
            &cluster,
            HybridParallelism::pipeline(4),
            buckets,
            EngineOptions::default(),
        );
        assert_eq!(eng.template().mb_bucket.len(), 3 * 5);
        assert_eq!(eng.buckets().len(), 3);
    }

    #[test]
    fn eq5_memory_model_tracks_engine_peak_scaling() {
        // §5.3: the Eq. 5 model "precisely matches the scaling of the
        // measured memory footprint" — double the tokens, and both the
        // model's activation term and the engine's measured peak-activation
        // delta double.
        let (reg, cluster) = setup(1);
        let cm = crate::cost::CostModel::new(&reg, GpuSpec::a40(), HybridParallelism::pipeline(4));
        let peak_act = |mb: usize| -> (u64, u64) {
            let t = reg.tasks().next().expect("task").clone();
            let mut r2 = TaskRegistry::new(reg.backbone().clone());
            r2.register_task(PeftTask {
                micro_batch: mb,
                ..t
            })
            .expect("register");
            let h = HTask::from_padded(&r2.tasks().collect::<Vec<_>>(), 2);
            let model = cm.stage_memory(0, std::slice::from_ref(&h), 2);
            let opts = EngineOptions {
                max_in_flight: 2,
                ..EngineOptions::default()
            };
            let eng = MuxEngine::new(
                &r2,
                &cluster,
                HybridParallelism::pipeline(4),
                vec![vec![h]],
                opts,
            );
            let m = eng.run().expect("fits");
            (model, m.peak_mem.iter().copied().max().unwrap_or(0))
        };
        let (m1, e1) = peak_act(4);
        let (m2, e2) = peak_act(8);
        // The token-dependent part doubles in both.
        let dm = m2 as f64 - m1 as f64;
        let de = e2 as f64 - e1 as f64;
        assert!(dm > 0.0 && de > 0.0);
        let ratio = dm / de;
        assert!(
            ratio > 0.5 && ratio < 2.0,
            "model/engine activation delta ratio {ratio}"
        );
    }

    #[test]
    fn oom_reports_the_offending_device() {
        let mut reg = TaskRegistry::new(ModelConfig::llama2_7b());
        reg.register_task(PeftTask::lora(1, 16, 256, 256))
            .expect("fat task");
        let cluster = Cluster::single_node(GpuSpec::a40(), 2, LinkSpec::nvlink_a40());
        let h = HTask::from_padded(&reg.tasks().collect::<Vec<_>>(), 8);
        let opts = EngineOptions {
            max_in_flight: 8,
            ..EngineOptions::default()
        };
        let eng = MuxEngine::new(
            &reg,
            &cluster,
            HybridParallelism::pipeline(2),
            vec![vec![h]],
            opts,
        );
        let err = eng.run().expect_err("must OOM");
        assert!(err.device < 2);
        assert!(err.requested > 0);
    }
}
