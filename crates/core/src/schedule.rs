//! Priority-based multi-DAG subgraph scheduling — the paper's Algorithm 1.
//!
//! Given the segmented subgraph DAGs of the hTasks interleaved within one
//! bucket, produce a single launch order: repeatedly take, among the
//! zero-in-degree subgraphs of all DAGs, those with the highest priority
//! (smallest topological depth) and launch the one with the longest
//! cumulative latency — maximizing what in-flight communication can hide
//! under.
//!
//! Selection runs on a [`BinaryHeap`] keyed by a precomputed
//! `(priority, latency, dag, id)` tuple: each subgraph's latency is
//! evaluated exactly once when it becomes ready, instead of twice per
//! comparison inside an O(ready²) scan. Non-finite latencies (a degenerate
//! cost model) order *after* every finite one via [`f64::total_cmp`] — the
//! schedule degrades instead of crashing — and are surfaced on the
//! `schedule.nonfinite_latency` warning counter in `mux-obs`.

use std::cmp::Ordering;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::subgraph::Subgraph;

/// One launch-schedule entry: `(dag index, subgraph id)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LaunchItem {
    /// Which hTask's DAG.
    pub dag: usize,
    /// Which subgraph within that DAG.
    pub subgraph: usize,
}

/// Precomputed selection key. The `Ord` instance realizes Algorithm 1's
/// line-8 rule as a *minimum*: priority ascending, then latency descending
/// (finite before non-finite), then `(dag, id)` for determinism.
#[derive(Debug, Clone, Copy)]
struct ReadyKey {
    priority: usize,
    latency: f64,
    dag: usize,
    subgraph: usize,
}

impl ReadyKey {
    fn cmp_key(&self, other: &Self) -> Ordering {
        self.priority
            .cmp(&other.priority)
            // Finite latencies outrank non-finite ones: a degenerate cost
            // model demotes its subgraphs instead of crashing the planner.
            .then_with(|| other.latency.is_finite().cmp(&self.latency.is_finite()))
            // Descending latency, matching the seed's partial_cmp on finite
            // values; total_cmp keeps NaN payloads deterministic.
            .then_with(|| other.latency.total_cmp(&self.latency))
            .then_with(|| self.dag.cmp(&other.dag))
            .then_with(|| self.subgraph.cmp(&other.subgraph))
    }
}

impl PartialEq for ReadyKey {
    fn eq(&self, other: &Self) -> bool {
        self.cmp_key(other) == Ordering::Equal
    }
}

impl Eq for ReadyKey {}

impl PartialOrd for ReadyKey {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for ReadyKey {
    fn cmp(&self, other: &Self) -> Ordering {
        self.cmp_key(other)
    }
}

/// Algorithm 1: multi-DAG Kahn with (priority, latency)-ordered selection.
///
/// `latency(dag, sg)` supplies each subgraph's cumulative operator latency;
/// it is invoked exactly once per subgraph, when the subgraph becomes ready.
pub fn schedule_subgraphs(
    dags: &[Vec<Subgraph>],
    latency: &dyn Fn(usize, &Subgraph) -> f64,
) -> Vec<LaunchItem> {
    let _span = mux_obs::span("schedule.subgraphs");
    if mux_obs::profile::profiling() {
        // Every subgraph is pushed onto and popped off the ready heap
        // exactly once (the assert below pins this), so the heap-op count
        // is closed-form and the hot loop stays counter-free.
        let total: u64 = dags.iter().map(|d| d.len() as u64).sum();
        mux_obs::profile::work("heap_ops", 2 * total);
        mux_obs::profile::work("subgraphs_scheduled", total);
    }
    let mut indeg: Vec<Vec<usize>> = dags
        .iter()
        .map(|d| d.iter().map(|s| s.deps.len()).collect())
        .collect();
    let mut succ: Vec<Vec<Vec<usize>>> = dags
        .iter()
        .map(|d| {
            let mut s = vec![Vec::new(); d.len()];
            for sg in d {
                for &dep in &sg.deps {
                    s[dep].push(sg.id);
                }
            }
            s
        })
        .collect();
    let mut nonfinite = 0u64;
    let mut push_ready = |heap: &mut BinaryHeap<Reverse<ReadyKey>>, dag: usize, sg: &Subgraph| {
        let lat = latency(dag, sg);
        if !lat.is_finite() {
            nonfinite += 1;
        }
        heap.push(Reverse(ReadyKey {
            priority: sg.priority,
            latency: lat,
            dag,
            subgraph: sg.id,
        }));
    };
    let mut ready: BinaryHeap<Reverse<ReadyKey>> = BinaryHeap::new();
    for (di, d) in dags.iter().enumerate() {
        for sg in d {
            if sg.deps.is_empty() {
                push_ready(&mut ready, di, sg);
            }
        }
    }
    let total: usize = dags.iter().map(|d| d.len()).sum();
    let mut out = Vec::with_capacity(total);
    while let Some(Reverse(key)) = ready.pop() {
        let item = LaunchItem {
            dag: key.dag,
            subgraph: key.subgraph,
        };
        out.push(item);
        for &nxt in &succ[item.dag][item.subgraph] {
            indeg[item.dag][nxt] -= 1;
            if indeg[item.dag][nxt] == 0 {
                push_ready(&mut ready, item.dag, &dags[item.dag][nxt]);
            }
        }
        succ[item.dag][item.subgraph].clear();
    }
    if nonfinite > 0 {
        mux_obs::incr_counter("schedule.nonfinite_latency", nonfinite);
    }
    assert_eq!(out.len(), total, "cycle detected in subgraph DAGs");
    out
}

/// The seed O(ready²) selection loop, retained verbatim as the differential
/// reference for the heap scheduler's equivalence proptest. Panics on
/// non-finite latencies (the seed behaviour) — reference/test use only.
pub fn schedule_subgraphs_reference(
    dags: &[Vec<Subgraph>],
    latency: &dyn Fn(usize, &Subgraph) -> f64,
) -> Vec<LaunchItem> {
    let mut indeg: Vec<Vec<usize>> = dags
        .iter()
        .map(|d| d.iter().map(|s| s.deps.len()).collect())
        .collect();
    let mut succ: Vec<Vec<Vec<usize>>> = dags
        .iter()
        .map(|d| {
            let mut s = vec![Vec::new(); d.len()];
            for sg in d {
                for &dep in &sg.deps {
                    s[dep].push(sg.id);
                }
            }
            s
        })
        .collect();
    let mut ready: Vec<LaunchItem> = Vec::new();
    for (di, d) in dags.iter().enumerate() {
        for sg in d {
            if sg.deps.is_empty() {
                ready.push(LaunchItem {
                    dag: di,
                    subgraph: sg.id,
                });
            }
        }
    }
    let total: usize = dags.iter().map(|d| d.len()).sum();
    let mut out = Vec::with_capacity(total);
    while !ready.is_empty() {
        let best = ready
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| {
                let sa = &dags[a.dag][a.subgraph];
                let sb = &dags[b.dag][b.subgraph];
                sa.priority
                    .cmp(&sb.priority)
                    .then(
                        latency(b.dag, sb)
                            .partial_cmp(&latency(a.dag, sa))
                            .expect("finite latency"),
                    )
                    .then(a.dag.cmp(&b.dag))
                    .then(a.subgraph.cmp(&b.subgraph))
            })
            .map(|(i, _)| i)
            .expect("non-empty ready set");
        let item = ready.swap_remove(best);
        out.push(item);
        for &nxt in &succ[item.dag][item.subgraph] {
            indeg[item.dag][nxt] -= 1;
            if indeg[item.dag][nxt] == 0 {
                ready.push(LaunchItem {
                    dag: item.dag,
                    subgraph: nxt,
                });
            }
        }
        succ[item.dag][item.subgraph].clear();
    }
    assert_eq!(out.len(), total, "cycle detected in subgraph DAGs");
    out
}

/// Whether `order` respects every DAG's dependencies (test/diagnostic).
pub fn is_valid_order(dags: &[Vec<Subgraph>], order: &[LaunchItem]) -> bool {
    let mut pos: Vec<Vec<Option<usize>>> = dags.iter().map(|d| vec![None; d.len()]).collect();
    for (i, item) in order.iter().enumerate() {
        pos[item.dag][item.subgraph] = Some(i);
    }
    for (di, d) in dags.iter().enumerate() {
        for sg in d {
            let Some(me) = pos[di][sg.id] else {
                return false;
            };
            for &dep in &sg.deps {
                match pos[di][dep] {
                    Some(p) if p < me => {}
                    _ => return false,
                }
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sg(id: usize, prio: usize, deps: Vec<usize>, comm: bool) -> Subgraph {
        Subgraph {
            id,
            nodes: vec![id],
            priority: prio,
            deps,
            is_adapter: false,
            task: 0,
            has_comm: comm,
        }
    }

    #[test]
    fn single_dag_schedules_in_topological_order() {
        let dag = vec![
            sg(0, 0, vec![], true),
            sg(1, 1, vec![0], true),
            sg(2, 2, vec![1], false),
        ];
        let order = schedule_subgraphs(std::slice::from_ref(&dag), &|_, _| 1.0);
        assert!(is_valid_order(&[dag], &order));
        assert_eq!(order.len(), 3);
        assert_eq!(order[0].subgraph, 0);
    }

    #[test]
    fn interleaves_dags_by_priority() {
        // Two identical chains: the schedule must alternate (both roots at
        // priority 0 are ready; after launching one, the other root still
        // outranks the first DAG's depth-1 subgraph).
        let mk = || vec![sg(0, 0, vec![], true), sg(1, 1, vec![0], true)];
        let order = schedule_subgraphs(&[mk(), mk()], &|_, _| 1.0);
        assert_eq!(
            order.iter().map(|i| i.dag).collect::<Vec<_>>(),
            vec![0, 1, 0, 1],
            "equal-priority subgraphs from different DAGs interleave"
        );
    }

    #[test]
    fn longest_latency_launches_first_within_a_priority() {
        let mk = || vec![sg(0, 0, vec![], true)];
        let order = schedule_subgraphs(&[mk(), mk(), mk()], &|dag, _| dag as f64);
        assert_eq!(
            order.iter().map(|i| i.dag).collect::<Vec<_>>(),
            vec![2, 1, 0]
        );
    }

    #[test]
    fn respects_dependencies_under_any_latency() {
        let dag_a = vec![
            sg(0, 0, vec![], true),
            sg(1, 1, vec![0], false),
            sg(2, 1, vec![0], false),
        ];
        let dag_b = vec![sg(0, 0, vec![], false)];
        let order =
            schedule_subgraphs(&[dag_a.clone(), dag_b.clone()], &|_, s| 100.0 - s.id as f64);
        assert!(is_valid_order(&[dag_a, dag_b], &order));
    }

    #[test]
    fn deterministic_output() {
        let mk = || {
            vec![
                sg(0, 0, vec![], true),
                sg(1, 1, vec![0], true),
                sg(2, 2, vec![1], false),
            ]
        };
        let a = schedule_subgraphs(&[mk(), mk()], &|_, _| 1.0);
        let b = schedule_subgraphs(&[mk(), mk()], &|_, _| 1.0);
        assert_eq!(a, b);
    }

    #[test]
    fn nonfinite_latency_degrades_and_counts_instead_of_panicking() {
        let _guard = mux_obs::enabled_scope();
        mux_obs::reset();
        // DAG 1's root costs NaN: it must still be scheduled (last among
        // its priority class), dependencies intact, with a warning counted.
        let dag_a = vec![sg(0, 0, vec![], true), sg(1, 1, vec![0], true)];
        let dag_b = vec![sg(0, 0, vec![], true), sg(1, 1, vec![0], true)];
        let order = schedule_subgraphs(&[dag_a.clone(), dag_b.clone()], &|dag, s| {
            if dag == 1 && s.id == 0 {
                f64::NAN
            } else {
                1.0
            }
        });
        assert!(is_valid_order(&[dag_a, dag_b], &order));
        assert_eq!(
            order[0],
            LaunchItem {
                dag: 0,
                subgraph: 0
            },
            "finite-latency root outranks the NaN one"
        );
        let snap = mux_obs::snapshot();
        assert_eq!(snap.counters.get("schedule.nonfinite_latency"), Some(&1));
    }
}
