//! Priority-based multi-DAG subgraph scheduling — the paper's Algorithm 1.
//!
//! Given the segmented subgraph DAGs of the hTasks interleaved within one
//! bucket, produce a single launch order: repeatedly take, among the
//! zero-in-degree subgraphs of all DAGs, those with the highest priority
//! (smallest topological depth) and launch the one with the longest
//! cumulative latency — maximizing what in-flight communication can hide
//! under.

use crate::subgraph::Subgraph;

/// One launch-schedule entry: `(dag index, subgraph id)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LaunchItem {
    /// Which hTask's DAG.
    pub dag: usize,
    /// Which subgraph within that DAG.
    pub subgraph: usize,
}

/// Algorithm 1: multi-DAG Kahn with (priority, latency)-ordered selection.
///
/// `latency(dag, sg)` supplies each subgraph's cumulative operator latency.
pub fn schedule_subgraphs(
    dags: &[Vec<Subgraph>],
    latency: &dyn Fn(usize, &Subgraph) -> f64,
) -> Vec<LaunchItem> {
    let mut indeg: Vec<Vec<usize>> = dags
        .iter()
        .map(|d| d.iter().map(|s| s.deps.len()).collect())
        .collect();
    let mut succ: Vec<Vec<Vec<usize>>> = dags
        .iter()
        .map(|d| {
            let mut s = vec![Vec::new(); d.len()];
            for sg in d {
                for &dep in &sg.deps {
                    s[dep].push(sg.id);
                }
            }
            s
        })
        .collect();
    // Ready set: (dag, sg) with in-degree 0, not yet launched.
    let mut ready: Vec<LaunchItem> = Vec::new();
    for (di, d) in dags.iter().enumerate() {
        for sg in d {
            if sg.deps.is_empty() {
                ready.push(LaunchItem {
                    dag: di,
                    subgraph: sg.id,
                });
            }
        }
    }
    let total: usize = dags.iter().map(|d| d.len()).sum();
    let mut out = Vec::with_capacity(total);
    while !ready.is_empty() {
        // Highest priority = minimal topological depth; break ties by the
        // longest cumulative latency (line 8 of Algorithm 1), then by
        // (dag, id) for determinism.
        let best = ready
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| {
                let sa = &dags[a.dag][a.subgraph];
                let sb = &dags[b.dag][b.subgraph];
                sa.priority
                    .cmp(&sb.priority)
                    .then(
                        latency(b.dag, sb)
                            .partial_cmp(&latency(a.dag, sa))
                            .expect("finite latency"),
                    )
                    .then(a.dag.cmp(&b.dag))
                    .then(a.subgraph.cmp(&b.subgraph))
            })
            .map(|(i, _)| i)
            .expect("non-empty ready set");
        let item = ready.swap_remove(best);
        out.push(item);
        for &nxt in &succ[item.dag][item.subgraph] {
            indeg[item.dag][nxt] -= 1;
            if indeg[item.dag][nxt] == 0 {
                ready.push(LaunchItem {
                    dag: item.dag,
                    subgraph: nxt,
                });
            }
        }
        succ[item.dag][item.subgraph].clear();
    }
    assert_eq!(out.len(), total, "cycle detected in subgraph DAGs");
    out
}

/// Whether `order` respects every DAG's dependencies (test/diagnostic).
pub fn is_valid_order(dags: &[Vec<Subgraph>], order: &[LaunchItem]) -> bool {
    let mut pos: Vec<Vec<Option<usize>>> = dags.iter().map(|d| vec![None; d.len()]).collect();
    for (i, item) in order.iter().enumerate() {
        pos[item.dag][item.subgraph] = Some(i);
    }
    for (di, d) in dags.iter().enumerate() {
        for sg in d {
            let Some(me) = pos[di][sg.id] else {
                return false;
            };
            for &dep in &sg.deps {
                match pos[di][dep] {
                    Some(p) if p < me => {}
                    _ => return false,
                }
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sg(id: usize, prio: usize, deps: Vec<usize>, comm: bool) -> Subgraph {
        Subgraph {
            id,
            nodes: vec![id],
            priority: prio,
            deps,
            is_adapter: false,
            task: 0,
            has_comm: comm,
        }
    }

    #[test]
    fn single_dag_schedules_in_topological_order() {
        let dag = vec![
            sg(0, 0, vec![], true),
            sg(1, 1, vec![0], true),
            sg(2, 2, vec![1], false),
        ];
        let order = schedule_subgraphs(std::slice::from_ref(&dag), &|_, _| 1.0);
        assert!(is_valid_order(&[dag], &order));
        assert_eq!(order.len(), 3);
        assert_eq!(order[0].subgraph, 0);
    }

    #[test]
    fn interleaves_dags_by_priority() {
        // Two identical chains: the schedule must alternate (both roots at
        // priority 0 are ready; after launching one, the other root still
        // outranks the first DAG's depth-1 subgraph).
        let mk = || vec![sg(0, 0, vec![], true), sg(1, 1, vec![0], true)];
        let order = schedule_subgraphs(&[mk(), mk()], &|_, _| 1.0);
        assert_eq!(
            order.iter().map(|i| i.dag).collect::<Vec<_>>(),
            vec![0, 1, 0, 1],
            "equal-priority subgraphs from different DAGs interleave"
        );
    }

    #[test]
    fn longest_latency_launches_first_within_a_priority() {
        let mk = || vec![sg(0, 0, vec![], true)];
        let order = schedule_subgraphs(&[mk(), mk(), mk()], &|dag, _| dag as f64);
        assert_eq!(
            order.iter().map(|i| i.dag).collect::<Vec<_>>(),
            vec![2, 1, 0]
        );
    }

    #[test]
    fn respects_dependencies_under_any_latency() {
        let dag_a = vec![
            sg(0, 0, vec![], true),
            sg(1, 1, vec![0], false),
            sg(2, 1, vec![0], false),
        ];
        let dag_b = vec![sg(0, 0, vec![], false)];
        let order =
            schedule_subgraphs(&[dag_a.clone(), dag_b.clone()], &|_, s| 100.0 - s.id as f64);
        assert!(is_valid_order(&[dag_a, dag_b], &order));
    }

    #[test]
    fn deterministic_output() {
        let mk = || {
            vec![
                sg(0, 0, vec![], true),
                sg(1, 1, vec![0], true),
                sg(2, 2, vec![1], false),
            ]
        };
        let a = schedule_subgraphs(&[mk(), mk()], &|_, _| 1.0);
        let b = schedule_subgraphs(&[mk(), mk()], &|_, _| 1.0);
        assert_eq!(a, b);
    }
}
