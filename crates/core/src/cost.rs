//! The pipeline cost model (§3.3, Eqs. 3–5).
//!
//! Drives both the DP task fusion (Eq. 6) and hTask grouping (Eq. 7): per-
//! stage hTask latency (Eq. 3, with communication assumed overlapped per
//! §3.4.2), end-to-end pipeline latency (Eq. 4), and per-stage memory
//! (Eq. 5, the OOM feasibility check).

use mux_gpu_sim::spec::GpuSpec;
use mux_model::config::ModelConfig;
use mux_model::layer::build_stage_graph;
use mux_model::memory::{activation_bytes, task_state_bytes};
use mux_model::ops::{OpCostSpec, OpKind, Pass};
use mux_parallel::plan::{stage_layers, HybridParallelism};
use mux_parallel::tp::work_for;
use mux_peft::registry::TaskRegistry;
use mux_peft::types::TaskId;

use crate::htask::HTask;

/// Precomputed per-stage backbone operator list (TP-sharded costs).
#[derive(Debug, Clone)]
struct StageOps {
    /// `(kind, cost)` of every non-comm backbone op in the stage.
    compute: Vec<(OpKind, OpCostSpec)>,
    /// `(kind, k, n)` of every BaseOp (adapter attach point) in the stage.
    base_ops: Vec<(OpKind, usize, usize)>,
    /// Layer range.
    layers: (usize, usize),
}

/// The Eq. 3–5 cost model for one instance.
pub struct CostModel<'a> {
    registry: &'a TaskRegistry,
    gpu: GpuSpec,
    /// Parallelism plan (dp is unused by the cost model; latency is per
    /// replica).
    pub plan: HybridParallelism,
    stages: Vec<StageOps>,
}

impl<'a> CostModel<'a> {
    /// Builds the model, precomputing per-stage operator lists.
    pub fn new(registry: &'a TaskRegistry, gpu: GpuSpec, plan: HybridParallelism) -> Self {
        let cfg = registry.backbone();
        let ranges = stage_layers(cfg.num_layers, plan.pp);
        let stages = ranges
            .iter()
            .map(|&(a, b)| {
                let g = build_stage_graph(cfg, a, b, plan.tp);
                let compute = g
                    .nodes()
                    .iter()
                    .filter(|n| !n.template.kind.is_comm())
                    .map(|n| (n.template.kind, n.template.cost.clone()))
                    .collect();
                let base_ops = g
                    .nodes()
                    .iter()
                    .filter(|n| n.template.kind.is_base_op())
                    .filter_map(|n| match n.template.cost {
                        OpCostSpec::Gemm { k, n: out, .. } => Some((n.template.kind, k, out)),
                        _ => None,
                    })
                    .collect();
                StageOps {
                    compute,
                    base_ops,
                    layers: (a, b),
                }
            })
            .collect();
        Self {
            registry,
            gpu,
            plan,
            stages,
        }
    }

    /// The backbone configuration.
    pub fn backbone(&self) -> &ModelConfig {
        self.registry.backbone()
    }

    /// Number of pipeline stages `S`.
    pub fn num_stages(&self) -> usize {
        self.stages.len()
    }

    /// Eq. 3: latency of one micro-batch of `h` through stage `s`.
    ///
    /// Backbone (`BaseOp`) latency uses the *combined* token count; fused
    /// adapter latency is `max(Σ u_a·t_a(n_k), max_k t_a(n_k))`.
    /// Communication is excluded (assumed overlapped, §3.4.2).
    pub fn stage_latency(&self, s: usize, h: &HTask, pass: Pass) -> f64 {
        let stage = &self.stages[s];
        let mut lat: f64 = stage
            .compute
            .iter()
            .map(|(kind, cost)| htask_op_time(&self.gpu, *kind, cost, h, None, pass).0)
            .sum();
        // Adapters, per attach point.
        let cfg = self.registry.backbone();
        for &(kind, k, n) in &stage.base_ops {
            let mut weighted = 0.0;
            let mut max_single: f64 = 0.0;
            for (idx, &tid) in h.tasks.iter().enumerate() {
                let task = self.registry.task(tid).expect("fused task registered");
                let mut t_a = 0.0;
                let mut util: f64 = 0.0;
                for op in task.adapter_ops(cfg, kind, k, n) {
                    let (t, u, _) = htask_op_time(&self.gpu, op.kind, &op.cost, h, Some(idx), pass);
                    t_a += t;
                    util = util.max(u);
                }
                weighted += util * t_a;
                max_single = max_single.max(t_a);
            }
            lat += weighted.max(max_single);
        }
        lat
    }

    /// Eq. 4: end-to-end pipeline latency of running `h` alone: warm-up and
    /// drain sums plus `C` steady-state rounds of the bottleneck stage,
    /// with forward ≈ backward (hence the factors of 2).
    pub fn pipeline_latency(&self, h: &HTask) -> f64 {
        let s_count = self.num_stages();
        let per_stage: Vec<f64> = (0..s_count)
            .map(|s| self.stage_latency(s, h, Pass::Forward))
            .collect();
        let warm_drain: f64 = per_stage[..s_count - 1].iter().sum();
        let bottleneck = per_stage.iter().cloned().fold(0.0, f64::max);
        2.0 * warm_drain + 2.0 * h.micro_batches as f64 * bottleneck
    }

    /// Eq. 4's steady-state term only, per micro-batch — the per-stage
    /// average used by the DP transition (Eq. 6 divides by `S`).
    pub fn steady_contribution(&self, h: &HTask) -> f64 {
        self.pipeline_latency(h) / self.num_stages() as f64
    }

    /// Eq. 5: peak memory of stage `s` when `htasks` co-locate, with up to
    /// `in_flight` micro-batch activations resident (1F1B holds ≤ S).
    pub fn stage_memory(&self, s: usize, htasks: &[HTask], in_flight: usize) -> u64 {
        let cfg = self.registry.backbone();
        let stage = &self.stages[s];
        let layers = stage.layers.1 - stage.layers.0;
        // Backbone shard: parameters are split across S stages and TP ranks.
        let m_b = cfg.param_bytes() / (self.num_stages() as u64 * self.plan.tp as u64);
        // Per-task persistent state (adapter grads + optimizer moments),
        // sharded the same way.
        let m_g: u64 = htasks
            .iter()
            .flat_map(|h| h.tasks.iter())
            .map(|&tid| {
                let t = self.registry.task(tid).expect("registered");
                task_state_bytes(t.adapter_params(cfg))
                    / (self.num_stages() as u64 * self.plan.tp as u64)
            })
            .sum();
        // Activations: every co-located hTask holds `in_flight` micro-batch
        // copies of this stage's layers (per TP rank the hidden dim is
        // replicated for attention inputs; we charge the full width, which
        // is conservative).
        let m_a: u64 = htasks
            .iter()
            .map(|h| activation_bytes(cfg, layers, h.total_tokens()) * in_flight as u64)
            .sum();
        m_b + m_g + m_a
    }

    /// Whether co-locating `htasks` fits device memory on every stage with
    /// `in_flight` resident micro-batches.
    pub fn fits_memory(&self, htasks: &[HTask], in_flight: usize) -> bool {
        (0..self.num_stages())
            .all(|s| self.stage_memory(s, htasks, in_flight) <= self.gpu.mem_capacity)
    }

    /// The GPU spec the model evaluates against.
    pub fn gpu(&self) -> &GpuSpec {
        &self.gpu
    }

    /// Builds an exact O(1)-per-query memory-feasibility prober for
    /// contiguous ranges of `sorted` built with [`HTask::from_padded`].
    ///
    /// Eq. 5 memory for a padded range decomposes into integer prefix sums:
    /// per-task state quotients, micro-batch counts (total tokens are
    /// `Σ micro_batch × max seq_len`), and a range-max over sequence caps —
    /// so `fits(a, b)` reproduces `fits_memory` bit-for-bit without
    /// materializing the hTask. This is what lets the fusion DP probe all
    /// O(M²) ranges while paying the per-member latency cost only on the
    /// feasible ones.
    pub fn padded_prober(&self, sorted: &[&mux_peft::types::PeftTask]) -> PaddedRangeProber<'a> {
        let cfg = self.registry.backbone();
        let shards = self.num_stages() as u64 * self.plan.tp as u64;
        let mut state_prefix = Vec::with_capacity(sorted.len() + 1);
        let mut mb_prefix = Vec::with_capacity(sorted.len() + 1);
        state_prefix.push(0u64);
        mb_prefix.push(0u64);
        for t in sorted {
            // Same per-task quotient `stage_memory` sums, so the prefix
            // difference is exactly its m_g term.
            let q = task_state_bytes(t.adapter_params(cfg)) / shards;
            state_prefix.push(state_prefix.last().unwrap() + q);
            mb_prefix.push(mb_prefix.last().unwrap() + t.micro_batch as u64);
        }
        PaddedRangeProber {
            cfg,
            state_prefix,
            mb_prefix,
            seq_max: RangeMax::new(&sorted.iter().map(|t| t.seq_len).collect::<Vec<_>>()),
            stage_layer_counts: self
                .stages
                .iter()
                .map(|s| s.layers.1 - s.layers.0)
                .collect(),
            m_b: cfg.param_bytes() / shards,
            in_flight: self.num_stages(),
            capacity: self.gpu.mem_capacity,
        }
    }

    /// The largest in-flight micro-batch count the memory budget allows for
    /// a *bucketed* plan (template rule 3).
    ///
    /// Unlike [`CostModel::stage_memory`] — which conservatively charges
    /// every hTask `in_flight` copies, correct for spatial co-residency —
    /// temporally interleaved buckets share the in-flight budget: at any
    /// instant at most `in_flight` pipeline cells are resident, each the
    /// size of one bucket's combined activations. Result is clamped to
    /// `[2, 2·S + 4]`.
    pub fn max_in_flight(&self, buckets: &[Vec<HTask>]) -> usize {
        let cfg = self.registry.backbone();
        let all: Vec<HTask> = buckets.iter().flatten().cloned().collect();
        let cap = self.gpu.mem_capacity;
        let upper = 2 * self.num_stages() + 4;
        let mut k = 2;
        'grow: while k < upper {
            for s in 0..self.num_stages() {
                let static_bytes = self.stage_memory(s, &all, 0);
                let layers = self.stages[s].layers.1 - self.stages[s].layers.0;
                let max_cell: u64 = buckets
                    .iter()
                    .map(|b| {
                        b.iter()
                            .map(|h| activation_bytes(cfg, layers, h.total_tokens()))
                            .sum::<u64>()
                    })
                    .max()
                    .unwrap_or(0);
                if static_bytes + (k as u64 + 1) * max_cell > cap {
                    break 'grow;
                }
            }
            k += 1;
        }
        k
    }
}

/// Sparse table answering `max(values[a..b])` in O(1) after O(n log n)
/// preprocessing.
#[derive(Debug, Clone)]
struct RangeMax {
    /// `rows[k][i] = max(values[i .. i + 2^k])`.
    rows: Vec<Vec<usize>>,
}

impl RangeMax {
    fn new(values: &[usize]) -> Self {
        let n = values.len();
        let mut rows = vec![values.to_vec()];
        let mut width = 1;
        while width * 2 <= n {
            let prev = rows.last().expect("seeded");
            let next: Vec<usize> = (0..=n - width * 2)
                .map(|i| prev[i].max(prev[i + width]))
                .collect();
            rows.push(next);
            width *= 2;
        }
        Self { rows }
    }

    /// Max over the non-empty half-open range `[a, b)`.
    fn query(&self, a: usize, b: usize) -> usize {
        debug_assert!(a < b && b <= self.rows[0].len());
        let k = (usize::BITS - 1 - (b - a).leading_zeros()) as usize;
        let w = 1 << k;
        self.rows[k][a].max(self.rows[k][b - w])
    }
}

/// Exact memory-feasibility prober for contiguous `from_padded` ranges.
///
/// Built by [`CostModel::padded_prober`]; see there for the decomposition
/// argument. Valid *only* for ranges of the same sorted task slice it was
/// built from, built via [`HTask::from_padded`] (corpus-backed alignment
/// changes token totals and breaks the prefix-sum identity).
pub struct PaddedRangeProber<'a> {
    cfg: &'a ModelConfig,
    state_prefix: Vec<u64>,
    mb_prefix: Vec<u64>,
    seq_max: RangeMax,
    stage_layer_counts: Vec<usize>,
    m_b: u64,
    in_flight: usize,
    capacity: u64,
}

impl PaddedRangeProber<'_> {
    /// Whether `HTask::from_padded(&sorted[a..b], _)` would pass
    /// [`CostModel::fits_memory`] with `num_stages` in-flight micro-batches.
    pub fn fits(&self, a: usize, b: usize) -> bool {
        let unit_len = self.seq_max.query(a, b);
        let tokens = ((self.mb_prefix[b] - self.mb_prefix[a]) as usize) * unit_len;
        let m_g = self.state_prefix[b] - self.state_prefix[a];
        self.stage_layer_counts.iter().all(|&layers| {
            let m_a = activation_bytes(self.cfg, layers, tokens) * self.in_flight as u64;
            self.m_b + m_g + m_a <= self.capacity
        })
    }
}

/// Latency, achieved utilization and FLOPs of one backbone/adapter op of an
/// hTask on `gpu`.
///
/// Attention ops are special (§3.5): after chunk-based alignment each query
/// row attends over `h.attn_context` tokens (its chunk plus cached KV), and
/// packs spanning multiple chunks issue `h.attn_splits` sequentially
/// dependent, smaller attention kernels — so the kernel-size efficiency is
/// evaluated per split while the total work multiplies back.
pub fn htask_op_time(
    gpu: &GpuSpec,
    kind: OpKind,
    cost: &OpCostSpec,
    h: &HTask,
    member: Option<usize>,
    pass: Pass,
) -> (f64, f64, f64) {
    let is_attn = matches!(
        kind,
        OpKind::AttnScore | OpKind::AttnSoftmax | OpKind::AttnContext
    );
    let tokens = match member {
        Some(i) => h.tokens_per_task[i],
        None => h.total_tokens(),
    };
    if is_attn {
        let splits = h.attn_splits.max(1.0);
        let per_kernel_tokens = ((tokens as f64 / splits).ceil() as usize).max(1);
        let ctx = h.attn_context.max(1);
        let rows = per_kernel_tokens.div_ceil(ctx).max(1);
        let shape = mux_model::ops::TokenShape::new(rows, ctx);
        let w = work_for(cost, kind, shape, pass);
        (
            gpu.compute_time(w, 1.0) * splits,
            gpu.op_utilization(w),
            w.flops * splits,
        )
    } else {
        let rows = tokens.div_ceil(h.unit_len.max(1)).max(1);
        let shape = mux_model::ops::TokenShape::new(rows, h.unit_len.max(1));
        let w = work_for(cost, kind, shape, pass);
        (gpu.compute_time(w, 1.0), gpu.op_utilization(w), w.flops)
    }
}

/// Convenience: the member tasks of an hTask, resolved from the registry.
pub fn member_tasks<'r>(
    registry: &'r TaskRegistry,
    h: &HTask,
) -> Vec<&'r mux_peft::types::PeftTask> {
    h.tasks
        .iter()
        .map(|&id: &TaskId| registry.task(id).expect("registered"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mux_peft::types::PeftTask;

    fn setup(n_tasks: usize, plan: HybridParallelism) -> (TaskRegistry, HybridParallelism) {
        let mut r = TaskRegistry::new(ModelConfig::llama2_7b().with_layers(16));
        for i in 0..n_tasks {
            r.register_task(PeftTask::lora(i as TaskId + 1, 16, 4, 128))
                .expect("register");
        }
        (r, plan)
    }

    fn htask_of(r: &TaskRegistry, ids: &[TaskId], mbs: usize) -> HTask {
        let members: Vec<&PeftTask> = ids.iter().map(|&i| r.task(i).expect("task")).collect();
        HTask::from_padded(&members, mbs)
    }

    #[test]
    fn stage_latency_grows_sublinearly_with_fusion() {
        // Spatial batching improves utilization: 2 tasks fused cost less
        // than 2x one task (Fig 9's motivation).
        let (r, plan) = setup(2, HybridParallelism::pipeline(4));
        let cm = CostModel::new(&r, GpuSpec::a40(), plan);
        let one = htask_of(&r, &[1], 4);
        let two = htask_of(&r, &[1, 2], 4);
        let l1 = cm.stage_latency(0, &one, Pass::Forward);
        let l2 = cm.stage_latency(0, &two, Pass::Forward);
        assert!(l2 < 2.0 * l1, "fused {l2} vs 2x single {l1}");
        assert!(l2 > l1, "more tokens must cost more");
    }

    #[test]
    fn pipeline_latency_scales_with_micro_batches() {
        let (r, plan) = setup(1, HybridParallelism::pipeline(4));
        let cm = CostModel::new(&r, GpuSpec::a40(), plan);
        let h4 = htask_of(&r, &[1], 4);
        let h8 = htask_of(&r, &[1], 8);
        let l4 = cm.pipeline_latency(&h4);
        let l8 = cm.pipeline_latency(&h8);
        assert!(l8 > l4 * 1.5 && l8 < l4 * 2.0, "C-scaling: {l4} -> {l8}");
    }

    #[test]
    fn memory_splits_backbone_across_stages() {
        let (r, _) = setup(1, HybridParallelism::pipeline(4));
        let cm4 = CostModel::new(&r, GpuSpec::a40(), HybridParallelism::pipeline(4));
        let cm2 = CostModel::new(&r, GpuSpec::a40(), HybridParallelism::pipeline(2));
        let h = htask_of(&r, &[1], 4);
        let m4 = cm4.stage_memory(0, std::slice::from_ref(&h), 4);
        let m2 = cm2.stage_memory(0, &[h], 2);
        assert!(m4 < m2, "more stages shard the backbone further");
    }

    #[test]
    fn memory_feasibility_rejects_huge_fusions() {
        let mut r = TaskRegistry::new(ModelConfig::llama2_7b());
        for i in 0..64 {
            r.register_task(PeftTask::lora(i + 1, 16, 32, 256))
                .expect("register");
        }
        let cm = CostModel::new(&r, GpuSpec::a40(), HybridParallelism::pipeline(4));
        let small = htask_of(&r, &[1], 4);
        assert!(cm.fits_memory(std::slice::from_ref(&small), 4));
        let ids: Vec<TaskId> = (1..=64).collect();
        let huge = htask_of(&r, &ids, 4);
        assert!(
            !cm.fits_memory(std::slice::from_ref(&huge), 4),
            "64 fat tasks cannot fit 48 GB"
        );
    }

    #[test]
    fn padded_prober_matches_fits_memory_on_every_range() {
        // Mixed shapes spanning the feasible/infeasible boundary.
        let mut r = TaskRegistry::new(ModelConfig::llama2_7b().with_layers(8));
        let shapes = [
            (1, 64),
            (2, 128),
            (8, 256),
            (4, 64),
            (16, 256),
            (2, 64),
            (32, 256),
            (1, 128),
        ];
        for (i, &(mb, seq)) in shapes.iter().enumerate() {
            r.register_task(PeftTask::lora(i as TaskId + 1, 16, mb, seq))
                .expect("register");
        }
        let cm = CostModel::new(&r, GpuSpec::a40(), HybridParallelism::pipeline(2));
        let sorted: Vec<&PeftTask> = r.tasks().collect();
        let prober = cm.padded_prober(&sorted);
        let s = cm.num_stages();
        for a in 0..sorted.len() {
            for b in a + 1..=sorted.len() {
                let h = HTask::from_padded(&sorted[a..b], 4);
                assert_eq!(
                    prober.fits(a, b),
                    cm.fits_memory(std::slice::from_ref(&h), s),
                    "range [{a}, {b})"
                );
            }
        }
    }

    #[test]
    fn adapter_latency_respects_max_bound() {
        // One giant-rank adapter among tiny ones must dominate the fused
        // estimate (the Eq. 3 max-term avoiding the bottleneck effect).
        let mut r = TaskRegistry::new(ModelConfig::llama2_7b().with_layers(8));
        r.register_task(PeftTask::lora(1, 4, 4, 128))
            .expect("register");
        r.register_task(PeftTask::lora(2, 512, 4, 128))
            .expect("register");
        let cm = CostModel::new(&r, GpuSpec::a40(), HybridParallelism::single());
        let small_only = htask_of(&r, &[1], 4);
        let fused = htask_of(&r, &[1, 2], 4);
        let l_small = cm.stage_latency(0, &small_only, Pass::Forward);
        let l_fused = cm.stage_latency(0, &fused, Pass::Forward);
        assert!(
            l_fused > l_small,
            "the rank-512 adapter must show up in the fused latency"
        );
    }
}
