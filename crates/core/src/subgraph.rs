//! Dependency-aware subgraph construction (§3.4.2, Fig 11).
//!
//! The intra-stage orchestration unit is the *subgraph*: a run of
//! consecutive backbone computation operators with its trailing
//! communication operator attached (so the comm can overlap the *next*
//! subgraph of another task), while small adapters are isolated as
//! independent subgraphs (so they can be horizontally fused across tasks).
//! Each subgraph carries a priority equal to its topological depth.

use mux_model::graph::OpGraph;

/// A segmented subgraph of one hTask's stage graph.
#[derive(Debug, Clone)]
pub struct Subgraph {
    /// Id within the segmentation.
    pub id: usize,
    /// Node ids (topological order) of the parent [`OpGraph`].
    pub nodes: Vec<usize>,
    /// Priority: topological depth of the subgraph's first node (lower =
    /// earlier).
    pub priority: usize,
    /// Subgraph ids this one depends on.
    pub deps: Vec<usize>,
    /// Whether the subgraph is an isolated adapter branch.
    pub is_adapter: bool,
    /// Owner tag of the adapter branch (0 for backbone subgraphs).
    pub task: u32,
    /// Whether the subgraph ends in a communication operator.
    pub has_comm: bool,
}

/// Segments `graph` into subgraphs.
///
/// Rules (from §3.4.2):
/// * backbone computation nodes accumulate into the current backbone run;
/// * a communication node joins the current run and closes it;
/// * adapter-tagged nodes form per-task chains, isolated from the backbone.
pub fn segment(graph: &OpGraph) -> Vec<Subgraph> {
    let depths = graph.depths();
    let mut node_sg: Vec<usize> = vec![usize::MAX; graph.len()];
    let mut sgs: Vec<Subgraph> = Vec::new();
    // The currently-open backbone subgraph, if any.
    let mut open_backbone: Option<usize> = None;
    // The currently-open adapter chain per task tag.
    let mut open_adapter: std::collections::BTreeMap<u32, usize> =
        std::collections::BTreeMap::new();

    for node in graph.nodes() {
        let is_adapter_node = node.tag != 0;
        let sg_id = if is_adapter_node {
            // Continue this task's chain if the node directly depends on
            // its open chain; otherwise start a new chain.
            let cont = open_adapter
                .get(&node.tag)
                .copied()
                .filter(|&sg| node.deps.iter().any(|&d| node_sg[d] == sg));
            match cont {
                Some(sg) => sg,
                None => {
                    let id = sgs.len();
                    sgs.push(Subgraph {
                        id,
                        nodes: Vec::new(),
                        priority: depths[node.id],
                        deps: Vec::new(),
                        is_adapter: true,
                        task: node.tag,
                        has_comm: false,
                    });
                    open_adapter.insert(node.tag, id);
                    id
                }
            }
        } else {
            // Backbone node (including aggregates): join or open the run.
            // A node consuming adapter output (an aggregate) must *not*
            // join the run its adapter branch forked from — that would
            // create a subgraph cycle — so the run closes first.
            if node.deps.iter().any(|&d| graph.node(d).tag != 0) {
                open_backbone = None;
            }
            let id = match open_backbone {
                Some(sg) => sg,
                None => {
                    let id = sgs.len();
                    sgs.push(Subgraph {
                        id,
                        nodes: Vec::new(),
                        priority: depths[node.id],
                        deps: Vec::new(),
                        is_adapter: false,
                        task: 0,
                        has_comm: false,
                    });
                    open_backbone = Some(id);
                    id
                }
            };
            if node.template.kind.is_comm() {
                sgs[id].has_comm = true;
                open_backbone = None; // comm closes the run
            }
            id
        };
        sgs[sg_id].nodes.push(node.id);
        node_sg[node.id] = sg_id;
        // An aggregate consuming adapter outputs closes those chains.
        if !is_adapter_node {
            for &d in &node.deps {
                let dtag = graph.node(d).tag;
                if dtag != 0 {
                    open_adapter.remove(&dtag);
                }
            }
        }
    }
    // Derive subgraph-level deps.
    for node in graph.nodes() {
        let sg = node_sg[node.id];
        for &d in &node.deps {
            let dsg = node_sg[d];
            if dsg != sg && !sgs[sg].deps.contains(&dsg) {
                sgs[sg].deps.push(dsg);
            }
        }
    }
    for sg in &mut sgs {
        sg.deps.sort_unstable();
    }
    sgs
}

/// Checks that a segmentation is a valid partition of the graph.
pub fn validate_segmentation(graph: &OpGraph, sgs: &[Subgraph]) -> bool {
    let mut covered = vec![false; graph.len()];
    for sg in sgs {
        for &n in &sg.nodes {
            if covered[n] {
                return false;
            }
            covered[n] = true;
        }
    }
    covered.iter().all(|&c| c)
        && sgs
            .iter()
            .all(|sg| sg.deps.iter().all(|&d| d < sg.id || !sg.nodes.is_empty()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mux_model::config::ModelConfig;
    use mux_peft::registry::TaskRegistry;
    use mux_peft::types::PeftTask;

    fn multitask_graph(tp: usize, n_tasks: usize) -> OpGraph {
        let mut r = TaskRegistry::new(ModelConfig::llama2_7b().with_layers(2));
        let ids: Vec<u32> = (1..=n_tasks as u32).collect();
        for &i in &ids {
            r.register_task(PeftTask::lora(i, 16, 4, 128))
                .expect("register");
        }
        r.build_multitask_stage_graph(0, 2, tp, &ids)
    }

    #[test]
    fn segmentation_partitions_all_nodes() {
        let g = multitask_graph(4, 2);
        let sgs = segment(&g);
        assert!(validate_segmentation(&g, &sgs));
    }

    #[test]
    fn comm_ops_close_backbone_runs() {
        let g = multitask_graph(4, 1);
        let sgs = segment(&g);
        for sg in &sgs {
            if sg.has_comm {
                // The comm node must be the last node of its subgraph.
                let last = *sg.nodes.last().expect("non-empty");
                assert!(
                    g.node(last).template.kind.is_comm(),
                    "comm must close the run"
                );
            }
            // No subgraph contains a comm node in its interior.
            for &n in &sg.nodes[..sg.nodes.len().saturating_sub(1)] {
                assert!(!g.node(n).template.kind.is_comm());
            }
        }
        // A 2-layer TP stage has 4 all-reduces -> at least 4 comm-closed runs.
        assert!(sgs.iter().filter(|s| s.has_comm).count() >= 4);
    }

    #[test]
    fn adapters_are_isolated_per_task() {
        let g = multitask_graph(1, 2);
        let sgs = segment(&g);
        let adapter_sgs: Vec<&Subgraph> = sgs.iter().filter(|s| s.is_adapter).collect();
        assert!(!adapter_sgs.is_empty());
        for sg in &adapter_sgs {
            assert!(sg.task == 1 || sg.task == 2);
            for &n in &sg.nodes {
                assert_eq!(g.node(n).tag, sg.task, "no cross-task node mixing");
            }
        }
        // LoRA on 4 BaseOps x 2 layers = 8 adapter chains per task.
        let t1 = adapter_sgs.iter().filter(|s| s.task == 1).count();
        assert_eq!(t1, 8);
    }

    #[test]
    fn priorities_follow_topological_depth() {
        let g = multitask_graph(1, 1);
        let sgs = segment(&g);
        // Backbone subgraphs in id order should have non-decreasing priority.
        let backbone: Vec<&Subgraph> = sgs.iter().filter(|s| !s.is_adapter).collect();
        for w in backbone.windows(2) {
            assert!(w[0].priority <= w[1].priority);
        }
    }

    #[test]
    fn deps_reference_earlier_subgraphs_only() {
        let g = multitask_graph(4, 2);
        let sgs = segment(&g);
        for sg in &sgs {
            for &d in &sg.deps {
                assert!(d != sg.id, "self-dependency");
                assert!(d < sgs.len());
            }
        }
    }

    #[test]
    fn single_gpu_backbone_splits_only_at_aggregates() {
        // No comm ops on 1 GPU, so backbone runs break only where an
        // aggregate consumes adapter output: 4 BaseOps x 2 layers = 8
        // aggregates -> at most 9 backbone runs.
        let g = multitask_graph(1, 1);
        let sgs = segment(&g);
        let backbone = sgs.iter().filter(|s| !s.is_adapter).count();
        assert!(backbone <= 9, "backbone fragmented: {backbone} runs");
        // Without adapters there is exactly one run.
        let mut r = TaskRegistry::new(ModelConfig::llama2_7b().with_layers(2));
        r.register_task(PeftTask::lora(1, 16, 4, 128))
            .expect("register");
        let bare = r.build_multitask_stage_graph(0, 2, 1, &[]);
        let bare_sgs = segment(&bare);
        assert_eq!(bare_sgs.len(), 1);
    }
}
