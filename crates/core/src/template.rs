//! Structured multi-task pipeline template (§3.4.1, Appendix A).
//!
//! Extends 1F1B to many hTask buckets with three rules: (1) buckets sorted
//! descending by stage latency, so each bucket's micro-batches fill the
//! bubbles of its neighbours; (2) micro-batches of one bucket stay
//! consecutive (they match each other's latency exactly); (3) micro-batches
//! launch eagerly up to the memory-derived in-flight cap, keeping every
//! stage supplied with pending work.

use mux_parallel::pp::{Phase, PipeInstr, PipeProgram};

/// Bucket orderings (descending is the paper's rule 1; the others are the
/// Appendix-A Fig 22 ablations).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BucketOrder {
    /// Longest bucket first (the paper's template).
    Descending,
    /// Shortest first.
    Ascending,
    /// Longest in the middle (Fig 22e's counter-example).
    MiddlePeak,
}

/// A generated multi-task pipeline template.
#[derive(Debug, Clone)]
pub struct PipelineTemplate {
    /// Per-rank instruction programs over *global* micro-batch ids.
    pub program: PipeProgram,
    /// Global micro-batch id → bucket index (into the caller's bucket
    /// list, whatever order the caller sorted it in).
    pub mb_bucket: Vec<usize>,
    /// Global micro-batch id → round within its bucket.
    pub mb_round: Vec<usize>,
    /// The stream order the buckets were laid out in.
    pub bucket_stream: Vec<usize>,
}

/// Reorders bucket indices `0..n` (assumed pre-sorted descending by load)
/// according to `order`.
fn stream_order(n: usize, order: BucketOrder) -> Vec<usize> {
    let desc: Vec<usize> = (0..n).collect();
    match order {
        BucketOrder::Descending => desc,
        BucketOrder::Ascending => desc.into_iter().rev().collect(),
        BucketOrder::MiddlePeak => {
            // Interleave so the largest lands mid-stream: place descending
            // items alternately at the two ends, largest last (center).
            let mut head = Vec::new();
            let mut tail = Vec::new();
            for (i, b) in desc.into_iter().rev().enumerate() {
                if i % 2 == 0 {
                    head.push(b);
                } else {
                    tail.push(b);
                }
            }
            tail.reverse();
            head.extend(tail);
            head
        }
    }
}

/// Builds the structured template.
///
/// * `bucket_rounds[j]` — micro-batches (`C_j`) of bucket `j`, with buckets
///   pre-sorted descending by stage latency;
/// * `stages` — pipeline depth `S`;
/// * `max_in_flight` — memory cap on resident micro-batches per stage
///   (rule 3 eagerly launches up to this; 1F1B needs at least `S`).
pub fn build_template(
    stages: usize,
    bucket_rounds: &[usize],
    max_in_flight: usize,
    order: BucketOrder,
) -> PipelineTemplate {
    assert!(stages >= 1, "need at least one stage");
    assert!(!bucket_rounds.is_empty(), "no buckets");
    let stream = stream_order(bucket_rounds.len(), order);
    let mut mb_bucket = Vec::new();
    let mut mb_round = Vec::new();
    for &b in &stream {
        for r in 0..bucket_rounds[b] {
            mb_bucket.push(b);
            mb_round.push(r);
        }
    }
    let total = mb_bucket.len();
    let in_flight_cap = max_in_flight.max(2); // 1F1B needs >= 2 to pipeline at all
    let program: PipeProgram = (0..stages)
        .map(|s| {
            // Rule 3: eager warm-up — as many in-flight micro-batches as
            // memory allows, never fewer than plain 1F1B's S - s - 1.
            let warm = (stages - s - 1)
                .max(
                    in_flight_cap
                        .saturating_sub(1)
                        .min(2 * (stages - s).saturating_sub(1)),
                )
                .min(total);
            let mut prog: Vec<PipeInstr> = (0..warm)
                .map(|m| PipeInstr {
                    stage: s,
                    mb: m,
                    phase: Phase::Forward,
                })
                .collect();
            for i in 0..total - warm {
                prog.push(PipeInstr {
                    stage: s,
                    mb: warm + i,
                    phase: Phase::Forward,
                });
                prog.push(PipeInstr {
                    stage: s,
                    mb: i,
                    phase: Phase::Backward,
                });
            }
            for i in total - warm..total {
                prog.push(PipeInstr {
                    stage: s,
                    mb: i,
                    phase: Phase::Backward,
                });
            }
            prog
        })
        .collect();
    PipelineTemplate {
        program,
        mb_bucket,
        mb_round,
        bucket_stream: stream,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_micro_batches_stay_consecutive() {
        let t = build_template(4, &[3, 2, 4], 4, BucketOrder::Descending);
        // mb_bucket must be piecewise-constant runs in stream order.
        let mut seen = Vec::new();
        for &b in &t.mb_bucket {
            if seen.last() != Some(&b) {
                assert!(
                    !seen.contains(&b),
                    "bucket {b} split into non-consecutive runs"
                );
                seen.push(b);
            }
        }
        assert_eq!(t.mb_bucket.len(), 9);
    }

    #[test]
    fn descending_keeps_caller_order() {
        let t = build_template(2, &[5, 3, 1], 2, BucketOrder::Descending);
        assert_eq!(t.bucket_stream, vec![0, 1, 2]);
    }

    #[test]
    fn ascending_reverses() {
        let t = build_template(2, &[5, 3, 1], 2, BucketOrder::Ascending);
        assert_eq!(t.bucket_stream, vec![2, 1, 0]);
    }

    #[test]
    fn middle_peak_centers_the_largest() {
        let t = build_template(2, &[5, 3, 1], 2, BucketOrder::MiddlePeak);
        let pos = t
            .bucket_stream
            .iter()
            .position(|&b| b == 0)
            .expect("bucket 0 present");
        assert!(
            pos > 0 && pos < t.bucket_stream.len() - 1,
            "largest should be interior: {:?}",
            t.bucket_stream
        );
    }

    #[test]
    fn program_executes_every_cell_once() {
        let t = build_template(3, &[4, 4], 3, BucketOrder::Descending);
        for (s, prog) in t.program.iter().enumerate() {
            let fwd: Vec<usize> = prog
                .iter()
                .filter(|i| i.phase == Phase::Forward)
                .map(|i| i.mb)
                .collect();
            let bwd: Vec<usize> = prog
                .iter()
                .filter(|i| i.phase == Phase::Backward)
                .map(|i| i.mb)
                .collect();
            assert_eq!(fwd.len(), 8, "stage {s}");
            assert_eq!(bwd.len(), 8, "stage {s}");
            let mut f = fwd.clone();
            f.sort_unstable();
            f.dedup();
            assert_eq!(f.len(), 8);
        }
    }

    #[test]
    fn eager_launch_extends_warmup_within_memory() {
        let lazy = build_template(4, &[8], 2, BucketOrder::Descending);
        let eager = build_template(4, &[8], 6, BucketOrder::Descending);
        let warm = |t: &PipelineTemplate, s: usize| {
            t.program[s]
                .iter()
                .take_while(|i| i.phase == Phase::Forward)
                .count()
        };
        assert!(
            warm(&eager, 0) >= warm(&lazy, 0),
            "more memory should allow more warm-up"
        );
        // Backward ordering is still 1F1B: first backward is mb 0.
        let first_b = eager.program[0]
            .iter()
            .find(|i| i.phase == Phase::Backward)
            .expect("has backward");
        assert_eq!(first_b.mb, 0);
    }

    #[test]
    fn rounds_index_within_bucket() {
        let t = build_template(2, &[2, 3], 2, BucketOrder::Descending);
        assert_eq!(t.mb_round, vec![0, 1, 0, 1, 2]);
    }
}
