//! Workload-balanced hTask grouping (§3.4, Eq. 7).
//!
//! hTasks are grouped into `P` buckets; buckets interleave across pipeline
//! clocks while hTasks inside a bucket interleave within a clock. For each
//! candidate `P`, the grouping minimizes inter-bucket variance of
//! first-stage latency (Eq. 7, solved greedily with longest-processing-time
//! assignment); the driver then picks the `P` whose estimated multi-task
//! pipeline latency (Appendix A, Lemmas 1–2) is lowest.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use mux_model::ops::Pass;

use crate::cost::CostModel;
use crate::htask::HTask;

/// A grouping of hTasks into buckets.
#[derive(Debug, Clone)]
pub struct Grouping {
    /// Buckets of hTask indices, sorted descending by bucket latency
    /// (template rule 1).
    pub buckets: Vec<Vec<usize>>,
    /// Estimated end-to-end latency of the grouped pipeline.
    pub estimated: f64,
}

/// First-stage latency `L^(1)` of each hTask (the Eq. 7 balance metric).
pub fn first_stage_latencies(cm: &CostModel<'_>, htasks: &[HTask]) -> Vec<f64> {
    htasks
        .iter()
        .map(|h| cm.stage_latency(0, h, Pass::Forward))
        .collect()
}

/// A min-heap key over a bucket's `(load, index)`: load ascending via
/// [`f64::total_cmp`] (no panics on non-finite loads), index ascending to
/// match the seed's first-minimum tie-break.
#[derive(Debug, Clone, Copy, PartialEq)]
struct BucketLoad {
    load: f64,
    index: usize,
}

impl Eq for BucketLoad {}

impl PartialOrd for BucketLoad {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for BucketLoad {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.load
            .total_cmp(&other.load)
            .then_with(|| self.index.cmp(&other.index))
    }
}

/// Greedy LPT partition of `lat` into `p` buckets minimizing variance:
/// assign items largest-first to the currently lightest bucket. The
/// lightest bucket comes off a min-heap — O(N log P) per call instead of
/// the seed's O(N·P) linear re-scan, which made the `P`-traversal in
/// [`group_htasks`] cubic in the hTask count.
fn lpt_partition(lat: &[f64], p: usize) -> Vec<Vec<usize>> {
    let mut order: Vec<usize> = (0..lat.len()).collect();
    order.sort_by(|&a, &b| lat[b].total_cmp(&lat[a]));
    let mut buckets = vec![Vec::new(); p];
    let mut loads: BinaryHeap<Reverse<BucketLoad>> = (0..p)
        .map(|index| Reverse(BucketLoad { load: 0.0, index }))
        .collect();
    for i in order {
        let Reverse(BucketLoad { load, index }) = loads.pop().expect("p >= 1");
        buckets[index].push(i);
        loads.push(Reverse(BucketLoad {
            load: load + lat[i],
            index,
        }));
    }
    buckets.retain(|b| !b.is_empty());
    buckets
}

/// Inter-bucket variance of summed first-stage latency (the Eq. 7
/// objective).
pub fn bucket_variance(lat: &[f64], buckets: &[Vec<usize>]) -> f64 {
    let loads: Vec<f64> = buckets
        .iter()
        .map(|b| b.iter().map(|&i| lat[i]).sum())
        .collect();
    let mean = loads.iter().sum::<f64>() / loads.len() as f64;
    loads.iter().map(|l| (l - mean) * (l - mean)).sum::<f64>() / loads.len() as f64
}

/// Appendix-A latency estimate of a grouped multi-task 1F1B pipeline:
/// warm-up/drain of the first and last sorted buckets plus every bucket's
/// steady phase (`2 · C_j · t_j`, Lemma 2), where a bucket's stage latency
/// is the sum of its members' (they interleave within a clock).
/// `stage_lat[i][stage]` is the memoized per-hTask forward stage latency —
/// each `(hTask, stage)` pair is costed once per grouping run, not once per
/// candidate `P`.
fn estimate_grouped_latency(
    stage_lat: &[Vec<f64>],
    htasks: &[HTask],
    buckets: &[Vec<usize>],
) -> f64 {
    let s = stage_lat.first().map_or(0, Vec::len);
    let bucket_bottleneck: Vec<f64> = buckets
        .iter()
        .map(|b| {
            (0..s)
                .map(|stage| b.iter().map(|&i| stage_lat[i][stage]).sum::<f64>())
                .fold(0.0, f64::max)
        })
        .collect();
    let bucket_rounds: Vec<usize> = buckets
        .iter()
        .map(|b| {
            b.iter()
                .map(|&i| htasks[i].micro_batches)
                .max()
                .unwrap_or(0)
        })
        .collect();
    let mut order: Vec<usize> = (0..buckets.len()).collect();
    order.sort_by(|&a, &b| bucket_bottleneck[b].total_cmp(&bucket_bottleneck[a]));
    let t_first = bucket_bottleneck[order[0]];
    let t_last = bucket_bottleneck[*order.last().expect("non-empty")];
    let warm_drain = (s as f64 - 1.0) * (t_first + t_last);
    let steady: f64 = (0..buckets.len())
        .map(|j| 2.0 * bucket_rounds[j] as f64 * bucket_bottleneck[j])
        .sum();
    warm_drain + steady
}

/// Finds the best grouping: traverses `P ∈ [1, N]`, balances each with LPT,
/// and keeps the `P` with the lowest estimated pipeline latency. Buckets in
/// the result are sorted descending by latency (template rule 1).
pub fn group_htasks(cm: &CostModel<'_>, htasks: &[HTask]) -> Grouping {
    assert!(!htasks.is_empty(), "no hTasks to group");
    let _span = mux_obs::span("grouping.search");
    if mux_obs::profile::profiling() {
        let n = htasks.len() as u64;
        // Each candidate P does P initial heap pushes plus a pop+push per
        // item in lpt_partition; summed over the P-traversal this is
        // closed-form, so the hot loop below stays counter-free.
        mux_obs::profile::work("heap_ops", n * (n + 1) / 2 + 2 * n * n);
        mux_obs::profile::work("groupings_tried", n);
    }
    let s = cm.num_stages();
    let stage_lat: Vec<Vec<f64>> = htasks
        .iter()
        .map(|h| {
            (0..s)
                .map(|stage| cm.stage_latency(stage, h, Pass::Forward))
                .collect()
        })
        .collect();
    let lat: Vec<f64> = stage_lat.iter().map(|row| row[0]).collect();
    let mut best: Option<Grouping> = None;
    for p in 1..=htasks.len() {
        let mut buckets = lpt_partition(&lat, p);
        // Sort buckets descending by first-stage load (rule 1).
        buckets.sort_by(|a, b| {
            let la: f64 = a.iter().map(|&i| lat[i]).sum();
            let lb: f64 = b.iter().map(|&i| lat[i]).sum();
            lb.total_cmp(&la)
        });
        let estimated = estimate_grouped_latency(&stage_lat, htasks, &buckets);
        if best
            .as_ref()
            .map(|g| estimated < g.estimated)
            .unwrap_or(true)
        {
            best = Some(Grouping { buckets, estimated });
        }
    }
    best.expect("at least one grouping")
}

#[cfg(test)]
mod tests {
    use super::*;
    use mux_gpu_sim::spec::GpuSpec;
    use mux_model::config::ModelConfig;
    use mux_parallel::plan::HybridParallelism;
    use mux_peft::registry::TaskRegistry;
    use mux_peft::types::{PeftTask, TaskId};

    fn setup(shapes: &[(usize, usize)]) -> TaskRegistry {
        let mut r = TaskRegistry::new(ModelConfig::llama2_7b().with_layers(16));
        for (i, &(mb, seq)) in shapes.iter().enumerate() {
            r.register_task(PeftTask::lora(i as TaskId + 1, 16, mb, seq))
                .expect("register");
        }
        r
    }

    fn single_htasks(r: &TaskRegistry, mbs: usize) -> Vec<HTask> {
        r.tasks().map(|t| HTask::from_padded(&[t], mbs)).collect()
    }

    #[test]
    fn lpt_balances_equal_items_evenly() {
        let lat = vec![1.0, 1.0, 1.0, 1.0];
        let b = lpt_partition(&lat, 2);
        assert_eq!(b.len(), 2);
        assert_eq!(b[0].len(), 2);
        assert!(bucket_variance(&lat, &b) < 1e-12);
    }

    #[test]
    fn lpt_reduces_variance_vs_naive_split() {
        let lat = vec![8.0, 7.0, 1.0, 1.0, 1.0, 6.0];
        let lpt = lpt_partition(&lat, 2);
        let naive = vec![vec![0, 1, 2], vec![3, 4, 5]];
        assert!(bucket_variance(&lat, &lpt) <= bucket_variance(&lat, &naive));
    }

    #[test]
    fn grouping_covers_all_htasks() {
        let r = setup(&[(2, 64), (4, 64), (8, 128), (2, 256)]);
        let hts = single_htasks(&r, 4);
        let cm = CostModel::new(&r, GpuSpec::a40(), HybridParallelism::pipeline(4));
        let g = group_htasks(&cm, &hts);
        let mut all: Vec<usize> = g.buckets.iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all, vec![0, 1, 2, 3]);
    }

    #[test]
    fn buckets_sorted_descending_by_load() {
        let r = setup(&[(1, 64), (16, 256), (2, 64), (8, 256)]);
        let hts = single_htasks(&r, 4);
        let cm = CostModel::new(&r, GpuSpec::a40(), HybridParallelism::pipeline(4));
        let g = group_htasks(&cm, &hts);
        let lat = first_stage_latencies(&cm, &hts);
        let loads: Vec<f64> = g
            .buckets
            .iter()
            .map(|b| b.iter().map(|&i| lat[i]).sum())
            .collect();
        for w in loads.windows(2) {
            assert!(
                w[0] >= w[1] - 1e-12,
                "buckets must be sorted descending: {loads:?}"
            );
        }
    }

    #[test]
    fn single_htask_groups_trivially() {
        let r = setup(&[(4, 128)]);
        let hts = single_htasks(&r, 4);
        let cm = CostModel::new(&r, GpuSpec::a40(), HybridParallelism::pipeline(4));
        let g = group_htasks(&cm, &hts);
        assert_eq!(g.buckets, vec![vec![0]]);
        assert!(g.estimated > 0.0);
    }
}
