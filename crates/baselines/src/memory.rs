//! Per-system memory accounting for the Fig 17 experiments: how per-GPU
//! footprint grows as PEFT tasks are added progressively (each with one
//! micro-batch per iteration), and where each system OOMs.

use mux_data::align::{align, AlignStrategy, TaskData};
use mux_gpu_sim::spec::GpuSpec;
use mux_model::config::ModelConfig;
use mux_model::memory::{activation_bytes, task_state_bytes};
use mux_peft::types::PeftTask;

use crate::runner::SystemKind;

/// Memory breakdown per GPU for a set of co-located tasks.
#[derive(Debug, Clone)]
pub struct MemoryBreakdown {
    /// Backbone parameter bytes (replicated per task or shared).
    pub backbone: u64,
    /// Activation bytes for one in-flight micro-batch per task.
    pub activations: u64,
    /// Adapter training state (grads + optimizer moments).
    pub task_state: u64,
}

impl MemoryBreakdown {
    /// Total bytes.
    pub fn total(&self) -> u64 {
        self.backbone + self.activations + self.task_state
    }
}

/// Tokens each task contributes per micro-batch under the system's
/// alignment strategy.
fn aligned_tokens(system: SystemKind, tasks: &[&PeftTask], corpora: &[Vec<usize>]) -> Vec<u64> {
    match system {
        SystemKind::HfPeft | SystemKind::Nemo => {
            // Single-task instances: pad to own cap only.
            tasks
                .iter()
                .map(|t| (t.micro_batch * t.seq_len) as u64)
                .collect()
        }
        SystemKind::SlPeft => {
            // Zero-pad to the global maximum cap.
            let global = tasks.iter().map(|t| t.seq_len).max().unwrap_or(0);
            tasks
                .iter()
                .map(|t| (t.micro_batch * global) as u64)
                .collect()
        }
        SystemKind::MuxTune => {
            // Chunk-based alignment: per-task effective + residual chunk pad.
            let data: Vec<TaskData> = tasks
                .iter()
                .zip(corpora)
                .map(|(t, lens)| TaskData {
                    task: t.id,
                    seq_lens: lens.clone(),
                    cap: t.seq_len,
                })
                .collect();
            let aligned = align(&data, AlignStrategy::ChunkBased { min_chunk: 64 })
                .expect("fig17 corpora are cap-truncated");
            tasks
                .iter()
                .map(|t| {
                    let a = aligned
                        .tasks
                        .iter()
                        .find(|a| a.task == t.id)
                        .expect("task aligned");
                    // Per micro-batch share of the aligned global batch,
                    // scaled by the task's micro-batch size over its batch.
                    let total = (a.rows * aligned.unit_len) as u64;
                    let seqs = corpora
                        .iter()
                        .zip(tasks)
                        .find(|(_, tt)| tt.id == t.id)
                        .map(|(c, _)| c.len().max(1))
                        .unwrap_or(1);
                    (total * t.micro_batch as u64).div_ceil(seqs as u64)
                })
                .collect()
        }
    }
}

/// Per-GPU memory when `tasks` co-locate on `gpus` devices of one instance
/// (tensor-parallel, as in Fig 17), with `in_flight` resident micro-batches.
pub fn memory_per_gpu(
    system: SystemKind,
    cfg: &ModelConfig,
    tasks: &[&PeftTask],
    corpora: &[Vec<usize>],
    gpus: usize,
    in_flight: usize,
) -> MemoryBreakdown {
    assert!(gpus >= 1);
    let n = tasks.len() as u64;
    let backbone_shard = cfg.param_bytes() / gpus as u64;
    let backbone = match system {
        // One full replica per task, sharded across the same GPUs.
        SystemKind::HfPeft | SystemKind::Nemo => backbone_shard * n,
        // Shared backbone.
        SystemKind::SlPeft | SystemKind::MuxTune => backbone_shard,
    };
    let tokens = aligned_tokens(system, tasks, corpora);
    let activations: u64 = tokens
        .iter()
        .map(|&t| {
            activation_bytes(cfg, cfg.num_layers, t as usize) * in_flight as u64 / gpus as u64
        })
        .sum();
    let task_state: u64 = tasks
        .iter()
        .map(|t| task_state_bytes(t.adapter_params(cfg)) / gpus as u64)
        .sum();
    MemoryBreakdown {
        backbone,
        activations,
        task_state,
    }
}

/// How many tasks (added in order) fit before the first OOM.
pub fn oom_task_count(
    system: SystemKind,
    cfg: &ModelConfig,
    tasks: &[&PeftTask],
    corpora: &[Vec<usize>],
    gpus: usize,
    in_flight: usize,
    gpu: &GpuSpec,
) -> usize {
    for n in 1..=tasks.len() {
        let m = memory_per_gpu(system, cfg, &tasks[..n], &corpora[..n], gpus, in_flight);
        if m.total() > gpu.mem_capacity {
            return n - 1;
        }
    }
    tasks.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mux_data::corpus::{Corpus, DatasetKind};

    fn workload(n: usize) -> (Vec<PeftTask>, Vec<Vec<usize>>) {
        let tasks: Vec<PeftTask> = (0..n)
            .map(|i| PeftTask::lora(i as u32 + 1, 16, 1, 128))
            .collect();
        let corpora: Vec<Vec<usize>> = (0..n)
            .map(|i| Corpus::generate(DatasetKind::OpenBookQa, 8, i as u64).lengths)
            .collect();
        (tasks, corpora)
    }

    #[test]
    fn replicating_systems_grow_linearly_in_backbone() {
        let cfg = ModelConfig::gpt3_2_7b();
        let (tasks, corpora) = workload(8);
        let refs: Vec<&PeftTask> = tasks.iter().collect();
        let m1 = memory_per_gpu(SystemKind::Nemo, &cfg, &refs[..1], &corpora[..1], 2, 1);
        let m8 = memory_per_gpu(SystemKind::Nemo, &cfg, &refs, &corpora, 2, 1);
        assert_eq!(m8.backbone, 8 * m1.backbone);
    }

    #[test]
    fn sharing_systems_keep_backbone_constant() {
        let cfg = ModelConfig::gpt3_2_7b();
        let (tasks, corpora) = workload(8);
        let refs: Vec<&PeftTask> = tasks.iter().collect();
        for sys in [SystemKind::SlPeft, SystemKind::MuxTune] {
            let m1 = memory_per_gpu(sys, &cfg, &refs[..1], &corpora[..1], 2, 1);
            let m8 = memory_per_gpu(sys, &cfg, &refs, &corpora, 2, 1);
            assert_eq!(m1.backbone, m8.backbone, "{sys:?}");
            assert!(m8.activations > m1.activations);
        }
    }

    #[test]
    fn muxtune_activations_do_not_exceed_sl_peft() {
        // Chunking removes padded rows, so MuxTune's activation bill is at
        // most SL-PEFT's (strictly less with mixed caps).
        let cfg = ModelConfig::llama2_7b();
        let mut tasks: Vec<PeftTask> = Vec::new();
        let mut corpora = Vec::new();
        for i in 0..4u32 {
            let (seq, kind) = if i % 2 == 0 {
                (64, DatasetKind::Sst2)
            } else {
                (256, DatasetKind::Rte)
            };
            tasks.push(PeftTask::lora(i + 1, 16, 1, seq));
            corpora.push(Corpus::generate(kind, 8, i as u64).lengths);
        }
        let refs: Vec<&PeftTask> = tasks.iter().collect();
        let sl = memory_per_gpu(SystemKind::SlPeft, &cfg, &refs, &corpora, 2, 1);
        let mux = memory_per_gpu(SystemKind::MuxTune, &cfg, &refs, &corpora, 2, 1);
        assert!(
            mux.activations < sl.activations,
            "mux {} vs sl {}",
            mux.activations,
            sl.activations
        );
    }

    #[test]
    fn replicating_systems_oom_first() {
        // Fig 17a: NeMo/HF-PEFT OOM after ~15 GPT2.7B tasks on 2x48GB;
        // sharing systems scale to 32.
        let cfg = ModelConfig::gpt3_2_7b();
        let (tasks, corpora) = workload(32);
        let refs: Vec<&PeftTask> = tasks.iter().collect();
        let gpu = GpuSpec::a40();
        let nemo = oom_task_count(SystemKind::Nemo, &cfg, &refs, &corpora, 2, 1, &gpu);
        let sl = oom_task_count(SystemKind::SlPeft, &cfg, &refs, &corpora, 2, 1, &gpu);
        let mux = oom_task_count(SystemKind::MuxTune, &cfg, &refs, &corpora, 2, 1, &gpu);
        assert!(nemo < 20, "NeMo should OOM in the teens, got {nemo}");
        assert!(nemo >= 10, "NeMo should fit ~15 tasks, got {nemo}");
        assert_eq!(sl, 32);
        assert_eq!(mux, 32);
    }
}
