//! # mux-baselines
//!
//! The three §5.1 baselines, re-implemented as *strategies* over the same
//! simulator substrate MuxTune runs on, so every comparison isolates
//! scheduling policy rather than implementation accidents:
//!
//! * **HF-PEFT** — one instance per task, full backbone replica each,
//!   pipeline-only parallelism, blocking communication, no multi-task
//!   sharing (tasks run back-to-back on the same GPUs);
//! * **NeMo Megatron** — single-task execution with grid-searched hybrid
//!   parallelism and efficient kernels, blocking (sequentially launched)
//!   communication, backbone replicated per task;
//! * **SL-PEFT** — SLoRA's techniques applied to fine-tuning: shared
//!   backbone, batching-only spatial multiplexing of *all* tasks, global
//!   zero-padding alignment, no operator orchestration.

pub mod memory;
pub mod runner;

pub use memory::{memory_per_gpu, oom_task_count, MemoryBreakdown};
pub use runner::{run_system, SystemKind, SystemReport};
