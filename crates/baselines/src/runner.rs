//! A common harness running MuxTune and every baseline under identical
//! workloads, clusters, and metrics.

use std::collections::BTreeMap;

use mux_data::align::AlignStrategy;
use mux_gpu_sim::timeline::Cluster;
use mux_parallel::plan::HybridParallelism;
use mux_peft::registry::TaskRegistry;
use mux_peft::types::TaskId;
use muxtune_core::engine::{EngineOptions, RunMetrics};
use muxtune_core::fusion::FusionPolicy;
use muxtune_core::planner::{plan_and_run, PlannerConfig};
use muxtune_core::template::BucketOrder;
use muxtune_core::PlanError;

/// The systems under comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SystemKind {
    /// MuxTune (full).
    MuxTune,
    /// HuggingFace-PEFT-style per-task instances.
    HfPeft,
    /// NeMo-Megatron-style single-task execution.
    Nemo,
    /// SLoRA techniques adapted to PEFT (batching-only sharing).
    SlPeft,
}

impl SystemKind {
    /// Display name matching the paper's legends.
    pub fn name(&self) -> &'static str {
        match self {
            SystemKind::MuxTune => "MuxTune",
            SystemKind::HfPeft => "HF-PEFT",
            SystemKind::Nemo => "NeMo",
            SystemKind::SlPeft => "SL-PEFT",
        }
    }

    /// All four, MuxTune first.
    pub const ALL: [SystemKind; 4] = [
        SystemKind::MuxTune,
        SystemKind::HfPeft,
        SystemKind::Nemo,
        SystemKind::SlPeft,
    ];
}

/// One system's result on one workload.
#[derive(Debug, Clone)]
pub struct SystemReport {
    /// Which system.
    pub system: SystemKind,
    /// The parallelism the grid search settled on.
    pub plan: HybridParallelism,
    /// Aggregate run metrics.
    pub metrics: RunMetrics,
}

fn blocking_options() -> EngineOptions {
    EngineOptions {
        overlap_comm: false,
        orchestrate: false,
        fuse_adapters: false,
        generous_ctas: false,
        max_in_flight: 0,
        bucket_order: BucketOrder::Descending,
    }
}

fn planner_for(system: SystemKind, plan: HybridParallelism, mbs: usize) -> PlannerConfig {
    match system {
        SystemKind::MuxTune => PlannerConfig::muxtune(plan, mbs),
        SystemKind::HfPeft | SystemKind::Nemo => PlannerConfig {
            plan,
            micro_batches: mbs,
            // Single-task execution: no inter-task alignment happens, but
            // sequences still pad to the task cap.
            align: AlignStrategy::ZeroPadGlobalMax,
            fusion: FusionPolicy::AllTemporal,
            options: blocking_options(),
        },
        SystemKind::SlPeft => PlannerConfig {
            plan,
            micro_batches: mbs,
            align: AlignStrategy::ZeroPadGlobalMax,
            fusion: FusionPolicy::AllSpatial,
            options: blocking_options(),
        },
    }
}

/// Candidate parallelism plans a system may use (§5.1 grid search).
fn search_space(system: SystemKind, gpus: usize, gpus_per_node: usize) -> Vec<HybridParallelism> {
    let all = HybridParallelism::search_space(gpus, gpus_per_node);
    match system {
        // HF-PEFT supports naive pipeline splits only (device_map-style).
        SystemKind::HfPeft => all.into_iter().filter(|p| p.tp == 1).collect(),
        _ => all,
    }
}

fn run_once(
    system: SystemKind,
    registry: &TaskRegistry,
    cluster: &Cluster,
    corpora: &BTreeMap<TaskId, Vec<usize>>,
    plan: HybridParallelism,
    mbs: usize,
) -> Result<RunMetrics, PlanError> {
    let cfg = planner_for(system, plan, mbs);
    match system {
        SystemKind::MuxTune | SystemKind::SlPeft => {
            plan_and_run(registry, cluster, corpora, &cfg).map(|r| r.metrics)
        }
        SystemKind::HfPeft | SystemKind::Nemo => {
            // Per-task instances executed back-to-back on the same GPUs.
            let mut makespan = 0.0;
            let mut total = 0u64;
            let mut eff = 0u64;
            let mut util = 0.0;
            let mut mfu = 0.0;
            let mut peak = vec![0u64; cluster.num_gpus()];
            let mut energy = 0.0;
            let mut n = 0.0;
            for t in registry.tasks() {
                let mut solo = TaskRegistry::new(registry.backbone().clone());
                solo.register_task(t.clone()).expect("fresh registry");
                let m = plan_and_run(&solo, cluster, corpora, &cfg)?.metrics;
                makespan += m.makespan;
                total += m.total_tokens;
                eff += m.effective_tokens;
                util += m.mean_utilization;
                mfu += m.mfu;
                // Replicated backbones: peak memory accumulates per task
                // (instances co-reside; see mux-baselines::memory for the
                // exact Fig 17 accounting).
                for (p, q) in peak.iter_mut().zip(&m.peak_mem) {
                    *p += *q;
                }
                energy += m.energy_joules;
                n += 1.0;
            }
            Ok(RunMetrics {
                makespan,
                total_tokens: total,
                effective_tokens: eff,
                throughput: total as f64 / makespan,
                effective_throughput: eff as f64 / makespan,
                mean_utilization: util / n,
                peak_mem: peak,
                mfu: mfu / n,
                energy_joules: energy,
                tokens_per_joule: if energy > 0.0 {
                    eff as f64 / energy
                } else {
                    0.0
                },
            })
        }
    }
}

/// Runs `system` on the registered workload with grid-searched parallelism
/// and returns its report.
pub fn run_system(
    system: SystemKind,
    registry: &TaskRegistry,
    cluster: &Cluster,
    corpora: &BTreeMap<TaskId, Vec<usize>>,
    micro_batches: usize,
) -> Result<SystemReport, PlanError> {
    let candidates = search_space(system, cluster.num_gpus(), cluster.gpus_per_node);
    let mut best: Option<SystemReport> = None;
    let mut last_err: Option<PlanError> = None;
    for plan in candidates {
        if registry.backbone().num_layers < plan.pp {
            continue;
        }
        match run_once(system, registry, cluster, corpora, plan, micro_batches) {
            Ok(metrics) => {
                if best
                    .as_ref()
                    .map(|b| metrics.throughput > b.metrics.throughput)
                    .unwrap_or(true)
                {
                    best = Some(SystemReport {
                        system,
                        plan,
                        metrics,
                    });
                }
            }
            Err(e) => last_err = Some(e),
        }
    }
    best.ok_or_else(|| last_err.expect("no candidate plans at all"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mux_gpu_sim::spec::{GpuSpec, LinkSpec};
    use mux_model::config::ModelConfig;
    use mux_peft::types::PeftTask;

    fn workload(n: usize, seq: usize) -> TaskRegistry {
        let mut r = TaskRegistry::new(ModelConfig::llama2_7b().with_layers(16));
        for i in 0..n {
            r.register_task(PeftTask::lora(i as TaskId + 1, 16, 4, seq))
                .expect("register");
        }
        r
    }

    fn cluster(n: usize) -> Cluster {
        Cluster::single_node(GpuSpec::a40(), n, LinkSpec::nvlink_a40())
    }

    #[test]
    fn all_systems_complete_the_same_workload() {
        let r = workload(4, 128);
        let c = cluster(4);
        for sys in SystemKind::ALL {
            let rep = run_system(sys, &r, &c, &BTreeMap::new(), 4)
                .unwrap_or_else(|_| panic!("{}", sys.name()));
            assert!(rep.metrics.throughput > 0.0, "{}", sys.name());
            assert_eq!(
                rep.metrics.effective_tokens,
                rep.metrics.total_tokens,
                "uniform caps: no inter-task padding for {}",
                sys.name()
            );
        }
    }

    #[test]
    fn muxtune_beats_every_baseline_on_light_multitask_work() {
        let r = workload(4, 64);
        let c = cluster(4);
        let mux = run_system(SystemKind::MuxTune, &r, &c, &BTreeMap::new(), 4).expect("mux");
        for sys in [SystemKind::HfPeft, SystemKind::Nemo, SystemKind::SlPeft] {
            let rep = run_system(sys, &r, &c, &BTreeMap::new(), 4)
                .unwrap_or_else(|_| panic!("{}", sys.name()));
            assert!(
                mux.metrics.throughput > rep.metrics.throughput,
                "MuxTune {} vs {} {}",
                mux.metrics.throughput,
                sys.name(),
                rep.metrics.throughput
            );
        }
    }

    #[test]
    fn nemo_beats_hf_peft_via_grid_search() {
        // NeMo may pick TP; HF-PEFT is pipeline-only — with a light
        // workload the searched plan should not be worse.
        let r = workload(2, 128);
        let c = cluster(4);
        let nemo = run_system(SystemKind::Nemo, &r, &c, &BTreeMap::new(), 4).expect("nemo");
        let hf = run_system(SystemKind::HfPeft, &r, &c, &BTreeMap::new(), 4).expect("hf");
        assert!(nemo.metrics.throughput >= hf.metrics.throughput);
    }

    #[test]
    fn sl_peft_suffers_on_non_uniform_lengths() {
        // Mixed 64/256 caps: SL-PEFT zero-pads everything to 256, so its
        // effective throughput collapses relative to MuxTune's chunking.
        let mut r = TaskRegistry::new(ModelConfig::llama2_7b().with_layers(16));
        r.register_task(PeftTask::lora(1, 16, 4, 64)).expect("t");
        r.register_task(PeftTask::lora(2, 16, 4, 64)).expect("t");
        r.register_task(PeftTask::lora(3, 16, 4, 256)).expect("t");
        r.register_task(PeftTask::lora(4, 16, 4, 256)).expect("t");
        let c = cluster(4);
        let mux = run_system(SystemKind::MuxTune, &r, &c, &BTreeMap::new(), 4).expect("mux");
        let sl = run_system(SystemKind::SlPeft, &r, &c, &BTreeMap::new(), 4).expect("sl");
        let mux_eff_frac = mux.metrics.effective_tokens as f64 / mux.metrics.total_tokens as f64;
        let sl_eff_frac = sl.metrics.effective_tokens as f64 / sl.metrics.total_tokens as f64;
        assert!(
            mux_eff_frac > sl_eff_frac,
            "MuxTune eff {mux_eff_frac} vs SL-PEFT {sl_eff_frac}"
        );
        assert!(mux.metrics.effective_throughput > sl.metrics.effective_throughput);
    }
}
