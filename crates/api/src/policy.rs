//! Pluggable admission/fairness policies for multi-tenant trace replay.
//!
//! The trace replayer (`mux-workload`) keeps arrivals in an external
//! pending queue and, whenever the service has room, asks a
//! [`SchedulingPolicy`] which pending job to submit next. The policy sees
//! the queue plus a [`TenantUsage`] ledger of what each tenant has already
//! received, and returns an index into the queue — nothing else. That
//! narrow contract is what makes the four textbook disciplines (FCFS,
//! strict priority, weighted fair share, DRF) drop-in interchangeable and
//! lets the differential tests replay one trace under all of them.
//!
//! Policies must be **deterministic**: the same queue and ledger must pick
//! the same job, or the same seed would stop reproducing the same journal
//! fingerprint. Every tie therefore breaks on a total order ending in the
//! unique trace id.

use std::collections::BTreeMap;

/// A trace job waiting in the replayer's pending queue.
#[derive(Debug, Clone, PartialEq)]
pub struct PendingJob {
    /// Unique id within the trace (assignment order = arrival order).
    pub trace_id: u64,
    /// Owning tenant.
    pub tenant: String,
    /// Backbone the job fine-tunes (capacity checks, not ordering).
    pub backbone: String,
    /// Arrival time, seconds from trace start.
    pub arrival: f64,
    /// Tenant priority (higher = more urgent under strict priority).
    pub priority: u8,
    /// Requested training tokens (the job's "work" dimension).
    pub total_tokens: u64,
    /// Completion SLO, seconds from submission (`None` = best-effort).
    pub slo_seconds: Option<f64>,
}

/// Per-tenant resource ledger the replayer maintains while dispatching.
///
/// Two resource dimensions back the fair-share and DRF math:
/// *slots* (jobs currently admitted and not yet finished — the service's
/// co-location capacity) and *work* (training tokens dispatched so far).
#[derive(Debug, Clone, Default)]
pub struct TenantUsage {
    /// Tenant → jobs currently in flight (admitted, not yet terminal).
    pub running_slots: BTreeMap<String, usize>,
    /// Tenant → total tokens dispatched over the whole replay.
    pub dispatched_tokens: BTreeMap<String, u64>,
    /// Tenant → fair-share weight (defaults to 1.0 when absent).
    pub weights: BTreeMap<String, f64>,
    /// Cluster-wide slot capacity (instances × max tasks per instance).
    pub total_slots: usize,
    /// Total tokens dispatched across all tenants.
    pub total_tokens: u64,
}

impl TenantUsage {
    /// The tenant's fair-share weight (1.0 when unset or non-positive).
    pub fn weight(&self, tenant: &str) -> f64 {
        match self.weights.get(tenant) {
            Some(w) if *w > 0.0 && w.is_finite() => *w,
            _ => 1.0,
        }
    }

    /// Slots the tenant currently occupies.
    pub fn slots(&self, tenant: &str) -> usize {
        self.running_slots.get(tenant).copied().unwrap_or(0)
    }

    /// Tokens the tenant has been dispatched so far.
    pub fn tokens(&self, tenant: &str) -> u64 {
        self.dispatched_tokens.get(tenant).copied().unwrap_or(0)
    }

    /// The tenant's DRF dominant share: max of its slot share and its
    /// work share. Zero-capacity denominators contribute a zero share
    /// (nothing allocated yet means nothing dominated yet).
    pub fn dominant_share(&self, tenant: &str) -> f64 {
        let slot_share = if self.total_slots > 0 {
            self.slots(tenant) as f64 / self.total_slots as f64
        } else {
            0.0
        };
        let work_share = if self.total_tokens > 0 {
            self.tokens(tenant) as f64 / self.total_tokens as f64
        } else {
            0.0
        };
        slot_share.max(work_share)
    }
}

/// How a policy orders the pending queue.
///
/// A policy is a **scoring function**: [`SchedulingPolicy::score`] maps
/// each pending job to an f64 where **lower wins**, and the provided
/// [`SchedulingPolicy::pick`] takes the argmin over the total order
/// `(score, arrival, trace_id)` — so every policy shares one deterministic
/// tiebreak and, since scores are first-class values, every decision can
/// be journaled as provenance (`report --explain-job` renders "picked
/// over X because score a < b" from the recorded scores alone).
///
/// `pick` returns the index (into `pending`) of the job to submit next,
/// or `None` to leave everything queued (only meaningful for admission
/// variants; the four built-ins always pick when the queue is non-empty).
pub trait SchedulingPolicy {
    /// Stable policy name (CLI `--policy` value, report key).
    fn name(&self) -> &'static str;

    /// What [`SchedulingPolicy::score`] measures (journaled with each
    /// decision so explanations can name the unit): `arrival_seconds`,
    /// `neg_priority`, `normalized_tokens`, `dominant_share`, …
    fn score_kind(&self) -> &'static str;

    /// The job's scheduling score — **lower wins**. Must be deterministic
    /// in `(job, usage)`.
    fn score(&self, job: &PendingJob, usage: &TenantUsage) -> f64;

    /// Chooses the next pending job to submit: the argmin of
    /// `(score, arrival, trace_id)`. Deterministic because the trailing
    /// trace id is unique. Must return a valid index when `Some`.
    fn pick(&self, pending: &[PendingJob], usage: &TenantUsage) -> Option<usize> {
        argmin_by_key(pending, |j| {
            (OrdF64(self.score(j, usage)), OrdF64(j.arrival), j.trace_id)
        })
    }
}

/// First-come-first-served: global arrival order, ties by trace id.
#[derive(Debug, Clone, Copy, Default)]
pub struct Fcfs;

impl SchedulingPolicy for Fcfs {
    fn name(&self) -> &'static str {
        "fcfs"
    }

    fn score_kind(&self) -> &'static str {
        "arrival_seconds"
    }

    fn score(&self, job: &PendingJob, _usage: &TenantUsage) -> f64 {
        job.arrival
    }
}

/// Strict priority: highest priority first, FCFS within a priority class.
#[derive(Debug, Clone, Copy, Default)]
pub struct StrictPriority;

impl SchedulingPolicy for StrictPriority {
    fn name(&self) -> &'static str {
        "priority"
    }

    fn score_kind(&self) -> &'static str {
        "neg_priority"
    }

    /// Negated priority: higher priority ⇒ smaller score ⇒ wins. Exactly
    /// the `Reverse(priority)` ordering the policy used before scores
    /// became first-class (u8 negates losslessly in f64).
    fn score(&self, job: &PendingJob, _usage: &TenantUsage) -> f64 {
        -f64::from(job.priority)
    }
}

/// Weighted fair share over dispatched work: always serve the tenant with
/// the smallest `dispatched_tokens / weight`, FCFS within the tenant.
#[derive(Debug, Clone, Copy, Default)]
pub struct WeightedFair;

impl SchedulingPolicy for WeightedFair {
    fn name(&self) -> &'static str {
        "wfs"
    }

    fn score_kind(&self) -> &'static str {
        "normalized_tokens"
    }

    fn score(&self, job: &PendingJob, usage: &TenantUsage) -> f64 {
        usage.tokens(&job.tenant) as f64 / usage.weight(&job.tenant)
    }
}

/// Dominant Resource Fairness across (slots, work): serve the tenant with
/// the smallest dominant share, FCFS within the tenant.
#[derive(Debug, Clone, Copy, Default)]
pub struct Drf;

impl SchedulingPolicy for Drf {
    fn name(&self) -> &'static str {
        "drf"
    }

    fn score_kind(&self) -> &'static str {
        "dominant_share"
    }

    fn score(&self, job: &PendingJob, usage: &TenantUsage) -> f64 {
        usage.dominant_share(&job.tenant)
    }
}

/// All built-in policies, in CLI/report order.
pub const POLICY_NAMES: [&str; 4] = ["fcfs", "priority", "wfs", "drf"];

/// Instantiates a built-in policy by its stable name.
pub fn policy_by_name(name: &str) -> Option<Box<dyn SchedulingPolicy>> {
    match name {
        "fcfs" => Some(Box::new(Fcfs)),
        "priority" => Some(Box::new(StrictPriority)),
        "wfs" => Some(Box::new(WeightedFair)),
        "drf" => Some(Box::new(Drf)),
        _ => None,
    }
}

/// Total-ordered f64 wrapper so policy keys can use lexicographic tuples.
/// `total_cmp` puts NaN above every number, which for a min-argmin means
/// corrupt keys lose ties instead of poisoning the ordering.
#[derive(Debug, Clone, Copy, PartialEq)]
struct OrdF64(f64);

impl Eq for OrdF64 {}

impl PartialOrd for OrdF64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrdF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

fn argmin_by_key<K: Ord>(pending: &[PendingJob], key: impl Fn(&PendingJob) -> K) -> Option<usize> {
    pending
        .iter()
        .enumerate()
        .min_by_key(|(_, j)| key(j))
        .map(|(i, _)| i)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(id: u64, tenant: &str, arrival: f64, priority: u8, tokens: u64) -> PendingJob {
        PendingJob {
            trace_id: id,
            tenant: tenant.to_string(),
            backbone: "LLaMA2-7B".to_string(),
            arrival,
            priority,
            total_tokens: tokens,
            slo_seconds: None,
        }
    }

    #[test]
    fn fcfs_picks_earliest_arrival_ties_by_id() {
        let pending = vec![
            job(3, "a", 2.0, 9, 100),
            job(1, "b", 1.0, 0, 100),
            job(2, "c", 1.0, 5, 100),
        ];
        let usage = TenantUsage::default();
        assert_eq!(Fcfs.pick(&pending, &usage), Some(1), "earliest, lowest id");
        assert_eq!(Fcfs.pick(&[], &usage), None);
    }

    #[test]
    fn strict_priority_preempts_arrival_order() {
        let pending = vec![
            job(1, "a", 0.0, 0, 100),
            job(2, "b", 5.0, 7, 100),
            job(3, "c", 1.0, 7, 100),
        ];
        let usage = TenantUsage::default();
        // Highest priority wins; within priority 7 the earlier arrival.
        assert_eq!(StrictPriority.pick(&pending, &usage), Some(2));
    }

    #[test]
    fn weighted_fair_serves_most_underserved_tenant() {
        let pending = vec![job(1, "a", 0.0, 0, 100), job(2, "b", 1.0, 0, 100)];
        let mut usage = TenantUsage::default();
        usage.dispatched_tokens.insert("a".into(), 1000);
        usage.dispatched_tokens.insert("b".into(), 600);
        // Equal weights: b has less dispatched work.
        assert_eq!(WeightedFair.pick(&pending, &usage), Some(1));
        // Give a weight 4: its normalized share 250 drops below b's 600.
        usage.weights.insert("a".into(), 4.0);
        assert_eq!(WeightedFair.pick(&pending, &usage), Some(0));
    }

    #[test]
    fn drf_serves_smallest_dominant_share() {
        let pending = vec![job(1, "a", 0.0, 0, 100), job(2, "b", 1.0, 0, 100)];
        let mut usage = TenantUsage {
            total_slots: 10,
            total_tokens: 1000,
            ..TenantUsage::default()
        };
        // a: slot share 0.5, work share 0.1 -> dominant 0.5.
        // b: slot share 0.1, work share 0.4 -> dominant 0.4.
        usage.running_slots.insert("a".into(), 5);
        usage.dispatched_tokens.insert("a".into(), 100);
        usage.running_slots.insert("b".into(), 1);
        usage.dispatched_tokens.insert("b".into(), 400);
        assert!((usage.dominant_share("a") - 0.5).abs() < 1e-12);
        assert!((usage.dominant_share("b") - 0.4).abs() < 1e-12);
        assert_eq!(Drf.pick(&pending, &usage), Some(1));
        // Unknown tenant: zero share, always served first.
        let pending2 = vec![job(1, "a", 0.0, 0, 100), job(3, "fresh", 9.0, 0, 100)];
        assert_eq!(Drf.pick(&pending2, &usage), Some(1));
    }

    #[test]
    fn default_pick_matches_the_legacy_tuple_keys() {
        // The score-based default `pick` must order exactly like the
        // original per-policy tuple keys did (behavioral pin for journal
        // fingerprint stability across the refactor).
        let pending = vec![
            job(1, "a", 3.0, 2, 500),
            job(2, "b", 1.0, 7, 100),
            job(3, "a", 1.0, 7, 900),
            job(4, "c", 0.5, 0, 50),
        ];
        let mut usage = TenantUsage {
            total_slots: 8,
            total_tokens: 1000,
            ..TenantUsage::default()
        };
        usage.dispatched_tokens.insert("a".into(), 700);
        usage.dispatched_tokens.insert("b".into(), 300);
        usage.running_slots.insert("a".into(), 3);
        usage.weights.insert("b".into(), 2.0);

        let legacy_fcfs = argmin_by_key(&pending, |j| (OrdF64(j.arrival), j.trace_id));
        let legacy_prio = argmin_by_key(&pending, |j| {
            (std::cmp::Reverse(j.priority), OrdF64(j.arrival), j.trace_id)
        });
        let legacy_wfs = argmin_by_key(&pending, |j| {
            let normalized = usage.tokens(&j.tenant) as f64 / usage.weight(&j.tenant);
            (OrdF64(normalized), OrdF64(j.arrival), j.trace_id)
        });
        let legacy_drf = argmin_by_key(&pending, |j| {
            (
                OrdF64(usage.dominant_share(&j.tenant)),
                OrdF64(j.arrival),
                j.trace_id,
            )
        });
        assert_eq!(Fcfs.pick(&pending, &usage), legacy_fcfs);
        assert_eq!(StrictPriority.pick(&pending, &usage), legacy_prio);
        assert_eq!(WeightedFair.pick(&pending, &usage), legacy_wfs);
        assert_eq!(Drf.pick(&pending, &usage), legacy_drf);
    }

    #[test]
    fn policy_registry_covers_every_name() {
        for name in POLICY_NAMES {
            let p = policy_by_name(name).expect("registered");
            assert_eq!(p.name(), name);
        }
        assert!(policy_by_name("lottery").is_none());
    }
}
