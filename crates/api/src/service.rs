//! The fine-tuning service: the paper's Fig 1 workflow end to end.
//!
//! Tenants submit [`JobSpec`]s; the cluster scheduler dispatches each job
//! to an in-flight instance *with the same backbone* or creates a new
//! instance when none fits (§3.1). Each membership change re-invokes the
//! MuxTune planner for the instance, so per-job progress rates always
//! reflect the current co-location — arrival and departure events never
//! rebuild the backbone (the registry's dynamic attachment).

use std::cmp::Reverse;
use std::collections::{BTreeMap, BTreeSet, BinaryHeap, VecDeque};

use mux_data::corpus::Corpus;
use mux_gpu_sim::spec::{GpuSpec, LinkSpec};
use mux_gpu_sim::timeline::Cluster;
use mux_gpu_sim::timeline::{OpKind, OpRecord};
use mux_model::config::ModelConfig;
use mux_obs_analysis::online::{self, Alert, AlertEvent, MonitorConfig, OnlineMonitor};
use mux_obs_analysis::{
    critical_path, device_attribution, jain_index, slo_attainment, CriticalPath, DeviceAttribution,
    HTaskRef, StallClass,
};
use mux_parallel::plan::HybridParallelism;
use mux_peft::registry::TaskRegistry;
use mux_peft::types::TaskId;
use muxtune_core::planner::{
    degraded_plan, plan_and_run, plan_and_run_traced, plan_estimate, IncrementalEstimator,
    MuxTuneReport, PlannerConfig,
};
use serde_json::{Map, Value};

use crate::job::{Job, JobId, JobSpec, JobState};
use crate::journal::{DecisionCandidate, EventKind, Journal, ReplayState};
use crate::serving::{self, RequestSpec, ServingConfig, ServingRuntime};

/// Dispatch policies (§3.1 mentions budget-based Kubernetes scheduling;
/// §6 sketches multiplexing-aware variants).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DispatchPolicy {
    /// Prefer the least-loaded in-flight instance with the same backbone;
    /// create a new instance only when none has capacity (multiplexing-
    /// aware — the §6 recommendation).
    SameBackboneFirst,
    /// One instance per job while GPUs remain (the single-task-framework
    /// deployment model).
    DedicatedInstances,
}

/// Exponential-backoff schedule for transient comm-fault retries.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Backoff before the first retry, seconds.
    pub base_backoff: f64,
    /// Hard cap on any single backoff, seconds.
    pub max_backoff: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            base_backoff: 0.05,
            max_backoff: 0.8,
        }
    }
}

impl RetryPolicy {
    /// Backoff before 1-based retry `attempt`:
    /// `min(base · 2^(attempt−1), cap)`.
    pub fn backoff(&self, attempt: u32) -> f64 {
        (self.base_backoff * 2f64.powi(attempt.saturating_sub(1).min(62) as i32))
            .min(self.max_backoff)
    }
}

/// Service configuration.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Total GPUs in the pool.
    pub gpus_total: usize,
    /// GPUs per instance.
    pub gpus_per_instance: usize,
    /// GPU model.
    pub gpu: GpuSpec,
    /// Intra-instance link.
    pub link: LinkSpec,
    /// Per-instance parallelism.
    pub plan: HybridParallelism,
    /// Unified micro-batch count.
    pub micro_batches: usize,
    /// Memory-independent cap on co-located tasks per instance.
    pub max_tasks_per_instance: usize,
    /// Dispatch policy.
    pub dispatch: DispatchPolicy,
    /// Optional layer truncation of every backbone (tests/demo speed).
    pub backbone_layers: Option<usize>,
    /// Backoff schedule for transient comm-fault retries.
    pub retry: RetryPolicy,
    /// How membership changes are re-priced (see [`ReplanMode`]).
    pub replan_mode: ReplanMode,
}

/// How the service prices progress rates on a replan.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReplanMode {
    /// Full fidelity: plan candidates are validated on the GPU simulator
    /// ([`plan_and_run`]) — several engine runs per membership change.
    #[default]
    Simulate,
    /// Cost-model fast path: throughput comes from the fusion DP plus the
    /// Appendix-A grouped-latency estimate ([`plan_estimate`]), no engine
    /// runs. ~100× cheaper per replan with the same feasibility/error
    /// surface; rates are estimates, not simulator measurements. The
    /// 10⁴–10⁵-job trace replayer runs in this mode.
    Estimate,
    /// Incremental fast path: each instance keeps a warm
    /// [`IncrementalEstimator`] that persists the fusion DP's per-range
    /// latency/feasibility tables across replans. A membership delta
    /// rebuilds only the ranges whose underlying sorted-task slice
    /// changed and recomputes the invalidated DP suffix; a replan with
    /// unchanged membership (e.g. a fault clearing) is a pure cache hit
    /// that builds zero ranges. Produces bitwise-identical rates to
    /// [`ReplanMode::Estimate`] (pinned by differential tests).
    Incremental,
}

impl ServiceConfig {
    /// A 4-GPU-per-instance A40 pool.
    pub fn a40_pool(gpus_total: usize) -> Self {
        Self {
            gpus_total,
            gpus_per_instance: 4,
            gpu: GpuSpec::a40(),
            link: LinkSpec::nvlink_a40(),
            plan: HybridParallelism::pipeline(4),
            micro_batches: 4,
            max_tasks_per_instance: 8,
            dispatch: DispatchPolicy::SameBackboneFirst,
            backbone_layers: None,
            retry: RetryPolicy::default(),
            replan_mode: ReplanMode::default(),
        }
    }
}

/// A fault an operator (or the chaos harness) injects into the service.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ServiceFault {
    /// One device computes `factor`× slower (straggler): the hosting
    /// instance's pipeline runs at the straggler's pace until cleared.
    DeviceSlowdown {
        /// Affected instance.
        instance: usize,
        /// Straggling device within the instance.
        device: usize,
        /// Slowdown factor, > 1.
        factor: f64,
    },
    /// The instance's interconnect degrades by `factor` until cleared.
    LinkDegrade {
        /// Affected instance.
        instance: usize,
        /// Bandwidth degradation factor, > 1.
        factor: f64,
    },
    /// The instance's comm stack fails transiently: progress freezes and
    /// the service retries with exponential backoff; the `failures`-th
    /// retry succeeds and the instance resumes.
    TransientComm {
        /// Affected instance.
        instance: usize,
        /// Retry attempts needed before the comm layer recovers (≥ 1).
        failures: u32,
    },
    /// A device is lost permanently: affected jobs checkpoint/restart and
    /// the instance re-plans onto its surviving devices (or sheds).
    DeviceLoss {
        /// Affected instance.
        instance: usize,
        /// Lost device within the instance.
        device: usize,
    },
}

/// Typed rejection of an invalid fault injection.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultError {
    /// Instance index out of range.
    NoSuchInstance(usize),
    /// Device index out of range for the instance shape.
    NoSuchDevice {
        /// Targeted instance.
        instance: usize,
        /// Out-of-range device.
        device: usize,
    },
    /// Slowdown/degradation factors must be finite and > 1.
    BadFactor(f64),
    /// Transient faults need at least one failing attempt.
    ZeroFailures,
    /// The device was already lost (loss is permanent).
    DeviceAlreadyLost {
        /// Targeted instance.
        instance: usize,
        /// Already-lost device.
        device: usize,
    },
}

impl std::fmt::Display for FaultError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultError::NoSuchInstance(i) => write!(f, "no such instance {i}"),
            FaultError::NoSuchDevice { instance, device } => {
                write!(f, "instance {instance} has no device {device}")
            }
            FaultError::BadFactor(x) => {
                write!(f, "fault factor must be finite and > 1, got {x}")
            }
            FaultError::ZeroFailures => write!(f, "transient fault needs failures >= 1"),
            FaultError::DeviceAlreadyLost { instance, device } => {
                write!(f, "device {device} on instance {instance} is already lost")
            }
        }
    }
}

impl std::error::Error for FaultError {}

/// Running totals of injected faults and recovery actions, for the
/// report's `faults` section and chaos-harness assertions.
#[derive(Debug, Clone, Default)]
pub struct FaultStats {
    /// Injections by fault-kind name (`device_slowdown`, `link_degrade`,
    /// `comm_transient`, `device_loss`).
    pub injected: BTreeMap<String, u64>,
    /// Recovery actions by name (`retry`, `restart`, `replan`, `shed`).
    pub recoveries: BTreeMap<String, u64>,
}

/// Live transient-comm outage state on one instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct OutageState {
    /// Retries attempted so far.
    attempt: u32,
    /// Retries needed before the comm layer recovers.
    failures: u32,
    /// Injection token; resume events with a stale token are discarded.
    token: u64,
}

struct Instance {
    backbone_name: String,
    registry: TaskRegistry,
    corpora: BTreeMap<TaskId, Vec<usize>>,
    /// Which job each registered task belongs to.
    job_of_task: BTreeMap<TaskId, JobId>,
    /// Per-task effective token rates (tokens/sec): the planner's raw
    /// rates scaled by the live fault state (0 during an outage).
    rates: BTreeMap<TaskId, f64>,
    /// The planner's fault-free rates under the current plan; `rates` is
    /// always derivable from these plus the fault state.
    raw_rates: BTreeMap<TaskId, f64>,
    /// Live per-device compute slowdown factors (stragglers).
    slow_factors: BTreeMap<usize, f64>,
    /// Live interconnect degradation factor (1 = healthy).
    link_factor: f64,
    /// Permanently lost devices.
    lost_devices: BTreeSet<usize>,
    /// In-flight transient comm outage, if any.
    outage: Option<OutageState>,
    /// Whether the serving policy holds the backbone right now: training
    /// rates gate to 0 exactly like an outage (temporal multiplexing).
    serving_preempted: bool,
    /// Monotonic outage-injection counter (staleness check for resumes).
    outage_token: u64,
    /// Degraded plan after device loss (None = the service-wide plan).
    plan_override: Option<HybridParallelism>,
    /// Shrunk cluster after device loss (None = the service-wide shape).
    cluster_override: Option<Cluster>,
    next_task_id: TaskId,
    /// Simulated time the current `rates` took effect. Progress accrues
    /// lazily: a running job's live total is its banked
    /// `progressed_tokens` plus `rate × (now − planned_at)`; the bank is
    /// materialized whenever membership (and therefore rates) changes.
    planned_at: f64,
    /// Monotonic replan counter; completion events recorded under an
    /// older epoch are stale and are discarded lazily off the heap.
    epoch: u64,
    /// Warm incremental planner state ([`ReplanMode::Incremental`] only;
    /// `None` until the first incremental replan). Persists the fusion
    /// DP's range tables across membership changes.
    planner: Option<IncrementalEstimator>,
}

/// A scheduled "some job finishes" event: under the rates of `epoch`, the
/// job behind `task` on `instance` completes at absolute time `at`.
#[derive(Debug, Clone, Copy, PartialEq)]
struct CompletionEvent {
    at: f64,
    instance: usize,
    task: TaskId,
    epoch: u64,
}

impl Eq for CompletionEvent {}

impl PartialOrd for CompletionEvent {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for CompletionEvent {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.at
            .total_cmp(&other.at)
            .then_with(|| self.instance.cmp(&other.instance))
            .then_with(|| self.task.cmp(&other.task))
    }
}

/// A scheduled comm-retry event: at absolute time `at`, instance
/// `instance` attempts the next retry of outage `token`. Kept on its own
/// heap (not `completions`) so epoch bumps during an outage can never
/// orphan the resume and freeze the instance forever.
#[derive(Debug, Clone, Copy, PartialEq)]
struct ResumeEvent {
    at: f64,
    instance: usize,
    token: u64,
}

impl Eq for ResumeEvent {}

impl PartialOrd for ResumeEvent {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for ResumeEvent {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.at
            .total_cmp(&other.at)
            .then_with(|| self.instance.cmp(&other.instance))
            .then_with(|| self.token.cmp(&other.token))
    }
}

/// The derived analyses of one traced instance re-plan (see
/// [`FineTuneService::instance_analysis`]).
struct InstanceAnalysis {
    report: MuxTuneReport,
    ops: Vec<OpRecord>,
    attribution: Vec<DeviceAttribution>,
    cp: CriticalPath,
    /// Attributed stall seconds charged to each job: shared blame on an
    /// hTask splits evenly among its member jobs.
    stall_by_job: BTreeMap<JobId, f64>,
}

/// Resolves an engine-label hTask reference to the jobs behind it:
/// `b{bucket}h{dag}` indexes `grouping.buckets[bucket][dag]`, which names
/// a fused hTask whose member tasks map to jobs via the instance's
/// task-to-job table.
fn jobs_of_htask(inst: &Instance, report: &MuxTuneReport, href: &HTaskRef) -> Vec<JobId> {
    let Some(bucket) = report.grouping.buckets.get(href.bucket) else {
        return Vec::new();
    };
    let Some(&hidx) = bucket.get(href.htask) else {
        return Vec::new();
    };
    let Some(htask) = report.fusion.htasks.get(hidx) else {
        return Vec::new();
    };
    let mut jobs: Vec<JobId> = htask
        .tasks
        .iter()
        .filter_map(|t| inst.job_of_task.get(t).copied())
        .collect();
    jobs.sort_unstable();
    jobs.dedup();
    jobs
}

/// Live streaming-monitoring state (see
/// [`FineTuneService::enable_monitoring`]).
struct MonitorRuntime {
    monitor: OnlineMonitor,
    /// Last observed per-job progress, for burn-rate deltas.
    last_progress: BTreeMap<JobId, f64>,
    /// Per-instance stall-class shares, cached by plan epoch so the
    /// traced attribution re-plan runs once per membership change, not
    /// once per tick.
    stall_cache: BTreeMap<usize, (u64, [f64; StallClass::COUNT])>,
}

/// One `--watch` line: the service's live state at a tick.
#[derive(Debug, Clone)]
pub struct TelemetrySummary {
    /// Service tick.
    pub tick: u64,
    /// Simulated time, seconds.
    pub now: f64,
    /// Jobs currently running.
    pub running: usize,
    /// Jobs queued for dispatch.
    pub queued: usize,
    /// Jobs completed so far.
    pub completed: usize,
    /// Jobs rejected so far.
    pub rejected: usize,
    /// Aggregate throughput over running jobs, tokens/second.
    pub throughput_tokens_per_second: f64,
    /// Mean stall-class shares over live instances, in
    /// [`StallClass::ALL`] order.
    pub stall_class_shares: [f64; StallClass::COUNT],
    /// Active `(rule, job)` alerts.
    pub active_alerts: Vec<(String, u64)>,
}

/// The multi-tenant fine-tuning service.
pub struct FineTuneService {
    cfg: ServiceConfig,
    cluster: Cluster,
    instances: Vec<Instance>,
    /// Instance indices hosting each backbone — bounds the dispatch scan
    /// to same-backbone candidates instead of the whole pool.
    by_backbone: BTreeMap<String, Vec<usize>>,
    jobs: BTreeMap<JobId, Job>,
    queue: VecDeque<JobId>,
    /// Min-heap of pending completion events (lazily invalidated by each
    /// instance's epoch): `advance` jumps straight to the next event
    /// instead of re-scanning every running task per tick.
    completions: BinaryHeap<Reverse<CompletionEvent>>,
    /// Min-heap of pending comm-retry events (see [`ResumeEvent`]).
    resumes: BinaryHeap<Reverse<ResumeEvent>>,
    /// Running fault/recovery totals.
    fault_stats: FaultStats,
    next_job: u64,
    now: f64,
    /// Monotonic observation tick, advanced by [`Self::tick`].
    tick: u64,
    /// Append-only event journal (always recording; see
    /// [`crate::journal`]).
    journal: Journal,
    /// Streaming alert engine, when monitoring is enabled.
    monitor: Option<MonitorRuntime>,
    /// Inference serving runtime, when serving is enabled (see
    /// [`crate::serving`]).
    serving: Option<ServingRuntime>,
}

/// Per-tenant aggregates behind the report's `tenants` section.
#[derive(Debug, Clone, Default)]
struct TenantStats {
    queued: usize,
    running: usize,
    completed: usize,
    rejected: usize,
    progressed_tokens: f64,
    throughput: f64,
    slo_met: usize,
    slo_violated: usize,
}

impl FineTuneService {
    /// Creates an empty service over a GPU pool.
    pub fn new(cfg: ServiceConfig) -> Self {
        let cluster =
            Cluster::single_node(cfg.gpu.clone(), cfg.gpus_per_instance, cfg.link.clone());
        Self {
            cfg,
            cluster,
            instances: Vec::new(),
            by_backbone: BTreeMap::new(),
            jobs: BTreeMap::new(),
            queue: VecDeque::new(),
            completions: BinaryHeap::new(),
            resumes: BinaryHeap::new(),
            fault_stats: FaultStats::default(),
            next_job: 1,
            now: 0.0,
            tick: 0,
            journal: Journal::new(),
            monitor: None,
            serving: None,
        }
    }

    /// Current simulated time, seconds.
    pub fn now(&self) -> f64 {
        self.now
    }

    /// The service configuration (read-only).
    pub fn config(&self) -> &ServiceConfig {
        &self.cfg
    }

    /// The job table (inspection).
    pub fn job(&self, id: JobId) -> Option<&Job> {
        self.jobs.get(&id)
    }

    /// Number of in-flight instances.
    pub fn instance_count(&self) -> usize {
        self.instances.len()
    }

    /// Tasks co-located on instance `i`.
    pub fn instance_load(&self, i: usize) -> usize {
        self.instances[i].registry.len()
    }

    /// Backbone hosted by instance `i`.
    pub fn instance_backbone(&self, i: usize) -> &str {
        &self.instances[i].backbone_name
    }

    /// Whether a `backbone` job submitted now could be placed (or at
    /// least queued with a live host to wait for) instead of being
    /// permanently starved: either a same-backbone instance exists, or
    /// the pool can still spin one up. Admission layers consult this
    /// before submitting; a `false` submit is rejected with
    /// `"no capacity"` (the pool never shrinks).
    pub fn can_host(&self, backbone: &str) -> bool {
        self.by_backbone
            .get(backbone)
            .map(|v| !v.is_empty())
            .unwrap_or(false)
            || self.capacity_left() > 0
    }

    /// Instances the pool can still spin up.
    pub fn instance_headroom(&self) -> usize {
        self.capacity_left()
    }

    /// Cluster-wide co-location slot capacity: every possible instance
    /// times the per-instance task cap.
    pub fn slot_capacity(&self) -> usize {
        (self.cfg.gpus_total / self.cfg.gpus_per_instance) * self.cfg.max_tasks_per_instance
    }

    /// Co-location slots still free: headroom on live instances plus
    /// every slot on instances not yet spun up.
    pub fn slots_free(&self) -> usize {
        let live: usize = self
            .instances
            .iter()
            .map(|inst| {
                self.cfg
                    .max_tasks_per_instance
                    .saturating_sub(inst.registry.len())
            })
            .sum();
        live + self.capacity_left() * self.cfg.max_tasks_per_instance
    }

    fn backbone_config(&self, name: &str) -> Option<ModelConfig> {
        let mut cfg = ModelConfig::table1().into_iter().find(|c| c.name == name)?;
        if let Some(l) = self.cfg.backbone_layers {
            cfg = cfg.with_layers(l.min(cfg.num_layers));
        }
        Some(cfg)
    }

    /// Admission checks on untrusted tenant input. Anything that would
    /// later make planning or progress accounting degenerate is refused
    /// here, with a reason, instead of panicking deep in the planner.
    fn validate(spec: &JobSpec) -> Result<(), String> {
        if spec.micro_batch == 0 {
            return Err("micro_batch must be at least 1".into());
        }
        if spec.total_tokens == 0 {
            return Err("total_tokens must be at least 1".into());
        }
        if let Some(lens) = &spec.sequence_lengths {
            if !lens.iter().any(|&l| l > 0) {
                return Err("sequence_lengths holds no non-empty sequences".into());
            }
        }
        if !spec.lr.is_finite() {
            return Err("learning rate must be finite".into());
        }
        Ok(())
    }

    /// Submits a job; returns its handle. Invalid specs are rejected
    /// immediately (see [`Job::reject_reason`]); otherwise dispatch is
    /// attempted at once and the job queues FCFS when no instance fits.
    pub fn submit(&mut self, spec: JobSpec) -> JobId {
        let id = JobId(self.next_job);
        self.next_job += 1;
        let verdict = Self::validate(&spec);
        self.journal.push(
            self.tick,
            self.now,
            EventKind::Submit {
                job: id.0,
                tenant: spec.tenant.clone(),
                backbone: spec.backbone.clone(),
                total_tokens: spec.total_tokens,
                slo_seconds: spec.slo_seconds,
            },
        );
        let job = Job::new(id, spec, self.now);
        self.jobs.insert(id, job);
        if let Err(reason) = verdict {
            self.reject(id, reason);
            return id;
        }
        self.queue.push_back(id);
        self.dispatch_queued();
        id
    }

    fn capacity_left(&self) -> usize {
        self.cfg.gpus_total / self.cfg.gpus_per_instance - self.instances.len()
    }

    fn reject(&mut self, id: JobId, reason: String) {
        self.journal.push(
            self.tick,
            self.now,
            EventKind::Reject {
                job: id.0,
                reason: reason.clone(),
            },
        );
        if let Some(job) = self.jobs.get_mut(&id) {
            job.state = JobState::Rejected;
            job.reject_reason = Some(reason);
        }
    }

    /// The tenant's corpus for one dispatched job: either synthesized from
    /// the declared dataset or the tenant's own lengths, truncated to the
    /// dataset cap at ingestion (see [`JobSpec::sequence_lengths`]).
    fn ingest_corpus(&self, spec: &JobSpec, id: JobId) -> Vec<usize> {
        match &spec.sequence_lengths {
            Some(custom) => {
                let cap = spec.dataset.max_len();
                custom
                    .iter()
                    .map(|&l| l.min(cap))
                    .filter(|&l| l > 0)
                    .collect()
            }
            // The tenant's global batch: micro_batch x C sequences.
            None => {
                let n = spec.micro_batch * self.cfg.micro_batches;
                Corpus::generate(spec.dataset, n, id.0 ^ 0xa5a5).lengths
            }
        }
    }

    fn dispatch_queued(&mut self) {
        for _ in 0..self.queue.len() {
            let Some(id) = self.queue.pop_front() else {
                break;
            };
            let spec = self.jobs[&id].spec.clone();
            let same_backbone = self
                .by_backbone
                .get(&spec.backbone)
                .map(Vec::as_slice)
                .unwrap_or(&[]);
            let target = match self.cfg.dispatch {
                DispatchPolicy::SameBackboneFirst => same_backbone
                    .iter()
                    .copied()
                    .filter(|&i| self.instances[i].registry.len() < self.cfg.max_tasks_per_instance)
                    .min_by_key(|&i| self.instances[i].registry.len()),
                // Dedicated instances: reuse an *empty* same-backbone
                // instance (a completed job releases its slot), never share.
                DispatchPolicy::DedicatedInstances => same_backbone
                    .iter()
                    .copied()
                    .find(|&i| self.instances[i].registry.is_empty()),
            };
            let target = match target {
                Some(i) => Some(i),
                None if self.capacity_left() > 0 => {
                    match self.backbone_config(&spec.backbone) {
                        Some(cfg) => {
                            self.instances.push(Instance {
                                backbone_name: spec.backbone.clone(),
                                registry: TaskRegistry::new(cfg),
                                corpora: BTreeMap::new(),
                                job_of_task: BTreeMap::new(),
                                rates: BTreeMap::new(),
                                raw_rates: BTreeMap::new(),
                                slow_factors: BTreeMap::new(),
                                link_factor: 1.0,
                                lost_devices: BTreeSet::new(),
                                outage: None,
                                serving_preempted: self
                                    .serving
                                    .as_ref()
                                    .map(|s| s.preempted())
                                    .unwrap_or(false),
                                outage_token: 0,
                                plan_override: None,
                                cluster_override: None,
                                next_task_id: 1,
                                planned_at: self.now,
                                epoch: 0,
                                planner: None,
                            });
                            let i = self.instances.len() - 1;
                            self.by_backbone
                                .entry(spec.backbone.clone())
                                .or_default()
                                .push(i);
                            Some(i)
                        }
                        None => {
                            // Unknown backbone: reject at the API boundary.
                            self.reject(id, format!("unknown backbone {:?}", spec.backbone));
                            continue;
                        }
                    }
                }
                None if same_backbone.is_empty() => {
                    // No same-backbone instance exists and the pool is
                    // full. Instances are never torn down, so capacity
                    // can only shrink: the job is permanently starved.
                    // Reject it now instead of queueing it forever.
                    self.reject(
                        id,
                        format!(
                            "no capacity: pool exhausted and no {:?} instance to join",
                            spec.backbone
                        ),
                    );
                    continue;
                }
                None => None,
            };
            match target {
                Some(i) => {
                    let lens = self.ingest_corpus(&spec, id);
                    let inst = &mut self.instances[i];
                    let tid = inst.next_task_id;
                    inst.next_task_id += 1;
                    if let Err(e) = inst.registry.register_task(spec.to_task(tid)) {
                        self.reject(id, format!("task validation failed: {e}"));
                        continue;
                    }
                    inst.corpora.insert(tid, lens);
                    inst.job_of_task.insert(tid, id);
                    if let Some(job) = self.jobs.get_mut(&id) {
                        job.state = JobState::Running { instance: i };
                        job.started_at = self.now;
                    }
                    self.journal.push(
                        self.tick,
                        self.now,
                        EventKind::Dispatch {
                            job: id.0,
                            instance: i,
                        },
                    );
                    self.materialize(i);
                    self.replan(i);
                }
                None => self.queue.push_back(id),
            }
        }
    }

    /// Banks every running job's lazily-accrued progress on instance `i`
    /// up to `self.now`. Must run before anything changes the instance's
    /// rates (membership change, replan).
    fn materialize(&mut self, i: usize) {
        let inst = &mut self.instances[i];
        let dt = self.now - inst.planned_at;
        if dt > 0.0 {
            for (&tid, &rate) in &inst.rates {
                if let Some(job) = self.jobs.get_mut(&inst.job_of_task[&tid]) {
                    job.progressed_tokens += rate * dt;
                }
            }
        }
        inst.planned_at = self.now;
    }

    /// Evicts task `tid` from instance `i`, rejecting its job with
    /// `reason`. Co-located jobs stay registered and keep running. With
    /// `recovery` set the eviction is graceful degradation after a fault
    /// and additionally records a [`EventKind::RecoverShed`] marker.
    fn shed(&mut self, i: usize, tid: TaskId, reason: String, recovery: bool) {
        let inst = &mut self.instances[i];
        let _ = inst.registry.deregister_task(tid);
        inst.corpora.remove(&tid);
        inst.rates.remove(&tid);
        inst.raw_rates.remove(&tid);
        let evicted = inst.job_of_task.remove(&tid);
        if let Some(jid) = evicted {
            if recovery {
                self.journal.push(
                    self.tick,
                    self.now,
                    EventKind::RecoverShed {
                        job: jid.0,
                        instance: i,
                        reason: reason.clone(),
                    },
                );
                *self
                    .fault_stats
                    .recoveries
                    .entry("shed".into())
                    .or_insert(0) += 1;
            }
            self.journal.push(
                self.tick,
                self.now,
                EventKind::Shed {
                    job: jid.0,
                    instance: i,
                    reason: reason.clone(),
                },
            );
            self.reject(jid, reason);
        }
    }

    /// Records instance `i`'s earliest pending completion on the event
    /// heap (under the instance's current epoch).
    fn push_completion(&mut self, i: usize) {
        let inst = &self.instances[i];
        let mut best: Option<(f64, TaskId)> = None;
        for (&tid, &rate) in &inst.rates {
            // Zero-rate tasks (instance in outage) never complete on their
            // own; the resume event re-prices them back onto the heap.
            if rate <= 0.0 {
                continue;
            }
            let job = &self.jobs[&inst.job_of_task[&tid]];
            let left = ((job.spec.total_tokens as f64 - job.progressed_tokens) / rate).max(0.0);
            if best.map(|(b, _)| left < b).unwrap_or(true) {
                best = Some((left, tid));
            }
        }
        if let Some((left, task)) = best {
            self.completions.push(Reverse(CompletionEvent {
                at: self.now + left,
                instance: i,
                task,
                epoch: inst.epoch,
            }));
        }
    }

    /// Re-plans instance `i` with the current membership and refreshes
    /// per-task progress rates. Progress must already be materialized.
    ///
    /// A membership the planner cannot place ([`PlanError`]) sheds the
    /// newest task — the arrival that broke feasibility — rejecting its
    /// job with the planner's reason, and retries with the remaining
    /// co-tenants; likewise any task whose computed rate is non-positive
    /// or non-finite (it could never complete). The loop is bounded by
    /// the instance's task count.
    fn replan(&mut self, i: usize) {
        let _span = mux_obs::span("service.replan");
        loop {
            let inst = &mut self.instances[i];
            inst.rates.clear();
            inst.raw_rates.clear();
            // The epoch advances only when a replan *concludes* (success
            // or empty instance), not per shed-retry iteration: k sheds
            // must cost one epoch, not k+1, so replayed journals agree
            // on epoch numbering regardless of how many retries ran.
            if inst.registry.is_empty() {
                inst.epoch += 1;
                inst.planned_at = self.now;
                let epoch = inst.epoch;
                self.journal.push(
                    self.tick,
                    self.now,
                    EventKind::Replan {
                        instance: i,
                        epoch,
                        tasks: 0,
                    },
                );
                return;
            }
            let plan = inst.plan_override.unwrap_or(self.cfg.plan);
            let cfg = PlannerConfig::muxtune(plan, self.cfg.micro_batches);
            let result = match self.cfg.replan_mode {
                ReplanMode::Simulate => {
                    let cluster = inst.cluster_override.as_ref().unwrap_or(&self.cluster);
                    plan_and_run(&inst.registry, cluster, &inst.corpora, &cfg)
                        .map(|report| report.metrics.effective_throughput)
                }
                ReplanMode::Estimate => {
                    let cluster = inst.cluster_override.as_ref().unwrap_or(&self.cluster);
                    plan_estimate(&inst.registry, cluster, &inst.corpora, &cfg)
                }
                ReplanMode::Incremental => {
                    // Take/restore so the warm planner outlives the call
                    // without aliasing the instance borrow.
                    let mut est = inst.planner.take().unwrap_or_default();
                    let cluster = inst.cluster_override.as_ref().unwrap_or(&self.cluster);
                    let r = est.estimate(&inst.registry, cluster, &inst.corpora, &cfg);
                    inst.planner = Some(est);
                    r
                }
            };
            let degrading = !inst.lost_devices.is_empty();
            match result {
                Ok(effective_throughput) => {
                    let raw: BTreeMap<TaskId, f64> = inst
                        .corpora
                        .iter()
                        .map(|(&t, lens)| (t, lens.iter().map(|&l| l as f64).sum()))
                        .collect();
                    inst.raw_rates = Self::split_throughput(effective_throughput, &raw);
                    // Degeneracy is judged on the planner's raw rates:
                    // fault-scaled rates are legitimately 0 during outages.
                    if let Some((&bad, &rate)) = inst
                        .raw_rates
                        .iter()
                        .find(|(_, &rate)| !(rate.is_finite() && rate > 0.0))
                    {
                        self.shed(
                            i,
                            bad,
                            format!("degenerate progress rate {rate}"),
                            degrading,
                        );
                        continue;
                    }
                    let mult = Self::degrade_multiplier(inst);
                    inst.rates = inst
                        .raw_rates
                        .iter()
                        .map(|(&t, &r)| (t, r * mult))
                        .collect();
                    inst.epoch += 1;
                    inst.planned_at = self.now;
                    let (epoch, tasks) = (inst.epoch, inst.registry.len());
                    self.push_completion(i);
                    self.journal.push(
                        self.tick,
                        self.now,
                        EventKind::Replan {
                            instance: i,
                            epoch,
                            tasks,
                        },
                    );
                    return;
                }
                Err(e) => {
                    // Graceful degradation: shed the lowest-priority tenant
                    // (newest on ties — the arrival that broke feasibility)
                    // so co-tenants keep running.
                    let victim = *inst
                        .job_of_task
                        .iter()
                        .min_by_key(|(&tid, jid)| (self.jobs[jid].spec.priority, Reverse(tid)))
                        .map(|(t, _)| t)
                        .expect("non-empty");
                    // Journal the victim selection before the shed: every
                    // co-tenant was a candidate, scored by priority
                    // (lower loses first, newest task on ties).
                    let mut candidates: Vec<(TaskId, DecisionCandidate)> = inst
                        .job_of_task
                        .iter()
                        .map(|(&tid, jid)| {
                            let j = &self.jobs[jid];
                            (
                                tid,
                                DecisionCandidate {
                                    id: jid.0,
                                    tenant: j.spec.tenant.clone(),
                                    score: f64::from(j.spec.priority),
                                    priority: j.spec.priority,
                                    arrival: j.submitted_at,
                                },
                            )
                        })
                        .collect();
                    candidates.sort_by(|(ta, a), (tb, b)| {
                        (a.priority, Reverse(*ta)).cmp(&(b.priority, Reverse(*tb)))
                    });
                    let considered = candidates.len();
                    let chosen = inst.job_of_task[&victim].0;
                    candidates.truncate(crate::journal::DECISION_CANDIDATE_CAP);
                    let candidates: Vec<DecisionCandidate> =
                        candidates.into_iter().map(|(_, c)| c).collect();
                    self.journal.push(
                        self.tick,
                        self.now,
                        EventKind::Decision {
                            policy: "service".to_string(),
                            action: "shed".to_string(),
                            score_kind: "priority".to_string(),
                            chosen,
                            job: Some(chosen),
                            instance: Some(i),
                            considered,
                            candidates,
                        },
                    );
                    self.shed(i, victim, e.to_string(), degrading);
                }
            }
        }
    }

    /// Splits `effective_throughput` across tasks in proportion to their
    /// raw content per round. The divisor is the exact content total —
    /// clamping it upward (e.g. `total.max(1.0)`) would silently deflate
    /// every rate whenever the membership's combined content is below
    /// the clamp, leaking throughput that then never reaches any job. A
    /// zero-content membership yields all-zero rates (never NaN); the
    /// caller sheds those as degenerate.
    fn split_throughput(
        effective_throughput: f64,
        raw: &BTreeMap<TaskId, f64>,
    ) -> BTreeMap<TaskId, f64> {
        let total: f64 = raw.values().sum();
        raw.iter()
            .map(|(&t, &r)| {
                let share = if total > 0.0 { r / total } else { 0.0 };
                (t, effective_throughput * share)
            })
            .collect()
    }

    /// The factor `raw_rates` shrink by under the instance's live fault
    /// state: 0 during an outage, else the reciprocal of the worst
    /// straggler slowdown times the link degradation.
    fn degrade_multiplier(inst: &Instance) -> f64 {
        if inst.outage.is_some() || inst.serving_preempted {
            return 0.0;
        }
        let slow = inst.slow_factors.values().fold(1.0f64, |a, &b| a.max(b));
        1.0 / (slow * inst.link_factor).max(1.0)
    }

    /// Recomputes instance `i`'s effective rates from its raw planner
    /// rates and the current fault state, invalidating stale completion
    /// events. Progress must already be materialized.
    fn reprice(&mut self, i: usize) {
        let inst = &mut self.instances[i];
        let mult = Self::degrade_multiplier(inst);
        inst.rates = inst
            .raw_rates
            .iter()
            .map(|(&t, &r)| (t, r * mult))
            .collect();
        inst.epoch += 1;
        inst.planned_at = self.now;
        self.push_completion(i);
    }

    /// Forces a full replan of instance `i` with the current membership
    /// (progress is materialized first, so no accrued tokens are lost).
    /// An operator escape hatch — and the observable no-op case for
    /// [`ReplanMode::Incremental`]: forcing a replan with unchanged
    /// membership must rebuild zero fusion ranges.
    ///
    /// Out-of-range `i` is a no-op returning `false`.
    pub fn force_replan(&mut self, i: usize) -> bool {
        if i >= self.instances.len() {
            return false;
        }
        self.materialize(i);
        self.replan(i);
        true
    }

    /// Cumulative incremental-planner statistics for instance `i`
    /// (`ranges_built`, `ranges_reused`, `noop_plans`, …). All-default
    /// when the instance never replanned in
    /// [`ReplanMode::Incremental`] or `i` is out of range.
    pub fn planner_stats(&self, i: usize) -> muxtune_core::fusion::IncrementalStats {
        self.instances
            .get(i)
            .and_then(|inst| inst.planner.as_ref())
            .map(|p| p.stats())
            .unwrap_or_default()
    }

    /// The earliest still-valid completion event, discarding stale ones.
    fn peek_completion(&mut self) -> Option<CompletionEvent> {
        while let Some(&Reverse(ev)) = self.completions.peek() {
            if self.instances[ev.instance].epoch == ev.epoch {
                return Some(ev);
            }
            self.completions.pop();
        }
        None
    }

    /// The earliest still-valid resume (comm-retry) event, discarding
    /// entries whose outage token went stale.
    fn peek_resume(&mut self) -> Option<ResumeEvent> {
        while let Some(&Reverse(ev)) = self.resumes.peek() {
            let live = self.instances[ev.instance]
                .outage
                .map(|o| o.token == ev.token)
                .unwrap_or(false);
            if live {
                return Some(ev);
            }
            self.resumes.pop();
        }
        None
    }

    /// Seconds until the next event (completion or comm retry) fires.
    /// `None` when nothing is scheduled. External drivers (the workload
    /// trace replayer) use this to jump straight to the next state change
    /// instead of polling in fixed steps.
    pub fn next_event_in(&mut self) -> Option<f64> {
        let now = self.now;
        let c = self.peek_completion().map(|ev| ev.at);
        let r = self.peek_resume().map(|ev| ev.at);
        [c, r]
            .into_iter()
            .flatten()
            .fold(None, |acc: Option<f64>, v| {
                Some(acc.map_or(v, |a| a.min(v)))
            })
            .map(|at| (at - now).max(0.0))
    }

    /// Fires retry `token` on instance `i`: journals the attempt, and
    /// either clears the fault (the comm layer recovered) or schedules
    /// the next retry after exponential backoff.
    fn handle_retry(&mut self, i: usize, token: u64) {
        let (attempt, failures) = {
            let Some(outage) = self.instances[i].outage.as_mut() else {
                return;
            };
            if outage.token != token {
                return;
            }
            outage.attempt += 1;
            (outage.attempt, outage.failures)
        };
        let backoff = self.cfg.retry.backoff(attempt);
        self.journal.push(
            self.tick,
            self.now,
            EventKind::RecoverRetry {
                instance: i,
                attempt: u64::from(attempt),
                backoff_seconds: backoff,
            },
        );
        *self
            .fault_stats
            .recoveries
            .entry("retry".into())
            .or_insert(0) += 1;
        if attempt >= failures {
            self.instances[i].outage = None;
            self.journal.push(
                self.tick,
                self.now,
                EventKind::FaultCleared {
                    kind: "comm_transient".into(),
                    instance: i,
                },
            );
            self.materialize(i);
            self.reprice(i);
        } else {
            let next = self.cfg.retry.backoff(attempt + 1);
            self.resumes.push(Reverse(ResumeEvent {
                at: self.now + next,
                instance: i,
                token,
            }));
        }
    }

    /// Completes the job behind `forced` on instance `i` (its completion
    /// event just fired) plus any co-located job whose banked progress
    /// reached its target.
    fn retire_completed(&mut self, i: usize, forced: TaskId) {
        let inst = &self.instances[i];
        let done: Vec<(TaskId, JobId)> = inst
            .job_of_task
            .iter()
            .filter(|&(&t, jid)| {
                t == forced || {
                    let j = &self.jobs[jid];
                    j.progressed_tokens + 1e-6 >= j.spec.total_tokens as f64
                }
            })
            .map(|(&t, &jid)| (t, jid))
            .collect();
        for (t, jid) in done {
            let inst = &mut self.instances[i];
            inst.job_of_task.remove(&t);
            let _ = inst.registry.deregister_task(t);
            inst.corpora.remove(&t);
            inst.rates.remove(&t);
            if let Some(job) = self.jobs.get_mut(&jid) {
                job.progressed_tokens = job.spec.total_tokens as f64;
                job.state = JobState::Completed;
                job.finished_at = self.now;
            }
            self.journal
                .push(self.tick, self.now, EventKind::Complete { job: jid.0 });
        }
    }

    /// Advances simulated time by `dt` seconds, progressing every running
    /// job and retiring completions (which may unblock queued jobs).
    ///
    /// Event-driven: time jumps from completion to completion off the
    /// event heap; between events progress accrues lazily (no per-tick
    /// scan of the running set). Non-positive or non-finite `dt` is a
    /// no-op.
    pub fn advance(&mut self, dt: f64) {
        // NaN compares false, so a NaN `dt` is a no-op too.
        if dt.is_nan() || dt <= 0.0 {
            return;
        }
        let _span = mux_obs::span("service.advance");
        let end = self.now + dt;
        loop {
            let next_c = self.peek_completion().map(|ev| ev.at);
            let next_r = self.peek_resume().map(|ev| ev.at);
            let take_resume = match (next_c, next_r) {
                (None, None) => break,
                (Some(_), None) => false,
                (None, Some(_)) => true,
                // On ties the retry fires first: it restores rates the
                // completion may depend on.
                (Some(c), Some(r)) => r <= c,
            };
            if take_resume {
                let ev = self.peek_resume().expect("just peeked");
                if ev.at.is_nan() || ev.at > end {
                    break;
                }
                self.resumes.pop();
                self.now = ev.at.max(self.now);
                self.handle_retry(ev.instance, ev.token);
            } else {
                let ev = self.peek_completion().expect("just peeked");
                if ev.at.is_nan() || ev.at > end {
                    break;
                }
                self.completions.pop();
                self.now = ev.at.max(self.now);
                self.materialize(ev.instance);
                self.retire_completed(ev.instance, ev.task);
                self.replan(ev.instance);
                self.dispatch_queued();
            }
        }
        self.now = end;
    }

    /// Turns on streaming monitoring: per-job throughput-drop and
    /// stall-spike anomaly detectors plus the SLO burn-rate rule (see
    /// [`mux_obs_analysis::online`]). Observations are taken by
    /// [`Self::tick`]; fired/cleared alerts land in the journal and in
    /// [`Self::alerts`] / `service_report()` / `snapshot_prom()`.
    pub fn enable_monitoring(&mut self, cfg: MonitorConfig) {
        self.monitor = Some(MonitorRuntime {
            monitor: OnlineMonitor::new(cfg),
            last_progress: BTreeMap::new(),
            stall_cache: BTreeMap::new(),
        });
    }

    /// Whether streaming monitoring is on.
    pub fn monitoring_enabled(&self) -> bool {
        self.monitor.is_some()
    }

    /// The current observation tick (count of [`Self::tick`] calls).
    pub fn current_tick(&self) -> u64 {
        self.tick
    }

    /// The event journal recorded so far.
    pub fn journal(&self) -> &Journal {
        &self.journal
    }

    /// Appends the [`EventKind::Final`] record embedding the live state,
    /// sealing the journal for [`Journal::verify`] / `report --replay`.
    pub fn seal_journal(&mut self) {
        let state = self.state_fingerprint();
        self.journal.push(
            self.tick,
            self.now,
            EventKind::Final {
                jobs: state.jobs,
                alerts: state.alerts,
            },
        );
    }

    /// Journals an [`EventKind::Decision`] provenance event at the
    /// current `(tick, now)`. External dispatchers (the trace replayer)
    /// use this to record *why* their policy picked a job, in the same
    /// journal the resulting `Dispatch` lands in — so `--explain-job`
    /// can reconstruct the reasoning offline. `candidates` should arrive
    /// winner-first and already capped (see
    /// [`crate::journal::DECISION_CANDIDATE_CAP`]);
    /// `considered` is the full pre-cap count.
    #[allow(clippy::too_many_arguments)]
    pub fn record_decision(
        &mut self,
        policy: &str,
        action: &str,
        score_kind: &str,
        chosen: u64,
        job: Option<u64>,
        instance: Option<usize>,
        considered: usize,
        candidates: Vec<DecisionCandidate>,
    ) {
        self.journal.push(
            self.tick,
            self.now,
            EventKind::Decision {
                policy: policy.to_string(),
                action: action.to_string(),
                score_kind: score_kind.to_string(),
                chosen,
                job,
                instance,
                considered,
                candidates,
            },
        );
    }

    /// Currently-firing alerts (empty when monitoring is off).
    pub fn alerts(&self) -> Vec<&Alert> {
        self.monitor
            .as_ref()
            .map(|rt| rt.monitor.active().collect())
            .unwrap_or_default()
    }

    /// The live state in journal-replay terms: per-job lifecycle strings
    /// plus the active `(rule, job)` alert set. The **replay invariant**:
    /// replaying the journal up to the current tick reproduces exactly
    /// this (see `tests/telemetry_props.rs`).
    pub fn state_fingerprint(&self) -> ReplayState {
        let mut jobs = BTreeMap::new();
        for j in self.jobs.values() {
            let state = match j.state {
                JobState::Queued => "queued".to_string(),
                JobState::Running { instance } => format!("running@{instance}"),
                JobState::Completed => "completed".to_string(),
                JobState::Rejected => "rejected".to_string(),
            };
            jobs.insert(j.id.0, state);
        }
        let alerts = self
            .monitor
            .as_ref()
            .map(|rt| {
                rt.monitor
                    .active()
                    .map(|a| (a.rule.clone(), a.job))
                    .collect()
            })
            .unwrap_or_default();
        ReplayState {
            tick: self.tick,
            jobs,
            alerts,
        }
    }

    /// Advances one observation tick: bumps the tick counter (and the
    /// global telemetry tick when streaming telemetry is on), advances
    /// simulated time by `dt`, then samples every running job through the
    /// monitor's detectors.
    pub fn tick(&mut self, dt: f64) {
        let _span = mux_obs::span("service.tick");
        self.tick += 1;
        if mux_obs::timeseries::telemetry_enabled() {
            mux_obs::timeseries::advance_tick();
        }
        self.advance(dt);
        self.serving_step();
        self.sample_and_detect(dt);
    }

    /// Enables inference serving on the shared backbone. Requests are fed
    /// with [`Self::submit_requests`]; the policy runs inside every
    /// [`Self::tick`]. Replaces any previous serving runtime.
    pub fn enable_serving(&mut self, cfg: ServingConfig) {
        self.serving = Some(ServingRuntime::new(cfg));
    }

    /// Queues future inference request arrivals (any order; the runtime
    /// sorts by arrival time). No-op when serving is disabled.
    pub fn submit_requests(&mut self, requests: Vec<RequestSpec>) {
        if let Some(s) = self.serving.as_mut() {
            s.submit(requests);
        }
    }

    /// The serving runtime, when enabled (inspection).
    pub fn serving(&self) -> Option<&ServingRuntime> {
        self.serving.as_ref()
    }

    /// Whether every submitted request has reached a terminal state
    /// (vacuously true when serving is disabled).
    pub fn serving_idle(&self) -> bool {
        self.serving.as_ref().map(|s| s.idle()).unwrap_or(true)
    }

    /// One serving step, run inside every tick after `advance`: processes
    /// request events up to `self.now`, then lets the policy decide
    /// whether serving holds the backbone for the next tick (temporal
    /// preemption) or co-batches in the Eq. 7 slot headroom (spatial).
    ///
    /// With serving enabled but no requests in the system this is
    /// observably a no-op — no journal events, no rate changes — so an
    /// empty-stream run is bitwise identical to a serving-disabled run
    /// (the differential gate in `tests/serving_props.rs`).
    fn serving_step(&mut self) {
        let Some(mut srv) = self.serving.take() else {
            return;
        };
        let cap = self.slot_capacity();
        let headroom = if cap == 0 {
            1.0
        } else {
            self.slots_free() as f64 / cap as f64
        };
        srv.set_headroom(headroom);
        srv.step(self.now, self.tick, &mut self.journal);
        let want = srv.wants_backbone(self.now);
        if want != srv.preempted() {
            srv.set_preempted(want);
            for i in 0..self.instances.len() {
                self.materialize(i);
                self.instances[i].serving_preempted = want;
                self.reprice(i);
                let kind = if want {
                    EventKind::ServingPreempt { instance: i }
                } else {
                    EventKind::ServingResume { instance: i }
                };
                self.journal.push(self.tick, self.now, kind);
            }
        }
        self.serving = Some(srv);
    }

    /// Samples throughput, stall shares, and SLO burn for every running
    /// job, feeding the detectors and journaling every alert transition.
    fn sample_and_detect(&mut self, dt: f64) {
        // Taking the runtime out avoids borrowing `self` twice: the
        // sampling below reads service state while mutating the monitor.
        let Some(mut rt) = self.monitor.take() else {
            return;
        };
        let tick = self.tick;

        // Refresh the per-instance stall-class shares for any instance
        // whose plan epoch changed (one traced re-plan per membership
        // change, amortized over all the ticks in between).
        for i in 0..self.instances.len() {
            let epoch = self.instances[i].epoch;
            let stale = rt
                .stall_cache
                .get(&i)
                .map(|&(e, _)| e != epoch)
                .unwrap_or(true);
            if !stale {
                continue;
            }
            let shares = self
                .instance_analysis(i)
                .map(|a| {
                    let total: f64 = a.attribution.iter().map(|d| d.window).sum();
                    let mut s = [0.0f64; StallClass::COUNT];
                    for (ci, class) in StallClass::ALL.iter().enumerate() {
                        let secs: f64 = a.attribution.iter().map(|d| d.class_seconds(*class)).sum();
                        s[ci] = secs / total.max(1e-12);
                    }
                    s
                })
                .unwrap_or([0.0; StallClass::COUNT]);
            rt.stall_cache.insert(i, (epoch, shares));
        }

        let running: Vec<(JobId, usize)> = self
            .jobs
            .values()
            .filter_map(|j| match j.state {
                JobState::Running { instance } => Some((j.id, instance)),
                _ => None,
            })
            .collect();
        let mut events: Vec<AlertEvent> = Vec::new();
        for &(jid, inst_idx) in &running {
            let rate = self.job_rate(jid);
            if mux_obs::timeseries::telemetry_enabled() {
                mux_obs::set_gauge(
                    &format!("service.job.{}.throughput_tokens_per_second", jid.0),
                    rate,
                );
            }
            events.extend(rt.monitor.observe_throughput(jid.0, rate, tick));
            if let Some(&(_, shares)) = rt.stall_cache.get(&inst_idx) {
                for (ci, class) in StallClass::ALL.iter().enumerate() {
                    events.extend(
                        rt.monitor
                            .observe_stall_share(jid.0, *class, shares[ci], tick),
                    );
                }
            }
            let j = &self.jobs[&jid];
            let progress = self.job_progress(j);
            if let Some(slo) = j.spec.slo_seconds {
                let last = rt.last_progress.get(&jid).copied().unwrap_or(0.0);
                let delta = (progress - last).max(0.0);
                let budget_fraction = dt / slo.max(1e-12);
                let progress_fraction = delta / (j.spec.total_tokens.max(1) as f64);
                events.extend(rt.monitor.observe_slo_burn(
                    jid.0,
                    budget_fraction,
                    progress_fraction,
                    tick,
                ));
            }
            rt.last_progress.insert(jid, progress);
        }

        // Jobs that completed or were shed stop being tracked; their
        // still-active alerts clear.
        let running_ids: BTreeSet<u64> = running.iter().map(|&(j, _)| j.0).collect();
        for job in rt.monitor.tracked_jobs() {
            if !running_ids.contains(&job) {
                events.extend(rt.monitor.forget_job(job));
            }
        }
        rt.last_progress.retain(|j, _| running_ids.contains(&j.0));

        for ev in events {
            match ev {
                AlertEvent::Fired(a) => self.journal.push(
                    tick,
                    self.now,
                    EventKind::AlertFired {
                        rule: a.rule,
                        severity: a.severity.name().to_string(),
                        job: a.job,
                        window: a.window,
                        value: a.value,
                        threshold: a.threshold,
                    },
                ),
                AlertEvent::Cleared(a) => self.journal.push(
                    tick,
                    self.now,
                    EventKind::AlertCleared {
                        rule: a.rule,
                        job: a.job,
                    },
                ),
            }
        }
        self.monitor = Some(rt);
    }

    /// The live per-tick summary a `--watch` loop prints: job counts,
    /// aggregate throughput, mean stall-class shares, active alerts.
    pub fn telemetry_summary(&self) -> TelemetrySummary {
        let mut running = 0;
        let mut queued = 0;
        let mut completed = 0;
        let mut rejected = 0;
        let mut throughput = 0.0;
        for j in self.jobs.values() {
            match j.state {
                JobState::Running { .. } => {
                    running += 1;
                    throughput += self.job_rate(j.id);
                }
                JobState::Queued => queued += 1,
                JobState::Completed => completed += 1,
                JobState::Rejected => rejected += 1,
            }
        }
        let mut stall_class_shares = [0.0f64; StallClass::COUNT];
        if let Some(rt) = &self.monitor {
            let live: Vec<&[f64; StallClass::COUNT]> = self
                .instances
                .iter()
                .enumerate()
                .filter(|(_, inst)| !inst.registry.is_empty())
                .filter_map(|(i, _)| rt.stall_cache.get(&i).map(|(_, s)| s))
                .collect();
            if !live.is_empty() {
                for s in &live {
                    for (ci, v) in s.iter().enumerate() {
                        stall_class_shares[ci] += v;
                    }
                }
                for v in &mut stall_class_shares {
                    *v /= live.len() as f64;
                }
            }
        }
        TelemetrySummary {
            tick: self.tick,
            now: self.now,
            running,
            queued,
            completed,
            rejected,
            throughput_tokens_per_second: throughput,
            stall_class_shares,
            active_alerts: self
                .monitor
                .as_ref()
                .map(|rt| {
                    rt.monitor
                        .active()
                        .map(|a| (a.rule.clone(), a.job))
                        .collect()
                })
                .unwrap_or_default(),
        }
    }

    /// Traced re-plan of instance `i` plus the derived analyses: 4-class
    /// stall attribution per device, the critical path, and attributed
    /// stall seconds folded back onto the jobs responsible.
    ///
    /// Shared by [`Self::service_report`] and [`Self::snapshot_prom`].
    /// `None` when the instance is empty or the planner cannot place the
    /// current membership.
    fn instance_analysis(&self, i: usize) -> Option<InstanceAnalysis> {
        let inst = &self.instances[i];
        if inst.registry.is_empty() {
            return None;
        }
        let plan = inst.plan_override.unwrap_or(self.cfg.plan);
        let cfg = PlannerConfig::muxtune(plan, self.cfg.micro_batches);
        let cluster = inst.cluster_override.as_ref().unwrap_or(&self.cluster);
        let (report, ops) =
            plan_and_run_traced(&inst.registry, cluster, &inst.corpora, &cfg).ok()?;
        let num_devices = cluster.gpus.len();
        for op in &ops {
            let dur = op.end - op.start;
            if dur <= 0.0 {
                continue;
            }
            match op.kind {
                OpKind::Compute => mux_obs::record_histogram("engine.compute_op_seconds", dur),
                OpKind::Collective => mux_obs::record_histogram("engine.collective_seconds", dur),
                _ => {}
            }
        }
        let attribution = device_attribution(&ops, num_devices);
        let cp = critical_path(&ops);
        let mut stall_by_job: BTreeMap<JobId, f64> = BTreeMap::new();
        for d in &attribution {
            for (href, &secs) in &d.by_htask {
                let jobs = jobs_of_htask(inst, &report, href);
                if jobs.is_empty() {
                    continue;
                }
                let share = secs / jobs.len() as f64;
                for j in jobs {
                    *stall_by_job.entry(j).or_insert(0.0) += share;
                }
            }
        }
        Some(InstanceAnalysis {
            report,
            ops,
            attribution,
            cp,
            stall_by_job,
        })
    }

    /// Current aggregate progress rate of a job, tokens/second (0 when
    /// not running).
    fn job_rate(&self, id: JobId) -> f64 {
        self.instances
            .iter()
            .map(|inst| {
                inst.job_of_task
                    .iter()
                    .filter(|&(_, &jid)| jid == id)
                    .map(|(t, _)| inst.rates.get(t).copied().unwrap_or(0.0))
                    .sum::<f64>()
            })
            .sum()
    }

    /// Live progress of a job, tokens: the banked total plus whatever has
    /// accrued lazily since its instance's last replan.
    fn job_progress(&self, j: &Job) -> f64 {
        match j.state {
            JobState::Running { instance } => {
                let inst = &self.instances[instance];
                let accrued = self.job_rate(j.id) * (self.now - inst.planned_at).max(0.0);
                (j.progressed_tokens + accrued).min(j.spec.total_tokens as f64)
            }
            _ => j.progressed_tokens,
        }
    }

    /// Estimated seconds until job `id` completes at its current rate.
    /// `None` for jobs that are not accruing progress.
    fn job_eta(&self, id: JobId) -> Option<f64> {
        let j = &self.jobs[&id];
        if !matches!(j.state, JobState::Running { .. }) {
            return None;
        }
        let rate = self.job_rate(id);
        (rate > 0.0).then(|| ((j.spec.total_tokens as f64 - self.job_progress(j)) / rate).max(0.0))
    }

    /// Builds the service's observability report as JSON: the job table
    /// with **per-job throughput, stall share, ETA, and SLO verdicts**;
    /// per-instance plan outcomes with per-device utilization, a 4-class
    /// **stall attribution** (pipeline bubble / comm wait / dependency
    /// wait / alignment imbalance, from a traced re-plan of the current
    /// membership) alongside the legacy 3-way breakdown, and the
    /// **critical path** through the instance's timeline; and the
    /// `mux-obs` registry — planner phase wall times, counters, gauges,
    /// and histograms — collected while those re-plans ran.
    pub fn service_report(&self) -> Value {
        let _on = mux_obs::enabled_scope();
        mux_obs::reset();

        let analyses: Vec<Option<InstanceAnalysis>> = (0..self.instances.len())
            .map(|i| self.instance_analysis(i))
            .collect();

        // Attributed stall seconds per job, normalized by the hosting
        // instance's total device-window (a share in [0, 1]).
        let mut stall_share_of_job: BTreeMap<JobId, f64> = BTreeMap::new();
        for analysis in analyses.iter().flatten() {
            let total_window: f64 = analysis.attribution.iter().map(|d| d.window).sum();
            if total_window <= 0.0 {
                continue;
            }
            for (&jid, &secs) in &analysis.stall_by_job {
                *stall_share_of_job.entry(jid).or_insert(0.0) += secs / total_window;
            }
        }

        let jobs: Vec<Value> = self
            .jobs
            .values()
            .map(|j| {
                let mut m = Map::new();
                m.insert("id".into(), j.id.0.into());
                m.insert("tenant".into(), j.spec.tenant.as_str().into());
                m.insert("backbone".into(), j.spec.backbone.as_str().into());
                let state = match j.state {
                    JobState::Queued => "queued".to_string(),
                    JobState::Running { instance } => format!("running@{instance}"),
                    JobState::Completed => "completed".to_string(),
                    JobState::Rejected => "rejected".to_string(),
                };
                m.insert("state".into(), state.into());
                m.insert(
                    "reject_reason".into(),
                    j.reject_reason
                        .as_deref()
                        .map(Value::from)
                        .unwrap_or(Value::Null),
                );
                m.insert("total_tokens".into(), j.spec.total_tokens.into());
                m.insert("progressed_tokens".into(), self.job_progress(j).into());
                match j.jct() {
                    Some(jct) => m.insert("jct_seconds".into(), jct.into()),
                    None => m.insert("jct_seconds".into(), Value::Null),
                };
                m.insert(
                    "throughput_tokens_per_second".into(),
                    self.job_rate(j.id).into(),
                );
                let eta = self.job_eta(j.id);
                m.insert(
                    "eta_seconds".into(),
                    eta.map(Value::from).unwrap_or(Value::Null),
                );
                m.insert(
                    "stall_share".into(),
                    stall_share_of_job.get(&j.id).copied().unwrap_or(0.0).into(),
                );
                m.insert(
                    "slo_seconds".into(),
                    j.spec.slo_seconds.map(Value::from).unwrap_or(Value::Null),
                );
                m.insert(
                    "slo_violated".into(),
                    j.slo_violated(self.now, eta)
                        .map(Value::from)
                        .unwrap_or(Value::Null),
                );
                Value::Object(m)
            })
            .collect();

        let num_devices = self.cluster.gpus.len();
        let instances: Vec<Value> = self
            .instances
            .iter()
            .enumerate()
            .map(|(i, inst)| {
                let mut m = Map::new();
                m.insert("instance".into(), i.into());
                m.insert("backbone".into(), inst.backbone_name.as_str().into());
                m.insert("tasks".into(), inst.registry.len().into());
                let Some(analysis) = &analyses[i] else {
                    return Value::Object(m);
                };
                let (report, ops) = (&analysis.report, &analysis.ops);
                m.insert("makespan_seconds".into(), report.metrics.makespan.into());
                m.insert(
                    "effective_throughput".into(),
                    report.metrics.effective_throughput.into(),
                );
                m.insert(
                    "mean_utilization".into(),
                    report.metrics.mean_utilization.into(),
                );
                // Per-device compute-lane occupancy + achieved utilization.
                let mut busy = vec![0.0f64; num_devices];
                let mut util_weighted = vec![0.0f64; num_devices];
                for op in ops {
                    if op.kind == OpKind::Compute && op.end > op.start {
                        let d = op.devices[0];
                        let dur = op.end - op.start;
                        busy[d] += dur;
                        util_weighted[d] += op.utilization * dur;
                    }
                }
                let span = report.metrics.makespan.max(1e-12);
                let devices: Vec<Value> = (0..num_devices)
                    .map(|d| {
                        let mut dm = Map::new();
                        dm.insert("device".into(), d.into());
                        dm.insert("busy_fraction".into(), (busy[d] / span).into());
                        dm.insert(
                            "avg_utilization".into(),
                            (util_weighted[d] / busy[d].max(1e-12)).into(),
                        );
                        Value::Object(dm)
                    })
                    .collect();
                m.insert("devices".into(), Value::Array(devices));
                let stalls: Vec<Value> = mux_gpu_sim::stall_breakdown(ops, num_devices)
                    .iter()
                    .map(|b| {
                        let mut sm = Map::new();
                        sm.insert("device".into(), b.device.into());
                        sm.insert("bubble_seconds".into(), b.bubble_seconds.into());
                        sm.insert("comm_seconds".into(), b.comm_seconds.into());
                        sm.insert("dependency_seconds".into(), b.dependency_seconds.into());
                        Value::Object(sm)
                    })
                    .collect();
                m.insert("stall_breakdown".into(), Value::Array(stalls));
                // 4-class attribution with the conservation-checked window.
                let attribution: Vec<Value> = analysis
                    .attribution
                    .iter()
                    .map(|d| {
                        let mut am = Map::new();
                        am.insert("device".into(), d.device.into());
                        am.insert("window_seconds".into(), d.window.into());
                        am.insert("busy_seconds".into(), d.busy_seconds.into());
                        for class in StallClass::ALL {
                            am.insert(
                                format!("{}_seconds", class.name()),
                                d.class_seconds(class).into(),
                            );
                        }
                        Value::Object(am)
                    })
                    .collect();
                m.insert("attribution".into(), Value::Array(attribution));
                let total_window: f64 = analysis.attribution.iter().map(|d| d.window).sum();
                let total_stall: f64 = analysis
                    .attribution
                    .iter()
                    .map(DeviceAttribution::stall_seconds)
                    .sum();
                m.insert(
                    "stall_share".into(),
                    (total_stall / total_window.max(1e-12)).into(),
                );
                m.insert("critical_path".into(), analysis.cp.to_json(16));
                Value::Object(m)
            })
            .collect();

        let snap = mux_obs::snapshot();
        let mut phases = Map::new();
        for (name, stat) in &snap.phases {
            let mut pm = Map::new();
            pm.insert("count".into(), stat.count.into());
            pm.insert("total_seconds".into(), stat.total_seconds.into());
            phases.insert(name.clone(), Value::Object(pm));
        }
        let mut counters = Map::new();
        for (name, v) in &snap.counters {
            counters.insert(name.clone(), (*v).into());
        }
        let mut gauges = Map::new();
        for (name, v) in &snap.gauges {
            gauges.insert(name.clone(), (*v).into());
        }
        let mut histograms = Map::new();
        for (name, h) in &snap.histograms {
            let mut hm = Map::new();
            hm.insert("count".into(), h.count.into());
            hm.insert("sum".into(), h.sum.into());
            hm.insert("min".into(), h.min.into());
            hm.insert("max".into(), h.max.into());
            hm.insert("p50".into(), h.quantile(0.50).into());
            hm.insert("p95".into(), h.quantile(0.95).into());
            hm.insert("p99".into(), h.quantile(0.99).into());
            histograms.insert(name.clone(), Value::Object(hm));
        }

        let mut root = Map::new();
        root.insert("now_seconds".into(), self.now.into());
        root.insert("tick".into(), self.tick.into());
        root.insert("jobs".into(), Value::Array(jobs));
        root.insert("instances".into(), Value::Array(instances));
        root.insert("tenants".into(), self.tenants_json());
        root.insert("capacity".into(), self.capacity_json());
        root.insert("alerts".into(), self.alerts_json());
        root.insert("faults".into(), self.faults_json());
        root.insert(
            "serving".into(),
            self.serving
                .as_ref()
                .map(|s| s.report_json(self.now))
                .unwrap_or_else(serving::disabled_report_json),
        );
        let mut obs = Map::new();
        obs.insert("phases".into(), Value::Object(phases));
        obs.insert("counters".into(), Value::Object(counters));
        obs.insert("gauges".into(), Value::Object(gauges));
        obs.insert("histograms".into(), Value::Object(histograms));
        root.insert("observability".into(), Value::Object(obs));
        Value::Object(root)
    }

    /// Per-tenant accounting the report and exposition aggregate over:
    /// job-state counts, work and throughput totals, and SLO verdicts
    /// (realized for completed jobs, predicted for in-flight ones).
    fn tenant_stats(&self) -> BTreeMap<String, TenantStats> {
        let mut stats: BTreeMap<String, TenantStats> = BTreeMap::new();
        for j in self.jobs.values() {
            let s = stats.entry(j.spec.tenant.clone()).or_default();
            match j.state {
                JobState::Queued => s.queued += 1,
                JobState::Running { .. } => s.running += 1,
                JobState::Completed => s.completed += 1,
                JobState::Rejected => s.rejected += 1,
            }
            s.progressed_tokens += self.job_progress(j);
            s.throughput += self.job_rate(j.id);
            match j.slo_violated(self.now, self.job_eta(j.id)) {
                Some(true) => s.slo_violated += 1,
                Some(false) => s.slo_met += 1,
                None => {}
            }
        }
        stats
    }

    /// The report's `tenants` section: one entry per tenant plus
    /// cross-tenant Jain fairness indices over throughput and dispatched
    /// work. Fairness is vacuously 1.0 with zero or one tenant.
    fn tenants_json(&self) -> Value {
        let stats = self.tenant_stats();
        let per_tenant: Vec<Value> = stats
            .iter()
            .map(|(tenant, s)| {
                let mut m = Map::new();
                m.insert("tenant".into(), tenant.as_str().into());
                m.insert("queued".into(), s.queued.into());
                m.insert("running".into(), s.running.into());
                m.insert("completed".into(), s.completed.into());
                m.insert("rejected".into(), s.rejected.into());
                m.insert("progressed_tokens".into(), s.progressed_tokens.into());
                m.insert("throughput_tokens_per_second".into(), s.throughput.into());
                m.insert("slo_met".into(), s.slo_met.into());
                m.insert("slo_violated".into(), s.slo_violated.into());
                m.insert(
                    "slo_attainment".into(),
                    slo_attainment(s.slo_met, s.slo_violated).into(),
                );
                Value::Object(m)
            })
            .collect();
        let mut fairness = Map::new();
        fairness.insert(
            "jain_throughput".into(),
            jain_index(stats.values().map(|s| s.throughput)).into(),
        );
        fairness.insert(
            "jain_work".into(),
            jain_index(stats.values().map(|s| s.progressed_tokens)).into(),
        );
        let mut m = Map::new();
        m.insert("per_tenant".into(), Value::Array(per_tenant));
        m.insert("fairness".into(), Value::Object(fairness));
        Value::Object(m)
    }

    /// The report's `capacity` section: how much multiplexing headroom
    /// the pool has left, in instances and in co-location task slots.
    fn capacity_json(&self) -> Value {
        let max_instances = self.cfg.gpus_total / self.cfg.gpus_per_instance;
        let slot_capacity = self.slot_capacity();
        let slots_free = self.slots_free();
        let mut m = Map::new();
        m.insert("gpus_total".into(), self.cfg.gpus_total.into());
        m.insert(
            "gpus_per_instance".into(),
            self.cfg.gpus_per_instance.into(),
        );
        m.insert("instances_max".into(), max_instances.into());
        m.insert("instances_live".into(), self.instances.len().into());
        m.insert("instance_headroom".into(), self.capacity_left().into());
        m.insert(
            "max_tasks_per_instance".into(),
            self.cfg.max_tasks_per_instance.into(),
        );
        m.insert("task_slots_total".into(), slot_capacity.into());
        m.insert("task_slots_free".into(), slots_free.into());
        m.insert(
            "headroom_fraction".into(),
            (slots_free as f64 / (slot_capacity as f64).max(1.0)).into(),
        );
        Value::Object(m)
    }

    /// The report's `alerts` section: the active alert list, counts by
    /// severity, and total fires per rule. Every rule in
    /// [`online::rules`] is always present (0 when it never fired), so
    /// the key set is stable whether or not monitoring is on.
    fn alerts_json(&self) -> Value {
        let mut m = Map::new();
        let active: Vec<Value> = self
            .monitor
            .as_ref()
            .map(|rt| {
                rt.monitor
                    .active()
                    .map(|a| {
                        let mut am = Map::new();
                        am.insert("rule".into(), a.rule.as_str().into());
                        am.insert("severity".into(), a.severity.name().into());
                        am.insert("job".into(), a.job.into());
                        am.insert("window".into(), a.window.into());
                        am.insert("value".into(), a.value.into());
                        am.insert("threshold".into(), a.threshold.into());
                        am.insert("tick".into(), a.tick.into());
                        Value::Object(am)
                    })
                    .collect()
            })
            .unwrap_or_default();
        let mut by_severity = Map::new();
        for sev in [online::Severity::Warning, online::Severity::Critical] {
            let n = self
                .monitor
                .as_ref()
                .map(|rt| rt.monitor.active().filter(|a| a.severity == sev).count())
                .unwrap_or(0);
            by_severity.insert(sev.name().to_string(), n.into());
        }
        let mut fired = Map::new();
        for (rule, _) in online::rules() {
            let n = self
                .monitor
                .as_ref()
                .and_then(|rt| rt.monitor.fired_total().get(&rule).copied())
                .unwrap_or(0);
            fired.insert(rule, n.into());
        }
        m.insert("active".into(), Value::Array(active));
        m.insert("active_by_severity".into(), Value::Object(by_severity));
        m.insert("fired_total".into(), Value::Object(fired));
        Value::Object(m)
    }

    /// The report's `faults` section: injection and recovery totals plus
    /// per-instance live fault state. The key set is stable — every fault
    /// kind and recovery action is always present (0 when it never
    /// happened) — so dashboards and goldens can pin on it.
    fn faults_json(&self) -> Value {
        let mut injected = Map::new();
        for kind in [
            "device_slowdown",
            "link_degrade",
            "comm_transient",
            "device_loss",
        ] {
            injected.insert(
                kind.to_string(),
                self.fault_stats
                    .injected
                    .get(kind)
                    .copied()
                    .unwrap_or(0)
                    .into(),
            );
        }
        let mut recoveries = Map::new();
        for action in ["retry", "restart", "replan", "shed"] {
            recoveries.insert(
                action.to_string(),
                self.fault_stats
                    .recoveries
                    .get(action)
                    .copied()
                    .unwrap_or(0)
                    .into(),
            );
        }
        let instances: Vec<Value> = self
            .instances
            .iter()
            .enumerate()
            .map(|(i, inst)| {
                let mut im = Map::new();
                im.insert("instance".into(), i.into());
                im.insert(
                    "lost_devices".into(),
                    Value::Array(
                        inst.lost_devices
                            .iter()
                            .map(|&d| Value::from(d as u64))
                            .collect(),
                    ),
                );
                im.insert(
                    "slow_factor".into(),
                    inst.slow_factors
                        .values()
                        .fold(1.0f64, |a, &b| a.max(b))
                        .into(),
                );
                im.insert("link_factor".into(), inst.link_factor.into());
                im.insert("in_outage".into(), inst.outage.is_some().into());
                Value::Object(im)
            })
            .collect();
        let mut m = Map::new();
        m.insert("injected_total".into(), Value::Object(injected));
        m.insert("recoveries_total".into(), Value::Object(recoveries));
        m.insert("instances".into(), Value::Array(instances));
        Value::Object(m)
    }

    /// Renders the service's current state in Prometheus text-exposition
    /// format: per-job progress/throughput/ETA/stall-share/SLO gauges,
    /// per-instance makespan, utilization and per-class stall seconds,
    /// followed by the `mux-obs` registry (planner phases, counters,
    /// gauges, histograms) captured during the underlying re-plans.
    pub fn snapshot_prom(&self) -> String {
        let _on = mux_obs::enabled_scope();
        mux_obs::reset();

        let analyses: Vec<Option<InstanceAnalysis>> = (0..self.instances.len())
            .map(|i| self.instance_analysis(i))
            .collect();
        let mut stall_share_of_job: BTreeMap<JobId, f64> = BTreeMap::new();
        for analysis in analyses.iter().flatten() {
            let total_window: f64 = analysis.attribution.iter().map(|d| d.window).sum();
            if total_window <= 0.0 {
                continue;
            }
            for (&jid, &secs) in &analysis.stall_by_job {
                *stall_share_of_job.entry(jid).or_insert(0.0) += secs / total_window;
            }
        }

        let mut out = String::new();
        out.push_str("# TYPE muxtune_service_now_seconds gauge\n");
        out.push_str(&format!("muxtune_service_now_seconds {}\n", self.now));

        out.push_str("# TYPE muxtune_job_progress_tokens gauge\n");
        out.push_str("# TYPE muxtune_job_throughput_tokens_per_second gauge\n");
        out.push_str("# TYPE muxtune_job_eta_seconds gauge\n");
        out.push_str("# TYPE muxtune_job_stall_share gauge\n");
        out.push_str("# TYPE muxtune_job_slo_violated gauge\n");
        for j in self.jobs.values() {
            let id = j.id.0;
            let backbone = mux_obs::prom_escape_label(&j.spec.backbone);
            out.push_str(&format!(
                "muxtune_job_progress_tokens{{job=\"{id}\",backbone=\"{backbone}\"}} {}\n",
                self.job_progress(j)
            ));
            out.push_str(&format!(
                "muxtune_job_throughput_tokens_per_second{{job=\"{id}\",backbone=\"{backbone}\"}} {}\n",
                self.job_rate(j.id)
            ));
            let eta = self.job_eta(j.id);
            if let Some(eta_s) = eta {
                out.push_str(&format!(
                    "muxtune_job_eta_seconds{{job=\"{id}\"}} {eta_s}\n"
                ));
            }
            out.push_str(&format!(
                "muxtune_job_stall_share{{job=\"{id}\"}} {}\n",
                stall_share_of_job.get(&j.id).copied().unwrap_or(0.0)
            ));
            if let Some(v) = j.slo_violated(self.now, eta) {
                out.push_str(&format!(
                    "muxtune_job_slo_violated{{job=\"{id}\"}} {}\n",
                    v as u8
                ));
            }
        }

        out.push_str("# TYPE muxtune_instance_makespan_seconds gauge\n");
        out.push_str("# TYPE muxtune_instance_mean_utilization gauge\n");
        out.push_str("# TYPE muxtune_instance_stall_share gauge\n");
        out.push_str("# TYPE muxtune_instance_stall_seconds gauge\n");
        for (i, analysis) in analyses.iter().enumerate() {
            let Some(analysis) = analysis else { continue };
            out.push_str(&format!(
                "muxtune_instance_makespan_seconds{{instance=\"{i}\"}} {}\n",
                analysis.report.metrics.makespan
            ));
            out.push_str(&format!(
                "muxtune_instance_mean_utilization{{instance=\"{i}\"}} {}\n",
                analysis.report.metrics.mean_utilization
            ));
            let total_window: f64 = analysis.attribution.iter().map(|d| d.window).sum();
            let total_stall: f64 = analysis
                .attribution
                .iter()
                .map(DeviceAttribution::stall_seconds)
                .sum();
            out.push_str(&format!(
                "muxtune_instance_stall_share{{instance=\"{i}\"}} {}\n",
                total_stall / total_window.max(1e-12)
            ));
            for class in StallClass::ALL {
                let secs: f64 = analysis
                    .attribution
                    .iter()
                    .map(|d| d.class_seconds(class))
                    .sum();
                out.push_str(&format!(
                    "muxtune_instance_stall_seconds{{instance=\"{i}\",class=\"{}\"}} {secs}\n",
                    class.name()
                ));
            }
        }

        // Per-tenant fairness/SLO families plus pool headroom, mirroring
        // the report's `tenants`/`capacity` sections.
        let stats = self.tenant_stats();
        out.push_str("# TYPE muxtune_tenant_jobs gauge\n");
        out.push_str("# TYPE muxtune_tenant_throughput_tokens_per_second gauge\n");
        out.push_str("# TYPE muxtune_tenant_progressed_tokens gauge\n");
        out.push_str("# TYPE muxtune_tenant_slo_attainment gauge\n");
        for (tenant, s) in &stats {
            let label = mux_obs::prom_escape_label(tenant);
            for (state, n) in [
                ("queued", s.queued),
                ("running", s.running),
                ("completed", s.completed),
                ("rejected", s.rejected),
            ] {
                out.push_str(&format!(
                    "muxtune_tenant_jobs{{tenant=\"{label}\",state=\"{state}\"}} {n}\n"
                ));
            }
            out.push_str(&format!(
                "muxtune_tenant_throughput_tokens_per_second{{tenant=\"{label}\"}} {}\n",
                s.throughput
            ));
            out.push_str(&format!(
                "muxtune_tenant_progressed_tokens{{tenant=\"{label}\"}} {}\n",
                s.progressed_tokens
            ));
            out.push_str(&format!(
                "muxtune_tenant_slo_attainment{{tenant=\"{label}\"}} {}\n",
                slo_attainment(s.slo_met, s.slo_violated)
            ));
        }
        // Per-tenant completion-time quantiles from mergeable sketches
        // (bounded memory at any job count; answers within the sketch's
        // relative-error bound). JCT is submit→finish, queue wait is
        // submit→dispatch; only completed jobs contribute.
        let mut jct_sketches: BTreeMap<&str, mux_obs::QuantileSketch> = BTreeMap::new();
        let mut wait_sketches: BTreeMap<&str, mux_obs::QuantileSketch> = BTreeMap::new();
        for j in self.jobs.values() {
            if j.state != JobState::Completed {
                continue;
            }
            jct_sketches
                .entry(j.spec.tenant.as_str())
                .or_default()
                .insert(j.finished_at - j.submitted_at);
            if j.started_at.is_finite() {
                wait_sketches
                    .entry(j.spec.tenant.as_str())
                    .or_default()
                    .insert(j.started_at - j.submitted_at);
            }
        }
        out.push_str("# TYPE muxtune_tenant_jct_seconds gauge\n");
        out.push_str("# TYPE muxtune_tenant_queue_wait_seconds gauge\n");
        for (family, sketches) in [
            ("muxtune_tenant_jct_seconds", &jct_sketches),
            ("muxtune_tenant_queue_wait_seconds", &wait_sketches),
        ] {
            for (tenant, sketch) in sketches {
                let label = mux_obs::prom_escape_label(tenant);
                for (q, name) in [(0.5, "0.5"), (0.95, "0.95"), (0.99, "0.99")] {
                    out.push_str(&format!(
                        "{family}{{tenant=\"{label}\",quantile=\"{name}\"}} {}\n",
                        sketch.quantile(q)
                    ));
                }
            }
        }
        out.push_str("# TYPE muxtune_fairness_jain gauge\n");
        out.push_str(&format!(
            "muxtune_fairness_jain{{dimension=\"throughput\"}} {}\n",
            jain_index(stats.values().map(|s| s.throughput))
        ));
        out.push_str(&format!(
            "muxtune_fairness_jain{{dimension=\"work\"}} {}\n",
            jain_index(stats.values().map(|s| s.progressed_tokens))
        ));
        out.push_str("# TYPE muxtune_capacity_instances gauge\n");
        out.push_str(&format!(
            "muxtune_capacity_instances{{state=\"live\"}} {}\n",
            self.instances.len()
        ));
        out.push_str(&format!(
            "muxtune_capacity_instances{{state=\"headroom\"}} {}\n",
            self.capacity_left()
        ));
        out.push_str("# TYPE muxtune_capacity_headroom_fraction gauge\n");
        out.push_str(&format!(
            "muxtune_capacity_headroom_fraction {}\n",
            self.slots_free() as f64 / (self.slot_capacity() as f64).max(1.0)
        ));

        // Alert families are always rendered (zeros while quiet or with
        // monitoring off), so dashboards can pin queries on them.
        out.push_str("# TYPE muxtune_alerts_active gauge\n");
        out.push_str("# TYPE muxtune_alerts_fired_total counter\n");
        for (rule, severity) in online::rules() {
            let active = self
                .monitor
                .as_ref()
                .map(|rt| rt.monitor.active().filter(|a| a.rule == rule).count())
                .unwrap_or(0);
            let fired = self
                .monitor
                .as_ref()
                .and_then(|rt| rt.monitor.fired_total().get(&rule).copied())
                .unwrap_or(0);
            let label = mux_obs::prom_escape_label(&rule);
            out.push_str(&format!(
                "muxtune_alerts_active{{rule=\"{label}\",severity=\"{}\"}} {active}\n",
                severity.name()
            ));
            out.push_str(&format!(
                "muxtune_alerts_fired_total{{rule=\"{label}\"}} {fired}\n"
            ));
        }

        // Serving families render whenever serving is enabled (zeros
        // before the first request concludes).
        if let Some(s) = &self.serving {
            s.render_prom(&mut out, self.now);
        }

        out.push_str(&mux_obs::snapshot_prom());
        out
    }

    /// Running fault/recovery totals (chaos-harness assertions, reports).
    pub fn fault_stats(&self) -> &FaultStats {
        &self.fault_stats
    }

    fn check_instance(&self, i: usize) -> Result<(), FaultError> {
        if i < self.instances.len() {
            Ok(())
        } else {
            Err(FaultError::NoSuchInstance(i))
        }
    }

    fn check_device(&self, instance: usize, device: usize) -> Result<(), FaultError> {
        if device < self.cfg.gpus_per_instance {
            Ok(())
        } else {
            Err(FaultError::NoSuchDevice { instance, device })
        }
    }

    fn journal_fault(
        &mut self,
        kind: &str,
        instance: usize,
        device: Option<usize>,
        magnitude: f64,
    ) {
        self.journal.push(
            self.tick,
            self.now,
            EventKind::FaultInjected {
                kind: kind.to_string(),
                instance,
                device,
                magnitude,
            },
        );
        *self
            .fault_stats
            .injected
            .entry(kind.to_string())
            .or_insert(0) += 1;
    }

    /// Injects a fault, triggering the matching typed recovery path:
    ///
    /// - [`ServiceFault::DeviceSlowdown`] / [`ServiceFault::LinkDegrade`]:
    ///   the instance's effective rates shrink by the factor until
    ///   [`Self::clear_fault`].
    /// - [`ServiceFault::TransientComm`]: progress freezes; the service
    ///   retries with exponential backoff ([`RetryPolicy`]), journaling a
    ///   [`EventKind::RecoverRetry`] per attempt, and resumes when the
    ///   comm layer recovers.
    /// - [`ServiceFault::DeviceLoss`]: progress is checkpointed
    ///   ([`EventKind::RecoverRestart`] per hosted job) and the instance
    ///   re-plans onto its surviving devices via the degraded-plan path
    ///   ([`EventKind::RecoverReplan`]); with no survivors — or when the
    ///   degraded plan is infeasible — the lowest-priority tenants shed
    ///   ([`EventKind::RecoverShed`]) so co-tenants keep running.
    ///
    /// Invalid injections return a typed [`FaultError`] and leave the
    /// service (and its journal) untouched.
    pub fn inject_fault(&mut self, fault: ServiceFault) -> Result<(), FaultError> {
        match fault {
            ServiceFault::DeviceSlowdown {
                instance,
                device,
                factor,
            } => {
                self.check_instance(instance)?;
                self.check_device(instance, device)?;
                if !(factor.is_finite() && factor > 1.0) {
                    return Err(FaultError::BadFactor(factor));
                }
                self.journal_fault("device_slowdown", instance, Some(device), factor);
                self.materialize(instance);
                self.instances[instance].slow_factors.insert(device, factor);
                self.reprice(instance);
            }
            ServiceFault::LinkDegrade { instance, factor } => {
                self.check_instance(instance)?;
                if !(factor.is_finite() && factor > 1.0) {
                    return Err(FaultError::BadFactor(factor));
                }
                self.journal_fault("link_degrade", instance, None, factor);
                self.materialize(instance);
                let inst = &mut self.instances[instance];
                inst.link_factor = inst.link_factor.max(factor);
                self.reprice(instance);
            }
            ServiceFault::TransientComm { instance, failures } => {
                self.check_instance(instance)?;
                if failures == 0 {
                    return Err(FaultError::ZeroFailures);
                }
                self.journal_fault("comm_transient", instance, None, f64::from(failures));
                self.materialize(instance);
                let inst = &mut self.instances[instance];
                inst.outage_token += 1;
                let token = inst.outage_token;
                inst.outage = Some(OutageState {
                    attempt: 0,
                    failures,
                    token,
                });
                self.reprice(instance); // rates drop to 0 until resume
                let backoff = self.cfg.retry.backoff(1);
                self.resumes.push(Reverse(ResumeEvent {
                    at: self.now + backoff,
                    instance,
                    token,
                }));
            }
            ServiceFault::DeviceLoss { instance, device } => {
                self.check_instance(instance)?;
                self.check_device(instance, device)?;
                if self.instances[instance].lost_devices.contains(&device) {
                    return Err(FaultError::DeviceAlreadyLost { instance, device });
                }
                self.journal_fault("device_loss", instance, Some(device), 0.0);
                // Checkpoint: bank every hosted job's progress at its last
                // completed step before the topology changes.
                self.materialize(instance);
                self.instances[instance].lost_devices.insert(device);
                let survivors =
                    self.cfg.gpus_per_instance - self.instances[instance].lost_devices.len();
                let hosted: Vec<JobId> = self.instances[instance]
                    .job_of_task
                    .values()
                    .copied()
                    .collect();
                for jid in &hosted {
                    let banked = self.jobs[jid].progressed_tokens;
                    self.journal.push(
                        self.tick,
                        self.now,
                        EventKind::RecoverRestart {
                            job: jid.0,
                            instance,
                            checkpoint_tokens: banked,
                        },
                    );
                    *self
                        .fault_stats
                        .recoveries
                        .entry("restart".into())
                        .or_insert(0) += 1;
                }
                match degraded_plan(self.cfg.plan, survivors) {
                    Some(plan) => {
                        let inst = &mut self.instances[instance];
                        inst.plan_override = Some(plan);
                        inst.cluster_override = Some(Cluster::single_node(
                            self.cfg.gpu.clone(),
                            survivors,
                            self.cfg.link.clone(),
                        ));
                        self.replan(instance);
                        let epoch = self.instances[instance].epoch;
                        self.journal.push(
                            self.tick,
                            self.now,
                            EventKind::RecoverReplan {
                                instance,
                                devices_left: survivors,
                                epoch,
                            },
                        );
                        *self
                            .fault_stats
                            .recoveries
                            .entry("replan".into())
                            .or_insert(0) += 1;
                    }
                    None => {
                        let tasks: Vec<TaskId> = self.instances[instance]
                            .job_of_task
                            .keys()
                            .copied()
                            .collect();
                        for t in tasks {
                            self.shed(instance, t, "no surviving devices on instance".into(), true);
                        }
                        self.replan(instance);
                    }
                }
                self.dispatch_queued();
            }
        }
        Ok(())
    }

    /// Clears live slowdown / link-degradation faults on `instance`,
    /// restoring its fault-free rates. Transient comm faults clear
    /// themselves via the retry path; device loss is permanent.
    pub fn clear_fault(&mut self, instance: usize) -> Result<(), FaultError> {
        self.check_instance(instance)?;
        self.materialize(instance);
        let inst = &mut self.instances[instance];
        let had_slow = !inst.slow_factors.is_empty();
        let had_link = inst.link_factor > 1.0;
        inst.slow_factors.clear();
        inst.link_factor = 1.0;
        if had_slow {
            self.journal.push(
                self.tick,
                self.now,
                EventKind::FaultCleared {
                    kind: "device_slowdown".into(),
                    instance,
                },
            );
        }
        if had_link {
            self.journal.push(
                self.tick,
                self.now,
                EventKind::FaultCleared {
                    kind: "link_degrade".into(),
                    instance,
                },
            );
        }
        if had_slow || had_link {
            self.reprice(instance);
        }
        Ok(())
    }

    /// Tenant job churn: cancels a queued or running job, rejecting it
    /// with `reason`; co-tenants re-plan and keep running. Returns whether
    /// anything was cancelled (completed/rejected/unknown jobs are no-ops).
    pub fn cancel(&mut self, id: JobId, reason: &str) -> bool {
        match self.jobs.get(&id).map(|j| j.state) {
            Some(JobState::Queued) => {
                self.queue.retain(|&q| q != id);
                self.reject(id, format!("cancelled: {reason}"));
                true
            }
            Some(JobState::Running { instance }) => {
                let tid = self.instances[instance]
                    .job_of_task
                    .iter()
                    .find(|&(_, &jid)| jid == id)
                    .map(|(&t, _)| t);
                match tid {
                    Some(tid) => {
                        self.materialize(instance);
                        self.shed(instance, tid, format!("cancelled: {reason}"), false);
                        self.replan(instance);
                        self.dispatch_queued();
                        true
                    }
                    None => false,
                }
            }
            _ => false,
        }
    }

    /// Runs until every job is completed or rejected, or no pending
    /// completion remains (replan sheds zero-rate jobs, so a live running
    /// set always has one). Returns the final time.
    pub fn run_to_completion(&mut self) -> f64 {
        while self
            .jobs
            .values()
            .any(|j| matches!(j.state, JobState::Queued | JobState::Running { .. }))
        {
            let Some(step) = self.next_event_in() else {
                // Nothing is running: retry dispatch once for any queued
                // stragglers, then stop rather than spin forever.
                self.dispatch_queued();
                if self.next_event_in().is_none() {
                    break;
                }
                continue;
            };
            self.advance(step.max(1e-6));
        }
        self.now
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mux_data::corpus::DatasetKind;

    fn service(gpus: usize) -> FineTuneService {
        let mut cfg = ServiceConfig::a40_pool(gpus);
        cfg.backbone_layers = Some(8); // keep the planner fast in tests
        FineTuneService::new(cfg)
    }

    fn spec(tokens: u64) -> JobSpec {
        JobSpec::lora("LLaMA2-7B", DatasetKind::OpenBookQa, 16, 4, tokens)
    }

    #[test]
    fn same_backbone_jobs_share_one_instance() {
        let mut svc = service(16);
        let a = svc.submit(spec(100_000));
        let b = svc.submit(spec(100_000));
        assert_eq!(
            svc.instance_count(),
            1,
            "second job joins the in-flight instance"
        );
        assert_eq!(svc.instance_load(0), 2);
        assert!(matches!(
            svc.job(a).unwrap().state,
            JobState::Running { instance: 0 }
        ));
        assert!(matches!(
            svc.job(b).unwrap().state,
            JobState::Running { instance: 0 }
        ));
    }

    #[test]
    fn different_backbones_get_separate_instances() {
        let mut svc = service(16);
        svc.submit(spec(100_000));
        svc.submit(JobSpec::lora("GPT3-2.7B", DatasetKind::Sst2, 8, 4, 100_000));
        assert_eq!(
            svc.instance_count(),
            2,
            "backbone homogeneity is required for sharing"
        );
    }

    #[test]
    fn unknown_backbone_is_rejected() {
        let mut svc = service(8);
        let id = svc.submit(JobSpec::lora("GPT-5", DatasetKind::Sst2, 8, 4, 1000));
        assert_eq!(svc.job(id).unwrap().state, JobState::Rejected);
    }

    #[test]
    fn jobs_complete_and_unblock_the_queue() {
        let mut svc = service(4); // one instance only
        let mut cfg_ids = Vec::new();
        // Fill the instance to capacity, then one more queues.
        for _ in 0..8 {
            cfg_ids.push(svc.submit(spec(50_000)));
        }
        let overflow = svc.submit(spec(50_000));
        assert_eq!(svc.job(overflow).unwrap().state, JobState::Queued);
        let end = svc.run_to_completion();
        assert!(end > 0.0);
        for id in cfg_ids.into_iter().chain([overflow]) {
            let j = svc.job(id).unwrap();
            assert_eq!(j.state, JobState::Completed, "job {id:?}");
            assert!(j.jct().unwrap() > 0.0);
        }
    }

    #[test]
    fn smaller_jobs_finish_first_under_colocation() {
        let mut svc = service(4);
        let small = svc.submit(spec(20_000));
        let large = svc.submit(spec(200_000));
        svc.run_to_completion();
        let (s, l) = (svc.job(small).unwrap(), svc.job(large).unwrap());
        assert!(
            s.finished_at < l.finished_at,
            "{} vs {}",
            s.finished_at,
            l.finished_at
        );
    }

    #[test]
    fn dedicated_policy_never_shares() {
        let mut cfg = ServiceConfig::a40_pool(16);
        cfg.backbone_layers = Some(8);
        cfg.dispatch = DispatchPolicy::DedicatedInstances;
        let mut svc = FineTuneService::new(cfg);
        svc.submit(spec(10_000));
        svc.submit(spec(10_000));
        assert_eq!(svc.instance_count(), 2);
        assert_eq!(svc.instance_load(0), 1);
    }

    #[test]
    fn service_report_surfaces_devices_stalls_and_planner_phases() {
        let mut svc = service(4);
        svc.submit(spec(100_000));
        svc.submit(spec(100_000));
        let rep = svc.service_report();
        let inst = &rep["instances"][0];
        assert_eq!(inst["tasks"].as_u64(), Some(2));
        let devices = inst["devices"].as_array().expect("per-device metrics");
        assert_eq!(devices.len(), 4);
        for d in devices {
            let busy = d["busy_fraction"].as_f64().expect("busy fraction");
            assert!(busy > 0.0 && busy <= 1.0, "busy {busy}");
        }
        let stalls = inst["stall_breakdown"].as_array().expect("stall breakdown");
        assert_eq!(stalls.len(), 4);
        let obs = &rep["observability"];
        let phases = obs["phases"].as_object().expect("phases");
        assert!(phases.contains_key("planner.fusion"), "phases: {phases:?}");
        assert!(phases.contains_key("engine.simulate"), "phases: {phases:?}");
        assert!(obs["counters"]["planner.candidates"].as_u64().unwrap() >= 1);
        assert!(obs["gauges"]["run.mean_utilization"].as_f64().unwrap() > 0.0);
    }

    #[test]
    fn service_report_attributes_stalls_and_tracks_slos() {
        let mut svc = service(4);
        let relaxed = svc.submit(spec(100_000).with_slo(1e9));
        let tight = svc.submit(spec(100_000).with_slo(1e-3));
        let rep = svc.service_report();
        let inst = &rep["instances"][0];

        // 4-class attribution conserves busy + stalls == window per device.
        let attribution = inst["attribution"].as_array().expect("attribution");
        assert_eq!(attribution.len(), 4);
        for d in attribution {
            let window = d["window_seconds"].as_f64().unwrap();
            let accounted = d["busy_seconds"].as_f64().unwrap()
                + d["pipeline_bubble_seconds"].as_f64().unwrap()
                + d["comm_wait_seconds"].as_f64().unwrap()
                + d["dependency_wait_seconds"].as_f64().unwrap()
                + d["alignment_imbalance_seconds"].as_f64().unwrap()
                + d["fault_recovery_seconds"].as_f64().unwrap();
            assert!(
                (accounted - window).abs() <= 1e-9 * window.max(1.0),
                "device {}: accounted {accounted} vs window {window}",
                d["device"]
            );
        }

        // Critical path spans exactly the instance makespan.
        let cp = &inst["critical_path"];
        let makespan = inst["makespan_seconds"].as_f64().unwrap();
        let cp_len = cp["length_seconds"].as_f64().unwrap();
        assert!(
            (cp_len - makespan).abs() <= 1e-9 * makespan.max(1.0),
            "critical path {cp_len} vs makespan {makespan}"
        );
        assert!(!cp["segments"].as_array().unwrap().is_empty());

        // Instance stall share is a sane fraction.
        let share = inst["stall_share"].as_f64().unwrap();
        assert!((0.0..=1.0).contains(&share), "stall share {share}");

        // Per-job accounting: both jobs progress, only the tight SLO is
        // (predicted to be) violated.
        for j in rep["jobs"].as_array().unwrap() {
            assert!(j["throughput_tokens_per_second"].as_f64().unwrap() > 0.0);
            assert!(j["eta_seconds"].as_f64().unwrap() > 0.0);
            let share = j["stall_share"].as_f64().unwrap();
            assert!((0.0..=1.0).contains(&share));
            let id = j["id"].as_u64().unwrap();
            let violated = j["slo_violated"].as_bool().unwrap();
            assert_eq!(violated, id == tight.0, "job {id}");
        }
        assert_ne!(relaxed, tight);

        // Histograms captured during the traced re-plan surface in the
        // obs section with quantiles.
        let hists = rep["observability"]["histograms"]
            .as_object()
            .expect("histograms");
        let h = hists
            .get("engine.compute_op_seconds")
            .expect("compute-op histogram");
        assert!(h["count"].as_u64().unwrap() > 0);
        assert!(h["p99"].as_f64().unwrap() >= h["p50"].as_f64().unwrap());
    }

    #[test]
    fn snapshot_prom_is_well_formed_exposition() {
        let mut svc = service(4);
        svc.submit(spec(100_000).with_slo(3600.0));
        svc.submit(spec(100_000));
        let text = svc.snapshot_prom();
        assert!(text.contains("muxtune_job_progress_tokens{job=\"1\",backbone=\"LLaMA2-7B\"}"));
        assert!(text.contains(
            "muxtune_job_throughput_tokens_per_second{job=\"2\",backbone=\"LLaMA2-7B\"}"
        ));
        assert!(text.contains("muxtune_job_slo_violated{job=\"1\"}"));
        // Alert families render (zeros) even with monitoring off.
        assert!(text.contains("muxtune_alerts_active{rule=\"slo_burn\",severity=\"critical\"} 0"));
        assert!(text.contains("muxtune_alerts_fired_total{rule=\"throughput_drop\"} 0"));
        // Job 2 has no SLO, so no verdict series for it.
        assert!(!text.contains("muxtune_job_slo_violated{job=\"2\"}"));
        assert!(text.contains("muxtune_instance_makespan_seconds{instance=\"0\"}"));
        for class in [
            "pipeline_bubble",
            "comm_wait",
            "dependency_wait",
            "alignment_imbalance",
            "fault_recovery",
        ] {
            assert!(
                text.contains(&format!(
                    "muxtune_instance_stall_seconds{{instance=\"0\",class=\"{class}\"}}"
                )),
                "missing class {class}"
            );
        }
        // The obs registry rides along (planner phases from the re-plan).
        assert!(text.contains("muxtune_phase_seconds_total{phase=\"planner.total\"}"));
        // Every non-comment line is `name[{labels}] value`.
        for line in text
            .lines()
            .filter(|l| !l.starts_with('#') && !l.is_empty())
        {
            let (name, value) = line.rsplit_once(' ').expect("name value");
            assert!(!name.is_empty(), "{line:?}");
            assert!(value.parse::<f64>().is_ok(), "numeric value in {line:?}");
        }
    }

    #[test]
    fn tenant_quantile_families_survive_hostile_tenant_names() {
        // The new per-tenant JCT/queue-wait families interpolate tenant
        // names into label values; hostile names (quotes, newlines,
        // backslashes, UTF-8, leading digits) must escape into valid
        // single-line exposition, extending the PR-4 hostile-input tests.
        let hostile = [
            "team\"quote",
            "line\nbreak",
            "back\\slash",
            "团队-λ",
            "7digits",
        ];
        let mut svc = service(8);
        for tenant in hostile {
            svc.submit(spec(10_000).with_tenant(tenant));
        }
        svc.run_to_completion();
        let text = svc.snapshot_prom();
        for tenant in hostile {
            let label = mux_obs::prom_escape_label(tenant);
            for q in ["0.5", "0.95", "0.99"] {
                assert!(
                    text.contains(&format!(
                        "muxtune_tenant_jct_seconds{{tenant=\"{label}\",quantile=\"{q}\"}}"
                    )),
                    "missing jct quantile {q} for {tenant:?}"
                );
                assert!(
                    text.contains(&format!(
                        "muxtune_tenant_queue_wait_seconds{{tenant=\"{label}\",quantile=\"{q}\"}}"
                    )),
                    "missing queue-wait quantile {q} for {tenant:?}"
                );
            }
        }
        // Escaping kept the exposition line-oriented and parseable:
        // every non-comment line is `name{labels} value` with a numeric
        // value, and no label value leaked a raw quote or newline.
        for line in text
            .lines()
            .filter(|l| !l.starts_with('#') && !l.is_empty())
        {
            let (name, value) = line.rsplit_once(' ').expect("name value");
            assert!(!name.is_empty(), "{line:?}");
            assert!(value.parse::<f64>().is_ok(), "numeric value in {line:?}");
        }
        assert!(
            !text.contains("tenant=\"line\nbreak\""),
            "raw newline tenant must always render escaped"
        );
        assert!(
            text.contains("tenant=\"line\\nbreak\""),
            "escaped newline form must be what renders"
        );
    }

    #[test]
    fn invalid_specs_are_rejected_at_submit_with_reasons() {
        let mut svc = service(8);
        let zero_mb = svc.submit(JobSpec::lora("LLaMA2-7B", DatasetKind::Sst2, 16, 0, 1000));
        let zero_tok = svc.submit(JobSpec::lora("LLaMA2-7B", DatasetKind::Sst2, 16, 4, 0));
        let empty_corpus = svc.submit(spec(1000).with_sequence_lengths(vec![0, 0, 0]));
        for id in [zero_mb, zero_tok, empty_corpus] {
            let j = svc.job(id).unwrap();
            assert_eq!(j.state, JobState::Rejected, "job {id:?}");
            assert!(j.reject_reason.is_some(), "job {id:?} carries a reason");
        }
        assert_eq!(svc.instance_count(), 0, "nothing was dispatched");
        svc.advance(1.0); // no panic on an empty service
    }

    #[test]
    fn oversize_sequences_are_truncated_to_the_dataset_cap() {
        let mut svc = service(4);
        // OpenBookQA caps at 256; these rows would be unpackable untruncated.
        let id = svc.submit(spec(20_000).with_sequence_lengths(vec![10_000, 300, 64, 0, 128]));
        assert!(matches!(
            svc.job(id).unwrap().state,
            JobState::Running { .. }
        ));
        svc.run_to_completion();
        assert_eq!(svc.job(id).unwrap().state, JobState::Completed);
    }

    #[test]
    fn infeasible_job_is_shed_with_a_reason_while_cotenants_complete() {
        let mut svc = service(4);
        let a = svc.submit(spec(50_000));
        let b = svc.submit(spec(50_000));
        // A single task whose corpus is so large no fusion fits it in A40
        // memory (its per-micro-batch activations alone overflow the
        // card): the planner errors, and the service must shed exactly
        // this job.
        let hog = svc.submit(
            JobSpec::lora("LLaMA2-7B", DatasetKind::OpenBookQa, 16, 4, 50_000)
                .with_sequence_lengths(vec![256; 2000]),
        );
        let j = svc.job(hog).unwrap();
        assert_eq!(j.state, JobState::Rejected, "infeasible job is rejected");
        let reason = j.reject_reason.as_deref().expect("carries the plan error");
        assert!(
            reason.contains("infeasible") || reason.contains("memory") || reason.contains("oom"),
            "reason names the cause: {reason:?}"
        );
        let rep = svc.service_report();
        let rejected = rep["jobs"]
            .as_array()
            .unwrap()
            .iter()
            .find(|v| v["id"].as_u64() == Some(hog.0))
            .unwrap();
        assert!(rejected["reject_reason"].as_str().is_some());
        // Co-tenants were unaffected and run to completion.
        svc.run_to_completion();
        for id in [a, b] {
            assert_eq!(svc.job(id).unwrap().state, JobState::Completed);
        }
    }

    /// Regression (rate-split bug): the divisor used to be
    /// `total.max(1.0)`, so a membership whose combined content summed
    /// below one token had every rate silently deflated — the shares no
    /// longer summed to the instance throughput.
    #[test]
    fn split_throughput_conserves_rate_for_sub_token_totals() {
        let raw: BTreeMap<TaskId, f64> = [(1, 0.3), (2, 0.2)].into_iter().collect();
        let rates = FineTuneService::split_throughput(1000.0, &raw);
        let sum: f64 = rates.values().sum();
        assert!(
            (sum - 1000.0).abs() < 1e-9,
            "shares must sum to the effective throughput, got {sum}"
        );
        assert!((rates[&1] - 600.0).abs() < 1e-9, "rate {}", rates[&1]);
        assert!((rates[&2] - 400.0).abs() < 1e-9, "rate {}", rates[&2]);
    }

    /// A zero-content membership yields all-zero rates, never NaN; the
    /// replan loop then sheds those tasks as degenerate.
    #[test]
    fn split_throughput_zero_total_yields_zeros_not_nan() {
        let raw: BTreeMap<TaskId, f64> = [(1, 0.0), (2, 0.0)].into_iter().collect();
        let rates = FineTuneService::split_throughput(1000.0, &raw);
        for (&t, &r) in &rates {
            assert_eq!(r, 0.0, "task {t} rate must be exactly zero, got {r}");
        }
    }

    /// Regression (epoch bug): the shed-retry loop used to bump
    /// `inst.epoch` at the top of every iteration, so a replan that shed
    /// k tasks burned k+1 epochs. The epoch must advance exactly once
    /// per *concluded* replan, shed retries included.
    #[test]
    fn epoch_advances_exactly_once_per_successful_replan() {
        let mut svc = service(4);
        svc.submit(spec(50_000));
        assert_eq!(svc.instances[0].epoch, 1, "first replan");
        svc.submit(spec(50_000));
        assert_eq!(svc.instances[0].epoch, 2, "second replan");
        // An infeasible arrival forces one shed inside the replan loop;
        // the retry that then succeeds must still cost a single epoch.
        svc.submit(
            JobSpec::lora("LLaMA2-7B", DatasetKind::OpenBookQa, 16, 4, 50_000)
                .with_sequence_lengths(vec![256; 2000]),
        );
        assert_eq!(
            svc.instances[0].epoch, 3,
            "a replan that sheds k tasks must burn one epoch, not k+1"
        );
    }

    /// Tentpole no-op pin: forcing a replan with unchanged membership
    /// under [`ReplanMode::Incremental`] is a pure cache hit — zero
    /// fusion ranges are built and the DP is not re-run.
    #[test]
    fn incremental_noop_replan_builds_zero_ranges() {
        let mut cfg = ServiceConfig::a40_pool(4);
        cfg.backbone_layers = Some(8);
        cfg.replan_mode = ReplanMode::Incremental;
        let mut svc = FineTuneService::new(cfg);
        svc.submit(spec(50_000));
        svc.submit(spec(50_000));
        let warm = svc.planner_stats(0);
        assert!(warm.ranges_built > 0, "warm-up built the tables");
        assert!(svc.force_replan(0), "instance 0 exists");
        let after = svc.planner_stats(0);
        assert_eq!(
            after.ranges_built, warm.ranges_built,
            "no-op replan must build zero ranges"
        );
        assert_eq!(after.noop_plans, warm.noop_plans + 1);
        // The cached rates are still live and the jobs still complete.
        svc.run_to_completion();
    }

    /// Incremental and estimate modes price identically: same journal,
    /// same rates, same completion times.
    #[test]
    fn incremental_mode_matches_estimate_mode_end_to_end() {
        let run = |mode: ReplanMode| {
            let mut cfg = ServiceConfig::a40_pool(4);
            cfg.backbone_layers = Some(8);
            cfg.replan_mode = mode;
            let mut svc = FineTuneService::new(cfg);
            let a = svc.submit(spec(20_000));
            let b = svc.submit(spec(60_000));
            svc.run_to_completion();
            svc.seal_journal();
            (
                svc.journal().events().len(),
                svc.job(a).unwrap().finished_at,
                svc.job(b).unwrap().finished_at,
            )
        };
        let est = run(ReplanMode::Estimate);
        let inc = run(ReplanMode::Incremental);
        assert_eq!(est, inc, "estimate vs incremental diverged");
    }

    #[test]
    fn journal_records_lifecycle_and_seals_verifiably() {
        let mut svc = service(4);
        let ok = svc.submit(spec(20_000));
        let bad = svc.submit(JobSpec::lora("LLaMA2-7B", DatasetKind::Sst2, 16, 0, 1000));
        svc.run_to_completion();
        svc.seal_journal();
        let kinds: Vec<&str> = svc
            .journal()
            .events()
            .iter()
            .map(|e| e.kind.name())
            .collect();
        assert!(kinds.contains(&"submit"));
        assert!(kinds.contains(&"dispatch"));
        assert!(kinds.contains(&"replan"));
        assert!(kinds.contains(&"reject"));
        assert!(kinds.contains(&"complete"));
        assert_eq!(kinds.last(), Some(&"final"));
        // Replay reproduces the live state, and the sealed journal
        // verifies after a JSONL round trip.
        let replayed = svc.journal().verify().expect("sealed journal verifies");
        let live = svc.state_fingerprint();
        assert_eq!(replayed.jobs, live.jobs);
        assert_eq!(replayed.jobs[&ok.0], "completed");
        assert_eq!(replayed.jobs[&bad.0], "rejected");
        let text = svc.journal().to_jsonl();
        let back = crate::journal::Journal::from_jsonl(&text).expect("parse");
        assert!(back.verify().is_ok());
    }

    #[test]
    fn monitoring_fires_slo_burn_on_a_hopeless_slo_and_stays_quiet_otherwise() {
        let mut svc = service(4);
        svc.enable_monitoring(MonitorConfig::default());
        // A job that cannot possibly finish within its SLO burns budget
        // from the first tick; a best-effort co-tenant never alerts.
        let doomed = svc.submit(spec(10_000_000).with_slo(0.5));
        let easy = svc.submit(spec(10_000_000));
        let dt = 0.05;
        let mut fired_tick = None;
        for _ in 0..12 {
            svc.tick(dt);
            if svc.alerts().iter().any(|a| a.rule == "slo_burn") {
                fired_tick = Some(svc.current_tick());
                break;
            }
        }
        let fired_tick = fired_tick.expect("slo_burn fires on a hopeless SLO");
        // Within 2 fast windows of the first possible evaluation.
        assert!(fired_tick <= 10, "fired at tick {fired_tick}");
        let alert = svc
            .alerts()
            .into_iter()
            .find(|a| a.rule == "slo_burn")
            .unwrap()
            .clone();
        assert_eq!(alert.job, doomed.0);
        assert_ne!(alert.job, easy.0);
        // The alert surfaces in the report and the exposition.
        let rep = svc.service_report();
        assert!(rep["alerts"]["fired_total"]["slo_burn"].as_u64().unwrap() >= 1);
        assert!(
            rep["alerts"]["active_by_severity"]["critical"]
                .as_u64()
                .unwrap()
                >= 1
        );
        let active = rep["alerts"]["active"].as_array().unwrap();
        assert!(active.iter().any(|a| {
            a["rule"].as_str() == Some("slo_burn") && a["job"].as_u64() == Some(doomed.0)
        }));
        let prom = svc.snapshot_prom();
        assert!(prom.contains("muxtune_alerts_active{rule=\"slo_burn\",severity=\"critical\"} 1"));
        // The journal carries the fire event.
        assert!(svc
            .journal()
            .events()
            .iter()
            .any(|e| e.kind.name() == "alert_fired"));
    }

    #[test]
    fn monitoring_stays_quiet_on_steady_state() {
        let mut svc = service(4);
        svc.enable_monitoring(MonitorConfig::default());
        svc.submit(spec(10_000_000));
        svc.submit(spec(10_000_000));
        for _ in 0..30 {
            svc.tick(0.05);
        }
        assert!(svc.alerts().is_empty(), "steady state must not alert");
        let rep = svc.service_report();
        for (rule, _) in online::rules() {
            assert_eq!(
                rep["alerts"]["fired_total"][rule.as_str()].as_u64(),
                Some(0),
                "rule {rule} fired on steady state"
            );
        }
    }

    #[test]
    fn monitoring_fires_throughput_drop_on_cotenant_storm() {
        let mut svc = service(4);
        svc.enable_monitoring(MonitorConfig::default());
        let victim = svc.submit(spec(50_000_000));
        // Let the detector baseline on the solo rate.
        for _ in 0..10 {
            svc.tick(0.05);
        }
        // Storm: a burst of co-tenants joins the instance, so the replan
        // splits effective throughput and the victim's rate collapses.
        for _ in 0..6 {
            svc.submit(spec(50_000_000));
        }
        let mut fired_tick = None;
        for _ in 0..10 {
            svc.tick(0.05);
            if svc
                .alerts()
                .iter()
                .any(|a| a.rule == "throughput_drop" && a.job == victim.0)
            {
                fired_tick = Some(svc.current_tick());
                break;
            }
        }
        let fired_tick = fired_tick.expect("throughput_drop fires on the victim");
        assert!(fired_tick <= 12, "fired at tick {fired_tick}");
    }

    #[test]
    fn device_slowdown_stretches_jct_and_clear_restores() {
        let baseline = {
            let mut svc = service(4);
            let id = svc.submit(spec(50_000));
            svc.run_to_completion();
            svc.job(id).unwrap().jct().unwrap()
        };
        // Straggler at 2x from t=0: the whole pipeline runs at its pace.
        let mut svc = service(4);
        let id = svc.submit(spec(50_000));
        svc.inject_fault(ServiceFault::DeviceSlowdown {
            instance: 0,
            device: 1,
            factor: 2.0,
        })
        .expect("valid fault");
        svc.run_to_completion();
        let slowed = svc.job(id).unwrap().jct().unwrap();
        assert!(
            (slowed - 2.0 * baseline).abs() < 1e-6 * baseline,
            "straggler doubles JCT: {slowed} vs {baseline}"
        );
        // Injecting and clearing before any time passes leaves JCT intact.
        let mut svc = service(4);
        let id = svc.submit(spec(50_000));
        svc.inject_fault(ServiceFault::DeviceSlowdown {
            instance: 0,
            device: 0,
            factor: 8.0,
        })
        .expect("valid fault");
        svc.clear_fault(0).expect("clear");
        svc.run_to_completion();
        let cleared = svc.job(id).unwrap().jct().unwrap();
        assert!(
            (cleared - baseline).abs() < 1e-9 * baseline.max(1.0),
            "cleared fault restores the fault-free JCT: {cleared} vs {baseline}"
        );
        let kinds: Vec<&str> = svc
            .journal()
            .events()
            .iter()
            .map(|e| e.kind.name())
            .collect();
        assert!(kinds.contains(&"fault_injected"));
        assert!(kinds.contains(&"fault_cleared"));
    }

    #[test]
    fn transient_comm_fault_retries_with_backoff_and_recovers() {
        let baseline = {
            let mut svc = service(4);
            let id = svc.submit(spec(50_000));
            svc.run_to_completion();
            svc.job(id).unwrap().jct().unwrap()
        };
        let mut svc = service(4);
        let retry = svc.cfg.retry;
        let id = svc.submit(spec(50_000));
        svc.inject_fault(ServiceFault::TransientComm {
            instance: 0,
            failures: 3,
        })
        .expect("valid fault");
        svc.run_to_completion();
        let j = svc.job(id).unwrap();
        assert_eq!(j.state, JobState::Completed, "job survives the outage");
        // The outage lasts exactly the backoff schedule: 1st + 2nd + 3rd.
        let outage: f64 = (1..=3).map(|k| retry.backoff(k)).sum();
        let jct = j.jct().unwrap();
        assert!(
            (jct - (baseline + outage)).abs() < 1e-6,
            "JCT is baseline plus the backoff schedule: {jct} vs {} + {outage}",
            baseline
        );
        // Journal: one retry per attempt, each within the cap, then clear.
        let mut attempts = Vec::new();
        for ev in svc.journal().events() {
            if let EventKind::RecoverRetry {
                attempt,
                backoff_seconds,
                ..
            } = &ev.kind
            {
                assert!(
                    *backoff_seconds <= retry.max_backoff + 1e-12,
                    "backoff never exceeds its cap"
                );
                attempts.push(*attempt);
            }
        }
        assert_eq!(attempts, vec![1, 2, 3]);
        assert!(svc.journal().events().iter().any(
            |e| matches!(&e.kind, EventKind::FaultCleared { kind, .. } if kind == "comm_transient")
        ));
        assert_eq!(svc.fault_stats().recoveries.get("retry"), Some(&3));
    }

    #[test]
    fn retry_backoff_doubles_up_to_the_cap() {
        let p = RetryPolicy {
            base_backoff: 0.1,
            max_backoff: 0.5,
        };
        assert_eq!(p.backoff(1), 0.1);
        assert_eq!(p.backoff(2), 0.2);
        assert_eq!(p.backoff(3), 0.4);
        assert_eq!(p.backoff(4), 0.5, "capped");
        assert_eq!(p.backoff(40), 0.5, "stays capped");
    }

    #[test]
    fn device_loss_replans_affected_jobs_and_leaves_cotenants_untouched() {
        // Two instances via two backbones: the fault hits instance 0 only.
        let run = |fault: bool| {
            let mut svc = service(8);
            let a = svc.submit(spec(60_000));
            let b = svc.submit(spec(60_000));
            let c = svc.submit(JobSpec::lora("GPT3-2.7B", DatasetKind::Sst2, 8, 4, 60_000));
            svc.advance(5.0);
            if fault {
                svc.inject_fault(ServiceFault::DeviceLoss {
                    instance: 0,
                    device: 3,
                })
                .expect("valid fault");
            }
            svc.run_to_completion();
            (svc, a, b, c)
        };
        let (healthy, _, _, c0) = run(false);
        let (faulty, a, b, c) = run(true);
        // Affected jobs recover: checkpoint/restart, degraded replan, and
        // completion on the 3 surviving GPUs.
        for id in [a, b] {
            assert_eq!(faulty.job(id).unwrap().state, JobState::Completed);
        }
        let restarts: Vec<f64> = faulty
            .journal()
            .events()
            .iter()
            .filter_map(|e| match &e.kind {
                EventKind::RecoverRestart {
                    checkpoint_tokens, ..
                } => Some(*checkpoint_tokens),
                _ => None,
            })
            .collect();
        assert_eq!(restarts.len(), 2, "both hosted jobs checkpoint");
        for t in &restarts {
            assert!(*t > 0.0, "checkpoint preserves pre-fault progress");
        }
        assert!(faulty.journal().events().iter().any(|e| matches!(
            &e.kind,
            EventKind::RecoverReplan {
                instance: 0,
                devices_left: 3,
                ..
            }
        )));
        // The degraded instance is slower: affected JCTs grow.
        assert!(
            faulty.job(a).unwrap().jct().unwrap() > healthy.job(a).unwrap().jct().unwrap(),
            "3-GPU degraded plan is slower than the healthy 4-GPU plan"
        );
        // The unaffected co-tenant's completion time is bit-identical.
        assert_eq!(
            faulty.job(c).unwrap().finished_at,
            healthy.job(c0).unwrap().finished_at,
            "co-tenant on the untouched instance is unaffected"
        );
        assert_eq!(faulty.fault_stats().injected.get("device_loss"), Some(&1));
        assert_eq!(faulty.fault_stats().recoveries.get("replan"), Some(&1));
    }

    #[test]
    fn permanently_starved_backbone_is_rejected_not_queued_forever() {
        // One instance slot, taken by a LLaMA pool. Instances are never
        // torn down, so a GPT3 job can never be hosted: reject it at
        // dispatch instead of starving it in the queue.
        let mut svc = service(4);
        let keep = svc.submit(spec(50_000));
        let starved = svc.submit(JobSpec::lora("GPT3-2.7B", DatasetKind::Sst2, 8, 4, 50_000));
        let j = svc.job(starved).unwrap();
        assert_eq!(j.state, JobState::Rejected);
        assert!(j.reject_reason.as_deref().unwrap().contains("no capacity"));
        svc.run_to_completion();
        assert_eq!(svc.job(keep).unwrap().state, JobState::Completed);
    }

    #[test]
    fn cancelled_job_is_rejected_and_cotenants_keep_running() {
        let mut svc = service(4);
        let keep = svc.submit(spec(50_000));
        let churn = svc.submit(spec(50_000));
        svc.advance(2.0);
        assert!(svc.cancel(churn, "tenant gave up"));
        let j = svc.job(churn).unwrap();
        assert_eq!(j.state, JobState::Rejected);
        assert!(j.reject_reason.as_deref().unwrap().contains("cancelled"));
        // Cancelling again (or cancelling a completed job) is a no-op.
        assert!(!svc.cancel(churn, "again"));
        svc.run_to_completion();
        assert_eq!(svc.job(keep).unwrap().state, JobState::Completed);
        assert!(!svc.cancel(keep, "too late"));
        assert!(svc
            .journal()
            .events()
            .iter()
            .any(|e| matches!(&e.kind, EventKind::Shed { job, .. } if *job == churn.0)));
    }

    #[test]
    fn invalid_fault_injections_are_typed_errors_and_leave_no_trace() {
        let mut svc = service(4);
        svc.submit(spec(50_000));
        let before = svc.journal().len();
        assert_eq!(
            svc.inject_fault(ServiceFault::DeviceSlowdown {
                instance: 9,
                device: 0,
                factor: 2.0
            }),
            Err(FaultError::NoSuchInstance(9))
        );
        assert_eq!(
            svc.inject_fault(ServiceFault::DeviceLoss {
                instance: 0,
                device: 64
            }),
            Err(FaultError::NoSuchDevice {
                instance: 0,
                device: 64
            })
        );
        assert_eq!(
            svc.inject_fault(ServiceFault::LinkDegrade {
                instance: 0,
                factor: 0.5
            }),
            Err(FaultError::BadFactor(0.5))
        );
        assert_eq!(
            svc.inject_fault(ServiceFault::TransientComm {
                instance: 0,
                failures: 0
            }),
            Err(FaultError::ZeroFailures)
        );
        assert_eq!(
            svc.journal().len(),
            before,
            "failed injections journal nothing"
        );
        // Losing the same device twice is refused (loss is permanent).
        svc.inject_fault(ServiceFault::DeviceLoss {
            instance: 0,
            device: 2,
        })
        .expect("first loss");
        assert_eq!(
            svc.inject_fault(ServiceFault::DeviceLoss {
                instance: 0,
                device: 2
            }),
            Err(FaultError::DeviceAlreadyLost {
                instance: 0,
                device: 2
            })
        );
    }

    #[test]
    fn report_faults_section_has_stable_keys_and_live_counts() {
        let mut svc = service(4);
        svc.submit(spec(50_000));
        let quiet = svc.service_report();
        for kind in [
            "device_slowdown",
            "link_degrade",
            "comm_transient",
            "device_loss",
        ] {
            assert_eq!(quiet["faults"]["injected_total"][kind].as_u64(), Some(0));
        }
        for action in ["retry", "restart", "replan", "shed"] {
            assert_eq!(
                quiet["faults"]["recoveries_total"][action].as_u64(),
                Some(0)
            );
        }
        svc.inject_fault(ServiceFault::LinkDegrade {
            instance: 0,
            factor: 3.0,
        })
        .expect("valid fault");
        svc.inject_fault(ServiceFault::DeviceLoss {
            instance: 0,
            device: 0,
        })
        .expect("valid fault");
        let rep = svc.service_report();
        assert_eq!(
            rep["faults"]["injected_total"]["link_degrade"].as_u64(),
            Some(1)
        );
        assert_eq!(
            rep["faults"]["injected_total"]["device_loss"].as_u64(),
            Some(1)
        );
        assert_eq!(
            rep["faults"]["recoveries_total"]["restart"].as_u64(),
            Some(1)
        );
        assert_eq!(
            rep["faults"]["recoveries_total"]["replan"].as_u64(),
            Some(1)
        );
        let inst = &rep["faults"]["instances"][0];
        assert_eq!(inst["link_factor"].as_f64(), Some(3.0));
        assert_eq!(inst["lost_devices"][0].as_u64(), Some(0));
        assert_eq!(inst["in_outage"].as_bool(), Some(false));
    }

    #[test]
    fn multiplexing_beats_dedicated_on_makespan_per_gpu() {
        // 4 jobs on a 4-GPU pool: sharing co-locates all; dedicated can
        // only run one at a time (queueing), so sharing finishes sooner.
        let run = |dispatch: DispatchPolicy| {
            let mut cfg = ServiceConfig::a40_pool(4);
            cfg.backbone_layers = Some(8);
            cfg.dispatch = dispatch;
            let mut svc = FineTuneService::new(cfg);
            for _ in 0..4 {
                svc.submit(spec(50_000));
            }
            svc.run_to_completion()
        };
        let shared = run(DispatchPolicy::SameBackboneFirst);
        let dedicated = run(DispatchPolicy::DedicatedInstances);
        assert!(
            shared < dedicated,
            "shared {shared} vs dedicated {dedicated}"
        );
    }
}
