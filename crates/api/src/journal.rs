//! The replayable event journal: an append-only, JSONL-serializable log
//! of every service state transition.
//!
//! Each [`JournalEvent`] carries a monotonically increasing sequence
//! number, the service tick and simulated time it happened at, and a
//! typed [`EventKind`]. The journal is the ground truth for offline
//! debugging: [`Journal::replay`] reconstructs the per-job lifecycle
//! state and the active alert set from the events alone, and the service
//! property-tests that any *prefix* of the journal replays to exactly the
//! live state at that tick (the **replay invariant**).
//!
//! A sealed journal ends with an [`EventKind::Final`] record embedding
//! the writer's own final state; [`Journal::verify`] replays the log and
//! compares against it, so `report --replay` can detect a corrupted or
//! truncated journal with no other inputs.

use std::collections::{BTreeMap, BTreeSet};

use serde_json::{Map, Value};

/// What happened. One variant per service state transition.
#[derive(Debug, Clone, PartialEq)]
pub enum EventKind {
    /// A tenant submitted a job.
    Submit {
        /// Job handle.
        job: u64,
        /// Submitting tenant (`"default"` when the spec names none).
        tenant: String,
        /// Requested backbone.
        backbone: String,
        /// Total training tokens requested.
        total_tokens: u64,
        /// Completion SLO, seconds (absent for best-effort jobs).
        slo_seconds: Option<f64>,
    },
    /// A job was rejected (admission, planning, or shedding outcome).
    Reject {
        /// Job handle.
        job: u64,
        /// Why.
        reason: String,
    },
    /// A job was placed on an instance and started running.
    Dispatch {
        /// Job handle.
        job: u64,
        /// Hosting instance.
        instance: usize,
    },
    /// An instance re-planned (membership change).
    Replan {
        /// Instance index.
        instance: usize,
        /// The instance's new plan epoch.
        epoch: u64,
        /// Tasks co-located after the replan.
        tasks: usize,
    },
    /// A job was evicted from an instance to restore feasibility.
    Shed {
        /// Job handle.
        job: u64,
        /// Instance it was evicted from.
        instance: usize,
        /// Why.
        reason: String,
    },
    /// A job finished all requested tokens.
    Complete {
        /// Job handle.
        job: u64,
    },
    /// A monitoring rule started firing.
    AlertFired {
        /// Rule name (e.g. `slo_burn`).
        rule: String,
        /// Severity name (`warning` / `critical`).
        severity: String,
        /// Job concerned.
        job: u64,
        /// Evaluation window, ticks.
        window: usize,
        /// Breaching value.
        value: f64,
        /// Threshold breached.
        threshold: f64,
    },
    /// A monitoring rule stopped firing.
    AlertCleared {
        /// Rule name.
        rule: String,
        /// Job concerned.
        job: u64,
    },
    /// A fault was injected into the service (chaos layer or operator).
    FaultInjected {
        /// Fault kind (`device_slowdown`, `link_degrade`, `comm_transient`,
        /// `device_loss`).
        kind: String,
        /// Affected instance.
        instance: usize,
        /// Affected device within the instance (absent for link faults).
        device: Option<usize>,
        /// Slowdown / degradation factor, or outage duration in seconds
        /// for transient faults (0 for permanent loss).
        magnitude: f64,
    },
    /// A previously injected fault stopped applying.
    FaultCleared {
        /// Fault kind.
        kind: String,
        /// Affected instance.
        instance: usize,
    },
    /// The service retried a transient comm fault with backoff.
    RecoverRetry {
        /// Affected instance.
        instance: usize,
        /// 1-based retry attempt.
        attempt: u64,
        /// Backoff applied before the retry, seconds.
        backoff_seconds: f64,
    },
    /// A job was checkpoint/restarted at its last completed step.
    RecoverRestart {
        /// Job handle.
        job: u64,
        /// Hosting instance.
        instance: usize,
        /// Tokens banked at the checkpoint (progress is preserved).
        checkpoint_tokens: f64,
    },
    /// An instance re-planned onto its surviving devices after a loss.
    RecoverReplan {
        /// Affected instance.
        instance: usize,
        /// Devices still alive on the instance.
        devices_left: usize,
        /// The instance's new plan epoch.
        epoch: u64,
    },
    /// Graceful degradation: a job was shed so co-tenants keep running.
    RecoverShed {
        /// Job handle.
        job: u64,
        /// Instance it was shed from.
        instance: usize,
        /// Why replan could not keep it.
        reason: String,
    },
    /// A scheduling decision's provenance: the candidate set a policy (or
    /// the service's shed path) weighed and the per-candidate scores, so
    /// `report --explain-job` can answer *why* a job was dispatched ahead
    /// of — or shed instead of — its peers from the journal alone.
    Decision {
        /// Deciding policy name (`fcfs` / `priority` / `wfs` / `drf`), or
        /// `"service"` for the replan shed-victim path.
        policy: String,
        /// What was decided: `"dispatch"` or `"shed"`.
        action: String,
        /// What the candidate scores mean (`arrival_seconds`,
        /// `neg_priority`, `normalized_tokens`, `dominant_share`,
        /// `priority`). Lower always wins.
        score_kind: String,
        /// Id of the winning candidate, in the same id space as
        /// `candidates` (trace ids for replayer dispatch, service job
        /// handles for service sheds).
        chosen: u64,
        /// Service job handle of the chosen candidate, when known —
        /// bridges trace-id decisions to journal `job` fields.
        job: Option<u64>,
        /// Instance involved (shed victim's host), if any.
        instance: Option<usize>,
        /// Total candidates weighed (may exceed `candidates.len()`:
        /// only the best few are journaled).
        considered: usize,
        /// The best candidates by `(score, arrival, id)`, winner first.
        candidates: Vec<DecisionCandidate>,
    },
    /// An inference request entered the serving queue.
    RequestArrive {
        /// Request handle (serving id space, disjoint from job handles).
        request: u64,
        /// Requesting tenant.
        tenant: String,
        /// Prompt tokens to prefill.
        prompt_tokens: u64,
        /// Output tokens to decode.
        output_tokens: u64,
    },
    /// A request's prefill batch finished (first token emitted).
    RequestPrefill {
        /// Request handle.
        request: u64,
        /// Time-to-first-token: prefill end minus arrival, seconds.
        ttft_seconds: f64,
    },
    /// A request finished decoding all its output tokens.
    RequestComplete {
        /// Request handle.
        request: u64,
        /// Output tokens decoded (conservation: equals the arrival's
        /// `output_tokens`).
        decode_tokens: u64,
        /// End-to-end latency: completion minus arrival, seconds.
        latency_seconds: f64,
    },
    /// A request was rejected at admission (queue full).
    RequestReject {
        /// Request handle.
        request: u64,
        /// Why.
        reason: String,
    },
    /// A request waited past the queue timeout and was dropped.
    RequestTimeout {
        /// Request handle.
        request: u64,
        /// How long it waited before timing out, seconds.
        waited_seconds: f64,
    },
    /// The serving policy preempted training on an instance (temporal
    /// multiplexing: serving takes the backbone, training rates drop to 0).
    ServingPreempt {
        /// Preempted instance.
        instance: usize,
    },
    /// The serving policy handed the backbone back to training.
    ServingResume {
        /// Resumed instance.
        instance: usize,
    },
    /// An event kind this build does not know. Carried verbatim (name plus
    /// raw payload) and replayed as a no-op, so journals written by newer
    /// builds still verify here instead of failing to parse.
    Opaque {
        /// The JSONL `event` field.
        name: String,
        /// Every payload field except the `seq`/`tick`/`now`/`event`
        /// envelope, re-emitted as-is.
        payload: Map,
    },
    /// The writer's own final state, for [`Journal::verify`].
    Final {
        /// Job handle → lifecycle state string (`queued`, `running@<i>`,
        /// `completed`, `rejected`).
        jobs: BTreeMap<u64, String>,
        /// Active `(rule, job)` alert pairs.
        alerts: BTreeSet<(String, u64)>,
    },
}

/// How many candidates an [`EventKind::Decision`] journals (winner plus
/// the best runners-up). A saturated 10⁴-job queue weighs thousands of
/// candidates per dispatch; journaling them all would dwarf every other
/// event combined, so decisions carry the top few (by the policy's own
/// order) and record the full count in `considered`.
pub const DECISION_CANDIDATE_CAP: usize = 8;

/// One weighed candidate inside an [`EventKind::Decision`] event.
#[derive(Debug, Clone, PartialEq)]
pub struct DecisionCandidate {
    /// Candidate id (trace id or service job handle — the decision's
    /// `chosen` field shares the space).
    pub id: u64,
    /// Candidate's tenant.
    pub tenant: String,
    /// The policy's score for this candidate (lower wins).
    pub score: f64,
    /// Candidate's priority (higher = more important).
    pub priority: u8,
    /// Candidate's arrival time, seconds (the deterministic tiebreak).
    pub arrival: f64,
}

impl DecisionCandidate {
    fn to_json(&self) -> Value {
        let mut m = Map::new();
        m.insert("id".into(), self.id.into());
        m.insert("tenant".into(), self.tenant.as_str().into());
        m.insert("score".into(), self.score.into());
        m.insert("priority".into(), u64::from(self.priority).into());
        m.insert("arrival".into(), self.arrival.into());
        Value::Object(m)
    }

    fn from_json(v: &Value) -> Result<Self, String> {
        let get = |k: &str| v.get(k).ok_or_else(|| format!("candidate missing {k:?}"));
        Ok(Self {
            id: get("id")?.as_u64().ok_or("candidate id not u64")?,
            tenant: get("tenant")?
                .as_str()
                .ok_or("candidate tenant not a string")?
                .to_string(),
            score: get("score")?.as_f64().ok_or("candidate score not f64")?,
            priority: get("priority")?
                .as_u64()
                .and_then(|p| u8::try_from(p).ok())
                .ok_or("candidate priority not u8")?,
            arrival: get("arrival")?
                .as_f64()
                .ok_or("candidate arrival not f64")?,
        })
    }
}

impl EventKind {
    /// Stable event-type name (the JSONL `event` field).
    pub fn name(&self) -> &str {
        match self {
            EventKind::Submit { .. } => "submit",
            EventKind::Reject { .. } => "reject",
            EventKind::Dispatch { .. } => "dispatch",
            EventKind::Replan { .. } => "replan",
            EventKind::Shed { .. } => "shed",
            EventKind::Complete { .. } => "complete",
            EventKind::AlertFired { .. } => "alert_fired",
            EventKind::AlertCleared { .. } => "alert_cleared",
            EventKind::FaultInjected { .. } => "fault_injected",
            EventKind::FaultCleared { .. } => "fault_cleared",
            EventKind::RecoverRetry { .. } => "recover_retry",
            EventKind::RecoverRestart { .. } => "recover_restart",
            EventKind::RecoverReplan { .. } => "recover_replan",
            EventKind::RecoverShed { .. } => "recover_shed",
            EventKind::Decision { .. } => "decision",
            EventKind::RequestArrive { .. } => "request_arrive",
            EventKind::RequestPrefill { .. } => "request_prefill",
            EventKind::RequestComplete { .. } => "request_complete",
            EventKind::RequestReject { .. } => "request_reject",
            EventKind::RequestTimeout { .. } => "request_timeout",
            EventKind::ServingPreempt { .. } => "serving_preempt",
            EventKind::ServingResume { .. } => "serving_resume",
            EventKind::Opaque { name, .. } => name,
            EventKind::Final { .. } => "final",
        }
    }
}

/// One journal line: sequence number, tick, simulated time, and the event.
#[derive(Debug, Clone, PartialEq)]
pub struct JournalEvent {
    /// Monotonic per-journal sequence number, starting at 0.
    pub seq: u64,
    /// Service tick the event happened at.
    pub tick: u64,
    /// Simulated time, seconds.
    pub now: f64,
    /// The event.
    pub kind: EventKind,
}

impl JournalEvent {
    /// Serializes the event as one JSON object (one JSONL line).
    pub fn to_json(&self) -> Value {
        let mut m = Map::new();
        m.insert("seq".into(), self.seq.into());
        m.insert("tick".into(), self.tick.into());
        m.insert("now".into(), self.now.into());
        m.insert("event".into(), self.kind.name().into());
        match &self.kind {
            EventKind::Submit {
                job,
                tenant,
                backbone,
                total_tokens,
                slo_seconds,
            } => {
                m.insert("job".into(), (*job).into());
                m.insert("tenant".into(), tenant.as_str().into());
                m.insert("backbone".into(), backbone.as_str().into());
                m.insert("total_tokens".into(), (*total_tokens).into());
                m.insert(
                    "slo_seconds".into(),
                    slo_seconds.map(Value::from).unwrap_or(Value::Null),
                );
            }
            EventKind::Reject { job, reason } => {
                m.insert("job".into(), (*job).into());
                m.insert("reason".into(), reason.as_str().into());
            }
            EventKind::Dispatch { job, instance } => {
                m.insert("job".into(), (*job).into());
                m.insert("instance".into(), (*instance).into());
            }
            EventKind::Replan {
                instance,
                epoch,
                tasks,
            } => {
                m.insert("instance".into(), (*instance).into());
                m.insert("epoch".into(), (*epoch).into());
                m.insert("tasks".into(), (*tasks).into());
            }
            EventKind::Shed {
                job,
                instance,
                reason,
            } => {
                m.insert("job".into(), (*job).into());
                m.insert("instance".into(), (*instance).into());
                m.insert("reason".into(), reason.as_str().into());
            }
            EventKind::Complete { job } => {
                m.insert("job".into(), (*job).into());
            }
            EventKind::AlertFired {
                rule,
                severity,
                job,
                window,
                value,
                threshold,
            } => {
                m.insert("rule".into(), rule.as_str().into());
                m.insert("severity".into(), severity.as_str().into());
                m.insert("job".into(), (*job).into());
                m.insert("window".into(), (*window).into());
                m.insert("value".into(), (*value).into());
                m.insert("threshold".into(), (*threshold).into());
            }
            EventKind::AlertCleared { rule, job } => {
                m.insert("rule".into(), rule.as_str().into());
                m.insert("job".into(), (*job).into());
            }
            EventKind::FaultInjected {
                kind,
                instance,
                device,
                magnitude,
            } => {
                m.insert("kind".into(), kind.as_str().into());
                m.insert("instance".into(), (*instance).into());
                m.insert(
                    "device".into(),
                    device.map(|d| Value::from(d as u64)).unwrap_or(Value::Null),
                );
                m.insert("magnitude".into(), (*magnitude).into());
            }
            EventKind::FaultCleared { kind, instance } => {
                m.insert("kind".into(), kind.as_str().into());
                m.insert("instance".into(), (*instance).into());
            }
            EventKind::RecoverRetry {
                instance,
                attempt,
                backoff_seconds,
            } => {
                m.insert("instance".into(), (*instance).into());
                m.insert("attempt".into(), (*attempt).into());
                m.insert("backoff_seconds".into(), (*backoff_seconds).into());
            }
            EventKind::RecoverRestart {
                job,
                instance,
                checkpoint_tokens,
            } => {
                m.insert("job".into(), (*job).into());
                m.insert("instance".into(), (*instance).into());
                m.insert("checkpoint_tokens".into(), (*checkpoint_tokens).into());
            }
            EventKind::RecoverReplan {
                instance,
                devices_left,
                epoch,
            } => {
                m.insert("instance".into(), (*instance).into());
                m.insert("devices_left".into(), (*devices_left).into());
                m.insert("epoch".into(), (*epoch).into());
            }
            EventKind::RecoverShed {
                job,
                instance,
                reason,
            } => {
                m.insert("job".into(), (*job).into());
                m.insert("instance".into(), (*instance).into());
                m.insert("reason".into(), reason.as_str().into());
            }
            EventKind::Decision {
                policy,
                action,
                score_kind,
                chosen,
                job,
                instance,
                considered,
                candidates,
            } => {
                m.insert("policy".into(), policy.as_str().into());
                m.insert("action".into(), action.as_str().into());
                m.insert("score_kind".into(), score_kind.as_str().into());
                m.insert("chosen".into(), (*chosen).into());
                m.insert("job".into(), job.map(Value::from).unwrap_or(Value::Null));
                m.insert(
                    "instance".into(),
                    instance
                        .map(|i| Value::from(i as u64))
                        .unwrap_or(Value::Null),
                );
                m.insert("considered".into(), (*considered).into());
                m.insert(
                    "candidates".into(),
                    Value::Array(candidates.iter().map(DecisionCandidate::to_json).collect()),
                );
            }
            EventKind::RequestArrive {
                request,
                tenant,
                prompt_tokens,
                output_tokens,
            } => {
                m.insert("request".into(), (*request).into());
                m.insert("tenant".into(), tenant.as_str().into());
                m.insert("prompt_tokens".into(), (*prompt_tokens).into());
                m.insert("output_tokens".into(), (*output_tokens).into());
            }
            EventKind::RequestPrefill {
                request,
                ttft_seconds,
            } => {
                m.insert("request".into(), (*request).into());
                m.insert("ttft_seconds".into(), (*ttft_seconds).into());
            }
            EventKind::RequestComplete {
                request,
                decode_tokens,
                latency_seconds,
            } => {
                m.insert("request".into(), (*request).into());
                m.insert("decode_tokens".into(), (*decode_tokens).into());
                m.insert("latency_seconds".into(), (*latency_seconds).into());
            }
            EventKind::RequestReject { request, reason } => {
                m.insert("request".into(), (*request).into());
                m.insert("reason".into(), reason.as_str().into());
            }
            EventKind::RequestTimeout {
                request,
                waited_seconds,
            } => {
                m.insert("request".into(), (*request).into());
                m.insert("waited_seconds".into(), (*waited_seconds).into());
            }
            EventKind::ServingPreempt { instance } => {
                m.insert("instance".into(), (*instance).into());
            }
            EventKind::ServingResume { instance } => {
                m.insert("instance".into(), (*instance).into());
            }
            EventKind::Opaque { payload, .. } => {
                for (k, v) in payload {
                    m.insert(k.clone(), v.clone());
                }
            }
            EventKind::Final { jobs, alerts } => {
                let mut jm = Map::new();
                for (job, state) in jobs {
                    jm.insert(job.to_string(), state.as_str().into());
                }
                m.insert("jobs".into(), Value::Object(jm));
                let am: Vec<Value> = alerts
                    .iter()
                    .map(|(rule, job)| {
                        let mut e = Map::new();
                        e.insert("rule".into(), rule.as_str().into());
                        e.insert("job".into(), (*job).into());
                        Value::Object(e)
                    })
                    .collect();
                m.insert("alerts".into(), Value::Array(am));
            }
        }
        Value::Object(m)
    }

    /// Parses one JSONL line back into an event.
    pub fn from_json(v: &Value) -> Result<Self, String> {
        let obj = v.as_object().ok_or("journal line is not an object")?;
        let get_u64 = |k: &str| -> Result<u64, String> {
            obj.get(k)
                .and_then(Value::as_u64)
                .ok_or_else(|| format!("missing/invalid field {k:?}"))
        };
        let get_f64 = |k: &str| -> Result<f64, String> {
            obj.get(k)
                .and_then(Value::as_f64)
                .ok_or_else(|| format!("missing/invalid field {k:?}"))
        };
        let get_str = |k: &str| -> Result<String, String> {
            obj.get(k)
                .and_then(Value::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("missing/invalid field {k:?}"))
        };
        let seq = get_u64("seq")?;
        let tick = get_u64("tick")?;
        let now = get_f64("now")?;
        let event = get_str("event")?;
        let kind = match event.as_str() {
            "submit" => EventKind::Submit {
                job: get_u64("job")?,
                // Journals written before tenants existed have no field;
                // they replay into the default tenant.
                tenant: obj
                    .get("tenant")
                    .and_then(Value::as_str)
                    .unwrap_or("default")
                    .to_string(),
                backbone: get_str("backbone")?,
                total_tokens: get_u64("total_tokens")?,
                slo_seconds: obj.get("slo_seconds").and_then(Value::as_f64),
            },
            "reject" => EventKind::Reject {
                job: get_u64("job")?,
                reason: get_str("reason")?,
            },
            "dispatch" => EventKind::Dispatch {
                job: get_u64("job")?,
                instance: get_u64("instance")? as usize,
            },
            "replan" => EventKind::Replan {
                instance: get_u64("instance")? as usize,
                epoch: get_u64("epoch")?,
                tasks: get_u64("tasks")? as usize,
            },
            "shed" => EventKind::Shed {
                job: get_u64("job")?,
                instance: get_u64("instance")? as usize,
                reason: get_str("reason")?,
            },
            "complete" => EventKind::Complete {
                job: get_u64("job")?,
            },
            "alert_fired" => EventKind::AlertFired {
                rule: get_str("rule")?,
                severity: get_str("severity")?,
                job: get_u64("job")?,
                window: get_u64("window")? as usize,
                value: get_f64("value")?,
                threshold: get_f64("threshold")?,
            },
            "alert_cleared" => EventKind::AlertCleared {
                rule: get_str("rule")?,
                job: get_u64("job")?,
            },
            "fault_injected" => EventKind::FaultInjected {
                kind: get_str("kind")?,
                instance: get_u64("instance")? as usize,
                device: obj
                    .get("device")
                    .and_then(Value::as_u64)
                    .map(|d| d as usize),
                magnitude: get_f64("magnitude")?,
            },
            "fault_cleared" => EventKind::FaultCleared {
                kind: get_str("kind")?,
                instance: get_u64("instance")? as usize,
            },
            "recover_retry" => EventKind::RecoverRetry {
                instance: get_u64("instance")? as usize,
                attempt: get_u64("attempt")?,
                backoff_seconds: get_f64("backoff_seconds")?,
            },
            "recover_restart" => EventKind::RecoverRestart {
                job: get_u64("job")?,
                instance: get_u64("instance")? as usize,
                checkpoint_tokens: get_f64("checkpoint_tokens")?,
            },
            "recover_replan" => EventKind::RecoverReplan {
                instance: get_u64("instance")? as usize,
                devices_left: get_u64("devices_left")? as usize,
                epoch: get_u64("epoch")?,
            },
            "recover_shed" => EventKind::RecoverShed {
                job: get_u64("job")?,
                instance: get_u64("instance")? as usize,
                reason: get_str("reason")?,
            },
            "decision" => EventKind::Decision {
                policy: get_str("policy")?,
                action: get_str("action")?,
                score_kind: get_str("score_kind")?,
                chosen: get_u64("chosen")?,
                job: obj.get("job").and_then(Value::as_u64),
                instance: obj
                    .get("instance")
                    .and_then(Value::as_u64)
                    .map(|i| i as usize),
                considered: get_u64("considered")? as usize,
                candidates: obj
                    .get("candidates")
                    .and_then(Value::as_array)
                    .ok_or("decision missing candidates array")?
                    .iter()
                    .map(DecisionCandidate::from_json)
                    .collect::<Result<Vec<_>, _>>()?,
            },
            "final" => {
                let jobs_obj = obj
                    .get("jobs")
                    .and_then(Value::as_object)
                    .ok_or("final record missing jobs map")?;
                let mut jobs = BTreeMap::new();
                for (k, v) in jobs_obj {
                    let job: u64 = k.parse().map_err(|_| format!("bad job id {k:?}"))?;
                    let state = v.as_str().ok_or("job state is not a string")?;
                    jobs.insert(job, state.to_string());
                }
                let alerts_arr = obj
                    .get("alerts")
                    .and_then(Value::as_array)
                    .ok_or("final record missing alerts array")?;
                let mut alerts = BTreeSet::new();
                for a in alerts_arr {
                    let rule = a
                        .get("rule")
                        .and_then(Value::as_str)
                        .ok_or("alert missing rule")?;
                    let job = a
                        .get("job")
                        .and_then(Value::as_u64)
                        .ok_or("alert missing job")?;
                    alerts.insert((rule.to_string(), job));
                }
                EventKind::Final { jobs, alerts }
            }
            "request_arrive" => EventKind::RequestArrive {
                request: get_u64("request")?,
                tenant: get_str("tenant")?,
                prompt_tokens: get_u64("prompt_tokens")?,
                output_tokens: get_u64("output_tokens")?,
            },
            "request_prefill" => EventKind::RequestPrefill {
                request: get_u64("request")?,
                ttft_seconds: get_f64("ttft_seconds")?,
            },
            "request_complete" => EventKind::RequestComplete {
                request: get_u64("request")?,
                decode_tokens: get_u64("decode_tokens")?,
                latency_seconds: get_f64("latency_seconds")?,
            },
            "request_reject" => EventKind::RequestReject {
                request: get_u64("request")?,
                reason: get_str("reason")?,
            },
            "request_timeout" => EventKind::RequestTimeout {
                request: get_u64("request")?,
                waited_seconds: get_f64("waited_seconds")?,
            },
            "serving_preempt" => EventKind::ServingPreempt {
                instance: get_u64("instance")? as usize,
            },
            "serving_resume" => EventKind::ServingResume {
                instance: get_u64("instance")? as usize,
            },
            // Unknown kinds (journals written by newer builds) are carried
            // verbatim and replay as no-ops, so older readers still verify
            // the job/alert state they do understand.
            other => EventKind::Opaque {
                name: other.to_string(),
                payload: obj
                    .iter()
                    .filter(|(k, _)| !matches!(k.as_str(), "seq" | "tick" | "now" | "event"))
                    .map(|(k, v)| (k.clone(), v.clone()))
                    .collect(),
            },
        };
        Ok(JournalEvent {
            seq,
            tick,
            now,
            kind,
        })
    }
}

/// State reconstructed by replaying a journal (prefix).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ReplayState {
    /// Tick of the last replayed event.
    pub tick: u64,
    /// Job handle → lifecycle state string.
    pub jobs: BTreeMap<u64, String>,
    /// Active `(rule, job)` alert pairs.
    pub alerts: BTreeSet<(String, u64)>,
}

/// The append-only event log.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Journal {
    events: Vec<JournalEvent>,
}

impl Journal {
    /// An empty journal.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an event, assigning the next sequence number.
    pub fn push(&mut self, tick: u64, now: f64, kind: EventKind) {
        mux_obs::profile::work("journal_events", 1);
        self.events.push(JournalEvent {
            seq: self.events.len() as u64,
            tick,
            now,
            kind,
        });
    }

    /// The recorded events, in order.
    pub fn events(&self) -> &[JournalEvent] {
        &self.events
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the journal holds no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Serializes the journal as JSONL (one event per line).
    pub fn to_jsonl(&self) -> String {
        let _span = mux_obs::span("journal.to_jsonl");
        let mut out = String::new();
        for ev in &self.events {
            out.push_str(&serde_json::to_string(&ev.to_json()).expect("serialize"));
            out.push('\n');
        }
        mux_obs::profile::work("journal_bytes", out.len() as u64);
        out
    }

    /// Parses a JSONL journal, validating that sequence numbers are the
    /// contiguous run 0..n (any splice or dropped line breaks this).
    pub fn from_jsonl(text: &str) -> Result<Self, String> {
        let mut events = Vec::new();
        for (i, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let v = serde_json::from_str(line)
                .map_err(|e| format!("line {}: invalid JSON: {e}", i + 1))?;
            let ev = JournalEvent::from_json(&v).map_err(|e| format!("line {}: {e}", i + 1))?;
            if ev.seq != events.len() as u64 {
                return Err(format!(
                    "line {}: sequence gap: expected seq {}, found {}",
                    i + 1,
                    events.len(),
                    ev.seq
                ));
            }
            events.push(ev);
        }
        Ok(Self { events })
    }

    /// A 64-bit FNV-1a fingerprint of the serialized journal.
    ///
    /// Two runs are behaviourally identical iff every journal line matches,
    /// so fingerprint equality is the determinism oracle the chaos harness
    /// pins: same seed ⇒ same fingerprint, bit for bit.
    pub fn fingerprint(&self) -> u64 {
        mux_obs::fingerprint::fnv1a_64(self.to_jsonl().as_bytes())
    }

    /// Replays the whole journal into a [`ReplayState`].
    pub fn replay(&self) -> ReplayState {
        self.replay_prefix(u64::MAX)
    }

    /// Replays only events with `tick <= tick_limit`.
    ///
    /// Events are filtered (not truncated at the first over-limit tick)
    /// and folded in simulated-time order — a stable sort on
    /// `(now, tick)`, the identity on any journal a single service
    /// emitted — so journals whose event order is not globally monotonic,
    /// e.g. the output of [`Journal::merge`] over independently-ticking
    /// sources or a re-assembled multi-tenant trace replay, reach the
    /// same state as a time-sorted copy would. The replayed tick is the
    /// maximum seen, not the last seen.
    pub fn replay_prefix(&self, tick_limit: u64) -> ReplayState {
        let mut ordered: Vec<&JournalEvent> = self.events.iter().collect();
        ordered.sort_by(|a, b| a.now.total_cmp(&b.now).then_with(|| a.tick.cmp(&b.tick)));
        let mut state = ReplayState::default();
        for ev in ordered {
            if ev.tick > tick_limit {
                continue;
            }
            state.tick = state.tick.max(ev.tick);
            match &ev.kind {
                EventKind::Submit { job, .. } => {
                    state.jobs.insert(*job, "queued".to_string());
                }
                EventKind::Reject { job, .. } => {
                    state.jobs.insert(*job, "rejected".to_string());
                }
                EventKind::Dispatch { job, instance } => {
                    state.jobs.insert(*job, format!("running@{instance}"));
                }
                EventKind::Complete { job } => {
                    state.jobs.insert(*job, "completed".to_string());
                }
                EventKind::AlertFired { rule, job, .. } => {
                    state.alerts.insert((rule.clone(), *job));
                }
                EventKind::AlertCleared { rule, job } => {
                    state.alerts.remove(&(rule.clone(), *job));
                }
                // Shed / RecoverShed are informational (the paired Reject
                // moves the job); Decision is pure provenance (the paired
                // Dispatch/Shed moves the job); fault and recovery
                // markers, Replan, and Final do not change replayed job
                // state. Request/serving events live in their own id space
                // (request handles, not job handles), and Opaque events are
                // by construction kinds this build cannot interpret — all
                // replay as explicit no-ops so the job/alert fold only ever
                // sees job-scoped kinds.
                EventKind::Shed { .. }
                | EventKind::Replan { .. }
                | EventKind::FaultInjected { .. }
                | EventKind::FaultCleared { .. }
                | EventKind::RecoverRetry { .. }
                | EventKind::RecoverRestart { .. }
                | EventKind::RecoverReplan { .. }
                | EventKind::RecoverShed { .. }
                | EventKind::Decision { .. }
                | EventKind::RequestArrive { .. }
                | EventKind::RequestPrefill { .. }
                | EventKind::RequestComplete { .. }
                | EventKind::RequestReject { .. }
                | EventKind::RequestTimeout { .. }
                | EventKind::ServingPreempt { .. }
                | EventKind::ServingResume { .. }
                | EventKind::Opaque { .. }
                | EventKind::Final { .. } => {}
            }
        }
        state
    }

    /// The embedded [`EventKind::Final`] record, if the journal is sealed.
    pub fn embedded_final(&self) -> Option<ReplayState> {
        self.events.iter().rev().find_map(|ev| match &ev.kind {
            EventKind::Final { jobs, alerts } => Some(ReplayState {
                tick: ev.tick,
                jobs: jobs.clone(),
                alerts: alerts.clone(),
            }),
            _ => None,
        })
    }

    /// Replays the journal and checks it against the embedded final-state
    /// record. `Err` when the journal is unsealed or the replayed state
    /// disagrees (corruption / truncation).
    pub fn verify(&self) -> Result<ReplayState, String> {
        let expected = self
            .embedded_final()
            .ok_or("journal is not sealed (no final record)")?;
        let replayed = self.replay();
        if replayed.jobs != expected.jobs {
            return Err(format!(
                "replayed job states diverge from the final record:\n  replayed: {:?}\n  recorded: {:?}",
                replayed.jobs, expected.jobs
            ));
        }
        if replayed.alerts != expected.alerts {
            return Err(format!(
                "replayed alert set diverges from the final record:\n  replayed: {:?}\n  recorded: {:?}",
                replayed.alerts, expected.alerts
            ));
        }
        Ok(replayed)
    }

    /// Merges independently-recorded journals into one, ordered by
    /// simulated time (ties by tick, then source order) and re-sequenced
    /// to the contiguous run `0..n` that [`Journal::from_jsonl`] demands.
    ///
    /// Naively concatenating two journals' JSONL is rejected by the seq
    /// validation (both restart at 0) and would interleave ticks
    /// non-monotonically; `merge` is the supported way to combine, e.g.,
    /// per-shard service journals from one multi-tenant trace replay.
    ///
    /// Source `Final` seal records are dropped — they describe one
    /// source's view, not the merged state — so re-seal with
    /// [`Journal::seal`]. Errors when two sources submit the same job id:
    /// job handles must be disjoint for the merged replay to be
    /// meaningful.
    pub fn merge(sources: &[&Journal]) -> Result<Journal, String> {
        let mut owners: BTreeMap<u64, usize> = BTreeMap::new();
        for (si, j) in sources.iter().enumerate() {
            for ev in &j.events {
                if let EventKind::Submit { job, .. } = &ev.kind {
                    if let Some(prev) = owners.insert(*job, si) {
                        return Err(format!(
                            "job {job} submitted by both source {prev} and source {si}: \
                             merged journals need disjoint job-id spaces"
                        ));
                    }
                }
            }
        }
        let mut all: Vec<(usize, &JournalEvent)> = sources
            .iter()
            .enumerate()
            .flat_map(|(si, j)| {
                j.events
                    .iter()
                    .filter(|ev| !matches!(ev.kind, EventKind::Final { .. }))
                    .map(move |ev| (si, ev))
            })
            .collect();
        // Stable sort: equal (now, tick) keys keep source order, and
        // within one source the original recording order — the per-source
        // causal order is preserved because each source's (now, tick) is
        // non-decreasing.
        all.sort_by(|(sa, a), (sb, b)| {
            a.now
                .total_cmp(&b.now)
                .then_with(|| a.tick.cmp(&b.tick))
                .then_with(|| sa.cmp(sb))
        });
        let mut merged = Journal::new();
        for (_, ev) in all {
            merged.push(ev.tick, ev.now, ev.kind.clone());
        }
        Ok(merged)
    }

    /// Seals the journal by appending an [`EventKind::Final`] record
    /// embedding the replayed state, making [`Journal::verify`] pass.
    /// Counterpart of the service's live `seal_journal()` for journals
    /// assembled offline (e.g. [`Journal::merge`] output).
    pub fn seal(&mut self) {
        let state = self.replay();
        let now = self.events.last().map(|ev| ev.now).unwrap_or(0.0);
        self.push(
            state.tick,
            now,
            EventKind::Final {
                jobs: state.jobs,
                alerts: state.alerts,
            },
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_journal() -> Journal {
        let mut j = Journal::new();
        j.push(
            0,
            0.0,
            EventKind::Submit {
                job: 1,
                tenant: "default".into(),
                backbone: "LLaMA2-7B".into(),
                total_tokens: 1000,
                slo_seconds: Some(60.0),
            },
        );
        j.push(
            0,
            0.0,
            EventKind::Dispatch {
                job: 1,
                instance: 0,
            },
        );
        j.push(
            0,
            0.0,
            EventKind::Replan {
                instance: 0,
                epoch: 1,
                tasks: 1,
            },
        );
        j.push(
            3,
            0.3,
            EventKind::AlertFired {
                rule: "slo_burn".into(),
                severity: "critical".into(),
                job: 1,
                window: 5,
                value: 2.5,
                threshold: 1.0,
            },
        );
        j.push(
            5,
            0.5,
            EventKind::AlertCleared {
                rule: "slo_burn".into(),
                job: 1,
            },
        );
        j.push(9, 0.9, EventKind::Complete { job: 1 });
        j
    }

    fn seal(j: &mut Journal) {
        let state = j.replay();
        j.push(
            state.tick,
            0.9,
            EventKind::Final {
                jobs: state.jobs,
                alerts: state.alerts,
            },
        );
    }

    #[test]
    fn jsonl_roundtrip_preserves_every_event() {
        let mut j = sample_journal();
        seal(&mut j);
        let text = j.to_jsonl();
        let back = Journal::from_jsonl(&text).expect("parse");
        assert_eq!(back, j);
    }

    #[test]
    fn replay_reconstructs_job_lifecycle_and_alerts() {
        let j = sample_journal();
        let mid = j.replay_prefix(3);
        assert_eq!(mid.jobs[&1], "running@0");
        assert!(mid.alerts.contains(&("slo_burn".to_string(), 1)));
        let end = j.replay();
        assert_eq!(end.jobs[&1], "completed");
        assert!(end.alerts.is_empty());
        assert_eq!(end.tick, 9);
    }

    #[test]
    fn verify_accepts_a_sealed_journal_and_rejects_tampering() {
        let mut j = sample_journal();
        seal(&mut j);
        assert!(j.verify().is_ok());

        // Unsealed journal.
        assert!(sample_journal().verify().is_err());

        // Drop the completion line: seqs break on parse.
        let text = j.to_jsonl();
        let without_complete: String = text
            .lines()
            .filter(|l| !l.contains("\"complete\""))
            .map(|l| format!("{l}\n"))
            .collect();
        assert!(Journal::from_jsonl(&without_complete).is_err());

        // Tamper with the final record instead: parse succeeds, verify
        // catches the divergence.
        let tampered = text.replace("\"completed\"", "\"queued\"");
        let parsed = Journal::from_jsonl(&tampered).expect("still valid JSONL");
        assert!(parsed.verify().is_err());
    }

    #[test]
    fn fault_and_recovery_events_roundtrip_and_do_not_move_jobs() {
        let mut j = sample_journal();
        j.push(
            4,
            0.4,
            EventKind::FaultInjected {
                kind: "device_loss".into(),
                instance: 0,
                device: Some(2),
                magnitude: 0.0,
            },
        );
        j.push(
            4,
            0.4,
            EventKind::RecoverRestart {
                job: 1,
                instance: 0,
                checkpoint_tokens: 420.0,
            },
        );
        j.push(
            4,
            0.4,
            EventKind::RecoverReplan {
                instance: 0,
                devices_left: 3,
                epoch: 2,
            },
        );
        j.push(
            5,
            0.5,
            EventKind::RecoverRetry {
                instance: 0,
                attempt: 1,
                backoff_seconds: 0.1,
            },
        );
        j.push(
            5,
            0.5,
            EventKind::FaultCleared {
                kind: "comm_transient".into(),
                instance: 0,
            },
        );
        j.push(
            6,
            0.6,
            EventKind::RecoverShed {
                job: 7,
                instance: 0,
                reason: "replan infeasible".into(),
            },
        );
        let back = Journal::from_jsonl(&j.to_jsonl()).expect("roundtrip");
        assert_eq!(back, j);
        // Recovery markers never move job lifecycle state on their own.
        let state = j.replay();
        assert_eq!(state.jobs[&1], "completed");
        assert!(
            !state.jobs.contains_key(&7),
            "shed marker alone moves nothing"
        );
    }

    #[test]
    fn fingerprint_is_stable_and_sensitive() {
        let a = sample_journal();
        let b = sample_journal();
        assert_eq!(a.fingerprint(), b.fingerprint());
        let mut c = sample_journal();
        c.push(10, 1.0, EventKind::Complete { job: 99 });
        assert_ne!(a.fingerprint(), c.fingerprint());
        assert_eq!(Journal::new().fingerprint(), 0xcbf2_9ce4_8422_2325);
    }

    /// A second writer's journal: different job-id space, its own seq run
    /// starting at 0, ticks that interleave with [`sample_journal`]'s.
    fn other_journal() -> Journal {
        let mut j = Journal::new();
        j.push(
            1,
            0.1,
            EventKind::Submit {
                job: 2,
                tenant: "tenant-b".into(),
                backbone: "GPT3-2.7B".into(),
                total_tokens: 500,
                slo_seconds: None,
            },
        );
        j.push(
            2,
            0.2,
            EventKind::Dispatch {
                job: 2,
                instance: 0,
            },
        );
        j.push(7, 0.7, EventKind::Complete { job: 2 });
        j
    }

    #[test]
    fn concatenated_journals_fail_seq_validation_but_merge_verifies() {
        let mut a = sample_journal();
        seal(&mut a);
        let mut b = other_journal();
        let state = b.replay();
        b.push(
            state.tick,
            0.7,
            EventKind::Final {
                jobs: state.jobs,
                alerts: state.alerts,
            },
        );

        // The naive combination — concatenating the two JSONL logs — is
        // rejected: the second journal's seq restarts at 0.
        let concatenated = format!("{}{}", a.to_jsonl(), b.to_jsonl());
        let err = Journal::from_jsonl(&concatenated).unwrap_err();
        assert!(err.contains("sequence gap"), "got: {err}");

        // merge() interleaves by simulated time, re-assigns contiguous
        // seqs, drops the per-source seals, and re-seals to a journal that
        // round-trips and verifies.
        let mut merged = Journal::merge(&[&a, &b]).expect("disjoint job ids");
        assert!(
            merged.embedded_final().is_none(),
            "source seals must not survive the merge"
        );
        merged.seal();
        let text = merged.to_jsonl();
        let back = Journal::from_jsonl(&text).expect("contiguous seqs");
        let state = back.verify().expect("merged journal verifies");
        assert_eq!(state.jobs[&1], "completed");
        assert_eq!(state.jobs[&2], "completed");
        assert_eq!(state.tick, 9, "replayed tick is the max across sources");

        // Events are ordered by simulated time: job 2's submit (t=0.1)
        // lands after job 1's t=0.0 burst and before the t=0.3 alert.
        let order: Vec<&str> = back.events().iter().map(|ev| ev.kind.name()).collect();
        assert_eq!(
            order,
            [
                "submit",
                "dispatch",
                "replan",
                "submit",
                "dispatch",
                "alert_fired",
                "alert_cleared",
                "complete",
                "complete",
                "final"
            ]
        );
    }

    #[test]
    fn merge_rejects_overlapping_job_id_spaces() {
        let a = sample_journal();
        let b = sample_journal();
        let err = Journal::merge(&[&a, &b]).unwrap_err();
        assert!(err.contains("job 1"), "got: {err}");
    }

    #[test]
    fn replay_prefix_is_order_independent_for_merged_journals() {
        // Regression: replay_prefix used to stop at the first event whose
        // tick exceeded the limit and to *assign* (not max) the replayed
        // tick, so merged journals — where per-source ticks interleave
        // non-monotonically — replayed to a truncated state.
        let a = sample_journal();
        let b = other_journal();
        let merged = Journal::merge(&[&a, &b]).expect("disjoint job ids");
        // Ticks in merged order: 0,0,0,1,2,3,5,7,9 — not monotonic per
        // source boundaries but monotonic here; craft a limit that lands
        // between the sources' events.
        let mid = merged.replay_prefix(2);
        assert_eq!(mid.jobs[&1], "running@0");
        assert_eq!(mid.jobs[&2], "running@0");
        assert_eq!(mid.tick, 2);
        // A journal whose ticks are genuinely non-monotonic (source B's
        // tick-7 completion recorded before source A's tick-3 alert in
        // wall order) must still replay every <= limit event.
        let mut weird = Journal::new();
        for ev in merged.events() {
            weird.push(ev.tick, ev.now, ev.kind.clone());
        }
        // Move the last event (tick 9) to the front by rebuilding.
        let mut rotated = Journal::new();
        let evs = weird.events().to_vec();
        let last = evs.last().expect("non-empty");
        rotated.push(last.tick, last.now, last.kind.clone());
        for ev in &evs[..evs.len() - 1] {
            rotated.push(ev.tick, ev.now, ev.kind.clone());
        }
        let full = rotated.replay();
        assert_eq!(full.jobs[&1], "completed");
        assert_eq!(full.tick, 9, "tick is the max, not the last seen");
        let clipped = rotated.replay_prefix(5);
        assert!(
            clipped.alerts.is_empty(),
            "tick-5 alert_cleared replays even though the journal opens at tick 9"
        );
    }

    #[test]
    fn from_jsonl_rejects_garbage_and_gaps() {
        assert!(Journal::from_jsonl("not json\n").is_err());
        assert!(
            Journal::from_jsonl("{\"seq\":0}\n").is_err(),
            "missing fields"
        );
        let gap = "{\"seq\":1,\"tick\":0,\"now\":0.0,\"event\":\"complete\",\"job\":1}\n";
        assert!(Journal::from_jsonl(gap).is_err(), "seq must start at 0");
        assert!(Journal::from_jsonl("\n\n").unwrap().is_empty());
    }

    #[test]
    fn unknown_event_kinds_parse_as_opaque_and_replay_as_no_ops() {
        // Regression: replay used to assume every parsed kind is
        // job-scoped because from_json rejected anything it did not know,
        // so a journal written by a newer build (here: a fictional
        // `frobnicate` event wedged between job 1's lifecycle events)
        // failed wholesale instead of verifying the state it understands.
        let text = concat!(
            "{\"seq\":0,\"tick\":0,\"now\":0.0,\"event\":\"submit\",\"job\":1,",
            "\"tenant\":\"t\",\"backbone\":\"b\",\"total_tokens\":10,",
            "\"slo_seconds\":null}\n",
            "{\"seq\":1,\"tick\":1,\"now\":0.1,\"event\":\"frobnicate\",",
            "\"job\":7,\"widget\":\"x\",\"level\":3}\n",
            "{\"seq\":2,\"tick\":2,\"now\":0.2,\"event\":\"complete\",\"job\":1}\n",
            "{\"seq\":3,\"tick\":2,\"now\":0.2,\"event\":\"final\",",
            "\"jobs\":{\"1\":\"completed\"},\"alerts\":[]}\n",
        );
        let journal = Journal::from_jsonl(text).expect("unknown kinds parse");
        let ev = &journal.events()[1];
        assert_eq!(ev.kind.name(), "frobnicate");
        match &ev.kind {
            EventKind::Opaque { name, payload } => {
                assert_eq!(name, "frobnicate");
                // The envelope fields stay out of the payload; even a
                // job-named field is inert under replay.
                assert!(!payload.contains_key("seq"));
                assert!(!payload.contains_key("event"));
                assert_eq!(payload.get("widget").and_then(Value::as_str), Some("x"));
                assert_eq!(payload.get("level").and_then(Value::as_u64), Some(3));
            }
            other => panic!("expected Opaque, got {other:?}"),
        }
        // The opaque event's `job` field must NOT leak into replay state.
        let state = journal
            .verify()
            .expect("journal with unknown kind verifies");
        assert_eq!(state.jobs.len(), 1);
        assert_eq!(state.jobs[&1], "completed");

        // Opaque events survive a to_jsonl/from_jsonl round trip losslessly
        // at the value level (the payload map re-emits every field).
        let back = Journal::from_jsonl(&journal.to_jsonl()).expect("round trip");
        assert_eq!(back.events(), journal.events());
    }

    #[test]
    fn request_events_round_trip_and_replay_as_no_ops() {
        let mut j = Journal::new();
        j.push(
            0,
            0.0,
            EventKind::Submit {
                job: 1,
                tenant: "t".into(),
                backbone: "b".into(),
                total_tokens: 10,
                slo_seconds: None,
            },
        );
        j.push(
            1,
            0.1,
            EventKind::RequestArrive {
                request: 100,
                tenant: "t".into(),
                prompt_tokens: 128,
                output_tokens: 32,
            },
        );
        j.push(
            1,
            0.2,
            EventKind::RequestPrefill {
                request: 100,
                ttft_seconds: 0.1,
            },
        );
        j.push(2, 0.3, EventKind::ServingPreempt { instance: 0 });
        j.push(
            2,
            0.4,
            EventKind::RequestComplete {
                request: 100,
                decode_tokens: 32,
                latency_seconds: 0.3,
            },
        );
        j.push(2, 0.4, EventKind::ServingResume { instance: 0 });
        j.push(
            3,
            0.5,
            EventKind::RequestReject {
                request: 101,
                reason: "queue full".into(),
            },
        );
        j.push(
            3,
            0.6,
            EventKind::RequestTimeout {
                request: 102,
                waited_seconds: 2.5,
            },
        );
        j.push(4, 0.7, EventKind::Complete { job: 1 });
        j.seal();
        let state = j.verify().expect("request events do not disturb replay");
        // Request handles share no namespace with job handles: request 100
        // never appears as a job, even though its id is a u64 too.
        assert_eq!(state.jobs.len(), 1);
        assert_eq!(state.jobs[&1], "completed");
        let back = Journal::from_jsonl(&j.to_jsonl()).expect("round trip");
        assert_eq!(back.events(), j.events());
    }
}
