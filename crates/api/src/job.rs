//! Fine-tuning job specifications and lifecycle (the paper's Fig 1:
//! developers "create PEFT tasks using fine-tuning APIs").

use mux_data::corpus::DatasetKind;
use mux_peft::types::{PeftTask, PeftType};

/// A unique job handle issued by the service.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct JobId(pub u64);

/// What the tenant submits through the API.
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// Which backbone family to fine-tune (only same-backbone jobs may
    /// share an instance — §2.1's backbone homogeneity).
    pub backbone: String,
    /// PEFT algorithm and hyper-parameters.
    pub peft: PeftType,
    /// Dataset the tenant trains on (drives the sequence cap).
    pub dataset: DatasetKind,
    /// Micro-batch size.
    pub micro_batch: usize,
    /// Total training tokens the job must process before completion.
    pub total_tokens: u64,
    /// Requested learning rate.
    pub lr: f32,
    /// Optional completion-time SLO: the job should finish within this
    /// many seconds of submission. `None` means best-effort.
    pub slo_seconds: Option<f64>,
    /// Optional tenant-supplied corpus sequence lengths. When absent the
    /// service synthesizes a corpus from `dataset`. Lengths above the
    /// dataset's sequence cap are **truncated to the cap at ingestion**
    /// (they would otherwise be unpackable); zero-length rows are dropped.
    /// A corpus that is empty after that filtering rejects the job.
    pub sequence_lengths: Option<Vec<usize>>,
    /// Tenant priority: higher values survive graceful degradation longer.
    /// Ties break toward older jobs when a shed victim must be chosen.
    pub priority: u8,
    /// Tenant the job belongs to. Fairness accounting (Jain indices,
    /// weighted shares, SLO attainment) aggregates per tenant; jobs that
    /// never set one land in the `"default"` tenant.
    pub tenant: String,
}

impl JobSpec {
    /// A LoRA job with sensible defaults.
    pub fn lora(
        backbone: &str,
        dataset: DatasetKind,
        rank: usize,
        micro_batch: usize,
        total_tokens: u64,
    ) -> Self {
        Self {
            backbone: backbone.to_string(),
            peft: PeftType::LoRA { rank },
            dataset,
            micro_batch,
            total_tokens,
            lr: 1e-3,
            slo_seconds: None,
            sequence_lengths: None,
            priority: 0,
            tenant: "default".to_string(),
        }
    }

    /// Attaches an explicit corpus (sequence lengths). See
    /// [`JobSpec::sequence_lengths`] for the ingestion-time truncation
    /// contract.
    pub fn with_sequence_lengths(mut self, lens: Vec<usize>) -> Self {
        self.sequence_lengths = Some(lens);
        self
    }

    /// Attaches a completion-time SLO (seconds from submission).
    pub fn with_slo(mut self, seconds: f64) -> Self {
        self.slo_seconds = Some(seconds);
        self
    }

    /// Sets the tenant priority (higher = shed last under degradation).
    pub fn with_priority(mut self, priority: u8) -> Self {
        self.priority = priority;
        self
    }

    /// Attributes the job to a tenant (fairness accounting aggregates
    /// per tenant).
    pub fn with_tenant(mut self, tenant: &str) -> Self {
        self.tenant = tenant.to_string();
        self
    }

    /// Converts the spec into the scheduler-facing task description.
    pub fn to_task(&self, id: u32) -> PeftTask {
        PeftTask {
            id,
            peft: self.peft,
            micro_batch: self.micro_batch,
            seq_len: self.dataset.max_len(),
            lr: self.lr,
        }
    }
}

/// Lifecycle of a job inside the service.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Accepted by the API, waiting for dispatch.
    Queued,
    /// Registered on an instance and training.
    Running {
        /// Instance hosting the job.
        instance: usize,
    },
    /// All requested tokens processed.
    Completed,
    /// Rejected (e.g. no backbone pool / admission control).
    Rejected,
}

/// A job record the service tracks.
#[derive(Debug, Clone)]
pub struct Job {
    /// Handle.
    pub id: JobId,
    /// Tenant's spec.
    pub spec: JobSpec,
    /// Current state.
    pub state: JobState,
    /// Submission time, seconds.
    pub submitted_at: f64,
    /// Dispatch time, seconds (NaN until running).
    pub started_at: f64,
    /// Completion time, seconds (NaN until completed).
    pub finished_at: f64,
    /// Effective tokens processed so far.
    pub progressed_tokens: f64,
    /// Why the job was rejected, when [`JobState::Rejected`]. `None` for
    /// every other state.
    pub reject_reason: Option<String>,
}

impl Job {
    /// Creates a queued job.
    pub fn new(id: JobId, spec: JobSpec, now: f64) -> Self {
        Self {
            id,
            spec,
            state: JobState::Queued,
            submitted_at: now,
            started_at: f64::NAN,
            finished_at: f64::NAN,
            progressed_tokens: 0.0,
            reject_reason: None,
        }
    }

    /// Job completion time (arrival to finish), if completed.
    pub fn jct(&self) -> Option<f64> {
        matches!(self.state, JobState::Completed).then(|| self.finished_at - self.submitted_at)
    }

    /// Whether the job violates (or is predicted to violate) its SLO.
    ///
    /// For completed jobs this compares the realized JCT against the SLO;
    /// for in-flight jobs it compares elapsed time plus `eta_seconds`
    /// (remaining-time estimate) against it. `None` when the spec carries
    /// no SLO; rejected jobs never count as violations.
    pub fn slo_violated(&self, now: f64, eta_seconds: Option<f64>) -> Option<bool> {
        let slo = self.spec.slo_seconds?;
        Some(match self.state {
            JobState::Completed => self.finished_at - self.submitted_at > slo,
            JobState::Rejected => false,
            JobState::Queued | JobState::Running { .. } => {
                now - self.submitted_at + eta_seconds.unwrap_or(0.0) > slo
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_converts_to_task_with_dataset_cap() {
        let spec = JobSpec::lora("LLaMA2-7B", DatasetKind::Rte, 16, 4, 1_000_000);
        let task = spec.to_task(7);
        assert_eq!(task.id, 7);
        assert_eq!(task.seq_len, 256);
        assert_eq!(task.micro_batch, 4);
    }

    #[test]
    fn slo_violation_tracks_eta_and_realized_jct() {
        let spec = JobSpec::lora("LLaMA2-7B", DatasetKind::Sst2, 8, 2, 1000).with_slo(100.0);
        let mut job = Job::new(JobId(1), spec, 0.0);
        // Queued at t=10 with 50s of work left: predicted JCT 60s, fine.
        assert_eq!(job.slo_violated(10.0, Some(50.0)), Some(false));
        // Same job but 200s of work left: predicted violation.
        assert_eq!(job.slo_violated(10.0, Some(200.0)), Some(true));
        // Completed late: realized violation regardless of ETA.
        job.state = JobState::Completed;
        job.finished_at = 150.0;
        assert_eq!(job.slo_violated(150.0, None), Some(true));
        // No SLO on the spec -> no verdict.
        let free = Job::new(
            JobId(2),
            JobSpec::lora("LLaMA2-7B", DatasetKind::Sst2, 8, 2, 1000),
            0.0,
        );
        assert_eq!(free.slo_violated(1e9, None), None);
    }

    #[test]
    fn jct_only_after_completion() {
        let spec = JobSpec::lora("LLaMA2-7B", DatasetKind::Sst2, 8, 2, 1000);
        let mut job = Job::new(JobId(1), spec, 10.0);
        assert!(job.jct().is_none());
        job.state = JobState::Completed;
        job.finished_at = 110.0;
        assert_eq!(job.jct(), Some(100.0));
    }
}
