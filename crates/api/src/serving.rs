//! Inference serving on the training backbone (ROADMAP item 1).
//!
//! A [`ServingRuntime`] multiplexes a stream of token-level inference
//! requests onto the same frozen backbone the service's training hTasks
//! share. Requests move through a queue → one serialized prefill batch
//! server → per-request decode, costed by the
//! [`PhaseModel`] roofline: prefill is
//! compute-bound and co-batched (up to `prefill_batch_cap` prompts pay one
//! weight read), decode is memory-bound and token-stepped.
//!
//! The [`ServingPolicy`] decides **per tick** how serving and training
//! share the device (MuxServe-style spatial-temporal multiplexing):
//!
//! - [`Temporal`](ServingPolicy::Temporal): serving preempts training
//!   micro-batches whenever request work is live — training rates drop to
//!   0 (the same mechanism as a comm outage) and serving runs at full
//!   device speed.
//! - [`Spatial`](ServingPolicy::Spatial): serving co-batches into the
//!   spare co-location slots the Eq. 7 grouping left free — training is
//!   never preempted, and serving latency inflates by the reciprocal of
//!   the free-slot share (scarce headroom ⇒ slow serving).
//! - [`Hybrid`](ServingPolicy::Hybrid): spatial while the queue is
//!   healthy, temporal once the oldest queued request has burned half its
//!   TTFT SLO.
//!
//! Every request transition is journaled (`request_arrive`,
//! `request_prefill`, `request_complete`, `request_reject`,
//! `request_timeout`) at its **exact** simulated time with the same
//! contiguous-seq framing as training events, so the journal fingerprint
//! remains the determinism oracle; per-request TTFT and per-token latency
//! feed mergeable [`QuantileSketch`]es for the p50/p95/p99 + SLO
//! attainment surfaces in `service_report()` and the prom exposition.

use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap, VecDeque};

use mux_gpu_sim::PhaseModel;
use mux_obs::QuantileSketch;
use serde_json::{Map, Value};

use crate::journal::{EventKind, Journal};

/// How serving shares the backbone with training, decided per tick.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServingPolicy {
    /// Never preempt: co-batch into spare Eq. 7 slots, derated by the
    /// free-slot share.
    Spatial,
    /// Preempt training whenever request work is live.
    Temporal,
    /// Spatial until the oldest queued request burns half its TTFT SLO,
    /// then temporal until the queue drains.
    Hybrid,
}

impl ServingPolicy {
    /// Stable lowercase name (report/prom surface).
    pub fn name(&self) -> &'static str {
        match self {
            ServingPolicy::Spatial => "spatial",
            ServingPolicy::Temporal => "temporal",
            ServingPolicy::Hybrid => "hybrid",
        }
    }

    /// Parses a policy name (the `report --serving-policy` flag).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "spatial" => Some(ServingPolicy::Spatial),
            "temporal" => Some(ServingPolicy::Temporal),
            "hybrid" => Some(ServingPolicy::Hybrid),
            _ => None,
        }
    }
}

/// Serving subsystem configuration.
#[derive(Debug, Clone)]
pub struct ServingConfig {
    /// Spatial/temporal sharing policy.
    pub policy: ServingPolicy,
    /// Roofline phase model for the (device, backbone) pair.
    pub phase: PhaseModel,
    /// Max prompts co-batched into one prefill.
    pub prefill_batch_cap: usize,
    /// Time-to-first-token SLO, seconds.
    pub ttft_slo_seconds: f64,
    /// Per-decoded-token latency SLO, seconds.
    pub per_token_slo_seconds: f64,
    /// Queued requests older than this are dropped (`request_timeout`).
    pub queue_timeout_seconds: f64,
    /// Admission cap: arrivals beyond this queue depth are rejected.
    pub max_queue: usize,
    /// Floor on the spatial device share, so scarce training headroom
    /// derates serving by at most `1 / min_spatial_share`.
    pub min_spatial_share: f64,
}

impl ServingConfig {
    /// A serving config with paper-flavoured defaults for `phase`.
    pub fn new(policy: ServingPolicy, phase: PhaseModel) -> Self {
        Self {
            policy,
            phase,
            prefill_batch_cap: 8,
            ttft_slo_seconds: 1.0,
            per_token_slo_seconds: 0.1,
            queue_timeout_seconds: 30.0,
            max_queue: 4096,
            min_spatial_share: 0.25,
        }
    }
}

/// One inference request: the serving analogue of a `JobSpec`.
#[derive(Debug, Clone, PartialEq)]
pub struct RequestSpec {
    /// Request handle (its own id space, disjoint from job handles).
    pub id: u64,
    /// Requesting tenant.
    pub tenant: String,
    /// Arrival time, simulated seconds.
    pub arrival: f64,
    /// Prompt tokens to prefill.
    pub prompt_tokens: u64,
    /// Output tokens to decode (≥ 1).
    pub output_tokens: u64,
}

/// A request admitted to the prefill queue.
#[derive(Debug, Clone)]
struct Queued {
    spec: RequestSpec,
}

/// The in-flight co-batched prefill (one serialized batch server).
#[derive(Debug, Clone)]
struct PrefillBatch {
    members: Vec<RequestSpec>,
    ends: f64,
}

/// A scheduled "request finishes decoding" event.
#[derive(Debug, Clone, PartialEq)]
struct DecodeEvent {
    at: f64,
    spec: RequestSpec,
    prefill_end: f64,
}

impl Eq for DecodeEvent {}

impl PartialOrd for DecodeEvent {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for DecodeEvent {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.at
            .total_cmp(&other.at)
            .then_with(|| self.spec.id.cmp(&other.spec.id))
    }
}

/// Running serving totals (report/prom surface).
#[derive(Debug, Clone, Default)]
pub struct ServingStats {
    /// Requests admitted or rejected at the door.
    pub arrived: u64,
    /// Requests that decoded every output token.
    pub completed: u64,
    /// Requests rejected at admission (queue full).
    pub rejected: u64,
    /// Requests dropped after waiting out the queue timeout.
    pub timed_out: u64,
    /// Prompt tokens prefilled.
    pub prompt_tokens: u64,
    /// Output tokens decoded.
    pub decode_tokens: u64,
    /// Completions meeting both the TTFT and per-token SLOs.
    pub slo_attained: u64,
    /// Completions violating either SLO.
    pub slo_violated: u64,
    /// Preempt transitions (training handed the backbone to serving).
    pub preemptions: u64,
}

/// Per-tenant latency sketches + attainment.
#[derive(Debug, Clone, Default)]
struct TenantServing {
    ttft: QuantileSketch,
    per_token: QuantileSketch,
    completed: u64,
    slo_attained: u64,
}

/// The serving subsystem state machine, stepped by
/// [`FineTuneService::tick`](crate::service::FineTuneService::tick).
#[derive(Debug, Clone)]
pub struct ServingRuntime {
    cfg: ServingConfig,
    /// Submitted requests not yet arrived, ordered by `(arrival, id)`.
    pending: VecDeque<RequestSpec>,
    /// Admitted requests awaiting a prefill slot (FIFO).
    queue: VecDeque<Queued>,
    /// The in-flight prefill batch, if the batch server is busy.
    batch: Option<PrefillBatch>,
    /// Scheduled decode completions.
    decoding: BinaryHeap<Reverse<DecodeEvent>>,
    /// Per-tenant latency sketches (BTreeMap: deterministic order).
    tenants: BTreeMap<String, TenantServing>,
    /// Running totals.
    stats: ServingStats,
    /// Whether training is currently preempted for serving.
    preempted: bool,
    /// Serving latency multiplier sampled at schedule time: 1 while
    /// preempted (full device), else the reciprocal spatial share.
    scale: f64,
    /// Last tick's Eq. 7 free-slot share, for the report.
    headroom: f64,
}

impl ServingRuntime {
    /// An idle runtime.
    pub fn new(cfg: ServingConfig) -> Self {
        assert!(cfg.prefill_batch_cap >= 1, "batch cap must be >= 1");
        assert!(
            cfg.min_spatial_share > 0.0 && cfg.min_spatial_share <= 1.0,
            "min_spatial_share must be in (0, 1]"
        );
        Self {
            cfg,
            pending: VecDeque::new(),
            queue: VecDeque::new(),
            batch: None,
            decoding: BinaryHeap::new(),
            tenants: BTreeMap::new(),
            stats: ServingStats::default(),
            preempted: false,
            scale: 1.0,
            headroom: 1.0,
        }
    }

    /// The configuration (read-only).
    pub fn config(&self) -> &ServingConfig {
        &self.cfg
    }

    /// Running totals (read-only).
    pub fn stats(&self) -> &ServingStats {
        &self.stats
    }

    /// Whether training is currently preempted for serving.
    pub fn preempted(&self) -> bool {
        self.preempted
    }

    /// Queues future request arrivals. Order of calls does not matter:
    /// the pending set is kept sorted by `(arrival, id)`.
    pub fn submit(&mut self, mut requests: Vec<RequestSpec>) {
        self.pending.extend(requests.drain(..));
        let mut v: Vec<RequestSpec> = self.pending.drain(..).collect();
        v.sort_by(|a, b| {
            a.arrival
                .total_cmp(&b.arrival)
                .then_with(|| a.id.cmp(&b.id))
        });
        self.pending = v.into();
    }

    /// Whether every submitted request has reached a terminal state.
    pub fn idle(&self) -> bool {
        self.pending.is_empty()
            && self.queue.is_empty()
            && self.batch.is_none()
            && self.decoding.is_empty()
    }

    /// Requests admitted but not yet terminal.
    pub fn in_flight(&self) -> usize {
        self.queue.len()
            + self.batch.as_ref().map(|b| b.members.len()).unwrap_or(0)
            + self.decoding.len()
    }

    /// Absolute time of the next serving event, if any — lets drivers
    /// keep ticking until the stream drains.
    pub fn next_event_at(&self) -> Option<f64> {
        let mut at: Option<f64> = None;
        let mut fold = |t: f64| at = Some(at.map_or(t, |a: f64| a.min(t)));
        if let Some(r) = self.pending.front() {
            fold(r.arrival);
        }
        if let Some(q) = self.queue.front() {
            fold(q.spec.arrival + self.cfg.queue_timeout_seconds);
        }
        if let Some(b) = &self.batch {
            fold(b.ends);
        }
        if let Some(Reverse(d)) = self.decoding.peek() {
            fold(d.at);
        }
        at
    }

    /// Latches this tick's Eq. 7 grouping headroom (free co-location
    /// slots / total slots) and the resulting serving latency scale.
    /// Called by the service before [`Self::step`] each tick.
    pub fn set_headroom(&mut self, headroom: f64) {
        self.headroom = headroom.clamp(0.0, 1.0);
        self.scale = if self.preempted || self.cfg.policy == ServingPolicy::Temporal {
            1.0
        } else {
            1.0 / self.headroom.clamp(self.cfg.min_spatial_share, 1.0)
        };
    }

    /// Whether the policy wants training preempted right now.
    pub fn wants_backbone(&self, now: f64) -> bool {
        let live = !self.queue.is_empty() || self.batch.is_some() || !self.decoding.is_empty();
        match self.cfg.policy {
            ServingPolicy::Spatial => false,
            ServingPolicy::Temporal => live,
            ServingPolicy::Hybrid => {
                if self.preempted {
                    // Hold the backbone until the burst fully drains.
                    live
                } else {
                    self.queue
                        .front()
                        .map(|q| now - q.spec.arrival > 0.5 * self.cfg.ttft_slo_seconds)
                        .unwrap_or(false)
                }
            }
        }
    }

    /// Records a preempt/resume transition (the service flips the
    /// per-instance rate gates and journals the markers).
    pub fn set_preempted(&mut self, preempted: bool) {
        if preempted && !self.preempted {
            self.stats.preemptions += 1;
        }
        self.preempted = preempted;
        // Re-latch the scale under the new sharing mode.
        self.set_headroom(self.headroom);
    }

    /// Processes every serving event up to absolute time `until`,
    /// journaling each transition at its exact simulated time. `tick` is
    /// the service tick stamped on the journal lines (replay orders by
    /// `(now, tick)`, so sub-tick event times replay correctly).
    pub fn step(&mut self, until: f64, tick: u64, journal: &mut Journal) {
        let _span = mux_obs::span("serving.step");
        loop {
            // The earliest actionable event at or before `until`; ties
            // break by a fixed class order (arrive < prefill-end <
            // decode-end < timeout) so processing is deterministic.
            let mut best: Option<(f64, u8)> = None;
            let mut consider = |t: f64, class: u8| {
                if t <= until {
                    let key = (t, class);
                    if best.is_none_or(|b| key < b) {
                        best = Some(key);
                    }
                }
            };
            if let Some(r) = self.pending.front() {
                consider(r.arrival, 0);
            }
            if let Some(b) = &self.batch {
                consider(b.ends, 1);
            }
            if let Some(Reverse(d)) = self.decoding.peek() {
                consider(d.at, 2);
            }
            // Timeouts bite while the queue waits behind an in-flight
            // batch; on a tie with the batch end, the class order above
            // frees the server first, so the request joins the next
            // batch instead of expiring.
            if let Some(q) = self.queue.front() {
                consider(q.spec.arrival + self.cfg.queue_timeout_seconds, 3);
            }
            let Some((t, class)) = best else { break };
            match class {
                0 => self.admit(t, tick, journal),
                1 => self.finish_prefill(tick, journal),
                2 => self.finish_decode(tick, journal),
                _ => self.expire_front(t, tick, journal),
            }
            // A freed batch server (or fresh admissions) may allow a new
            // batch to start at exactly `t`.
            self.maybe_start_batch(t);
        }
    }

    /// Admits (or rejects) the front pending arrival at its arrival time.
    fn admit(&mut self, now: f64, tick: u64, journal: &mut Journal) {
        let spec = self.pending.pop_front().expect("pending non-empty");
        debug_assert_eq!(spec.arrival, now);
        self.stats.arrived += 1;
        mux_obs::profile::work("serving_requests", 1);
        journal.push(
            tick,
            spec.arrival,
            EventKind::RequestArrive {
                request: spec.id,
                tenant: spec.tenant.clone(),
                prompt_tokens: spec.prompt_tokens,
                output_tokens: spec.output_tokens,
            },
        );
        if self.queue.len() >= self.cfg.max_queue {
            self.stats.rejected += 1;
            journal.push(
                tick,
                spec.arrival,
                EventKind::RequestReject {
                    request: spec.id,
                    reason: format!("queue full ({} waiting)", self.queue.len()),
                },
            );
            return;
        }
        self.queue.push_back(Queued { spec });
    }

    /// Starts a prefill batch at time `t` if the server is free and
    /// requests are waiting.
    fn maybe_start_batch(&mut self, t: f64) {
        if self.batch.is_some() || self.queue.is_empty() {
            return;
        }
        let n = self.queue.len().min(self.cfg.prefill_batch_cap);
        let members: Vec<RequestSpec> = self.queue.drain(..n).map(|q| q.spec).collect();
        let prompts: Vec<u64> = members.iter().map(|m| m.prompt_tokens).collect();
        let dur = self.cfg.phase.prefill_batch_time(&prompts) * self.scale;
        self.batch = Some(PrefillBatch {
            members,
            ends: t + dur,
        });
        mux_obs::profile::work("serving_prefill_batches", 1);
    }

    /// Completes the in-flight batch: journals per-member TTFT and
    /// schedules each member's decode completion.
    fn finish_prefill(&mut self, tick: u64, journal: &mut Journal) {
        let batch = self.batch.take().expect("batch in flight");
        let step = self.cfg.phase.decode_step_time() * self.scale;
        for spec in batch.members {
            let ttft = batch.ends - spec.arrival;
            self.stats.prompt_tokens += spec.prompt_tokens;
            journal.push(
                tick,
                batch.ends,
                EventKind::RequestPrefill {
                    request: spec.id,
                    ttft_seconds: ttft,
                },
            );
            self.tenants
                .entry(spec.tenant.clone())
                .or_default()
                .ttft
                .insert(ttft);
            let at = batch.ends + spec.output_tokens as f64 * step;
            self.decoding.push(Reverse(DecodeEvent {
                at,
                spec,
                prefill_end: batch.ends,
            }));
        }
    }

    /// Completes the earliest scheduled decode: journals the terminal
    /// `request_complete` and folds latency into the tenant sketches.
    fn finish_decode(&mut self, tick: u64, journal: &mut Journal) {
        let Reverse(ev) = self.decoding.pop().expect("decode scheduled");
        let latency = ev.at - ev.spec.arrival;
        let per_token = (ev.at - ev.prefill_end) / ev.spec.output_tokens.max(1) as f64;
        let ttft = ev.prefill_end - ev.spec.arrival;
        self.stats.completed += 1;
        self.stats.decode_tokens += ev.spec.output_tokens;
        mux_obs::profile::work("serving_decode_tokens", ev.spec.output_tokens);
        let attained =
            ttft <= self.cfg.ttft_slo_seconds && per_token <= self.cfg.per_token_slo_seconds;
        if attained {
            self.stats.slo_attained += 1;
        } else {
            self.stats.slo_violated += 1;
        }
        let tenant = self.tenants.entry(ev.spec.tenant.clone()).or_default();
        tenant.per_token.insert(per_token);
        tenant.completed += 1;
        if attained {
            tenant.slo_attained += 1;
        }
        journal.push(
            tick,
            ev.at,
            EventKind::RequestComplete {
                request: ev.spec.id,
                decode_tokens: ev.spec.output_tokens,
                latency_seconds: latency,
            },
        );
    }

    /// Drops the front queued request at its timeout instant.
    fn expire_front(&mut self, t: f64, tick: u64, journal: &mut Journal) {
        let q = self.queue.pop_front().expect("queue non-empty");
        self.stats.timed_out += 1;
        journal.push(
            tick,
            t,
            EventKind::RequestTimeout {
                request: q.spec.id,
                waited_seconds: t - q.spec.arrival,
            },
        );
    }

    /// The always-present `serving` section of `service_report()`:
    /// stable keys, zeros when nothing is enabled or nothing happened.
    pub fn report_json(&self, now: f64) -> Value {
        let mut root = Map::new();
        root.insert("enabled".into(), true.into());
        root.insert("policy".into(), self.cfg.policy.name().into());
        root.insert("preempted".into(), self.preempted.into());
        root.insert("preemptions".into(), self.stats.preemptions.into());
        root.insert("headroom".into(), self.headroom.into());
        root.insert("latency_scale".into(), self.scale.into());

        let mut requests = Map::new();
        requests.insert("arrived".into(), self.stats.arrived.into());
        requests.insert("completed".into(), self.stats.completed.into());
        requests.insert("rejected".into(), self.stats.rejected.into());
        requests.insert("timed_out".into(), self.stats.timed_out.into());
        requests.insert("pending".into(), self.pending.len().into());
        requests.insert("in_flight".into(), self.in_flight().into());
        root.insert("requests".into(), Value::Object(requests));

        let mut tokens = Map::new();
        tokens.insert("prompt".into(), self.stats.prompt_tokens.into());
        tokens.insert("decode".into(), self.stats.decode_tokens.into());
        root.insert("tokens".into(), Value::Object(tokens));

        let mut slo = Map::new();
        slo.insert("attained".into(), self.stats.slo_attained.into());
        slo.insert("violated".into(), self.stats.slo_violated.into());
        let concluded = self.stats.slo_attained + self.stats.slo_violated;
        slo.insert(
            "attainment".into(),
            if concluded == 0 {
                1.0
            } else {
                self.stats.slo_attained as f64 / concluded as f64
            }
            .into(),
        );
        slo.insert("ttft_seconds".into(), self.cfg.ttft_slo_seconds.into());
        slo.insert(
            "per_token_seconds".into(),
            self.cfg.per_token_slo_seconds.into(),
        );
        root.insert("slo".into(), Value::Object(slo));

        root.insert(
            "goodput_requests_per_second".into(),
            if now > 0.0 {
                self.stats.slo_attained as f64 / now
            } else {
                0.0
            }
            .into(),
        );

        let per_tenant: Vec<Value> = self
            .tenants
            .iter()
            .map(|(name, t)| {
                let mut e = Map::new();
                e.insert("tenant".into(), name.as_str().into());
                e.insert("completed".into(), t.completed.into());
                e.insert(
                    "slo_attainment".into(),
                    if t.completed == 0 {
                        1.0
                    } else {
                        t.slo_attained as f64 / t.completed as f64
                    }
                    .into(),
                );
                for (label, sketch) in [("ttft", &t.ttft), ("per_token", &t.per_token)] {
                    let mut q = Map::new();
                    for (quantile, key) in [(0.5, "p50"), (0.95, "p95"), (0.99, "p99")] {
                        q.insert(
                            key.into(),
                            if sketch.is_empty() {
                                0.0
                            } else {
                                sketch.quantile(quantile)
                            }
                            .into(),
                        );
                    }
                    e.insert(label.into(), Value::Object(q));
                }
                Value::Object(e)
            })
            .collect();
        root.insert("per_tenant".into(), Value::Array(per_tenant));
        Value::Object(root)
    }

    /// Appends the `muxtune_request_*` / `muxtune_serving_*` prom
    /// families to `out` (families always render; gauges read 0 when no
    /// request concluded yet).
    pub fn render_prom(&self, out: &mut String, now: f64) {
        out.push_str("# TYPE muxtune_requests_total counter\n");
        for (state, v) in [
            ("arrived", self.stats.arrived),
            ("completed", self.stats.completed),
            ("rejected", self.stats.rejected),
            ("timed_out", self.stats.timed_out),
        ] {
            out.push_str(&format!(
                "muxtune_requests_total{{state=\"{state}\"}} {v}\n"
            ));
        }
        out.push_str("# TYPE muxtune_request_tokens_total counter\n");
        for (kind, v) in [
            ("prompt", self.stats.prompt_tokens),
            ("decode", self.stats.decode_tokens),
        ] {
            out.push_str(&format!(
                "muxtune_request_tokens_total{{kind=\"{kind}\"}} {v}\n"
            ));
        }
        out.push_str("# TYPE muxtune_request_ttft_seconds gauge\n");
        out.push_str("# TYPE muxtune_request_per_token_seconds gauge\n");
        for (name, t) in &self.tenants {
            let esc = mux_obs::prom_escape_label(name);
            for (family, sketch) in [
                ("muxtune_request_ttft_seconds", &t.ttft),
                ("muxtune_request_per_token_seconds", &t.per_token),
            ] {
                for (quantile, label) in [(0.5, "0.5"), (0.95, "0.95"), (0.99, "0.99")] {
                    let v = if sketch.is_empty() {
                        0.0
                    } else {
                        sketch.quantile(quantile)
                    };
                    out.push_str(&format!(
                        "{family}{{tenant=\"{esc}\",quantile=\"{label}\"}} {v}\n"
                    ));
                }
            }
        }
        out.push_str("# TYPE muxtune_request_goodput_under_slo gauge\n");
        let goodput = if now > 0.0 {
            self.stats.slo_attained as f64 / now
        } else {
            0.0
        };
        out.push_str(&format!("muxtune_request_goodput_under_slo {goodput}\n"));
        out.push_str("# TYPE muxtune_serving_preemptions_total counter\n");
        out.push_str(&format!(
            "muxtune_serving_preemptions_total {}\n",
            self.stats.preemptions
        ));
    }
}

/// The `serving` report section when serving is disabled: the same
/// stable key set, zeroed, so report consumers never branch on presence.
pub fn disabled_report_json() -> Value {
    let mut root = Map::new();
    root.insert("enabled".into(), false.into());
    root.insert("policy".into(), "none".into());
    root.insert("preempted".into(), false.into());
    root.insert("preemptions".into(), 0u64.into());
    root.insert("headroom".into(), 1.0.into());
    root.insert("latency_scale".into(), 1.0.into());
    let mut requests = Map::new();
    for k in [
        "arrived",
        "completed",
        "rejected",
        "timed_out",
        "pending",
        "in_flight",
    ] {
        requests.insert(k.into(), 0u64.into());
    }
    root.insert("requests".into(), Value::Object(requests));
    let mut tokens = Map::new();
    tokens.insert("prompt".into(), 0u64.into());
    tokens.insert("decode".into(), 0u64.into());
    root.insert("tokens".into(), Value::Object(tokens));
    let mut slo = Map::new();
    slo.insert("attained".into(), 0u64.into());
    slo.insert("violated".into(), 0u64.into());
    slo.insert("attainment".into(), 1.0.into());
    slo.insert("ttft_seconds".into(), 0.0.into());
    slo.insert("per_token_seconds".into(), 0.0.into());
    root.insert("slo".into(), Value::Object(slo));
    root.insert("goodput_requests_per_second".into(), 0.0.into());
    root.insert("per_tenant".into(), Value::Array(Vec::new()));
    Value::Object(root)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mux_gpu_sim::GpuSpec;
    use mux_model::ModelConfig;

    fn phase() -> PhaseModel {
        PhaseModel::for_model(GpuSpec::a40(), &ModelConfig::tiny(4, 256, 8, 1024))
    }

    fn req(id: u64, arrival: f64, prompt: u64, output: u64) -> RequestSpec {
        RequestSpec {
            id,
            tenant: "acme".into(),
            arrival,
            prompt_tokens: prompt,
            output_tokens: output,
        }
    }

    #[test]
    fn single_request_flows_arrive_prefill_complete() {
        let mut rt = ServingRuntime::new(ServingConfig::new(ServingPolicy::Spatial, phase()));
        rt.submit(vec![req(1, 0.5, 128, 16)]);
        let mut journal = Journal::new();
        rt.step(100.0, 1, &mut journal);
        assert!(rt.idle());
        assert_eq!(rt.stats().completed, 1);
        assert_eq!(rt.stats().decode_tokens, 16);
        let kinds: Vec<&str> = journal.events().iter().map(|e| e.kind.name()).collect();
        assert_eq!(
            kinds,
            ["request_arrive", "request_prefill", "request_complete"]
        );
        // TTFT is exactly the prefill time (no queue wait at idle).
        let expect_ttft = rt.config().phase.prefill_time(128);
        match &journal.events()[1].kind {
            EventKind::RequestPrefill { ttft_seconds, .. } => {
                assert!((ttft_seconds - expect_ttft).abs() < 1e-12)
            }
            other => panic!("expected prefill, got {other:?}"),
        }
    }

    #[test]
    fn concurrent_arrivals_cobatch_and_keep_exact_ttfts() {
        let mut rt = ServingRuntime::new(ServingConfig::new(ServingPolicy::Spatial, phase()));
        rt.submit(vec![
            req(1, 0.0, 64, 4),
            req(2, 0.0, 64, 4),
            req(3, 0.0, 64, 4),
        ]);
        let mut journal = Journal::new();
        rt.step(100.0, 1, &mut journal);
        assert!(rt.idle());
        // First arrival starts a singleton batch immediately; 2 and 3
        // co-batch once the server frees up.
        let prefills: Vec<f64> = journal
            .events()
            .iter()
            .filter_map(|e| match &e.kind {
                EventKind::RequestPrefill { ttft_seconds, .. } => Some(*ttft_seconds),
                _ => None,
            })
            .collect();
        assert_eq!(prefills.len(), 3);
        let solo = rt.config().phase.prefill_time(64);
        assert!((prefills[0] - solo).abs() < 1e-12);
        let batched = rt.config().phase.prefill_batch_time(&[64, 64]);
        assert!((prefills[1] - (solo + batched)).abs() < 1e-12);
        assert_eq!(prefills[1], prefills[2]);
    }

    #[test]
    fn queue_overflow_rejects_and_stuck_queue_times_out() {
        let mut cfg = ServingConfig::new(ServingPolicy::Spatial, phase());
        cfg.max_queue = 1;
        cfg.queue_timeout_seconds = 1e-5;
        // A derated device (scale pinned high) so the queue backs up
        // behind request 1's long prefill.
        let mut rt = ServingRuntime::new(cfg);
        rt.set_headroom(0.0); // scale = 1 / min_spatial_share = 4x
        rt.submit(vec![
            req(1, 0.0, 4096, 1),
            req(2, 1e-5, 64, 1),
            req(3, 2e-5, 64, 1),
        ]);
        let mut journal = Journal::new();
        rt.step(1e-4, 1, &mut journal);
        // 1 is prefilling; 3 bounced off the queue cap (2 still queued at
        // its arrival instant — ties admit before expiring); 2 then waited
        // out its timeout behind the in-flight batch.
        assert_eq!(rt.stats().rejected, 1);
        assert_eq!(rt.stats().timed_out, 1);
        rt.step(100.0, 2, &mut journal);
        assert!(rt.idle());
        assert_eq!(rt.stats().completed, 1);
        // Conservation: every request reached exactly one terminal state.
        assert_eq!(rt.stats().arrived, 3);
        assert_eq!(
            rt.stats().completed + rt.stats().rejected + rt.stats().timed_out,
            3
        );
    }

    #[test]
    fn temporal_policy_wants_backbone_only_while_work_is_live() {
        let mut rt = ServingRuntime::new(ServingConfig::new(ServingPolicy::Temporal, phase()));
        assert!(!rt.wants_backbone(0.0));
        rt.submit(vec![req(1, 0.0, 64, 4)]);
        assert!(
            !rt.wants_backbone(0.0),
            "pending-but-not-arrived is not live"
        );
        let mut journal = Journal::new();
        rt.step(1e-6, 1, &mut journal);
        assert!(
            rt.wants_backbone(1e-6),
            "in-flight prefill holds the backbone"
        );
        rt.step(100.0, 2, &mut journal);
        assert!(!rt.wants_backbone(100.0), "drained stream releases it");
    }

    #[test]
    fn hybrid_policy_escalates_on_ttft_pressure() {
        let mut cfg = ServingConfig::new(ServingPolicy::Hybrid, phase());
        cfg.ttft_slo_seconds = 1.0;
        cfg.prefill_batch_cap = 1;
        let mut rt = ServingRuntime::new(cfg);
        rt.submit(vec![req(1, 0.0, 4096, 1), req(2, 1e-5, 64, 1)]);
        let mut journal = Journal::new();
        rt.step(1e-4, 1, &mut journal);
        // Request 2 queued behind a long prefill but not yet past half
        // its TTFT SLO: stay spatial.
        assert!(!rt.wants_backbone(0.1));
        // Past the half-SLO mark: escalate.
        assert!(rt.wants_backbone(0.6));
    }

    #[test]
    fn spatial_scale_derates_by_free_slot_share() {
        let mut rt = ServingRuntime::new(ServingConfig::new(ServingPolicy::Spatial, phase()));
        rt.set_headroom(0.5);
        assert!((rt.scale - 2.0).abs() < 1e-12);
        rt.set_headroom(0.1); // clamped at min_spatial_share = 0.25
        assert!((rt.scale - 4.0).abs() < 1e-12);
        // Preemption grants the full device regardless of headroom.
        rt.set_preempted(true);
        assert!((rt.scale - 1.0).abs() < 1e-12);
        assert_eq!(rt.stats().preemptions, 1);
    }

    #[test]
    fn run_twice_is_bitwise_identical() {
        let run = || {
            let mut rt = ServingRuntime::new(ServingConfig::new(ServingPolicy::Hybrid, phase()));
            rt.submit(
                (0..50)
                    .map(|i| req(i, i as f64 * 0.01, 64 + i, 1 + i % 7))
                    .collect(),
            );
            let mut journal = Journal::new();
            let mut t = 0.0;
            while !rt.idle() {
                t += 0.05;
                rt.step(t, (t / 0.05) as u64, &mut journal);
            }
            journal.seal();
            journal.to_jsonl()
        };
        assert_eq!(run(), run());
    }
}
