//! # mux-api
//!
//! The fine-tuning API front end of the paper's Fig 1: tenants submit
//! [`JobSpec`]s; the cluster scheduler dispatches each job
//! onto an in-flight instance with the same backbone (multiplexing-aware)
//! or spins up a new instance; each membership change re-invokes the
//! MuxTune planner, and job progress follows the planner's measured
//! effective throughput.

pub mod job;
pub mod journal;
pub mod policy;
pub mod service;
pub mod serving;

pub use job::{Job, JobId, JobSpec, JobState};
pub use journal::{
    DecisionCandidate, EventKind, Journal, JournalEvent, ReplayState, DECISION_CANDIDATE_CAP,
};
pub use mux_obs_analysis::online::{Alert, MonitorConfig, Severity};
pub use policy::{
    policy_by_name, Drf, Fcfs, PendingJob, SchedulingPolicy, StrictPriority, TenantUsage,
    WeightedFair, POLICY_NAMES,
};
pub use service::{
    DispatchPolicy, FaultError, FaultStats, FineTuneService, ReplanMode, RetryPolicy,
    ServiceConfig, ServiceFault, TelemetrySummary,
};
pub use serving::{RequestSpec, ServingConfig, ServingPolicy, ServingRuntime, ServingStats};
