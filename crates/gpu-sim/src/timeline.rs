//! The discrete-event execution timeline.
//!
//! Executors submit operators in per-device launch order; the timeline
//! resolves each operator's start time as the maximum of its lane's free
//! time and its dependencies' completion times (classic list-scheduling /
//! lazy discrete-event semantics — each submission *is* the event). Every
//! device has two lanes, mirroring CUDA practice: a **compute** stream and a
//! **communication** stream. Overlap between them is where both the benefit
//! (hidden stalls) and the cost (CTA contention, §3.4.3) live.

use crate::spec::{CommCtaPolicy, GpuSpec, LinkSpec, Work};

/// A multi-GPU machine (possibly multiple nodes).
#[derive(Debug, Clone)]
pub struct Cluster {
    /// Per-GPU specs. All experiments use homogeneous GPUs, but the
    /// timeline does not require it.
    pub gpus: Vec<GpuSpec>,
    /// Intra-node link.
    pub intra_link: LinkSpec,
    /// Inter-node link, if the cluster spans nodes.
    pub inter_link: Option<LinkSpec>,
    /// GPUs per node (used to decide which link a group crosses).
    pub gpus_per_node: usize,
}

impl Cluster {
    /// A single node of `n` identical GPUs.
    pub fn single_node(gpu: GpuSpec, n: usize, link: LinkSpec) -> Self {
        Self {
            gpus: vec![gpu; n],
            intra_link: link,
            inter_link: None,
            gpus_per_node: n,
        }
    }

    /// A multi-node cluster (`nodes` × `gpus_per_node`).
    pub fn multi_node(
        gpu: GpuSpec,
        nodes: usize,
        gpus_per_node: usize,
        intra: LinkSpec,
        inter: LinkSpec,
    ) -> Self {
        Self {
            gpus: vec![gpu; nodes * gpus_per_node],
            intra_link: intra,
            inter_link: Some(inter),
            gpus_per_node,
        }
    }

    /// Number of GPUs.
    pub fn num_gpus(&self) -> usize {
        self.gpus.len()
    }

    /// The link a device group communicates over: the inter-node link if
    /// the group spans nodes, else the intra-node link.
    pub fn link_for(&self, group: &[usize]) -> &LinkSpec {
        let spans_nodes = group
            .iter()
            .map(|g| g / self.gpus_per_node)
            .collect::<std::collections::BTreeSet<_>>()
            .len()
            > 1;
        match (&self.inter_link, spans_nodes) {
            (Some(inter), true) => inter,
            _ => &self.intra_link,
        }
    }
}

/// Handle to a submitted operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpHandle(usize);

/// Which lane an operator ran on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LaneKind {
    /// Compute stream.
    Compute,
    /// Communication stream.
    Comm,
}

/// What a submitted operator was, for trace export and stall attribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    /// A compute kernel (or fused subgraph).
    Compute,
    /// A group collective (all-reduce / all-gather).
    Collective,
    /// A point-to-point copy-engine transfer.
    P2p,
    /// A zero-duration synchronization point.
    Join,
}

/// A completed operator record, for metrics and timeline export.
#[derive(Debug, Clone)]
pub struct OpRecord {
    /// Start time, seconds.
    pub start: f64,
    /// End time, seconds.
    pub end: f64,
    /// Devices involved (1 for compute, group for collectives).
    pub devices: Vec<usize>,
    /// Lane.
    pub lane: LaneKind,
    /// Operator kind.
    pub kind: OpKind,
    /// Indices (into the timeline's op list) of the operators this one
    /// waited on — the dependency edges needed for stall attribution.
    pub deps: Vec<usize>,
    /// Achieved-utilization proxy in `[0, 1]` (compute ops only).
    pub utilization: f64,
    /// FLOPs performed.
    pub flops: f64,
    /// Communication payload bytes (comm ops only).
    pub comm_bytes: f64,
    /// Compute-rate penalty this op imposes on overlapped compute
    /// (comm ops only).
    pub compute_penalty: f64,
    /// Label for traces.
    pub label: String,
}

/// Out-of-memory error from the device memory ledger.
#[derive(Debug, Clone, PartialEq)]
pub struct OomError {
    /// Device that overflowed.
    pub device: usize,
    /// Bytes requested.
    pub requested: u64,
    /// Bytes already in use.
    pub in_use: u64,
    /// Device capacity.
    pub capacity: u64,
}

impl std::fmt::Display for OomError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "OOM on GPU {}: requested {} B with {} / {} B in use",
            self.device, self.requested, self.in_use, self.capacity
        )
    }
}

impl std::error::Error for OomError {}

#[derive(Debug, Clone, Default)]
struct MemLedger {
    in_use: u64,
    peak: u64,
}

/// One fault window perturbing the timeline: operators *starting* inside
/// `[start, end)` run `factor`× slower (the factor is sampled at op start —
/// an op straddling the boundary keeps its start-time factor, the standard
/// piecewise-constant discrete-event approximation).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultWindow {
    /// Afflicted device, or `None` for a cluster-wide fault (e.g. a shared
    /// link degradation).
    pub device: Option<usize>,
    /// Window start, seconds.
    pub start: f64,
    /// Window end, seconds.
    pub end: f64,
    /// Duration multiplier, `>= 1.0` (1.0 = no effect).
    pub factor: f64,
}

impl FaultWindow {
    fn applies(&self, dev: Option<usize>, t: f64) -> bool {
        let dev_match = match (self.device, dev) {
            (None, _) => true,
            (Some(fd), Some(d)) => fd == d,
            (Some(_), None) => false,
        };
        dev_match && self.start <= t && t < self.end && self.factor > 1.0
    }
}

/// The deterministic fault schedule a [`Timeline`] consults on every
/// submission — the chaos layer's hook into the discrete-event loop.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultWindows {
    /// Compute slowdowns (straggler devices): stretch compute operators.
    pub compute_slow: Vec<FaultWindow>,
    /// Link-bandwidth degradations: stretch collectives and P2P transfers.
    pub link_degrade: Vec<FaultWindow>,
}

impl FaultWindows {
    /// True when no window can perturb anything.
    pub fn is_empty(&self) -> bool {
        self.compute_slow.is_empty() && self.link_degrade.is_empty()
    }

    fn worst(windows: &[FaultWindow], dev: Option<usize>, t: f64) -> f64 {
        windows
            .iter()
            .filter(|w| w.applies(dev, t))
            .map(|w| w.factor)
            .fold(1.0, f64::max)
    }

    /// Compute-duration multiplier for an op starting at `t` on `dev`.
    pub fn compute_factor(&self, dev: usize, t: f64) -> f64 {
        Self::worst(&self.compute_slow, Some(dev), t)
    }

    /// Comm-duration multiplier for a transfer over `devices` starting at
    /// `t` (worst afflicted participant wins).
    pub fn link_factor(&self, devices: &[usize], t: f64) -> f64 {
        devices
            .iter()
            .map(|&d| Self::worst(&self.link_degrade, Some(d), t))
            .fold(Self::worst(&self.link_degrade, None, t), f64::max)
    }

    /// Every window as a `(device, start, end)` span, cluster-wide windows
    /// expanded over `num_devices` — the shape stall attribution consumes.
    pub fn spans(&self, num_devices: usize) -> Vec<(usize, f64, f64)> {
        let mut out = Vec::new();
        for w in self.compute_slow.iter().chain(&self.link_degrade) {
            match w.device {
                Some(d) => out.push((d, w.start, w.end)),
                None => out.extend((0..num_devices).map(|d| (d, w.start, w.end))),
            }
        }
        out
    }
}

/// The execution timeline of one simulated run.
///
/// ```
/// use mux_gpu_sim::spec::{GpuSpec, LinkSpec, Work};
/// use mux_gpu_sim::timeline::{Cluster, Timeline};
///
/// let cluster = Cluster::single_node(GpuSpec::a40(), 2, LinkSpec::nvlink_a40());
/// let mut tl = Timeline::new(&cluster);
/// let a = tl.compute(0, Work::tensor(10e9, 5e6), &[], "gemm");
/// let b = tl.compute(1, Work::tensor(10e9, 5e6), &[a], "dependent");
/// assert!(tl.end_of(b) > tl.end_of(a)); // causality
/// assert!(tl.finish_time() > 0.0);
/// ```
pub struct Timeline<'a> {
    cluster: &'a Cluster,
    compute_free: Vec<f64>,
    comm_free: Vec<f64>,
    ops: Vec<OpRecord>,
    mem: Vec<MemLedger>,
    /// Per-device `(start, end, penalty)` comm intervals with nonzero
    /// penalty, sorted by start (the comm lane is FIFO, so intervals on one
    /// device never overlap each other).
    comm_intervals: Vec<Vec<(f64, f64, f64)>>,
    /// Injected fault schedule (empty = perfect hardware).
    faults: FaultWindows,
    /// Total extra seconds faults added across perturbed operators.
    fault_delay: f64,
    /// Operators whose duration a fault window stretched.
    perturbed_ops: usize,
}

impl<'a> Timeline<'a> {
    /// Creates an empty timeline over a cluster.
    pub fn new(cluster: &'a Cluster) -> Self {
        let n = cluster.num_gpus();
        Self {
            cluster,
            compute_free: vec![0.0; n],
            comm_free: vec![0.0; n],
            ops: Vec::new(),
            mem: vec![MemLedger::default(); n],
            comm_intervals: vec![Vec::new(); n],
            faults: FaultWindows::default(),
            fault_delay: 0.0,
            perturbed_ops: 0,
        }
    }

    /// The cluster this timeline runs on.
    pub fn cluster(&self) -> &Cluster {
        self.cluster
    }

    /// Installs a fault schedule. Call before submitting work — already
    /// submitted operators are not retroactively perturbed.
    pub fn set_faults(&mut self, faults: FaultWindows) {
        self.faults = faults;
    }

    /// The installed fault schedule.
    pub fn faults(&self) -> &FaultWindows {
        &self.faults
    }

    /// Total extra seconds injected faults added to operator durations.
    pub fn fault_delay_seconds(&self) -> f64 {
        self.fault_delay
    }

    /// Number of operators a fault window stretched.
    pub fn perturbed_ops(&self) -> usize {
        self.perturbed_ops
    }

    /// Applies the fault multiplier `f` to a base duration, recording the
    /// perturbation. Returns the stretched duration.
    fn perturb(&mut self, base: f64, f: f64) -> f64 {
        if f > 1.0 && base > 0.0 {
            self.fault_delay += base * (f - 1.0);
            self.perturbed_ops += 1;
            base * f
        } else {
            base
        }
    }

    fn deps_ready(&self, deps: &[OpHandle]) -> f64 {
        deps.iter().map(|d| self.ops[d.0].end).fold(0.0, f64::max)
    }

    /// Sum of comm time on `dev` overlapping `[start, end)`, weighted by
    /// each comm op's compute penalty. Only already-submitted comm ops are
    /// visible — launch order is submission order, so a collective launched
    /// *after* a compute kernel cannot retroactively slow it (matching how
    /// the real schedulers commit launch order ahead of time).
    fn comm_contention(&self, dev: usize, start: f64, end: f64) -> f64 {
        let mut weighted = 0.0;
        // Intervals are sorted by start and mutually disjoint; walk back
        // from the newest until intervals end before our window starts.
        for &(cs, ce, p) in self.comm_intervals[dev].iter().rev() {
            if ce <= start {
                break;
            }
            let o = (ce.min(end) - cs.max(start)).max(0.0);
            weighted += o * p;
        }
        weighted
    }

    /// Submits a compute operator on `dev`'s compute lane.
    pub fn compute(
        &mut self,
        dev: usize,
        work: Work,
        deps: &[OpHandle],
        label: impl Into<String>,
    ) -> OpHandle {
        assert!(dev < self.cluster.num_gpus(), "device {dev} out of range");
        let spec = &self.cluster.gpus[dev];
        let start = self.compute_free[dev].max(self.deps_ready(deps));
        let healthy = spec.compute_time(work, 1.0);
        let slow = self.faults.compute_factor(dev, start);
        let base = self.perturb(healthy, slow);
        // One fixpoint iteration of contention stretching: during overlap
        // with a comm kernel of penalty p, compute progresses at rate
        // (1 - p), so the overlapped work takes o * p / (1 - p) longer.
        let overlap_weighted = self.comm_contention(dev, start, start + base);
        let stretch = if overlap_weighted > 0.0 {
            // Cap the effective penalty at 60% to keep the approximation
            // stable even under pathological full-overlap stacking.
            let p = (overlap_weighted / base).min(0.6);
            base * p / (1.0 - p)
        } else {
            0.0
        };
        let end = start + base + stretch;
        self.compute_free[dev] = end;
        let utilization = spec.op_utilization(work) * base / (base + stretch);
        self.ops.push(OpRecord {
            start,
            end,
            devices: vec![dev],
            lane: LaneKind::Compute,
            kind: OpKind::Compute,
            deps: deps.iter().map(|d| d.0).collect(),
            utilization,
            flops: work.flops,
            comm_bytes: 0.0,
            compute_penalty: 0.0,
            label: label.into(),
        });
        OpHandle(self.ops.len() - 1)
    }

    /// Submits pre-costed compute work: an operator (or fused subgraph)
    /// whose duration and achieved utilization were computed by the caller.
    /// Still subject to CTA-contention stretching from overlapping comm.
    pub fn compute_fixed(
        &mut self,
        dev: usize,
        seconds: f64,
        utilization: f64,
        flops: f64,
        deps: &[OpHandle],
        label: impl Into<String>,
    ) -> OpHandle {
        assert!(dev < self.cluster.num_gpus(), "device {dev} out of range");
        assert!(seconds >= 0.0, "negative duration");
        let start = self.compute_free[dev].max(self.deps_ready(deps));
        let slow = self.faults.compute_factor(dev, start);
        let seconds = self.perturb(seconds, slow);
        let overlap_weighted = self.comm_contention(dev, start, start + seconds);
        let stretch = if overlap_weighted > 0.0 && seconds > 0.0 {
            let p = (overlap_weighted / seconds).min(0.6);
            seconds * p / (1.0 - p)
        } else {
            0.0
        };
        let end = start + seconds + stretch;
        self.compute_free[dev] = end;
        let util = if seconds + stretch > 0.0 {
            utilization * seconds / (seconds + stretch)
        } else {
            utilization
        };
        self.ops.push(OpRecord {
            start,
            end,
            devices: vec![dev],
            lane: LaneKind::Compute,
            kind: OpKind::Compute,
            deps: deps.iter().map(|d| d.0).collect(),
            utilization: util,
            flops,
            comm_bytes: 0.0,
            compute_penalty: 0.0,
            label: label.into(),
        });
        OpHandle(self.ops.len() - 1)
    }

    /// Collective kinds.
    fn collective_time(&self, group: &[usize], kind: CollectiveKind, bytes: f64) -> f64 {
        let link = self.cluster.link_for(group);
        match kind {
            CollectiveKind::AllReduce => link.allreduce_time(bytes, group.len()),
            CollectiveKind::AllGather => link.allgather_time(bytes, group.len()),
        }
    }

    /// Submits a collective over `group`'s communication lanes.
    ///
    /// `policy` decides the bandwidth achieved and the CTA penalty imposed
    /// on compute kernels it overlaps. If `blocking` is true the collective
    /// also occupies the participants' *compute* lanes (sequential-launch
    /// frameworks like single-stream NeMo execution).
    #[allow(clippy::too_many_arguments)]
    pub fn collective(
        &mut self,
        group: &[usize],
        kind: CollectiveKind,
        payload_bytes: f64,
        deps: &[OpHandle],
        policy: CommCtaPolicy,
        blocking: bool,
        label: impl Into<String>,
    ) -> OpHandle {
        assert!(!group.is_empty(), "collective over empty group");
        let mut start = self.deps_ready(deps);
        for &g in group {
            start = start.max(self.comm_free[g]);
            if blocking {
                start = start.max(self.compute_free[g]);
            }
        }
        let base = self.collective_time(group, kind, payload_bytes);
        let dur = if payload_bytes > 0.0 && group.len() > 1 {
            base / policy.bandwidth_frac.max(1e-6)
        } else {
            base
        };
        let degrade = self.faults.link_factor(group, start);
        let dur = self.perturb(dur, degrade);
        let end = start + dur;
        for &g in group {
            self.comm_free[g] = end;
            if blocking {
                self.compute_free[g] = end;
            } else if policy.compute_penalty > 0.0 && end > start {
                self.comm_intervals[g].push((start, end, policy.compute_penalty));
            }
        }
        self.ops.push(OpRecord {
            start,
            end,
            devices: group.to_vec(),
            lane: LaneKind::Comm,
            kind: OpKind::Collective,
            deps: deps.iter().map(|d| d.0).collect(),
            utilization: 0.0,
            flops: 0.0,
            comm_bytes: payload_bytes,
            compute_penalty: if blocking {
                0.0
            } else {
                policy.compute_penalty
            },
            label: label.into(),
        });
        OpHandle(self.ops.len() - 1)
    }

    /// Submits a point-to-point transfer from `src` to `dst` (pipeline
    /// activation/gradient sends).
    ///
    /// P2P copies ride dedicated copy engines (DMA), so they serialize with
    /// neither compute kernels nor collectives: the transfer starts as soon
    /// as its dependencies complete. (Lane-FIFO semantics would introduce
    /// artificial head-of-line blocking, since transfers are submitted in
    /// issue order, not time order.)
    pub fn p2p(
        &mut self,
        src: usize,
        dst: usize,
        bytes: f64,
        deps: &[OpHandle],
        label: impl Into<String>,
    ) -> OpHandle {
        let link = self.cluster.link_for(&[src, dst]).clone();
        let start = self.deps_ready(deps);
        let healthy = link.p2p_time(bytes);
        let degrade = self.faults.link_factor(&[src, dst], start);
        let end = start + self.perturb(healthy, degrade);
        self.ops.push(OpRecord {
            start,
            end,
            devices: vec![src, dst],
            lane: LaneKind::Comm,
            kind: OpKind::P2p,
            deps: deps.iter().map(|d| d.0).collect(),
            utilization: 0.0,
            flops: 0.0,
            comm_bytes: bytes,
            compute_penalty: 0.0,
            label: label.into(),
        });
        OpHandle(self.ops.len() - 1)
    }

    /// A zero-duration synchronization point joining `deps`.
    pub fn join(&mut self, deps: &[OpHandle], label: impl Into<String>) -> OpHandle {
        let t = self.deps_ready(deps);
        self.ops.push(OpRecord {
            start: t,
            end: t,
            devices: vec![],
            lane: LaneKind::Compute,
            kind: OpKind::Join,
            deps: deps.iter().map(|d| d.0).collect(),
            utilization: 0.0,
            flops: 0.0,
            comm_bytes: 0.0,
            compute_penalty: 0.0,
            label: label.into(),
        });
        OpHandle(self.ops.len() - 1)
    }

    /// Allocates `bytes` on `dev`, failing with [`OomError`] past capacity.
    pub fn alloc(&mut self, dev: usize, bytes: u64) -> Result<(), OomError> {
        let cap = self.cluster.gpus[dev].mem_capacity;
        let led = &mut self.mem[dev];
        if led.in_use + bytes > cap {
            return Err(OomError {
                device: dev,
                requested: bytes,
                in_use: led.in_use,
                capacity: cap,
            });
        }
        led.in_use += bytes;
        led.peak = led.peak.max(led.in_use);
        Ok(())
    }

    /// Releases `bytes` on `dev` (saturating).
    pub fn free(&mut self, dev: usize, bytes: u64) {
        let led = &mut self.mem[dev];
        led.in_use = led.in_use.saturating_sub(bytes);
    }

    /// Peak memory ever in use on `dev`.
    pub fn peak_mem(&self, dev: usize) -> u64 {
        self.mem[dev].peak
    }

    /// Current memory in use on `dev`.
    pub fn mem_in_use(&self, dev: usize) -> u64 {
        self.mem[dev].in_use
    }

    /// Completion time of an op.
    pub fn end_of(&self, h: OpHandle) -> f64 {
        self.ops[h.0].end
    }

    /// Latest completion time across all ops (makespan).
    pub fn finish_time(&self) -> f64 {
        self.ops.iter().map(|o| o.end).fold(0.0, f64::max)
    }

    /// All op records.
    pub fn ops(&self) -> &[OpRecord] {
        &self.ops
    }

    /// Earliest free time of a device's compute lane.
    pub fn compute_free_at(&self, dev: usize) -> f64 {
        self.compute_free[dev]
    }
}

/// Collective operation kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CollectiveKind {
    /// All-reduce (sum).
    AllReduce,
    /// All-gather.
    AllGather,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{GpuSpec, LinkSpec};

    fn cluster(n: usize) -> Cluster {
        Cluster::single_node(GpuSpec::a40(), n, LinkSpec::nvlink_a40())
    }

    #[test]
    fn sequential_ops_on_one_lane_do_not_overlap() {
        let c = cluster(1);
        let mut t = Timeline::new(&c);
        let a = t.compute(0, Work::tensor(1e9, 1e6), &[], "a");
        let b = t.compute(0, Work::tensor(1e9, 1e6), &[], "b");
        assert!(t.ops()[b.0].start >= t.end_of(a));
    }

    #[test]
    fn dependency_delays_start() {
        let c = cluster(2);
        let mut t = Timeline::new(&c);
        let a = t.compute(0, Work::tensor(50e9, 1e6), &[], "big-on-0");
        let b = t.compute(1, Work::tensor(1e6, 1e3), &[a], "dependent-on-1");
        assert!((t.ops()[b.0].start - t.end_of(a)).abs() < 1e-12);
    }

    #[test]
    fn independent_devices_run_in_parallel() {
        let c = cluster(2);
        let mut t = Timeline::new(&c);
        let a = t.compute(0, Work::tensor(50e9, 1e6), &[], "on-0");
        let b = t.compute(1, Work::tensor(50e9, 1e6), &[], "on-1");
        assert_eq!(t.ops()[a.0].start, 0.0);
        assert_eq!(t.ops()[b.0].start, 0.0);
    }

    #[test]
    fn collective_waits_for_all_participants() {
        let c = cluster(2);
        let mut t = Timeline::new(&c);
        let slow = t.compute(0, Work::tensor(100e9, 1e6), &[], "slow");
        let ar = t.collective(
            &[0, 1],
            CollectiveKind::AllReduce,
            8e6,
            &[slow],
            CommCtaPolicy::sequential(),
            false,
            "ar",
        );
        assert!((t.ops()[ar.0].start - t.end_of(slow)).abs() < 1e-12);
    }

    #[test]
    fn non_blocking_collective_overlaps_compute() {
        let c = cluster(2);
        let mut t = Timeline::new(&c);
        let ar = t.collective(
            &[0, 1],
            CollectiveKind::AllReduce,
            50e6,
            &[],
            CommCtaPolicy::for_link(&LinkSpec::nvlink_a40(), false),
            false,
            "ar",
        );
        let comp = t.compute(0, Work::tensor(30e9, 1e6), &[], "overlapped");
        assert_eq!(t.ops()[comp.0].start, 0.0, "compute lane stays free");
        let _ = ar;
    }

    #[test]
    fn blocking_collective_serializes_with_compute() {
        let c = cluster(2);
        let mut t = Timeline::new(&c);
        let ar = t.collective(
            &[0, 1],
            CollectiveKind::AllReduce,
            50e6,
            &[],
            CommCtaPolicy::sequential(),
            true,
            "ar",
        );
        let comp = t.compute(0, Work::tensor(30e9, 1e6), &[], "after");
        assert!(t.ops()[comp.0].start >= t.end_of(ar));
    }

    #[test]
    fn overlapped_compute_is_stretched_by_cta_contention() {
        let c = cluster(2);
        // Same work with and without an overlapping comm kernel.
        let mut free = Timeline::new(&c);
        let comp = free.compute(0, Work::tensor(30e9, 1e6), &[], "free");
        let dur_free = free.end_of(comp) - free.ops()[comp.0].start;

        let mut contended = Timeline::new(&c);
        contended.collective(
            &[0, 1],
            CollectiveKind::AllReduce,
            200e6,
            &[],
            CommCtaPolicy::for_link(&LinkSpec::nvlink_a40(), true),
            false,
            "big-ar",
        );
        let comp2 = contended.compute(0, Work::tensor(30e9, 1e6), &[], "contended");
        let dur_cont = contended.end_of(comp2) - contended.ops()[comp2.0].start;
        assert!(dur_cont > dur_free * 1.05, "{dur_cont} vs {dur_free}");
    }

    #[test]
    fn memory_ledger_tracks_peak_and_oom() {
        let c = cluster(1);
        let mut t = Timeline::new(&c);
        let cap = c.gpus[0].mem_capacity;
        t.alloc(0, cap / 2).expect("first alloc fits");
        t.alloc(0, cap / 4).expect("second alloc fits");
        t.free(0, cap / 4);
        assert_eq!(t.peak_mem(0), cap / 2 + cap / 4);
        assert_eq!(t.mem_in_use(0), cap / 2);
        let err = t.alloc(0, cap).expect_err("over-capacity alloc must fail");
        assert_eq!(err.device, 0);
    }

    #[test]
    fn p2p_rides_copy_engines_not_lanes() {
        let c = cluster(2);
        let mut t = Timeline::new(&c);
        let s = t.p2p(0, 1, 8e6, &[], "send");
        // An independent transfer is not serialized behind the first...
        let r = t.p2p(1, 0, 8e6, &[], "send-back");
        assert_eq!(t.ops()[r.0].start, 0.0);
        // ...but a dependent one waits for its producer.
        let dep = t.p2p(0, 1, 8e6, &[s], "dependent");
        assert!((t.ops()[dep.0].start - t.end_of(s)).abs() < 1e-12);
    }

    #[test]
    fn inter_node_groups_use_the_slow_link() {
        let c = Cluster::multi_node(
            GpuSpec::a40(),
            2,
            2,
            LinkSpec::nvlink_a40(),
            LinkSpec::ib100(),
        );
        assert_eq!(c.link_for(&[0, 1]).name, "NVLink3");
        assert_eq!(c.link_for(&[1, 2]).name, "IB-100G");
    }

    #[test]
    fn join_is_zero_duration() {
        let c = cluster(1);
        let mut t = Timeline::new(&c);
        let a = t.compute(0, Work::tensor(1e9, 1e6), &[], "a");
        let j = t.join(&[a], "sync");
        assert_eq!(t.end_of(j), t.end_of(a));
    }

    #[test]
    fn slowdown_window_stretches_ops_inside_it_only() {
        let c = cluster(1);
        let mut healthy = Timeline::new(&c);
        let h = healthy.compute(0, Work::tensor(10e9, 1e6), &[], "h");
        let base_dur = healthy.end_of(h) - healthy.ops()[h.0].start;

        let mut faulty = Timeline::new(&c);
        faulty.set_faults(FaultWindows {
            compute_slow: vec![FaultWindow {
                device: Some(0),
                start: 0.0,
                end: base_dur * 1.5,
                factor: 2.0,
            }],
            link_degrade: vec![],
        });
        let a = faulty.compute(0, Work::tensor(10e9, 1e6), &[], "slow");
        let dur_a = faulty.end_of(a) - faulty.ops()[a.0].start;
        assert!(
            (dur_a - 2.0 * base_dur).abs() < 1e-9,
            "op starting inside the window is 2x: {dur_a} vs {base_dur}"
        );
        // The next op starts after the window closes and is untouched.
        let b = faulty.compute(0, Work::tensor(10e9, 1e6), &[], "fast");
        let dur_b = faulty.end_of(b) - faulty.ops()[b.0].start;
        assert!((dur_b - base_dur).abs() < 1e-9, "{dur_b} vs {base_dur}");
        assert_eq!(faulty.perturbed_ops(), 1);
        assert!((faulty.fault_delay_seconds() - base_dur).abs() < 1e-9);
    }

    #[test]
    fn cluster_wide_slowdown_applies_to_every_device() {
        let c = cluster(2);
        let mut t = Timeline::new(&c);
        t.set_faults(FaultWindows {
            compute_slow: vec![FaultWindow {
                device: None,
                start: 0.0,
                end: 1e9,
                factor: 3.0,
            }],
            link_degrade: vec![],
        });
        t.compute(0, Work::tensor(10e9, 1e6), &[], "a");
        t.compute(1, Work::tensor(10e9, 1e6), &[], "b");
        assert_eq!(t.perturbed_ops(), 2);
    }

    #[test]
    fn link_degradation_stretches_collectives_and_p2p() {
        let c = cluster(2);
        let mut healthy = Timeline::new(&c);
        let ar = healthy.collective(
            &[0, 1],
            CollectiveKind::AllReduce,
            100e6,
            &[],
            CommCtaPolicy::sequential(),
            false,
            "ar",
        );
        let base_ar = healthy.end_of(ar);
        let p = healthy.p2p(0, 1, 50e6, &[], "p");
        let base_p2p = healthy.end_of(p) - healthy.ops()[p.0].start;

        let mut faulty = Timeline::new(&c);
        faulty.set_faults(FaultWindows {
            compute_slow: vec![],
            link_degrade: vec![FaultWindow {
                device: Some(1),
                start: 0.0,
                end: 1e9,
                factor: 4.0,
            }],
        });
        let ar2 = faulty.collective(
            &[0, 1],
            CollectiveKind::AllReduce,
            100e6,
            &[],
            CommCtaPolicy::sequential(),
            false,
            "ar",
        );
        assert!(
            (faulty.end_of(ar2) - 4.0 * base_ar).abs() < 1e-9,
            "collective touching the degraded device is 4x: {} vs {}",
            faulty.end_of(ar2),
            base_ar
        );
        let p2 = faulty.p2p(0, 1, 50e6, &[], "p");
        let dur_p2 = faulty.end_of(p2) - faulty.ops()[p2.0].start;
        assert!((dur_p2 - 4.0 * base_p2p).abs() < 1e-9);
        // A transfer not touching device 1 is unaffected — but in a 2-GPU
        // cluster every pair touches it, so check the factor floor instead.
        assert!(faulty.fault_delay_seconds() > 0.0);
    }

    #[test]
    fn empty_fault_windows_leave_the_timeline_bit_identical() {
        let c = cluster(2);
        let mut plain = Timeline::new(&c);
        let mut hooked = Timeline::new(&c);
        hooked.set_faults(FaultWindows::default());
        for t in [&mut plain, &mut hooked] {
            let a = t.compute(0, Work::tensor(5e9, 1e6), &[], "a");
            t.collective(
                &[0, 1],
                CollectiveKind::AllReduce,
                10e6,
                &[a],
                CommCtaPolicy::sequential(),
                false,
                "ar",
            );
        }
        assert_eq!(plain.finish_time(), hooked.finish_time());
        assert_eq!(hooked.perturbed_ops(), 0);
        assert_eq!(hooked.fault_delay_seconds(), 0.0);
    }
}
