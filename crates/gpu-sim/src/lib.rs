//! # mux-gpu-sim
//!
//! A deterministic discrete-event simulator for multi-GPU machines: roofline
//! operator latencies with saturating efficiency ramps, two execution lanes
//! per device (compute + communication streams), ring collectives, CTA
//! contention between overlapped kernels, NVLink-SHARP offload, per-device
//! memory ledgers with OOM, and utilization/MFU metrics.
//!
//! This crate is the hardware substitution for the paper's A40/H100
//! testbeds (see DESIGN.md): every scheduling phenomenon MuxTune exploits —
//! stalls, bubbles, saturation, diminishing batching returns, memory
//! ceilings — is a function of exactly the quantities modeled here.

pub mod chrome_trace;
pub mod metrics;
pub mod render;
pub mod serving;
pub mod spec;
pub mod timeline;

pub use chrome_trace::{
    chrome_trace, stall_breakdown, stall_events, StallBreakdown, StallCause, StallEvent,
};
pub use metrics::{
    device_metrics, fault_impact, mean_utilization, utilization_trace, DeviceMetrics, FaultImpact,
    UtilizationTrace,
};
pub use render::{render_summary, render_timeline};
pub use serving::PhaseModel;
pub use spec::{CommCtaPolicy, GpuSpec, LinkSpec, Work, WorkClass};
pub use timeline::{
    Cluster, CollectiveKind, FaultWindow, FaultWindows, LaneKind, OomError, OpHandle, OpKind,
    OpRecord, Timeline,
};
