//! Hardware specifications: GPUs and interconnects.
//!
//! The latency model is a roofline with a saturating efficiency ramp:
//! an operator with `f` FLOPs and `b` bytes of traffic takes
//!
//! ```text
//! t = launch + max( (f + F_half) / peak_flops,  (b + B_half) / mem_bw )
//! ```
//!
//! which is equivalent to `t = launch + f / (peak · eff(f))` with
//! `eff(f) = f / (f + F_half)`. `F_half` is the work at which the GPU
//! reaches 50 % efficiency — the single knob that reproduces every
//! underutilization effect the paper measures: small PEFT-native operators
//! run far below peak (§2.2, Fig 3b), batching shows diminishing returns
//! past saturation (Fig 9b), and faster GPUs (larger `F_half` in absolute
//! terms) widen the PEFT-vs-pretrain MFU gap (§5.2, Fig 15).

/// Execution-resource class of an operator, selecting which efficiency ramp
/// applies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WorkClass {
    /// Tensor-core GEMM-like work: ramps with `flops_half`.
    TensorCore,
    /// Vector/elementwise work (layernorm, GeLU, softmax): bandwidth-bound,
    /// ramps with `bytes_half`.
    Vector,
}

/// A unit of device work.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Work {
    /// Floating-point operations.
    pub flops: f64,
    /// Memory traffic in bytes.
    pub bytes: f64,
    /// Resource class.
    pub class: WorkClass,
}

impl Work {
    /// Tensor-core work.
    pub fn tensor(flops: f64, bytes: f64) -> Self {
        Self {
            flops,
            bytes,
            class: WorkClass::TensorCore,
        }
    }

    /// Vector work.
    pub fn vector(flops: f64, bytes: f64) -> Self {
        Self {
            flops,
            bytes,
            class: WorkClass::Vector,
        }
    }
}

/// A GPU model.
///
/// ```
/// use mux_gpu_sim::spec::{GpuSpec, Work};
/// let a40 = GpuSpec::a40();
/// // Small PEFT-native ops run far below peak efficiency (§2.2):
/// let lora = Work::tensor(0.5e9, 9e6);
/// let backbone = Work::tensor(34e9, 100e6);
/// assert!(a40.op_utilization(lora) < 0.1);
/// assert!(a40.op_utilization(backbone) > 0.7);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct GpuSpec {
    /// Marketing name.
    pub name: String,
    /// Dense fp16/bf16 tensor-core peak, FLOP/s.
    pub peak_flops: f64,
    /// HBM/GDDR bandwidth, bytes/s.
    pub mem_bw: f64,
    /// Device memory, bytes.
    pub mem_capacity: u64,
    /// FLOPs at which tensor-core efficiency reaches 50 %.
    pub flops_half: f64,
    /// Bytes at which bandwidth efficiency reaches 50 %.
    pub bytes_half: f64,
    /// Kernel-launch and scheduling overhead per operator, seconds.
    pub launch_overhead: f64,
    /// Idle board power, watts.
    pub idle_watts: f64,
    /// Board power limit at full load, watts.
    pub peak_watts: f64,
}

impl GpuSpec {
    /// NVIDIA A40 (48 GB, GDDR6): the paper's Testbed-A/B GPU.
    pub fn a40() -> Self {
        Self {
            name: "A40".into(),
            peak_flops: 74.8e12,
            mem_bw: 696e9,
            mem_capacity: 48 * GIB,
            flops_half: 10.0e9,
            bytes_half: 2.0e6,
            launch_overhead: 4.5e-6,
            idle_watts: 60.0,
            peak_watts: 300.0,
        }
    }

    /// NVIDIA H100 SXM (80 GB, HBM3): the paper's Testbed-C GPU.
    pub fn h100() -> Self {
        Self {
            name: "H100".into(),
            peak_flops: 989.0e12,
            mem_bw: 3.35e12,
            mem_capacity: 80 * GIB,
            // The ramp scales super-linearly with peak: more SMs and wider
            // tensor cores need much more parallel work to fill — this is
            // the §2.2 observation that underutilization is *exacerbated*
            // by higher-end hardware.
            flops_half: 180.0e9,
            bytes_half: 8.0e6,
            launch_overhead: 4.0e-6,
            idle_watts: 90.0,
            peak_watts: 700.0,
        }
    }

    /// NVIDIA V100 SXM2 (32 GB).
    pub fn v100() -> Self {
        Self {
            name: "V100".into(),
            peak_flops: 125.0e12,
            mem_bw: 900e9,
            mem_capacity: 32 * GIB,
            flops_half: 14.0e9,
            bytes_half: 2.5e6,
            launch_overhead: 5.0e-6,
            idle_watts: 55.0,
            peak_watts: 300.0,
        }
    }

    /// NVIDIA Quadro RTX 6000 (24 GB).
    pub fn rtx6000() -> Self {
        Self {
            name: "RTX6000".into(),
            peak_flops: 130.5e12,
            mem_bw: 672e9,
            mem_capacity: 24 * GIB,
            flops_half: 16.0e9,
            bytes_half: 2.0e6,
            launch_overhead: 5.0e-6,
            idle_watts: 50.0,
            peak_watts: 260.0,
        }
    }

    /// NVIDIA A100 SXM (80 GB, HBM2e).
    pub fn a100() -> Self {
        Self {
            name: "A100".into(),
            peak_flops: 312.0e12,
            mem_bw: 2.03e12,
            mem_capacity: 80 * GIB,
            flops_half: 50.0e9,
            bytes_half: 5.0e6,
            launch_overhead: 4.5e-6,
            idle_watts: 80.0,
            peak_watts: 400.0,
        }
    }

    /// Energy drawn over a window: idle power for the whole window plus
    /// dynamic power proportional to utilization-weighted busy time (the
    /// §6 energy-efficiency extension — stalls burn idle power for
    /// nothing, so reducing them raises tokens/joule).
    pub fn energy_joules(&self, window: f64, busy_fraction: f64, avg_utilization: f64) -> f64 {
        assert!(window >= 0.0);
        let dynamic = (self.peak_watts - self.idle_watts)
            * window
            * (0.35 * busy_fraction + 0.65 * avg_utilization);
        self.idle_watts * window + dynamic
    }

    /// Tensor-core efficiency at `f` FLOPs of work.
    pub fn flops_eff(&self, f: f64) -> f64 {
        if f <= 0.0 {
            0.0
        } else {
            f / (f + self.flops_half)
        }
    }

    /// Bandwidth efficiency at `b` bytes of traffic.
    pub fn bytes_eff(&self, b: f64) -> f64 {
        if b <= 0.0 {
            0.0
        } else {
            b / (b + self.bytes_half)
        }
    }

    /// Latency of one operator, with an optional compute-rate derating in
    /// `(0, 1]` (CTA contention from an overlapping communication kernel).
    pub fn compute_time(&self, work: Work, rate: f64) -> f64 {
        assert!(
            rate > 0.0 && rate <= 1.0,
            "rate must be in (0,1], got {rate}"
        );
        let t = match work.class {
            WorkClass::TensorCore => {
                let tf = (work.flops + self.flops_half) / self.peak_flops;
                let tb = (work.bytes + self.bytes_half) / self.mem_bw;
                tf.max(tb)
            }
            WorkClass::Vector => {
                // Vector pipes are not tensor cores: model as bandwidth-
                // bound with the byte ramp, floor-ed by vector FLOPs at
                // ~1/16 of tensor peak.
                let tb = (work.bytes + self.bytes_half) / self.mem_bw;
                let tf = work.flops / (self.peak_flops / 16.0);
                tf.max(tb)
            }
        };
        self.launch_overhead + t / rate
    }

    /// The achieved-utilization proxy the paper plots as "GPU utilization":
    /// what fraction of peak the operator sustains while resident.
    pub fn op_utilization(&self, work: Work) -> f64 {
        match work.class {
            WorkClass::TensorCore => self.flops_eff(work.flops),
            WorkClass::Vector => self.bytes_eff(work.bytes),
        }
    }
}

const GIB: u64 = 1 << 30;

/// An interconnect between GPUs.
#[derive(Debug, Clone, PartialEq)]
pub struct LinkSpec {
    /// Name, e.g. `"NVLink3"`.
    pub name: String,
    /// Per-direction bandwidth, bytes/s.
    pub bandwidth: f64,
    /// Per-message base latency, seconds.
    pub latency: f64,
    /// Whether in-switch reduction (NVLink SHARP) is available, allowing
    /// near-peak collectives with a tiny CTA budget (§3.4.3).
    pub sharp: bool,
}

impl LinkSpec {
    /// NVLink on A40-class nodes. A40s pair via NVLink *bridges*
    /// (112.5 GB/s bidirectional = ~56 GB/s per direction), and a 4-GPU
    /// ring must cross between pairs over PCIe: the effective ring
    /// bandwidth is bottlenecked well below the headline figure — this is
    /// why the paper's Testbed-A shows such pronounced communication
    /// stalls (Figs 3d, 18).
    pub fn nvlink_a40() -> Self {
        Self {
            name: "NVLink3".into(),
            bandwidth: 38.0e9,
            latency: 3.0e-6,
            sharp: false,
        }
    }

    /// NVLink4 + NVSwitch on H100 nodes, 450 GB/s per direction, SHARP.
    pub fn nvlink_h100() -> Self {
        Self {
            name: "NVLink4".into(),
            bandwidth: 450.0e9,
            latency: 2.0e-6,
            sharp: true,
        }
    }

    /// PCIe 4.0 x16, ~25 GB/s effective.
    pub fn pcie4() -> Self {
        Self {
            name: "PCIe4".into(),
            bandwidth: 25.0e9,
            latency: 5.0e-6,
            sharp: false,
        }
    }

    /// 100 Gb/s InfiniBand (ConnectX-5, Testbed-B inter-node).
    pub fn ib100() -> Self {
        Self {
            name: "IB-100G".into(),
            bandwidth: 12.0e9,
            latency: 8.0e-6,
            sharp: false,
        }
    }

    /// Ring all-reduce time for `bytes` across `n` ranks.
    pub fn allreduce_time(&self, bytes: f64, n: usize) -> f64 {
        if n <= 1 || bytes <= 0.0 {
            return 0.0;
        }
        let steps = 2 * (n - 1);
        let volume = 2.0 * (n as f64 - 1.0) / n as f64 * bytes;
        steps as f64 * self.latency + volume / self.bandwidth
    }

    /// Ring all-gather time for `bytes` output across `n` ranks.
    pub fn allgather_time(&self, bytes: f64, n: usize) -> f64 {
        if n <= 1 || bytes <= 0.0 {
            return 0.0;
        }
        let steps = n - 1;
        let volume = (n as f64 - 1.0) / n as f64 * bytes;
        steps as f64 * self.latency + volume / self.bandwidth
    }

    /// Point-to-point transfer time for `bytes`.
    pub fn p2p_time(&self, bytes: f64) -> f64 {
        if bytes <= 0.0 {
            return 0.0;
        }
        self.latency + bytes / self.bandwidth
    }
}

/// Communication-kernel CTA policy (§3.4.3): how many SM resources the
/// collective steals from overlapped compute, and what bandwidth it reaches.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CommCtaPolicy {
    /// Fraction of compute throughput lost while a collective overlaps.
    pub compute_penalty: f64,
    /// Fraction of link bandwidth the collective achieves.
    pub bandwidth_frac: f64,
}

impl CommCtaPolicy {
    /// Policy for a link: with SHARP, reductions ride the switch and 8 CTAs
    /// suffice (tiny compute penalty, near-peak bandwidth). Without SHARP
    /// the kernel must either steal a large CTA share or lose bandwidth;
    /// `generous_ctas` selects which side of the tradeoff.
    pub fn for_link(link: &LinkSpec, generous_ctas: bool) -> Self {
        if link.sharp {
            Self {
                compute_penalty: 0.04,
                bandwidth_frac: 0.97,
            }
        } else if generous_ctas {
            Self {
                compute_penalty: 0.25,
                bandwidth_frac: 0.92,
            }
        } else {
            Self {
                compute_penalty: 0.08,
                bandwidth_frac: 0.55,
            }
        }
    }

    /// Policy when communication does not overlap compute at all
    /// (sequential launch): full bandwidth, no compute penalty.
    pub fn sequential() -> Self {
        Self {
            compute_penalty: 0.0,
            bandwidth_frac: 1.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn efficiency_ramps_to_one() {
        let g = GpuSpec::a40();
        assert!(g.flops_eff(1e6) < 0.01);
        assert!((g.flops_eff(g.flops_half) - 0.5).abs() < 1e-9);
        assert!(g.flops_eff(1e13) > 0.99);
    }

    #[test]
    fn small_lora_op_underutilizes_vs_pretrain_gemm() {
        // Fig 3b: [1024,4096]x[4096,64] LoRA op vs [1024,4096]x[4096,4096].
        let g = GpuSpec::a40();
        let lora = Work::tensor(2.0 * 1024.0 * 4096.0 * 64.0, 10e6);
        let pre = Work::tensor(2.0 * 1024.0 * 4096.0 * 4096.0, 100e6);
        let u_lora = g.op_utilization(lora);
        let u_pre = g.op_utilization(pre);
        assert!(
            u_pre - u_lora > 0.3,
            "utilization gap {u_pre} vs {u_lora} (paper: up to 40.9%)"
        );
        let t_lora = g.compute_time(lora, 1.0);
        let t_pre = g.compute_time(pre, 1.0);
        let ratio = t_lora / t_pre;
        // Paper: 0.46 ms vs 1.80 ms => ratio ~0.26 despite 64x fewer FLOPs.
        assert!(ratio > 0.15 && ratio < 0.45, "latency ratio {ratio}");
    }

    #[test]
    fn batching_has_diminishing_returns_past_saturation() {
        // Fig 9b: 8x tokens should give far less than 8x throughput.
        let g = GpuSpec::a40();
        let one = Work::tensor(34.4e9, 42e6);
        let eight = Work::tensor(8.0 * 34.4e9, 8.0 * 42e6);
        let speedup = 8.0 * g.compute_time(one, 1.0) / g.compute_time(eight, 1.0);
        assert!(speedup < 1.5, "throughput gain {speedup} (paper: ~1.12x)");
        assert!(speedup > 1.0);
    }

    #[test]
    fn h100_widen_underutilization() {
        // §2.2: the PEFT/pretrain efficiency gap grows on faster GPUs.
        let lora_f = 2.0 * 1024.0 * 4096.0 * 64.0;
        let a40 = GpuSpec::a40();
        let h100 = GpuSpec::h100();
        assert!(h100.flops_eff(lora_f) < a40.flops_eff(lora_f));
    }

    #[test]
    fn allreduce_scales_with_ranks_and_bytes() {
        let l = LinkSpec::nvlink_a40();
        let t2 = l.allreduce_time(8.4e6, 2);
        let t4 = l.allreduce_time(8.4e6, 4);
        assert!(t4 > t2, "more ranks move more total volume");
        assert_eq!(l.allreduce_time(0.0, 4), 0.0);
        assert_eq!(l.allreduce_time(1e6, 1), 0.0);
    }

    #[test]
    fn sharp_policy_dominates_non_sharp_overlap() {
        let nv = CommCtaPolicy::for_link(&LinkSpec::nvlink_h100(), false);
        let plain_fast = CommCtaPolicy::for_link(&LinkSpec::nvlink_a40(), true);
        let plain_small = CommCtaPolicy::for_link(&LinkSpec::nvlink_a40(), false);
        // SHARP: both low penalty AND high bandwidth. Non-SHARP must choose.
        assert!(nv.compute_penalty < plain_fast.compute_penalty);
        assert!(nv.bandwidth_frac > plain_small.bandwidth_frac);
        assert!(plain_fast.bandwidth_frac > plain_small.bandwidth_frac);
        assert!(plain_small.compute_penalty < plain_fast.compute_penalty);
    }

    #[test]
    fn vector_ops_are_bandwidth_bound() {
        let g = GpuSpec::a40();
        // A layernorm over 1024 x 4096 fp16: tiny flops, ~16.8 MB traffic.
        let w = Work::vector(8.0 * 1024.0 * 4096.0, 2.0 * 1024.0 * 4096.0 * 2.0);
        let t = g.compute_time(w, 1.0);
        let pure_bw = (w.bytes + g.bytes_half) / g.mem_bw;
        assert!((t - g.launch_overhead - pure_bw).abs() / t < 0.05);
    }

    #[test]
    fn energy_grows_with_utilization_and_window() {
        let g = GpuSpec::a40();
        let idle_hour = g.energy_joules(3600.0, 0.0, 0.0);
        assert!((idle_hour - 60.0 * 3600.0).abs() < 1.0, "pure idle draw");
        let busy_hour = g.energy_joules(3600.0, 1.0, 0.9);
        assert!(busy_hour > idle_hour * 3.0, "load must dominate idle");
        assert!(
            busy_hour <= g.peak_watts * 3600.0 * 1.01,
            "never above the power limit"
        );
        // Same work done faster costs less total energy (the §6 argument).
        let slow = g.energy_joules(10.0, 0.6, 0.4);
        let fast = g.energy_joules(6.0, 1.0, 0.7);
        assert!(fast < slow, "fast {fast} vs slow {slow}");
    }

    #[test]
    fn gpu_lineup_is_ordered_by_peak() {
        let peaks = [
            GpuSpec::a40().peak_flops,
            GpuSpec::v100().peak_flops,
            GpuSpec::rtx6000().peak_flops,
            GpuSpec::a100().peak_flops,
            GpuSpec::h100().peak_flops,
        ];
        assert!(peaks.windows(2).all(|w| w[0] < w[1]));
        assert!(GpuSpec::a100().mem_capacity == GpuSpec::h100().mem_capacity);
    }

    #[test]
    fn contention_rate_stretches_latency() {
        let g = GpuSpec::a40();
        let w = Work::tensor(34e9, 40e6);
        let t_free = g.compute_time(w, 1.0);
        let t_contended = g.compute_time(w, 0.75);
        assert!(t_contended > t_free * 1.25);
    }
}
