//! ASCII timeline rendering — the textual equivalent of the paper's
//! Nsight-style utilization plots (Figs 3d, 18).
//!
//! Each device gets two swimlanes: `SM` (compute, shaded by achieved
//! utilization) and `NV` (communication occupancy).

use crate::metrics::utilization_trace;
use crate::timeline::Timeline;

/// Shade characters from idle to saturated.
const SHADES: [char; 5] = [' ', '.', ':', 'x', '#'];

fn shade(v: f64) -> char {
    let i = ((v * SHADES.len() as f64).floor() as usize).min(SHADES.len() - 1);
    SHADES[i]
}

/// Renders `buckets` columns of per-device compute/comm lanes over
/// `[0, window]` seconds.
pub fn render_timeline(tl: &Timeline<'_>, window: f64, buckets: usize) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "time: 0 {} {:.2} ms  (shade: '{}'=idle .. '{}'=saturated)\n",
        "-".repeat(buckets.saturating_sub(12)),
        window * 1e3,
        SHADES[0],
        SHADES[SHADES.len() - 1]
    ));
    for dev in 0..tl.cluster().num_gpus() {
        let tr = utilization_trace(tl, dev, window, buckets);
        let sm: String = tr.compute.iter().map(|&v| shade(v)).collect();
        let nv: String = tr.comm.iter().map(|&v| shade(v)).collect();
        out.push_str(&format!("GPU{dev} SM |{sm}|\n"));
        out.push_str(&format!("GPU{dev} NV |{nv}|\n"));
    }
    out
}

/// One-line per-device summary (busy %, achieved util %, link %).
pub fn render_summary(tl: &Timeline<'_>, window: f64) -> String {
    let metrics = crate::metrics::device_metrics(tl, window);
    metrics
        .iter()
        .map(|m| {
            format!(
                "GPU{}: busy {:5.1}%  util {:5.1}%  link {:5.1}%",
                m.device,
                m.busy_fraction * 100.0,
                m.avg_utilization * 100.0,
                m.link_busy_fraction * 100.0
            )
        })
        .collect::<Vec<_>>()
        .join("\n")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{CommCtaPolicy, GpuSpec, LinkSpec, Work};
    use crate::timeline::{Cluster, CollectiveKind, Timeline};

    #[test]
    fn rendering_shows_busy_and_idle_phases() {
        let c = Cluster::single_node(GpuSpec::a40(), 2, LinkSpec::nvlink_a40());
        let mut tl = Timeline::new(&c);
        let a = tl.compute(0, Work::tensor(200e9, 100e6), &[], "big");
        tl.collective(
            &[0, 1],
            CollectiveKind::AllReduce,
            50e6,
            &[a],
            CommCtaPolicy::sequential(),
            false,
            "ar",
        );
        let s = render_timeline(&tl, tl.finish_time(), 32);
        assert!(s.contains("GPU0 SM |"));
        assert!(s.contains("GPU1 NV |"));
        // GPU0's SM lane must contain saturated cells; GPU1's SM lane must
        // be fully idle (it only communicates).
        let gpu0_sm = s.lines().find(|l| l.starts_with("GPU0 SM")).expect("lane");
        assert!(gpu0_sm.contains('#') || gpu0_sm.contains('x'), "{gpu0_sm}");
        let gpu1_sm = s.lines().find(|l| l.starts_with("GPU1 SM")).expect("lane");
        assert!(!gpu1_sm.contains('#'), "{gpu1_sm}");
    }

    #[test]
    fn summary_reports_all_devices() {
        let c = Cluster::single_node(GpuSpec::a40(), 3, LinkSpec::nvlink_a40());
        let mut tl = Timeline::new(&c);
        tl.compute(1, Work::tensor(50e9, 10e6), &[], "x");
        let s = render_summary(&tl, tl.finish_time());
        assert_eq!(s.lines().count(), 3);
        assert!(s.contains("GPU1"));
    }

    #[test]
    fn shade_is_monotone() {
        let mut prev = ' ';
        for i in 0..=10 {
            let c = shade(i as f64 / 10.0);
            assert!(SHADES.iter().position(|&x| x == c) >= SHADES.iter().position(|&x| x == prev));
            prev = c;
        }
    }
}
