//! Chrome/Perfetto trace export for a simulated [`Timeline`].
//!
//! Serializes the operator records of a finished run to the Chrome
//! trace-event JSON format (load in `chrome://tracing` or
//! <https://ui.perfetto.dev>). Each simulated device becomes a *process*
//! (`pid`), with three *threads* (streams) per device:
//!
//! | tid | stream  | contents                                   |
//! |-----|---------|--------------------------------------------|
//! | 0   | compute | compute kernels / fused subgraphs          |
//! | 1   | comm    | collectives and P2P copy-engine transfers  |
//! | 2   | stalls  | synthesized idle-gap events, by cause      |
//!
//! Stall events are not recorded by the timeline — they are *derived* here
//! from the gaps on each device's compute lane, attributed to a cause by
//! walking the gap-ending operator's dependency edges (see [`StallCause`]).
//!
//! [`Timeline`]: crate::timeline::Timeline

use crate::timeline::{OpKind, OpRecord};
use serde_json::{json, Map, Value};

/// Why a device's compute lane sat idle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StallCause {
    /// Waiting for work from another pipeline stage (blocked on a P2P
    /// activation/gradient transfer, or simply not scheduled yet —
    /// warm-up/drain bubbles of the 1F1B template).
    PipelineBubble,
    /// Waiting for a collective, or idling under one that occupies the
    /// device's communication stream.
    Comm,
    /// Waiting for a compute dependency (Algorithm-1 launch-order edges,
    /// same-stage peers in a tensor-parallel group).
    Dependency,
}

impl StallCause {
    /// Short name used as the trace event name.
    pub fn name(&self) -> &'static str {
        match self {
            StallCause::PipelineBubble => "bubble",
            StallCause::Comm => "comm",
            StallCause::Dependency => "dependency",
        }
    }
}

/// One synthesized idle interval on a device's compute lane.
#[derive(Debug, Clone, PartialEq)]
pub struct StallEvent {
    /// Device index.
    pub device: usize,
    /// Interval start, seconds.
    pub start: f64,
    /// Interval end, seconds.
    pub end: f64,
    /// Attributed cause.
    pub cause: StallCause,
}

/// Per-device stall totals (the Fig 4-style breakdown).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StallBreakdown {
    /// Device index.
    pub device: usize,
    /// Seconds lost to pipeline bubbles.
    pub bubble_seconds: f64,
    /// Seconds lost waiting on/under communication.
    pub comm_seconds: f64,
    /// Seconds lost to compute dependencies.
    pub dependency_seconds: f64,
}

impl StallBreakdown {
    /// Total stalled seconds.
    pub fn total(&self) -> f64 {
        self.bubble_seconds + self.comm_seconds + self.dependency_seconds
    }
}

const EPS: f64 = 1e-12;

/// The operator (expanding through zero-duration joins) whose completion
/// gates `ops[idx]`'s start — the one with the latest end time.
fn blocking_op(ops: &[OpRecord], idx: usize) -> Option<usize> {
    let mut visited = vec![false; ops.len()];
    let mut stack: Vec<usize> = ops[idx].deps.clone();
    let mut best: Option<usize> = None;
    while let Some(i) = stack.pop() {
        if visited[i] {
            continue;
        }
        visited[i] = true;
        if ops[i].kind == OpKind::Join {
            stack.extend_from_slice(&ops[i].deps);
        } else if best.map(|b| ops[i].end > ops[b].end).unwrap_or(true) {
            best = Some(i);
        }
    }
    best
}

fn cause_of(ops: &[OpRecord], gap_start: f64, gap_ender: usize) -> StallCause {
    match blocking_op(ops, gap_ender) {
        // The compute lane's start rule is max(lane free, deps ready), so a
        // gap means the blocker finished exactly at the gap's end. A blocker
        // that ended before the gap even began did not cause it — the op was
        // simply issued late by the pipeline template (warm-up/drain).
        None => StallCause::PipelineBubble,
        Some(b) if ops[b].end <= gap_start + EPS => StallCause::PipelineBubble,
        Some(b) => match ops[b].kind {
            OpKind::Collective => StallCause::Comm,
            // An inter-stage activation/gradient transfer: the classic
            // pipeline bubble.
            OpKind::P2p => StallCause::PipelineBubble,
            OpKind::Compute | OpKind::Join => StallCause::Dependency,
        },
    }
}

/// Derives per-device stall intervals from a finished run's op records.
///
/// For every idle gap on a device's compute lane: sub-intervals overlapped
/// by a collective on that device's comm stream are attributed to
/// [`StallCause::Comm`]; the rest take the cause of the operator that ended
/// the gap (see `cause_of`'s rules in the source).
pub fn stall_events(ops: &[OpRecord], num_devices: usize) -> Vec<StallEvent> {
    let mut out = Vec::new();
    for dev in 0..num_devices {
        // Compute-lane occupancy, in submission (= time) order per device.
        let busy: Vec<usize> = ops
            .iter()
            .enumerate()
            .filter(|(_, o)| {
                o.kind == OpKind::Compute && o.devices.contains(&dev) && o.end > o.start
            })
            .map(|(i, _)| i)
            .collect();
        // Collectives occupying this device's comm stream.
        let comm: Vec<(f64, f64)> = ops
            .iter()
            .filter(|o| o.kind == OpKind::Collective && o.devices.contains(&dev) && o.end > o.start)
            .map(|o| (o.start, o.end))
            .collect();
        let mut cursor = 0.0f64;
        for &bi in &busy {
            let gap_end = ops[bi].start;
            if gap_end > cursor + EPS {
                let fallback = cause_of(ops, cursor, bi);
                // Split the gap by overlap with comm intervals.
                let mut overlaps: Vec<(f64, f64)> = comm
                    .iter()
                    .map(|&(s, e)| (s.max(cursor), e.min(gap_end)))
                    .filter(|&(s, e)| e > s + EPS)
                    .collect();
                overlaps.sort_by(|a, b| a.0.total_cmp(&b.0));
                let mut t = cursor;
                for (s, e) in overlaps {
                    if s > t + EPS {
                        out.push(StallEvent {
                            device: dev,
                            start: t,
                            end: s,
                            cause: fallback,
                        });
                    }
                    let s = s.max(t);
                    if e > s + EPS {
                        out.push(StallEvent {
                            device: dev,
                            start: s,
                            end: e,
                            cause: StallCause::Comm,
                        });
                        t = e;
                    }
                }
                if gap_end > t + EPS {
                    out.push(StallEvent {
                        device: dev,
                        start: t,
                        end: gap_end,
                        cause: fallback,
                    });
                }
            }
            cursor = cursor.max(ops[bi].end);
        }
    }
    out
}

/// Aggregates [`stall_events`] into per-device totals.
pub fn stall_breakdown(ops: &[OpRecord], num_devices: usize) -> Vec<StallBreakdown> {
    let mut out: Vec<StallBreakdown> = (0..num_devices)
        .map(|device| StallBreakdown {
            device,
            ..StallBreakdown::default()
        })
        .collect();
    for ev in stall_events(ops, num_devices) {
        let dur = ev.end - ev.start;
        let b = &mut out[ev.device];
        match ev.cause {
            StallCause::PipelineBubble => b.bubble_seconds += dur,
            StallCause::Comm => b.comm_seconds += dur,
            StallCause::Dependency => b.dependency_seconds += dur,
        }
    }
    out
}

fn secs_to_us(s: f64) -> f64 {
    (s * 1e6 * 1000.0).round() / 1000.0 // keep ns resolution, drop float noise
}

fn complete_event(
    name: &str,
    cat: &str,
    pid: usize,
    tid: usize,
    start: f64,
    end: f64,
    args: Map,
) -> Value {
    let mut ev = Map::new();
    ev.insert("name".into(), name.into());
    ev.insert("cat".into(), cat.into());
    ev.insert("ph".into(), "X".into());
    ev.insert("ts".into(), secs_to_us(start).into());
    ev.insert("dur".into(), secs_to_us(end - start).into());
    ev.insert("pid".into(), pid.into());
    ev.insert("tid".into(), tid.into());
    if !args.is_empty() {
        ev.insert("args".into(), Value::Object(args));
    }
    Value::Object(ev)
}

fn metadata_event(name: &str, pid: usize, tid: Option<usize>, value: Value) -> Value {
    let mut ev = Map::new();
    ev.insert("name".into(), name.into());
    ev.insert("ph".into(), "M".into());
    ev.insert("pid".into(), pid.into());
    if let Some(tid) = tid {
        ev.insert("tid".into(), tid.into());
    }
    let mut args = Map::new();
    args.insert("name".into(), value);
    ev.insert("args".into(), Value::Object(args));
    Value::Object(ev)
}

/// Stream (thread) ids within each device's trace process.
pub const COMPUTE_TID: usize = 0;
/// Comm stream tid.
pub const COMM_TID: usize = 1;
/// Synthesized stall stream tid.
pub const STALL_TID: usize = 2;

/// Serializes a finished run to Chrome trace-event JSON.
///
/// `ops` are the records from [`Timeline::ops`] (or
/// `MuxEngine::run_traced`); `num_devices` the cluster size. Returns the
/// full trace object — write it with `to_string_pretty` and load the file
/// in `chrome://tracing`.
///
/// [`Timeline::ops`]: crate::timeline::Timeline::ops
pub fn chrome_trace(ops: &[OpRecord], num_devices: usize) -> Value {
    let mut events: Vec<Value> = Vec::new();
    for dev in 0..num_devices {
        events.push(metadata_event(
            "process_name",
            dev,
            None,
            format!("GPU {dev}").into(),
        ));
        events.push(metadata_event(
            "thread_name",
            dev,
            Some(COMPUTE_TID),
            "compute".into(),
        ));
        events.push(metadata_event(
            "thread_name",
            dev,
            Some(COMM_TID),
            "comm".into(),
        ));
        events.push(metadata_event(
            "thread_name",
            dev,
            Some(STALL_TID),
            "stalls".into(),
        ));
    }
    for op in ops {
        if op.end <= op.start + EPS {
            continue; // joins and zero-length ops carry no visible span
        }
        match op.kind {
            OpKind::Compute => {
                for &d in &op.devices {
                    let mut args = Map::new();
                    args.insert("utilization".into(), op.utilization.into());
                    args.insert("flops".into(), op.flops.into());
                    events.push(complete_event(
                        &op.label,
                        "compute",
                        d,
                        COMPUTE_TID,
                        op.start,
                        op.end,
                        args,
                    ));
                }
            }
            OpKind::Collective | OpKind::P2p => {
                let cat = if op.kind == OpKind::Collective {
                    "collective"
                } else {
                    "p2p"
                };
                for &d in &op.devices {
                    let mut args = Map::new();
                    args.insert("bytes".into(), op.comm_bytes.into());
                    if op.compute_penalty > 0.0 {
                        args.insert("compute_penalty".into(), op.compute_penalty.into());
                    }
                    events.push(complete_event(
                        &op.label, cat, d, COMM_TID, op.start, op.end, args,
                    ));
                }
            }
            OpKind::Join => {}
        }
    }
    for ev in stall_events(ops, num_devices) {
        let mut args = Map::new();
        args.insert("cause".into(), ev.cause.name().into());
        events.push(complete_event(
            ev.cause.name(),
            "stall",
            ev.device,
            STALL_TID,
            ev.start,
            ev.end,
            args,
        ));
    }
    let breakdown: Vec<Value> = stall_breakdown(ops, num_devices)
        .iter()
        .map(|b| {
            json!({
                "device": b.device,
                "bubble_seconds": b.bubble_seconds,
                "comm_seconds": b.comm_seconds,
                "dependency_seconds": b.dependency_seconds,
            })
        })
        .collect();
    json!({
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "producer": "mux-gpu-sim",
            "num_devices": num_devices,
            "stall_breakdown": breakdown,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{CommCtaPolicy, GpuSpec, LinkSpec, Work};
    use crate::timeline::{Cluster, CollectiveKind, Timeline};

    fn cluster(n: usize) -> Cluster {
        Cluster::single_node(GpuSpec::a40(), n, LinkSpec::nvlink_a40())
    }

    #[test]
    fn dependency_gap_is_attributed_to_the_blocking_compute_op() {
        let c = cluster(2);
        let mut t = Timeline::new(&c);
        let a = t.compute(0, Work::tensor(50e9, 1e6), &[], "producer");
        t.compute(1, Work::tensor(1e9, 1e6), &[a], "consumer");
        let ev = stall_events(t.ops(), 2);
        let dev1: Vec<_> = ev.iter().filter(|e| e.device == 1).collect();
        assert_eq!(dev1.len(), 1);
        assert_eq!(dev1[0].cause, StallCause::Dependency);
        assert!((dev1[0].end - t.end_of(a)).abs() < 1e-9);
    }

    #[test]
    fn p2p_gap_is_a_pipeline_bubble() {
        let c = cluster(2);
        let mut t = Timeline::new(&c);
        let a = t.compute(0, Work::tensor(50e9, 1e6), &[], "stage0");
        let s = t.p2p(0, 1, 500e6, &[a], "act-send");
        t.compute(1, Work::tensor(1e9, 1e6), &[s], "stage1");
        let ev = stall_events(t.ops(), 2);
        let dev1: Vec<_> = ev.iter().filter(|e| e.device == 1).collect();
        assert!(!dev1.is_empty());
        assert!(
            dev1.iter().all(|e| e.cause == StallCause::PipelineBubble),
            "{dev1:?}"
        );
    }

    #[test]
    fn collective_gap_is_a_comm_stall() {
        let c = cluster(2);
        let mut t = Timeline::new(&c);
        let ar = t.collective(
            &[0, 1],
            CollectiveKind::AllReduce,
            100e6,
            &[],
            CommCtaPolicy::sequential(),
            false,
            "ar",
        );
        t.compute(0, Work::tensor(1e9, 1e6), &[ar], "after-ar");
        let ev = stall_events(t.ops(), 2);
        let dev0: Vec<_> = ev.iter().filter(|e| e.device == 0).collect();
        assert!(!dev0.is_empty());
        assert!(dev0.iter().all(|e| e.cause == StallCause::Comm), "{dev0:?}");
    }

    #[test]
    fn breakdown_sums_match_events() {
        let c = cluster(2);
        let mut t = Timeline::new(&c);
        let a = t.compute(0, Work::tensor(50e9, 1e6), &[], "a");
        let s = t.p2p(0, 1, 100e6, &[a], "send");
        t.compute(1, Work::tensor(10e9, 1e6), &[s], "b");
        let ev = stall_events(t.ops(), 2);
        let bd = stall_breakdown(t.ops(), 2);
        for (d, dev_bd) in bd.iter().enumerate() {
            let from_events: f64 = ev
                .iter()
                .filter(|e| e.device == d)
                .map(|e| e.end - e.start)
                .sum();
            assert!((dev_bd.total() - from_events).abs() < 1e-9);
        }
    }

    #[test]
    fn trace_json_has_three_streams_per_device_and_all_categories() {
        let c = cluster(2);
        let mut t = Timeline::new(&c);
        let a = t.compute(0, Work::tensor(50e9, 1e6), &[], "w");
        let ar = t.collective(
            &[0, 1],
            CollectiveKind::AllReduce,
            50e6,
            &[a],
            CommCtaPolicy::sequential(),
            false,
            "ar",
        );
        t.compute(1, Work::tensor(10e9, 1e6), &[ar], "w2");
        let v = chrome_trace(t.ops(), 2);
        let events = v["traceEvents"].as_array().expect("array");
        // Round-trip through the serializer to prove the JSON is valid.
        let parsed = serde_json::from_str(&serde_json::to_string_pretty(&v).expect("ser"))
            .expect("valid JSON");
        assert_eq!(v, parsed);
        for dev in 0..2u64 {
            let tids: std::collections::BTreeSet<u64> = events
                .iter()
                .filter(|e| e["pid"].as_u64() == Some(dev))
                .filter_map(|e| e["tid"].as_u64())
                .collect();
            assert!(tids.len() >= 3, "device {dev} streams: {tids:?}");
        }
        let cats: std::collections::BTreeSet<&str> =
            events.iter().filter_map(|e| e["cat"].as_str()).collect();
        assert!(
            cats.contains("compute") && cats.contains("collective") && cats.contains("stall"),
            "{cats:?}"
        );
    }

    #[test]
    fn zero_duration_ops_emit_no_events() {
        let c = cluster(1);
        let mut t = Timeline::new(&c);
        let a = t.compute(0, Work::tensor(1e9, 1e6), &[], "a");
        t.join(&[a], "sync");
        let v = chrome_trace(t.ops(), 1);
        let names: Vec<&str> = v["traceEvents"]
            .as_array()
            .expect("array")
            .iter()
            .filter(|e| e["ph"].as_str() == Some("X"))
            .filter_map(|e| e["name"].as_str())
            .collect();
        assert_eq!(names, vec!["a"]);
    }
}
