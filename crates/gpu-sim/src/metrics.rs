//! Metrics extracted from a finished [`Timeline`] run:
//! device/link utilization, MFU inputs, and sampled utilization traces
//! (the paper's Figs 3d and 18).

use crate::timeline::{LaneKind, Timeline};

/// Aggregate metrics for one device over `[0, window]`.
#[derive(Debug, Clone)]
pub struct DeviceMetrics {
    /// Device index.
    pub device: usize,
    /// Fraction of the window the compute lane was busy.
    pub busy_fraction: f64,
    /// Time-averaged achieved utilization (busy time weighted by per-op
    /// utilization; idle counts as zero) — the "GPU utilization" the paper
    /// plots.
    pub avg_utilization: f64,
    /// Total FLOPs executed.
    pub flops: f64,
    /// Fraction of the window the comm lane was busy ("NVLink utilization").
    pub link_busy_fraction: f64,
    /// Total communication payload bytes this device participated in.
    pub comm_bytes: f64,
}

/// Computes [`DeviceMetrics`] for every device over `[0, window]`
/// (pass `timeline.finish_time()` as the window for end-to-end runs).
pub fn device_metrics(tl: &Timeline<'_>, window: f64) -> Vec<DeviceMetrics> {
    let n = tl.cluster().num_gpus();
    let mut out: Vec<DeviceMetrics> = (0..n)
        .map(|device| DeviceMetrics {
            device,
            busy_fraction: 0.0,
            avg_utilization: 0.0,
            flops: 0.0,
            link_busy_fraction: 0.0,
            comm_bytes: 0.0,
        })
        .collect();
    if window <= 0.0 {
        return out;
    }
    for op in tl.ops() {
        let dur = op.end - op.start;
        match op.lane {
            LaneKind::Compute => {
                for &d in &op.devices {
                    out[d].busy_fraction += dur / window;
                    out[d].avg_utilization += dur * op.utilization / window;
                    out[d].flops += op.flops;
                }
            }
            LaneKind::Comm => {
                for &d in &op.devices {
                    out[d].link_busy_fraction += dur / window;
                    out[d].comm_bytes += op.comm_bytes;
                }
            }
        }
    }
    out
}

/// A sampled utilization trace for one device: `compute[i]` / `comm[i]` are
/// the utilization-weighted compute coverage and comm-lane coverage of the
/// i-th of `buckets` equal slices of `[0, window]`.
#[derive(Debug, Clone)]
pub struct UtilizationTrace {
    /// Device index.
    pub device: usize,
    /// Bucket width in seconds.
    pub dt: f64,
    /// Compute utilization per bucket, in `[0, 1]`.
    pub compute: Vec<f64>,
    /// Comm-lane occupancy per bucket, in `[0, 1]`.
    pub comm: Vec<f64>,
}

/// Samples a device's utilization over time (Figs 3d / 18 style traces).
pub fn utilization_trace(
    tl: &Timeline<'_>,
    device: usize,
    window: f64,
    buckets: usize,
) -> UtilizationTrace {
    assert!(buckets > 0, "need at least one bucket");
    let dt = window / buckets as f64;
    let mut compute = vec![0.0; buckets];
    let mut comm = vec![0.0; buckets];
    if window <= 0.0 {
        return UtilizationTrace {
            device,
            dt,
            compute,
            comm,
        };
    }
    for op in tl.ops() {
        if !op.devices.contains(&device) {
            continue;
        }
        let lo = ((op.start / dt).floor() as usize).min(buckets.saturating_sub(1));
        let hi = ((op.end / dt).ceil() as usize).min(buckets);
        for b in lo..hi {
            let bs = b as f64 * dt;
            let be = bs + dt;
            let o = (op.end.min(be) - op.start.max(bs)).max(0.0) / dt;
            match op.lane {
                LaneKind::Compute => compute[b] += o * op.utilization,
                LaneKind::Comm => comm[b] += o,
            }
        }
    }
    for v in compute.iter_mut().chain(comm.iter_mut()) {
        *v = v.min(1.0);
    }
    UtilizationTrace {
        device,
        dt,
        compute,
        comm,
    }
}

/// Summary of how injected faults perturbed a timeline run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultImpact {
    /// Number of ops whose duration was stretched by a fault window.
    pub perturbed_ops: usize,
    /// Total extra seconds added across all perturbed ops.
    pub added_seconds: f64,
    /// Fraction of the makespan attributable to fault-induced stretching
    /// (0 when no faults fired or the run is empty).
    pub delay_fraction: f64,
}

/// Extracts the fault-perturbation summary from a finished run.
pub fn fault_impact(tl: &Timeline<'_>) -> FaultImpact {
    let added = tl.fault_delay_seconds();
    let makespan = tl.finish_time();
    FaultImpact {
        perturbed_ops: tl.perturbed_ops(),
        added_seconds: added,
        delay_fraction: if makespan > 0.0 {
            added / makespan
        } else {
            0.0
        },
    }
}

/// Mean of the per-device average utilization — one number per run.
pub fn mean_utilization(tl: &Timeline<'_>, window: f64) -> f64 {
    let m = device_metrics(tl, window);
    if m.is_empty() {
        return 0.0;
    }
    m.iter().map(|d| d.avg_utilization).sum::<f64>() / m.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{CommCtaPolicy, GpuSpec, LinkSpec, Work};
    use crate::timeline::{Cluster, CollectiveKind, Timeline};

    fn cluster(n: usize) -> Cluster {
        Cluster::single_node(GpuSpec::a40(), n, LinkSpec::nvlink_a40())
    }

    #[test]
    fn busy_fraction_accounts_for_idle() {
        let c = cluster(2);
        let mut t = Timeline::new(&c);
        let a = t.compute(0, Work::tensor(50e9, 10e6), &[], "a");
        // Device 1 waits for device 0 and then does the same work: busy
        // ~50% of the makespan.
        t.compute(1, Work::tensor(50e9, 10e6), &[a], "b");
        let w = t.finish_time();
        let m = device_metrics(&t, w);
        assert!(
            (m[0].busy_fraction - 0.5).abs() < 0.02,
            "{}",
            m[0].busy_fraction
        );
        assert!(
            (m[1].busy_fraction - 0.5).abs() < 0.02,
            "{}",
            m[1].busy_fraction
        );
    }

    #[test]
    fn avg_utilization_below_busy_fraction() {
        let c = cluster(1);
        let mut t = Timeline::new(&c);
        // A small op never reaches peak efficiency.
        t.compute(0, Work::tensor(1e9, 1e6), &[], "small");
        let w = t.finish_time();
        let m = device_metrics(&t, w);
        assert!(m[0].avg_utilization < m[0].busy_fraction);
        assert!(m[0].avg_utilization > 0.0);
    }

    #[test]
    fn link_busy_tracks_collectives() {
        let c = cluster(2);
        let mut t = Timeline::new(&c);
        t.collective(
            &[0, 1],
            CollectiveKind::AllReduce,
            100e6,
            &[],
            CommCtaPolicy::sequential(),
            false,
            "ar",
        );
        let w = t.finish_time();
        let m = device_metrics(&t, w);
        assert!(m[0].link_busy_fraction > 0.9);
        assert!((m[0].comm_bytes - 100e6).abs() < 1.0);
    }

    #[test]
    fn trace_buckets_cover_op_spans() {
        let c = cluster(1);
        let mut t = Timeline::new(&c);
        t.compute(0, Work::tensor(100e9, 10e6), &[], "a");
        let w = t.finish_time() * 2.0; // second half idle
        let tr = utilization_trace(&t, 0, w, 10);
        assert!(tr.compute[0] > 0.5, "busy at the start");
        assert!(tr.compute[9] < 1e-9, "idle at the end");
    }

    #[test]
    fn zero_window_is_safe() {
        let c = cluster(1);
        let t = Timeline::new(&c);
        let m = device_metrics(&t, 0.0);
        assert_eq!(m[0].busy_fraction, 0.0);
        assert_eq!(mean_utilization(&t, 0.0), 0.0);
    }
}
