//! Prefill/decode phase model for inference serving (ROADMAP item 1).
//!
//! Serving a request on a frozen backbone has two phases with opposite
//! roofline positions (MuxServe §3, Loquetier §4 in PAPERS.md):
//!
//! - **Prefill** processes every prompt token in one pass: FLOPs scale with
//!   `2 · params · prompt_tokens` while the weight read is paid once, so the
//!   phase is compute-bound and *batchable* — co-batched prompts amortize the
//!   fixed weight traffic and launch overhead.
//! - **Decode** emits one token per step: FLOPs per step are only
//!   `2 · params`, but the full parameter set streams from HBM every step,
//!   so the phase is memory-bound and *token-steppable* — its latency is a
//!   property of the device's bandwidth, not its tensor cores.
//!
//! Both phases are costed off the same [`GpuSpec`] roofline
//! ([`GpuSpec::compute_time`]) used for training micro-batches, so serving
//! and tuning compete for the device in commensurable units.

use crate::spec::{GpuSpec, Work};
use mux_model::ModelConfig;

/// Roofline-costed prefill/decode phase model for one (device, model) pair.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseModel {
    /// Device roofline the phases are costed against.
    pub gpu: GpuSpec,
    /// Frozen-backbone parameter count.
    pub params: f64,
    /// Bytes of weights streamed per full forward pass.
    pub param_bytes: f64,
}

impl PhaseModel {
    /// Phase model from explicit parameter counts.
    pub fn new(gpu: GpuSpec, params: f64, param_bytes: f64) -> Self {
        assert!(params > 0.0, "params must be positive");
        assert!(param_bytes > 0.0, "param_bytes must be positive");
        Self {
            gpu,
            params,
            param_bytes,
        }
    }

    /// Phase model for a named backbone from the Table 1 configs.
    pub fn for_model(gpu: GpuSpec, model: &ModelConfig) -> Self {
        Self::new(gpu, model.total_params() as f64, model.param_bytes() as f64)
    }

    /// Forward-pass work for `tokens` prompt tokens in one batch: token-
    /// linear FLOPs, one amortized weight read.
    fn prefill_work(&self, tokens: u64) -> Work {
        Work::tensor(2.0 * self.params * tokens as f64, self.param_bytes)
    }

    /// Latency of prefilling one request with `prompt_tokens` tokens.
    pub fn prefill_time(&self, prompt_tokens: u64) -> f64 {
        self.gpu.compute_time(self.prefill_work(prompt_tokens), 1.0)
    }

    /// Latency of one co-batched prefill over several prompts. The weight
    /// read and launch overhead are paid once for the whole batch, so this
    /// is strictly cheaper than prefilling the members one at a time.
    pub fn prefill_batch_time(&self, prompt_tokens: &[u64]) -> f64 {
        let total: u64 = prompt_tokens.iter().sum();
        self.gpu.compute_time(self.prefill_work(total), 1.0)
    }

    /// Latency of emitting one decode token: ~`2 · params` FLOPs against a
    /// full weight stream, which the roofline resolves as bandwidth-bound.
    pub fn decode_step_time(&self) -> f64 {
        self.gpu
            .compute_time(Work::tensor(2.0 * self.params, self.param_bytes), 1.0)
    }

    /// Latency of decoding `output_tokens` sequentially.
    pub fn decode_time(&self, output_tokens: u64) -> f64 {
        output_tokens as f64 * self.decode_step_time()
    }

    /// Fraction of peak the decode step sustains — the idle tensor-core
    /// margin a spatial co-batching policy can hand to training hTasks.
    pub fn decode_compute_margin(&self) -> f64 {
        let step = self.decode_step_time() - self.gpu.launch_overhead;
        if step <= 0.0 {
            return 0.0;
        }
        let flops_time = 2.0 * self.params / self.gpu.peak_flops;
        (1.0 - flops_time / step).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> PhaseModel {
        PhaseModel::for_model(GpuSpec::a40(), &ModelConfig::llama2_7b())
    }

    #[test]
    fn prefill_is_compute_bound_at_realistic_prompt_lengths() {
        let m = model();
        // At 512 prompt tokens the FLOPs term dominates the weight read.
        let w = m.prefill_work(512);
        let tf = w.flops / m.gpu.peak_flops;
        let tb = w.bytes / m.gpu.mem_bw;
        assert!(
            tf > tb,
            "prefill should be compute-bound: flops time {tf} vs bytes time {tb}"
        );
    }

    #[test]
    fn decode_is_memory_bound() {
        let m = model();
        let tf = 2.0 * m.params / m.gpu.peak_flops;
        let tb = m.param_bytes / m.gpu.mem_bw;
        assert!(
            tb > 100.0 * tf,
            "decode should be overwhelmingly bandwidth-bound"
        );
        // And the step time is essentially the weight-stream time.
        let step = m.decode_step_time();
        assert!(step >= tb);
        assert!(step < 1.5 * tb + m.gpu.launch_overhead);
    }

    #[test]
    fn batched_prefill_amortizes_weight_read() {
        let m = model();
        let singles: f64 = (0..8).map(|_| m.prefill_time(128)).sum();
        let batched = m.prefill_batch_time(&[128; 8]);
        assert!(
            batched < singles,
            "co-batched prefill {batched} must beat serial prefill {singles}"
        );
        // But it can never beat the pure FLOPs floor of the combined work.
        assert!(batched >= 2.0 * m.params * 1024.0 / m.gpu.peak_flops);
    }

    #[test]
    fn batch_time_is_monotone_in_added_prompts() {
        let m = model();
        assert!(m.prefill_batch_time(&[128, 64]) > m.prefill_batch_time(&[128]));
        // Single-element batch degenerates to the single-request cost.
        assert_eq!(m.prefill_batch_time(&[128]), m.prefill_time(128));
    }

    #[test]
    fn decode_time_is_token_linear() {
        let m = model();
        let one = m.decode_time(1);
        let hundred = m.decode_time(100);
        assert!((hundred - 100.0 * one).abs() < 1e-9);
    }

    #[test]
    fn decode_leaves_compute_margin_for_spatial_cobatching() {
        let m = model();
        // Memory-bound decode leaves nearly all tensor-core capacity idle.
        assert!(m.decode_compute_margin() > 0.9);
        assert!(m.decode_compute_margin() <= 1.0);
    }
}
