//! Eq. 1–2 isolation, stated at full strength: on our deterministic CPU
//! kernels, fusing tasks onto a shared backbone must reproduce the solo
//! run *bitwise* — every post-step adapter parameter has the identical
//! f32 bit pattern, every reported loss is bit-equal. This is stronger
//! than the mean-square-deviation bound used elsewhere (which tolerates
//! reassociated reductions) and pins the Dispatch/Aggregate row slicing
//! to exact per-row equivalence: a task's rows through the fused
//! backbone see the same values, in the same order, as when it runs
//! alone.

use mux_peft::backbone::TinyConfig;
use mux_peft::trainer::{ExecTask, MultiTaskTrainer, TaskBatch};

/// Bit patterns of every adapter parameter of every task, flattened in
/// deterministic snapshot order.
fn param_bits(tasks: &[ExecTask]) -> Vec<Vec<u32>> {
    tasks
        .iter()
        .map(|t| {
            t.snapshot()
                .iter()
                .flat_map(|tensor| tensor.data().iter().map(|v| v.to_bits()))
                .collect()
        })
        .collect()
}

fn assert_bitwise_equal(sep: &[ExecTask], fused: &[ExecTask], step: usize) {
    for (task, (s, f)) in param_bits(sep)
        .iter()
        .zip(param_bits(fused).iter())
        .enumerate()
    {
        assert_eq!(s.len(), f.len(), "task {task}: snapshot sizes differ");
        if let Some(i) = s.iter().zip(f.iter()).position(|(a, b)| a != b) {
            panic!(
                "task {task} parameter {i} diverged at step {step}: \
                 separate bits {:#010x} ({}) vs fused bits {:#010x} ({})",
                s[i],
                f32::from_bits(s[i]),
                f[i],
                f32::from_bits(f[i]),
            );
        }
    }
}

/// Three heterogeneous tasks (LoRA, bottleneck, diff-pruning) trained for
/// several steps: the fused run must track the separate run bit for bit —
/// parameters and losses.
#[test]
fn fused_gradients_are_bitwise_identical_to_solo() {
    let cfg = TinyConfig::small();
    let mk = || {
        vec![
            ExecTask::lora(&cfg, 1, 2, 101, 0.1),
            ExecTask::bottleneck(&cfg, 2, 4, 102, 0.1),
            ExecTask::diff_pruning(&cfg, 3, 0.25, 103, 0.1),
        ]
    };
    let mut sep_tasks = mk();
    let mut fused_tasks = mk();
    // Same init before any step: the harness itself must be deterministic.
    assert_bitwise_equal(&sep_tasks, &fused_tasks, 0);

    let mut sep_tr = MultiTaskTrainer::new(cfg, 7);
    let mut fused_tr = MultiTaskTrainer::new(cfg, 7);
    for step in 1..=3 {
        let batches: Vec<TaskBatch> = (0..3)
            .map(|t| TaskBatch::synthetic(10 * step + t, 2, 8, cfg.vocab))
            .collect();
        let sep = sep_tr.step_separate(&mut sep_tasks, &batches);
        let fused = fused_tr.step_fused(&mut fused_tasks, &batches);
        // With SGD (p -= lr * g), bit-identical post-step parameters at
        // every step imply bit-identical gradients at every step.
        assert_bitwise_equal(&sep_tasks, &fused_tasks, step as usize);
        for (a, b) in sep.iter().zip(&fused) {
            assert_eq!(
                a.loss.to_bits(),
                b.loss.to_bits(),
                "step {step}: task {} loss {} (separate) vs {} (fused)",
                a.task,
                a.loss,
                b.loss
            );
            assert_eq!(a.accuracy, b.accuracy, "step {step}: accuracy differs");
        }
    }
}

/// The guarantee is per-task, not per-ensemble: a task must get the same
/// bits regardless of *which other tasks* share the backbone.
#[test]
fn bitwise_identity_is_independent_of_colocated_tasks() {
    let cfg = TinyConfig::small();
    let batch = TaskBatch::synthetic(55, 2, 8, cfg.vocab);

    // Run task 1 solo.
    let mut solo = vec![ExecTask::lora(&cfg, 1, 2, 201, 0.1)];
    let mut tr1 = MultiTaskTrainer::new(cfg, 31);
    tr1.step_fused(&mut solo, std::slice::from_ref(&batch));

    // Run the same task fused with two different neighbours.
    let mut with_neighbours = vec![
        ExecTask::lora(&cfg, 1, 2, 201, 0.1),
        ExecTask::bottleneck(&cfg, 2, 4, 202, 0.05),
        ExecTask::lora(&cfg, 3, 4, 203, 0.2),
    ];
    let batches = vec![
        batch,
        TaskBatch::synthetic(56, 3, 8, cfg.vocab),
        TaskBatch::synthetic(57, 1, 8, cfg.vocab),
    ];
    let mut tr2 = MultiTaskTrainer::new(cfg, 31);
    tr2.step_fused(&mut with_neighbours, &batches);

    let solo_bits = param_bits(&solo);
    let multi_bits = param_bits(&with_neighbours[..1]);
    assert_eq!(
        solo_bits[0], multi_bits[0],
        "task 1's update depends on its neighbours"
    );
}
