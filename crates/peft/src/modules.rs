//! The executable PEFT sub-module abstraction (§3.2).
//!
//! The paper modularizes every PEFT algorithm into four sub-modules:
//! *BaseOp* (a backbone operator adapters may attach to), *Adapter* (the
//! algorithm), *Dispatch* (routing input tensors to base + adapter), and
//! *Aggregate* (combining their outputs). Here that contract is a trait:
//! an [`AdapterModule`] receives the `BaseOp`'s input and output (Dispatch)
//! and returns a delta that the caller adds to the base output (Aggregate).
//! Dispatch/Aggregate for *spatially batched* tasks — row slicing and
//! concatenation — live in the trainer, mirroring Eq. 1–2.

use mux_tensor::graph::{Graph, Var};
use mux_tensor::tensor::Tensor;

/// Sites on the tiny executable backbone where adapters may attach.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum AttachSite {
    /// Query projection.
    Q,
    /// Key projection.
    K,
    /// Value projection.
    V,
    /// Attention output projection.
    Out,
    /// MLP up-projection.
    MlpUp,
    /// MLP down-projection.
    MlpDown,
}

impl AttachSite {
    /// All sites, in canonical order.
    pub const ALL: [AttachSite; 6] = [
        AttachSite::Q,
        AttachSite::K,
        AttachSite::V,
        AttachSite::Out,
        AttachSite::MlpUp,
        AttachSite::MlpDown,
    ];
}

/// A trainable adapter attached to one `BaseOp` of one task.
pub trait AdapterModule {
    /// Registers this step's parameter leaves on the tape.
    fn register(&mut self, g: &mut Graph);

    /// Computes the adapter delta for one `BaseOp` application.
    ///
    /// `base_in` is the `BaseOp`'s input (what LoRA and Diff-Pruning read),
    /// `base_out` its output (what bottleneck adapters read). The returned
    /// delta has `base_out`'s shape and is added to it by the caller.
    fn forward(&self, g: &mut Graph, base_in: Var, base_out: Var) -> Var;

    /// Applies this step's gradients with learning rate `lr` (plain SGD —
    /// deterministic and sufficient for the isolation experiments).
    fn apply_grads(&mut self, g: &Graph, lr: f32);

    /// Snapshot of all trainable tensors (for trajectory comparison).
    fn snapshot(&self) -> Vec<Tensor>;

    /// Whether any parameter holds a non-finite value.
    fn has_non_finite(&self) -> bool {
        self.snapshot().iter().any(|t| t.has_non_finite())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attach_sites_are_exhaustive_and_ordered() {
        assert_eq!(AttachSite::ALL.len(), 6);
        let mut sorted = AttachSite::ALL.to_vec();
        sorted.sort();
        assert_eq!(sorted, AttachSite::ALL.to_vec());
    }
}
