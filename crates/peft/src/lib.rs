//! # mux-peft
//!
//! PEFT modularization per the paper's §3.2: every PEFT algorithm is
//! decomposed into *BaseOp / Adapter / Dispatch / Aggregate* sub-modules,
//! enabling flexible multi-task backbone sharing.
//!
//! The crate has two halves:
//!
//! * **Descriptive** ([`types`], [`registry`]): task configurations, adapter
//!   parameter/FLOP arithmetic, and dynamic multi-task operator-graph
//!   construction — consumed by the scheduler and the simulator.
//! * **Executable** ([`backbone`], [`modules`], [`lora`], [`adapter_tuning`],
//!   [`diff_pruning`], [`trainer`], [`isolation`]): real training of tiny
//!   transformers on `mux-tensor`, proving the Eq. 1–2 isolation and
//!   convergence-consistency claims end to end.

pub mod adapter_tuning;
pub mod backbone;
pub mod diff_pruning;
pub mod isolation;
pub mod lora;
pub mod modules;
pub mod prefix_tuning;
pub mod registry;
pub mod trainer;
pub mod types;
pub mod validation;

pub use modules::{AdapterModule, AttachSite};
pub use registry::{RegistryError, TaskRegistry};
pub use types::{PeftTask, PeftType, TaskId};
pub use validation::{validate_task, ValidationError};
